//! Fault injection: watch the measurement pipeline degrade and recover
//! through an AP outage and an interference burst (smoltcp-style adverse
//! conditions demo).
//!
//! ```sh
//! cargo run --release --example fault_injection
//! ```

use mesh11::prelude::*;
use mesh11::sim::{ApOutage, InterferenceBurst};
use mesh11::trace::ApId;

fn main() {
    let campaign = CampaignSpec::small(23).generate();
    let spec = campaign
        .networks
        .iter()
        .find(|n| n.has_bg() && n.size() >= 5)
        .expect("small campaigns include a ≥5-AP b/g network");
    println!(
        "target network: {} ({} APs, {})\n",
        spec.id,
        spec.size(),
        spec.env.name()
    );

    let mut cfg = SimConfig::quick();
    cfg.probe_horizon_s = 4_800.0;
    // AP0 dies between t=1600 and t=3200.
    cfg.faults = FaultPlan {
        outages: vec![ApOutage {
            network: spec.id,
            ap: ApId(0),
            start_s: 1_600.0,
            end_s: 3_200.0,
        }],
        bursts: vec![InterferenceBurst {
            network: spec.id,
            start_s: 2_400.0,
            end_s: 3_600.0,
            penalty_db: 12.0,
        }],
    };
    let ds = cfg.run_network(spec);

    // Track, per report round, how many probe sets mention AP0 as a sender
    // and the network-wide mean 48 Mbit/s loss.
    let r48 = BitRate::bg_mbps(48.0).unwrap();
    println!(
        "{:>7} {:>12} {:>12}   events",
        "t (s)", "AP0 reports", "48M loss"
    );
    let mut t = cfg.report_interval_s;
    while t <= cfg.probe_horizon_s {
        let round: Vec<&ProbeSet> = ds
            .probes
            .iter()
            .filter(|p| (p.time_s - t).abs() < cfg.probe_interval_s)
            .collect();
        let ap0 = round.iter().filter(|p| p.sender == ApId(0)).count();
        let losses: Vec<f64> = round
            .iter()
            .filter_map(|p| p.obs_for(r48).map(|o| o.loss))
            .collect();
        let loss = mesh11::stats::mean(&losses)
            .map(|l| format!("{l:.2}"))
            .unwrap_or_else(|| "-".into());
        let mut events = String::new();
        if (1_600.0..3_200.0).contains(&t) {
            events.push_str(" [AP0 down]");
        }
        if (2_400.0..3_600.0).contains(&t) {
            events.push_str(" [12 dB interference]");
        }
        println!("{t:>7.0} {ap0:>12} {loss:>12}  {events}");
        t += cfg.report_interval_s;
    }
    println!("\nnote how AP0's probe sets drain out of the 800 s windows after the");
    println!("outage starts, reappear after recovery, and how the burst inflates");
    println!("loss without touching any reported SNR — the analyses only ever see");
    println!("what the real infrastructure would have logged.");
}
