//! Quickstart: generate a campaign, simulate it, ask the paper's headline
//! questions.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use mesh11::prelude::*;

fn main() {
    // 1. A seeded 12-network campaign with the paper's composition shape
    //    (mostly small networks, an indoor majority, one heavy-tailed big
    //    network, b/g and 802.11n radios).
    let campaign = CampaignSpec::small(42).generate();
    println!(
        "campaign: {} networks, {} APs total",
        campaign.networks.len(),
        campaign.total_aps()
    );
    for net in campaign.networks.iter().take(4) {
        println!(
            "  {}  {:>3} APs  {:7}  {:?}  ({})",
            net.id,
            net.size(),
            net.env.name(),
            net.radios,
            net.geo.label
        );
    }
    println!("  …");

    // 2. Simulate the measurement infrastructure: 1 h of 40 s broadcast
    //    probes with 800 s loss windows and 300 s reports, plus 2 h of
    //    clients associating and moving data.
    let dataset = SimConfig::quick().run_campaign(&campaign);
    println!(
        "\ndataset: {} probe sets, {} client samples",
        dataset.probes.len(),
        dataset.clients.len()
    );

    // Build the shared index once; every analysis below reads through it.
    let index = DatasetIndex::build(&dataset);
    let view = DatasetView::new(&dataset, &index);

    // 3. §4 — is the SNR a good predictor of the optimal bit rate?
    println!("\nSNR → optimal-rate table accuracy (802.11b/g):");
    for scope in [Scope::Global, Scope::Network, Scope::Ap, Scope::Link] {
        let table = LookupTableSet::build(view, scope, Phy::Bg);
        println!(
            "  {:8} {:5.1}%",
            format!("{}:", table.scope().name()),
            100.0 * table.exact_accuracy(view)
        );
    }
    println!("  (the paper's finding: only per-link training works well)");

    // 4. §5 — would idealized opportunistic routing help?
    let analyses = mesh11::core::routing::improvement::analyze_dataset(view, Phy::Bg, 5);
    let imps: Vec<f64> = analyses
        .iter()
        .flat_map(|a| a.improvements(EtxVariant::Etx1))
        .collect();
    if let Some(cdf) = Cdf::from_samples(imps.iter().copied()) {
        println!(
            "\nopportunistic routing vs ETX1: median improvement {:.1}%, none for {:.1}% of pairs",
            100.0 * cdf.median(),
            100.0 * cdf.eval(1e-9)
        );
    }

    // 5. §6 — how common are hidden triples?
    let triples = TripleAnalysis::run(view, Phy::Bg, 0.10, HearRule::Mean);
    let one = BitRate::bg_mbps(1.0).unwrap();
    if let Some(med) = triples.median_fraction(one, None) {
        println!(
            "hidden triples at 1 Mbit/s (10% threshold): median {:.1}% of relevant triples",
            100.0 * med
        );
    }

    // 6. §7 — how mobile are clients?
    let mobility = MobilityReport::build(&dataset);
    println!(
        "clients: {:.0}% visit a single AP; {:.0}% stay the whole trace",
        100.0 * mobility.frac_single_ap(),
        100.0 * mobility.frac_full_duration(dataset.client_horizon_s)
    );
}
