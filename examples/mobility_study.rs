//! Client-mobility study (§7): prevalence, persistence, and session shapes,
//! with the indoor/outdoor split.
//!
//! ```sh
//! cargo run --release --example mobility_study [-- <seed>]
//! ```

use mesh11::prelude::*;
use mesh11::trace::EnvLabel;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(17);
    let campaign = CampaignSpec::scaled(seed, 24).generate();
    let mut cfg = SimConfig::quick();
    cfg.client_horizon_s = 4.0 * 3_600.0; // give mobility room to show
    let dataset = cfg.run_campaign(&campaign);

    let sessions = ClientSessions::build(&dataset);
    let report = MobilityReport::from_sessions(&sessions);
    println!(
        "{} sessions reconstructed from {} client samples\n",
        sessions.sessions.len(),
        dataset.clients.len()
    );

    // Fig 7.1: APs visited.
    let mut visited = report.aps_visited.clone();
    visited.sort_unstable();
    println!(
        "APs visited per client: mode 1 ({:.0}% of clients), median {}, max {}",
        100.0 * report.frac_single_ap(),
        visited[visited.len() / 2],
        visited.last().unwrap()
    );

    // Fig 7.2: connection lengths.
    if let Some(cdf) = Cdf::from_samples(report.connection_hours.iter().copied()) {
        println!(
            "connection length: median {:.1} h; {:.0}% span the full horizon; {:.0}% under 1/3 of it",
            cdf.median(),
            100.0 * report.frac_full_duration(dataset.client_horizon_s),
            100.0 * cdf.eval(dataset.client_horizon_s / 3_600.0 / 3.0)
        );
    }

    // Figs 7.3 / 7.4: prevalence and persistence by environment.
    println!(
        "\n{:8} {:>18} {:>22}",
        "env", "prevalence (mean/med)", "persistence min (mean/med)"
    );
    for env in [EnvLabel::Indoor, EnvLabel::Outdoor] {
        let prev = report.prevalence_stats(env);
        let pers = report.persistence_stats(env);
        if let (Some((pm, pd)), Some((sm, sd))) = (prev, pers) {
            println!(
                "{:8} {:>10.3}/{:<8.3} {:>12.1}/{:<8.1}",
                env.name(),
                pm,
                pd,
                sm,
                sd
            );
        }
    }
    println!("(paper: indoor clients switch faster — lower prevalence & persistence)");

    // Fig 7.5 quadrants.
    let (mut ll, mut hh, mut lh, mut hl) = (0usize, 0usize, 0usize, 0usize);
    for &(pers_min, max_prev) in &report.prevalence_vs_persistence {
        match (pers_min >= 30.0, max_prev >= 0.5) {
            (false, false) => ll += 1,
            (true, true) => hh += 1,
            (false, true) => lh += 1,
            (true, false) => hl += 1,
        }
    }
    println!("\nprevalence-vs-persistence quadrants (30 min / 0.5 split):");
    println!("  low-pers/low-prev  (rapid switchers): {ll}");
    println!("  high-pers/high-prev (parked clients): {hh}");
    println!("  low-pers/high-prev (few-AP flappers): {lh}");
    println!("  high-pers/low-prev (slow roamers):    {hl}");
    println!("(paper: mass sits in the first two quadrants)");
}
