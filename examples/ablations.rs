//! Design-choice ablations (DESIGN.md §8): the knobs the paper's idealized
//! analyses fix, swept.
//!
//! ```sh
//! cargo run --release --example ablations [-- <seed>]
//! ```

use mesh11::core::bitrate::{simulate_adapters, AdapterKind};
use mesh11::core::routing::ablation::{delivery_floor_sweep, improvement_vs_cap};
use mesh11::core::triples::sweep::{rule_comparison, threshold_sweep};
use mesh11::prelude::*;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(29);
    let campaign = CampaignSpec::scaled(seed, 16).generate();
    let dataset = SimConfig::quick().run_campaign(&campaign);
    let index = DatasetIndex::build(&dataset);
    let view = DatasetView::new(&dataset, &index);

    // ---- A. Rate-adaptation protocols (the §4.5 proposal, end to end) ----
    println!("A. rate adaptation replay (b/g, probing overhead 10%):");
    let kinds = [
        AdapterKind::Oracle,
        AdapterKind::SnrTable { top_k: 1 },
        AdapterKind::SnrTable { top_k: 2 },
        AdapterKind::EwmaProbing { alpha: 0.3 },
        AdapterKind::Fixed(BitRate::bg_mbps(11.0).unwrap()),
        AdapterKind::Fixed(BitRate::bg_mbps(48.0).unwrap()),
    ];
    println!(
        "   {:<16} {:>9} {:>9} {:>10}",
        "adapter", "raw Mb/s", "net Mb/s", "of oracle"
    );
    for o in simulate_adapters(view, Phy::Bg, &kinds, 0.10) {
        println!(
            "   {:<16} {:>9.2} {:>9.2} {:>9.1}%",
            o.kind.name(),
            o.mean_throughput_mbps,
            o.net_throughput_mbps,
            100.0 * o.fraction_of_oracle
        );
    }
    println!("   (SNR-table adapters keep probing overhead at k/n of the prober's)\n");

    // ---- B. ExOR candidate-set cap ----
    println!("B. opportunistic gain vs forwarder-set size (1 Mbit/s):");
    let one = BitRate::bg_mbps(1.0).unwrap();
    // Use the largest ≥5-AP b/g network's matrix.
    let meta = dataset
        .networks_with_at_least(5)
        .filter(|m| m.radios.contains(&Phy::Bg))
        .max_by_key(|m| m.n_aps)
        .expect("campaign has a big b/g network");
    let m = view.delivery_matrix(Phy::Bg, meta.id, one, meta.n_aps);
    for (cap, mean) in improvement_vs_cap(&m, &[1, 2, 3, 4, 8, usize::MAX]) {
        let label = if cap == usize::MAX {
            "∞".into()
        } else {
            cap.to_string()
        };
        println!("   cap {label:>3}: mean improvement {mean:.4}");
    }
    println!(
        "   (the gain saturates with a handful of forwarders — why real ExOR caps its list)\n"
    );

    // ---- C. ETX delivery-floor sensitivity ----
    println!(
        "C. ETX delivery-floor sweep ({} APs, 1 Mbit/s):",
        meta.n_aps
    );
    for (floor, mean_cost, reachable) in delivery_floor_sweep(&m, &[0.05, 0.10, 0.20, 0.40]) {
        println!(
            "   floor {floor:4.2}: mean path cost {mean_cost:5.2} ETX, {reachable} reachable pairs"
        );
    }
    println!();

    // ---- D. Hidden-triple definition sensitivity ----
    println!("D. hidden-triple threshold sweep at 1 Mbit/s:");
    for (t, med) in threshold_sweep(
        view,
        Phy::Bg,
        one,
        &[0.05, 0.10, 0.20, 0.30],
        HearRule::Mean,
    ) {
        match med {
            Some(v) => println!("   t = {t:4.2}: median {:5.1}%", 100.0 * v),
            None => println!("   t = {t:4.2}: no relevant triples"),
        }
    }
    println!("\n   hearing-rule comparison (t = 10%):");
    for (rule, med) in rule_comparison(view, Phy::Bg, one, 0.10) {
        match med {
            Some(v) => println!("   {rule:?}: median {:5.1}%", 100.0 * v),
            None => println!("   {rule:?}: no relevant triples"),
        }
    }
    println!("\n   (the paper's claim: the 10% threshold is not load-bearing)");

    // ---- E. Loss-window size (the Meraki 800 s constant, swept) ----
    // The paper inherits 800 s from the production firmware; how much does
    // the §4 result owe to it? Longer windows smooth loss estimates but mix
    // older channel states into each probe set.
    println!("\nE. loss-window sweep (one mid-size network, link-scope accuracy):");
    let spec = campaign
        .networks
        .iter()
        .find(|n| n.has_bg() && n.size() >= 7)
        .expect("campaign has a mid-size b/g network");
    for window_s in [200.0, 800.0, 3_200.0] {
        let mut cfg = SimConfig::quick();
        cfg.window_s = window_s;
        cfg.client_horizon_s = 0.0;
        let ds = cfg.run_network(spec);
        let ix = DatasetIndex::build(&ds);
        let v = DatasetView::new(&ds, &ix);
        let table = LookupTableSet::build(v, Scope::Link, Phy::Bg);
        println!(
            "   window {window_s:>6.0} s: link accuracy {:5.1}% over {} probe sets",
            100.0 * table.exact_accuracy(v),
            ds.probes.len()
        );
    }
    println!("   (800 s sits on the flat part of the curve — the constant is safe)");
}
