//! Opportunistic routing study (§5): per-network ExOR-vs-ETX improvement,
//! the path-length effect, and the link-asymmetry driver behind the
//! ETX1/ETX2 gap.
//!
//! ```sh
//! cargo run --release --example opportunistic_routing [-- <seed>]
//! ```

use mesh11::core::routing::asymmetry::asymmetry_by_rate;
use mesh11::core::routing::improvement::{analyze_dataset, improvement_by_path_length};
use mesh11::prelude::*;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(11);
    let campaign = CampaignSpec::scaled(seed, 20).generate();
    let dataset = SimConfig::quick().run_campaign(&campaign);
    let index = DatasetIndex::build(&dataset);
    let view = DatasetView::new(&dataset, &index);

    let analyses = analyze_dataset(view, Phy::Bg, 5);
    println!(
        "analyzed {} (network, rate) delivery matrices from networks with ≥5 APs\n",
        analyses.len()
    );

    // Per-rate improvement summary (Fig 5.1).
    println!(
        "{:>12} {:>10} {:>10} {:>10} | {:>10}",
        "rate", "mean", "median", "none", "etx2 mean"
    );
    for &rate in Phy::Bg.probed_rates() {
        let imp1: Vec<f64> = analyses
            .iter()
            .filter(|a| a.rate == rate)
            .flat_map(|a| a.improvements(EtxVariant::Etx1))
            .collect();
        let imp2: Vec<f64> = analyses
            .iter()
            .filter(|a| a.rate == rate)
            .flat_map(|a| a.improvements(EtxVariant::Etx2))
            .collect();
        if imp1.is_empty() {
            continue;
        }
        let none = imp1.iter().filter(|&&x| x < 1e-9).count() as f64 / imp1.len() as f64;
        println!(
            "{:>12} {:>10.3} {:>10.3} {:>9.1}% | {:>10.3}",
            rate.to_string(),
            mesh11::stats::mean(&imp1).unwrap_or(0.0),
            mesh11::stats::median(&imp1).unwrap_or(0.0),
            100.0 * none,
            mesh11::stats::mean(&imp2).unwrap_or(0.0),
        );
    }

    // The path-length effect (Fig 5.4): medians rise, maxima fall.
    println!("\nimprovement vs ETX1 path length (pooled rates):");
    println!("{:>6} {:>10} {:>10}", "hops", "median", "max");
    for (hops, median, max) in improvement_by_path_length(&analyses, EtxVariant::Etx1) {
        println!("{hops:>6} {median:>10.3} {max:>10.3}");
    }

    // Link asymmetry (Fig 5.2) — why ETX2 overstates the gain.
    let asym = asymmetry_by_rate(view, Phy::Bg);
    let one = BitRate::bg_mbps(1.0).unwrap();
    if let Some(ratios) = asym.get(&one) {
        if let Some(cdf) = Cdf::from_samples(ratios.iter().copied()) {
            println!(
                "\nlink asymmetry at 1 Mbit/s: median ratio {:.2}, 10th/90th pct {:.2}/{:.2}",
                cdf.median(),
                cdf.quantile(0.1),
                cdf.quantile(0.9)
            );
        }
    }
    // ETT (expected transmission time): the other traditional metric the
    // paper's question 2 names. Multi-rate ETT vs best single-rate ETX1.
    let ett = mesh11::core::routing::ett::analyze_ett(view, Phy::Bg, 5);
    let speedups: Vec<f64> = ett.iter().flat_map(|a| a.speedups()).collect();
    if let Some(cdf) = Cdf::from_samples(speedups.iter().copied()) {
        println!(
            "\nETT multi-rate routing vs best single-rate ETX1 path:\n  median speedup {:.2}×, 90th pct {:.2}×, {:.0}% of pairs gain >10%",
            cdf.median(),
            cdf.quantile(0.9),
            100.0 * cdf.frac_at_least(1.1)
        );
    }

    println!("\npaper take-away: idealized opportunism buys little over ETX1 on");
    println!("these topologies — most paths are short — and the ETX2 'gain' is");
    println!("mostly an artifact of charging ACKs for link asymmetry. Multi-rate");
    println!("ETT, by contrast, wins by letting each hop run its own best rate.");
}
