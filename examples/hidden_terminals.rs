//! Hidden-terminal study (§6): triple frequencies across thresholds, rates,
//! hearing rules, and environments — including the ablations the paper
//! mentions but does not plot.
//!
//! ```sh
//! cargo run --release --example hidden_terminals [-- <seed>]
//! ```

use mesh11::core::triples::{range_by_rate, range_change_by_rate};
use mesh11::prelude::*;
use mesh11::trace::EnvLabel;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(13);
    let campaign = CampaignSpec::scaled(seed, 24).generate();
    let dataset = SimConfig::quick().run_campaign(&campaign);
    let index = DatasetIndex::build(&dataset);
    let view = DatasetView::new(&dataset, &index);

    // Hidden-triple fraction per rate at the paper's 10% threshold.
    println!("median hidden-triple fraction per rate (threshold 10%, mean rule):");
    let t = TripleAnalysis::run(view, Phy::Bg, 0.10, HearRule::Mean);
    for &rate in Phy::Bg.probed_rates() {
        if let Some(med) = t.median_fraction(rate, None) {
            println!("  {:>12}: {:5.1}%", rate.to_string(), 100.0 * med);
        }
    }
    println!("  (paper: ~15% at 1 Mbit/s, rising with rate, 11 Mbit/s dipping below 6)");

    // Threshold sweep — the paper reports results are insensitive to t.
    let one = BitRate::bg_mbps(1.0).unwrap();
    println!("\nthreshold sweep at 1 Mbit/s:");
    for thr in [0.05, 0.10, 0.20, 0.30, 0.50] {
        let t = TripleAnalysis::run(view, Phy::Bg, thr, HearRule::Mean);
        if let Some(med) = t.median_fraction(one, None) {
            println!("  t = {thr:4.2}: median {:5.1}%", 100.0 * med);
        }
    }

    // Hearing-rule ablation: how much does the predicate matter?
    println!("\nhearing-rule ablation at 1 Mbit/s, t = 10%:");
    for rule in [HearRule::Mean, HearRule::Min, HearRule::Max] {
        let t = TripleAnalysis::run(view, Phy::Bg, 0.10, rule);
        if let Some(med) = t.median_fraction(one, None) {
            println!("  {rule:?}: median {:5.1}%", 100.0 * med);
        }
    }

    // Environment split (§6.3).
    println!("\nenvironment split at 1 Mbit/s (paper: indoor ~15%, outdoor ~5%):");
    let t = TripleAnalysis::run(view, Phy::Bg, 0.10, HearRule::Mean);
    for env in [EnvLabel::Indoor, EnvLabel::Outdoor] {
        if let Some(med) = t.median_fraction(one, Some(env)) {
            println!("  {:8}: median {:5.1}%", env.name(), 100.0 * med);
        }
    }

    // Range vs rate (Fig 6.2).
    println!("\nrange change vs bit rate (relative to 1 Mbit/s):");
    let ranges = range_by_rate(view, Phy::Bg, 0.10, HearRule::Mean);
    for (rate, vals) in range_change_by_rate(&ranges, Phy::Bg) {
        if let (Some(m), s) = (
            mesh11::stats::mean(&vals),
            mesh11::stats::stddev(&vals).unwrap_or(0.0),
        ) {
            println!("  {:>12}: mean {m:5.2} ± {s:4.2}", rate.to_string());
        }
    }
    println!("  (paper: steady decline, strikingly high variance)");
}
