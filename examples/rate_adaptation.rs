//! Rate adaptation study (§4): compare the SNR-table method against a
//! SampleRate-style probing baseline, and quantify the §4.5 "augmented
//! table" idea — using the table's top-k rates to narrow probing.
//!
//! ```sh
//! cargo run --release --example rate_adaptation [-- <seed>]
//! ```

use mesh11::core::bitrate::strategy::evaluate_strategies;
use mesh11::prelude::*;
use std::collections::HashMap;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(7);
    let campaign = CampaignSpec::scaled(seed, 20).generate();
    let dataset = SimConfig::quick().run_campaign(&campaign);
    let index = DatasetIndex::build(&dataset);
    let view = DatasetView::new(&dataset, &index);
    println!(
        "dataset: {} probe sets over {} networks\n",
        dataset.probes.len(),
        campaign.networks.len()
    );

    for phy in [Phy::Bg, Phy::Ht] {
        let n_rates = phy.probed_rates().len();
        let table = LookupTableSet::build(view, Scope::Link, phy);
        if table.n_keys() == 0 {
            continue;
        }
        println!("== {phy} ({n_rates} probed rates) ==");

        // How many of the top-k table rates contain the true optimum?
        // k = n_rates reduces to "always probe everything" (100%).
        for k in [1, 2, 3] {
            let mut hits = 0usize;
            let mut total = 0usize;
            for p in dataset.probes_for_phy(phy) {
                let top = table.top_k(p, k);
                if top.is_empty() {
                    continue;
                }
                total += 1;
                if top.contains(&p.optimal().rate) {
                    hits += 1;
                }
            }
            if total > 0 {
                println!(
                    "  top-{k} table hit rate: {:5.1}%  (probing {k}/{n_rates} rates)",
                    100.0 * hits as f64 / total as f64
                );
            }
        }

        // SampleRate-style baseline: probe everything, pick the
        // empirically best rate of the *previous* probe set per link —
        // pays full probing cost and still lags the channel.
        let mut prev_best: HashMap<(u32, u32, u32), BitRate> = HashMap::new();
        let mut lag_hits = 0usize;
        let mut lag_total = 0usize;
        for p in dataset.probes_for_phy(phy) {
            let key = (p.network.0, p.sender.0, p.receiver.0);
            let opt = p.optimal().rate;
            if let Some(&prev) = prev_best.get(&key) {
                lag_total += 1;
                lag_hits += usize::from(prev == opt);
            }
            prev_best.insert(key, opt);
        }
        if lag_total > 0 {
            println!(
                "  probe-everything baseline (previous winner): {:5.1}%  (probing {n_rates}/{n_rates} rates)",
                100.0 * lag_hits as f64 / lag_total as f64
            );
        }
        println!();
    }

    // Online maintenance strategies (Fig 4.6 / Table 4.1).
    println!("online table maintenance (802.11b/g):");
    for eval in evaluate_strategies(view, Phy::Bg, &StrategyKind::ALL) {
        println!(
            "  {:12} accuracy {:5.1}%  updates {:>8}  stored {:>8}",
            eval.kind.name(),
            100.0 * eval.overall_accuracy(),
            eval.updates,
            eval.stored_points
        );
    }
    // Why isn't any strategy perfect? Temporal churn of the optimum.
    let s = mesh11::core::bitrate::link_stability(view, Phy::Bg);
    println!(
        "\nstability: the per-link optimum flips on {:.1}% of consecutive reports",
        100.0 * s.median_churn().unwrap_or(0.0)
    );
    println!(
        "  at an unchanged SNR key: {:.1}%  ← the error floor of any SNR table",
        100.0 * s.churn_same_snr
    );
    println!(
        "  when the SNR key moved:  {:.1}%  (a fresh look-up handles these)",
        100.0 * s.churn_diff_snr
    );

    println!("\npaper take-away: a per-link SNR table matches probing accuracy");
    println!("while probing 1-3 rates instead of all of them — the win grows");
    println!("with 802.11n's rate-set size.");
}
