//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset the workspace uses: [`BytesMut`] as an append
//! buffer with little-endian `put_*` writers, [`Bytes`] as a cheaply
//! advancing read view with `get_*` readers, and the [`Buf`]/[`BufMut`]
//! traits those methods live on. Unlike upstream there is no refcounted
//! sharing — `slice`/`copy_to_bytes` copy — which is fine for the codec
//! and bench workloads here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Deref, DerefMut};

/// Read side: a cursor over contiguous bytes.
///
/// Like upstream, the fixed-size `get_*` readers panic when fewer than the
/// needed bytes remain; callers bounds-check with [`Buf::remaining`] first.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Skips `cnt` bytes. Panics if `cnt > remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        u16::from_le_bytes(self.take_array())
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take_array())
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take_array())
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.take_array())
    }

    /// Copies the next `len` bytes out into an owned [`Bytes`].
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let out = Bytes::copy_from_slice(&self.chunk()[..len]);
        self.advance(len);
        out
    }

    #[doc(hidden)]
    fn take_array<const N: usize>(&mut self) -> [u8; N] {
        let mut arr = [0u8; N];
        arr.copy_from_slice(&self.chunk()[..N]);
        self.advance(N);
        arr
    }
}

/// Write side: an append-only byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// Immutable byte buffer with an advancing read cursor.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
            pos: 0,
        }
    }

    /// Unread length.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// True when nothing is left to read.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies the given subrange of the unread bytes into a new buffer.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        Bytes::copy_from_slice(&self.as_slice()[range])
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes::copy_from_slice(data)
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of Bytes");
        self.pos += cnt;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of slice");
        *self = &self[cnt..];
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Growable byte buffer for encoding.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`] view.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    /// Empties the buffer, keeping its allocation.
    pub fn clear(&mut self) {
        self.data.clear();
    }
}

impl From<&[u8]> for BytesMut {
    fn from(data: &[u8]) -> Self {
        BytesMut {
            data: data.to_vec(),
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_round_trips() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_u16_le(7);
        b.put_u8(3);
        b.put_u64_le(u64::MAX - 1);
        b.put_f64_le(-0.25);
        b.put_slice(b"hey");
        let mut r = b.freeze();
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u16_le(), 7);
        assert_eq!(r.get_u8(), 3);
        assert_eq!(r.get_u64_le(), u64::MAX - 1);
        assert_eq!(r.get_f64_le(), -0.25);
        assert_eq!(r.copy_to_bytes(3).as_ref(), b"hey");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn slice_is_relative_to_cursor() {
        let mut b = Bytes::from(vec![0, 1, 2, 3, 4]);
        b.advance(2);
        assert_eq!(b.slice(1..3).as_ref(), &[3, 4]);
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..], &[2, 3, 4]);
    }

    #[test]
    fn bytes_mut_indexes_like_a_slice() {
        let mut raw = BytesMut::from(&b"abc"[..]);
        raw[1] = b'x';
        assert_eq!(&raw[..], b"axc");
        assert_eq!(raw.len(), 3);
    }

    #[test]
    #[should_panic]
    fn advance_past_end_panics() {
        Bytes::from(vec![1u8]).advance(2);
    }
}
