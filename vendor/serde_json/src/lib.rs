//! Offline stand-in for `serde_json`.
//!
//! Renders and parses the vendored `serde` [`Value`] tree. Floats are
//! written with Rust's shortest-round-trip formatter and parsed with std's
//! correctly rounded `f64` parser, so JSON round-trips are bit-exact (the
//! `float_roundtrip` guarantee the workspace relies on). Non-finite floats
//! serialize as `null`, matching upstream serde_json.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize, Value};
use std::fmt;
use std::io;

/// A serialization or parse error.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.0)
    }
}

impl From<io::Error> for Error {
    fn from(e: io::Error) -> Self {
        Error(e.to_string())
    }
}

/// Specialized `Result`.
pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------- writing

/// Serializes to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes to a pretty-printed JSON string (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0);
    Ok(out)
}

/// Serializes to a compact JSON byte vector.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Serializes compact JSON into a writer.
pub fn to_writer<W: io::Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<()> {
    writer.write_all(to_string(value)?.as_bytes())?;
    Ok(())
}

/// Serializes pretty JSON into a writer.
pub fn to_writer_pretty<W: io::Write, T: Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<()> {
    writer.write_all(to_string_pretty(value)?.as_bytes())?;
    Ok(())
}

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => write_f64(out, *x),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(pad) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(pad);
        }
    }
}

/// Writes an `f64` so it parses back bit-exactly and is always typed as a
/// float: Rust's `Display` is shortest-round-trip but renders `1.0` as `1`,
/// so integral values get an explicit `.0` (upstream serde_json does the
/// same via ryu).
fn write_f64(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null");
        return;
    }
    let s = x.to_string();
    let needs_point = !s.contains(['.', 'e', 'E']);
    out.push_str(&s);
    if needs_point {
        out.push_str(".0");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- reading

/// Deserializes from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse_value(s)?;
    T::from_value(&value).map_err(Error::from)
}

/// Deserializes from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error(format!("invalid utf-8: {e}")))?;
    from_str(s)
}

/// Deserializes from a reader (reads to end first; JSON is not streamed).
pub fn from_reader<R: io::Read, T: Deserialize>(mut reader: R) -> Result<T> {
    let mut buf = String::new();
    reader.read_to_string(&mut buf)?;
    from_str(&buf)
}

/// Parses a complete JSON document into a [`Value`].
pub fn parse_value(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

/// Nesting depth cap: malformed deeply nested input must error, not blow
/// the stack.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{text}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid unicode escape"))?);
                            // hex4 leaves pos after the digits; skip the
                            // outer increment below.
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is validated str).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("unexpected end"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Reads exactly four hex digits and returns their value.
    fn hex4(&mut self) -> Result<u32> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated unicode escape"));
        }
        let digits = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid unicode escape"))?;
        let v = u32::from_str_radix(digits, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            return text
                .parse::<f64>()
                .map(Value::F64)
                .map_err(|_| self.err("invalid number"));
        }
        if let Ok(n) = text.parse::<u64>() {
            return Ok(Value::U64(n));
        }
        if let Ok(n) = text.parse::<i64>() {
            return Ok(Value::I64(n));
        }
        // Integer overflowing 64 bits: fall back to f64 like serde_json's
        // arbitrary-precision-off mode.
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(to_string(&1u32).unwrap(), "1");
        assert_eq!(to_string(&-5i64).unwrap(), "-5");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string("a\"b\\c\n").unwrap(), r#""a\"b\\c\n""#);
    }

    #[test]
    fn f64_round_trips_bit_exactly() {
        for &x in &[
            0.1,
            1.0 / 3.0,
            -2.5e-300,
            1.7976931348623157e308,
            5e-324,
            0.0,
            -0.0,
            86_400.0,
            std::f64::consts::PI,
        ] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(x.to_bits(), back.to_bits(), "{x} → {s} → {back}");
        }
    }

    #[test]
    fn containers_round_trip() {
        let xs = vec![(1.0f64, 2.0f64), (0.1, -0.25)];
        let s = to_string(&xs).unwrap();
        let back: Vec<(f64, f64)> = from_str(&s).unwrap();
        assert_eq!(xs, back);
    }

    #[test]
    fn parses_whitespace_and_nesting() {
        let v: Vec<Vec<u32>> = from_str(" [ [1, 2] , [ ] , [3] ] ").unwrap();
        assert_eq!(v, vec![vec![1, 2], vec![], vec![3]]);
    }

    #[test]
    fn string_escapes_parse() {
        let s: String = from_str(r#""aA\n\té😀""#).unwrap();
        assert_eq!(s, "aA\n\té😀");
    }

    #[test]
    fn pretty_has_stable_shape() {
        let xs = vec![1u32, 2];
        assert_eq!(to_string_pretty(&xs).unwrap(), "[\n  1,\n  2\n]");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u32>("1 2").is_err());
        assert!(from_str::<u32>("").is_err());
        assert!(from_str::<Vec<u32>>("[1,").is_err());
        assert!(from_str::<String>("\"abc").is_err());
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(from_str::<Vec<u32>>(&deep).is_err());
    }
}
