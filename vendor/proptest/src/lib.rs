//! Offline stand-in for `proptest`.
//!
//! Supports the subset the workspace uses: the `proptest!` macro (block
//! form with optional `#![proptest_config(..)]`, and closure form),
//! `prop_assert!` / `prop_assert_eq!`, range strategies over the numeric
//! primitives, tuple strategies, `proptest::collection::vec`, and
//! `proptest::bool::ANY`.
//!
//! Cases are generated from a deterministic per-case RNG, so failures
//! reproduce exactly on re-run. There is no shrinking: a failing case
//! panics with the generated inputs printed, which is enough to paste
//! into a regular unit test while debugging.

#![forbid(unsafe_code)]

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use std::ops::Range;

/// Everything tests normally import: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy, TestCaseError,
    };
}

/// A failed `prop_assert!` — carried back to the harness as an `Err` so
/// the macro can report which generated inputs triggered it.
#[derive(Debug)]
pub struct TestCaseError(pub String);

/// Per-test configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; these tests run real simulations, so
        // keep the default moderate and let hot spots raise it.
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic RNG handed to strategies, seeded per (test, case).
pub struct TestRng(SmallRng);

impl TestRng {
    /// RNG for one case of one test. `name_hash` keeps different tests on
    /// different streams even at the same case index.
    pub fn for_case(name_hash: u64, case: u32) -> Self {
        TestRng(SmallRng::seed_from_u64(
            name_hash ^ (u64::from(case)).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ))
    }
}

/// FNV-1a over the test name, used to derive per-test RNG streams.
pub fn hash_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A value generator. The `proptest!` macro calls [`Strategy::generate`]
/// once per argument per case.
pub trait Strategy {
    /// Generated value type.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.random_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.random_range(self.clone())
            }
        }
    )+};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (A / 0, B / 1),
    (A / 0, B / 1, C / 2),
    (A / 0, B / 1, C / 2, D / 3),
    (A / 0, B / 1, C / 2, D / 3, E / 4)
);

/// Boolean strategies: `proptest::bool::ANY`.
pub mod bool {
    use super::{Strategy, TestRng};
    use rand::RngExt;

    /// Strategy yielding `true`/`false` with equal probability.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// The usual spelling: `proptest::bool::ANY`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.0.random_bool(0.5)
        }
    }
}

/// Collection strategies: `proptest::collection::vec`.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::RngExt;
    use std::ops::Range;

    /// Strategy for a `Vec` whose length is drawn from `size` and whose
    /// elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `vec(strategy, len_range)` as in upstream proptest.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.0.random_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Asserts a condition inside a `proptest!` body; on failure the harness
/// reports the generated inputs for the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError(::std::format!(
                "assertion failed: {}",
                ::core::stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError(::std::format!(
                "assertion failed: {}: {}",
                ::core::stringify!($cond),
                ::std::format!($($fmt)+)
            )));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "left = {:?}, right = {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "left = {:?}, right = {:?}: {}",
            l,
            r,
            ::std::format!($($fmt)+)
        );
    }};
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    (
        $config:expr, $name:expr,
        ($($pat:pat in $strat:expr),+ $(,)?)
        $body:block
    ) => {{
        let config: $crate::ProptestConfig = $config;
        let name_hash = $crate::hash_name($name);
        for case in 0..config.cases {
            let mut rng = $crate::TestRng::for_case(name_hash, case);
            // Generate into a tuple first so failing inputs can be shown.
            let values = ($($crate::Strategy::generate(&($strat), &mut rng),)+);
            let repr = ::std::format!("{:?}", values);
            let ($($pat,)+) = values;
            let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                (|| { $body ::core::result::Result::Ok(()) })();
            if let ::core::result::Result::Err(e) = outcome {
                ::core::panic!(
                    "proptest case {}/{} failed: {}\n  inputs: {}",
                    case + 1, config.cases, e.0, repr
                );
            }
        }
    }};
}

/// The `proptest!` harness macro (block and closure forms).
#[macro_export]
macro_rules! proptest {
    // Closure form, run inline: proptest!(|(a in 0..10, b in 0..10)| { .. });
    (|($($pat:pat in $strat:expr),+ $(,)?)| $body:block) => {
        $crate::__proptest_case!(
            ::core::default::Default::default(),
            ::core::concat!(::core::module_path!(), "::closure"),
            ($($pat in $strat),+) $body
        );
    };
    // Block form with a config override.
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($args:tt)*) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::__proptest_case!(
                    $config, ::core::stringify!($name), ($($args)*) $body
                );
            }
        )*
    };
    // Block form with default config.
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($args:tt)*) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::__proptest_case!(
                    ::core::default::Default::default(),
                    ::core::stringify!($name), ($($args)*) $body
                );
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn ranges_respect_bounds(x in 3u64..10, y in -2.5f64..2.5, n in 1usize..4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.5..2.5).contains(&y), "y = {}", y);
            prop_assert!((1..4).contains(&n));
        }

        #[test]
        fn vec_and_tuple_strategies_compose(
            pairs in crate::collection::vec((0i64..50, -1e3f64..1e3), 0..30),
            mut xs in crate::collection::vec(0u32..5, 1..10),
        ) {
            prop_assert!(pairs.len() < 30);
            for (a, b) in &pairs {
                prop_assert!((0..50).contains(a));
                prop_assert!((-1e3..1e3).contains(b));
            }
            xs.sort_unstable();
            prop_assert!(xs.windows(2).all(|w| w[0] <= w[1]));
        }

        #[test]
        fn bool_any_generates_both(flips in crate::collection::vec(crate::bool::ANY, 64..65)) {
            // 64 fair flips all equal has probability 2^-63.
            prop_assert!(flips.iter().any(|&b| b) && flips.iter().any(|&b| !b));
        }
    }

    #[test]
    fn closure_form_runs() {
        proptest!(|(a in 0usize..100, b in 0usize..100)| {
            prop_assert!(a + b < 200);
        });
    }

    #[test]
    fn cases_are_deterministic() {
        let mut first = Vec::new();
        let mut second = Vec::new();
        for out in [&mut first, &mut second] {
            for case in 0..5 {
                let mut rng = crate::TestRng::for_case(crate::hash_name("t"), case);
                out.push(crate::Strategy::generate(&(0u64..1_000_000), &mut rng));
            }
        }
        assert_eq!(first, second);
    }

    #[test]
    #[should_panic(expected = "inputs:")]
    fn failures_report_inputs() {
        proptest!(|(x in 0u32..10)| {
            prop_assert!(x > 100, "x was {}", x);
        });
    }
}
