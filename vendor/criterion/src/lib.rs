//! Offline stand-in for `criterion`.
//!
//! Implements the harness subset the workspace benches use: `Criterion`,
//! benchmark groups with `sample_size`/`throughput`, `Bencher::iter`, and
//! the `criterion_group!`/`criterion_main!` macros (both the flat and the
//! `name/config/targets` forms). Measurement is simple adaptive-iteration
//! wall-clock timing with a median-of-samples report — no statistics
//! engine, no HTML reports, but stable enough to compare runs by eye.
//!
//! CLI: a positional argument filters benchmarks by substring (like
//! upstream); `--quick` shrinks the per-sample time budget; all other
//! flags cargo or CI pass (`--bench`, etc.) are ignored.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Work-per-iteration label so reports can show rates.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// Top-level harness state.
pub struct Criterion {
    sample_size: usize,
    /// Per-sample time budget; `--quick` shrinks it.
    sample_time: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let quick = args.iter().any(|a| a == "--quick");
        let filter = args.iter().find(|a| !a.starts_with('-')).cloned();
        Criterion {
            sample_size: 10,
            sample_time: if quick {
                Duration::from_millis(20)
            } else {
                Duration::from_millis(100)
            },
            filter,
        }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let (size, time, skip) = (self.sample_size, self.sample_time, self.skips(id));
        if !skip {
            run_bench(id, None, size, time, f);
        }
        self
    }

    /// Starts a named group; benchmarks inside report as `group/name`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
            throughput: None,
        }
    }

    fn skips(&self, id: &str) -> bool {
        self.filter.as_deref().is_some_and(|f| !id.contains(f))
    }
}

/// A group of related benchmarks sharing sample size and throughput.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Declares the work per iteration so the report can show a rate.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        if !self.criterion.skips(&full) {
            run_bench(
                &full,
                self.throughput,
                self.sample_size.unwrap_or(self.criterion.sample_size),
                self.criterion.sample_time,
                f,
            );
        }
        self
    }

    /// Ends the group (upstream finalizes reports here; no-op for us).
    pub fn finish(self) {}
}

/// Timing handle passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` runs of `f`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F>(
    id: &str,
    throughput: Option<Throughput>,
    samples: usize,
    budget: Duration,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    // Calibrate: one iteration tells us roughly how many fit in a sample.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let iters_per_sample = (budget.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000_000) as u64;

    let mut per_iter_ns: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter_ns.push(b.elapsed.as_nanos() as f64 / iters_per_sample as f64);
    }
    per_iter_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median = per_iter_ns[per_iter_ns.len() / 2];
    let lo = per_iter_ns[0];
    let hi = per_iter_ns[per_iter_ns.len() - 1];

    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!("  thrpt: {}/s", human_rate(n as f64 / (median * 1e-9))),
        Throughput::Bytes(n) => format!("  thrpt: {}B/s", human_rate(n as f64 / (median * 1e-9))),
    });
    println!(
        "{id:<40} time: [{} {} {}]{}",
        human_time(lo),
        human_time(median),
        human_time(hi),
        rate.unwrap_or_default()
    );
}

fn human_time(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

fn human_rate(per_s: f64) -> String {
    if per_s < 1e3 {
        format!("{per_s:.1} ")
    } else if per_s < 1e6 {
        format!("{:.1} K", per_s / 1e3)
    } else if per_s < 1e9 {
        format!("{:.1} M", per_s / 1e6)
    } else {
        format!("{:.1} G", per_s / 1e9)
    }
}

/// Declares a group runner function, flat or `name/config/targets` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = ::core::default::Default::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion {
            sample_size: 3,
            sample_time: Duration::from_micros(200),
            filter: None,
        };
        let mut calls = 0u64;
        c.bench_function("smoke", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }

    #[test]
    fn groups_apply_filter_and_throughput() {
        let mut c = Criterion {
            sample_size: 2,
            sample_time: Duration::from_micros(100),
            filter: Some("keep".into()),
        };
        let mut kept = false;
        let mut skipped = false;
        let mut g = c.benchmark_group("g");
        g.sample_size(2).throughput(Throughput::Elements(4));
        g.bench_function("keep-me", |b| b.iter(|| kept = true));
        g.bench_function("drop-me", |b| b.iter(|| skipped = true));
        g.finish();
        assert!(kept && !skipped);
    }

    #[test]
    fn human_units_scale() {
        assert!(human_time(12.0).ends_with("ns"));
        assert!(human_time(12_000.0).ends_with("µs"));
        assert!(human_time(12_000_000.0).ends_with("ms"));
        assert!(human_rate(5e6).ends_with('M'));
    }
}
