//! Offline stand-in for `serde_derive`.
//!
//! `syn`/`quote` are unavailable without a crates.io mirror, so these
//! derives parse the item declaration directly from the `proc_macro` token
//! stream. That is tractable because the workspace's derived types are
//! plain: non-generic structs and enums with no `#[serde(...)]` attributes.
//!
//! Supported shapes (matching serde_json's externally tagged conventions):
//! named structs, newtype structs, tuple structs, unit structs, and enums
//! whose variants are unit, newtype, tuple, or struct variants.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed item declaration.
enum Item {
    Struct {
        name: String,
        shape: Shape,
    },
    Enum {
        name: String,
        variants: Vec<(String, Shape)>,
    },
}

/// The field layout of a struct or enum variant.
enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Derives `serde::Serialize` (the vendored trait).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let src = match &item {
        Item::Struct { name, shape } => serialize_struct(name, shape),
        Item::Enum { name, variants } => serialize_enum(name, variants),
    };
    src.parse().expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize` (the vendored trait).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let src = match &item {
        Item::Struct { name, shape } => deserialize_struct(name, shape),
        Item::Enum { name, variants } => deserialize_enum(name, variants),
    };
    src.parse().expect("generated Deserialize impl parses")
}

// ------------------------------------------------------------------ parsing

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attributes_and_vis(&tokens, &mut i);

    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected item name, found {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("derive(Serialize/Deserialize): generic type `{name}` is not supported");
    }

    match kind.as_str() {
        "struct" => {
            let shape = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Shape::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Shape::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
                other => panic!("unsupported struct body for `{name}`: {other:?}"),
            };
            Item::Struct { name, shape }
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("expected enum body for `{name}`, found {other:?}"),
            };
            Item::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        other => panic!("expected `struct` or `enum`, found `{other}`"),
    }
}

/// Advances past any `#[...]` attributes (including doc comments) and a
/// `pub` / `pub(...)` visibility qualifier.
fn skip_attributes_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // '#' and the bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // pub(crate) etc.
                }
            }
            _ => return,
        }
    }
}

/// Extracts the field names of a `{ name: Type, ... }` body, in order.
///
/// Types are skipped by consuming tokens to the next comma at angle-bracket
/// depth zero — `(`/`[`/`{` nesting is already opaque as `Group` tokens, so
/// only `<`/`>` need explicit counting (turbofish and `->` never appear in
/// field types at depth 0 in this workspace's plain data types).
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break; // trailing comma
        };
        fields.push(id.to_string());
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!(
                "expected `:` after field `{}`, found {other:?}",
                fields.last().expect("just pushed")
            ),
        }
        skip_type_to_comma(&tokens, &mut i);
    }
    fields
}

/// Counts the fields of a `( Type, ... )` body.
fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut n = 0;
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break; // trailing comma
        }
        n += 1;
        skip_type_to_comma(&tokens, &mut i);
    }
    n
}

/// Consumes type tokens up to (and past) the next comma at angle depth 0.
fn skip_type_to_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut depth = 0i32;
    while let Some(tok) = tokens.get(*i) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

/// Parses enum variants: `Name`, `Name(T, ...)`, `Name { f: T, ... }`,
/// optionally with a discriminant, separated by commas.
fn parse_variants(body: TokenStream) -> Vec<(String, Shape)> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break; // trailing comma
        };
        let name = id.to_string();
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Shape::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Shape::Unit,
        };
        // Skip an optional `= discriminant` and the separating comma.
        while let Some(tok) = tokens.get(i) {
            i += 1;
            if matches!(tok, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
        variants.push((name, shape));
    }
    variants
}

// --------------------------------------------------------------- generation

fn serialize_struct(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::Unit => "::serde::Value::Null".to_string(),
        Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
        }
        Shape::Named(fields) => object_expr(fields, |f| format!("&self.{f}")),
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

/// `Value::Object(vec![("f", to_value(<access>)), ...])` for named fields.
fn object_expr(fields: &[String], access: impl Fn(&str) -> String) -> String {
    let items: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value({}))",
                access(f)
            )
        })
        .collect();
    format!("::serde::Value::Object(::std::vec![{}])", items.join(", "))
}

fn serialize_enum(name: &str, variants: &[(String, Shape)]) -> String {
    let arms: Vec<String> = variants
        .iter()
        .map(|(v, shape)| match shape {
            Shape::Unit => format!(
                "{name}::{v} => ::serde::Value::Str(::std::string::String::from(\"{v}\")),"
            ),
            Shape::Tuple(n) => {
                let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                let payload = if *n == 1 {
                    "::serde::Serialize::to_value(x0)".to_string()
                } else {
                    let items: Vec<String> = binds
                        .iter()
                        .map(|b| format!("::serde::Serialize::to_value({b})"))
                        .collect();
                    format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
                };
                format!(
                    "{name}::{v}({}) => ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{v}\"), {payload})]),",
                    binds.join(", ")
                )
            }
            Shape::Named(fields) => {
                let payload = object_expr(fields, |f| f.to_string());
                format!(
                    "{name}::{v} {{ {} }} => ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{v}\"), {payload})]),",
                    fields.join(", ")
                )
            }
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ match self {{ {} }} }}\n\
         }}",
        arms.join("\n")
    )
}

fn deserialize_struct(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::Unit => format!(
            "match v {{ ::serde::Value::Null => ::std::result::Result::Ok({name}), \
               _ => ::std::result::Result::Err(::serde::Error::msg(\"expected null for {name}\")) }}"
        ),
        Shape::Tuple(1) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))"
        ),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "let items = ::serde::__private::as_array(v, {n}, \"{name}\")?;\n\
                 ::std::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
        Shape::Named(fields) => {
            let items: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::__private::field(fields, \"{f}\", \"{name}\")?,"))
                .collect();
            format!(
                "let fields = ::serde::__private::as_object(v, \"{name}\")?;\n\
                 ::std::result::Result::Ok({name} {{ {} }})",
                items.join("\n")
            )
        }
    };
    deserialize_impl(name, &body)
}

fn deserialize_impl(name: &str, body: &str) -> String {
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

fn deserialize_enum(name: &str, variants: &[(String, Shape)]) -> String {
    let arms: Vec<String> = variants
        .iter()
        .map(|(v, shape)| match shape {
            Shape::Unit => format!(
                "\"{v}\" => ::std::result::Result::Ok({name}::{v}),"
            ),
            Shape::Tuple(n) => {
                let payload_bind = format!(
                    "let payload = payload.ok_or_else(|| ::serde::Error::msg(\"variant {name}::{v} needs a payload\"))?;"
                );
                if *n == 1 {
                    format!(
                        "\"{v}\" => {{ {payload_bind} ::std::result::Result::Ok({name}::{v}(::serde::Deserialize::from_value(payload)?)) }},"
                    )
                } else {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                        .collect();
                    format!(
                        "\"{v}\" => {{ {payload_bind} \
                           let items = ::serde::__private::as_array(payload, {n}, \"{name}::{v}\")?; \
                           ::std::result::Result::Ok({name}::{v}({})) }},",
                        items.join(", ")
                    )
                }
            }
            Shape::Named(fields) => {
                let items: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!("{f}: ::serde::__private::field(fields, \"{f}\", \"{name}::{v}\")?,")
                    })
                    .collect();
                format!(
                    "\"{v}\" => {{ \
                       let payload = payload.ok_or_else(|| ::serde::Error::msg(\"variant {name}::{v} needs a payload\"))?; \
                       let fields = ::serde::__private::as_object(payload, \"{name}::{v}\")?; \
                       ::std::result::Result::Ok({name}::{v} {{ {} }}) }},",
                    items.join(" ")
                )
            }
        })
        .collect();
    let body = format!(
        "let (variant, payload) = ::serde::__private::enum_variant(v, \"{name}\")?;\n\
         let _ = &payload;\n\
         match variant {{\n{}\n\
             other => ::std::result::Result::Err(::serde::Error::msg(::std::format!(\n\
                 \"unknown {name} variant '{{other}}'\"))),\n\
         }}",
        arms.join("\n")
    );
    deserialize_impl(name, &body)
}
