//! Offline stand-in for `rayon`.
//!
//! Implements the subset the workspace uses: `slice.par_iter().map(f)
//! .collect::<Vec<_>>()` (order-preserving), [`ThreadPoolBuilder`] /
//! [`ThreadPool::install`] for scoped thread-count overrides, and
//! [`current_num_threads`]. Work is distributed over `std::thread::scope`
//! workers pulling items off a shared atomic index — no work stealing,
//! which is adequate for the coarse-grained tasks (whole networks, AP
//! pairs, figure builders) this repo parallelizes. Nested `par_iter`
//! calls reached from inside a worker run inline: the outer level owns
//! the thread budget, so a second layer of spawned workers would only
//! oversubscribe the machine.
//!
//! Determinism contract: `collect` returns results in input order no
//! matter how items were scheduled, so callers see identical output at
//! any thread count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The usual glob import: `use rayon::prelude::*;`.
pub mod prelude {
    pub use crate::{
        IntoParallelRefIterator, IntoParallelRefMutIterator, Map, ParIter, ParIterMut,
    };
}

thread_local! {
    /// Per-thread pool-size override installed by [`ThreadPool::install`]
    /// and inherited by worker threads, so nested `par_iter` calls stay
    /// inside the installed budget.
    static POOL_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };

    /// Set on worker threads for the duration of their run loop. A
    /// `par_iter` reached from inside a worker runs inline: the outer
    /// level already owns the thread budget, and spawning another layer
    /// of workers per nested call oversubscribes the machine instead of
    /// helping (upstream rayon work-steals across levels; this stand-in
    /// spawns, so one level is the budget).
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Number of threads `par_iter` will use on this thread right now.
///
/// Resolution order: innermost [`ThreadPool::install`] override, then the
/// `RAYON_NUM_THREADS` environment variable, then available parallelism.
pub fn current_num_threads() -> usize {
    if let Some(n) = POOL_OVERRIDE.with(Cell::get) {
        return n;
    }
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Runs `f(i)` for every `i in 0..len` on up to [`current_num_threads`]
/// scoped workers and returns the results in index order.
fn run_indexed<R, F>(len: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = current_num_threads().min(len).max(1);
    if threads <= 1 || len <= 1 || IN_WORKER.with(Cell::get) {
        return (0..len).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..len).map(|_| Mutex::new(None)).collect();
    let budget = current_num_threads();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                POOL_OVERRIDE.with(|c| c.set(Some(budget)));
                IN_WORKER.with(|c| c.set(true));
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= len {
                        break;
                    }
                    let r = f(i);
                    *slots[i].lock().expect("result slot poisoned") = Some(r);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("worker filled every claimed slot")
        })
        .collect()
}

/// Entry point providing `.par_iter()` on slices and `Vec`s.
pub trait IntoParallelRefIterator<'a> {
    /// Borrowed item type.
    type Item: Sync + 'a;
    /// A parallel iterator over borrowed items.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// Parallel iterator over a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Maps each item through `f` (in parallel at collect time).
    pub fn map<R, F>(self, f: F) -> Map<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        Map {
            items: self.items,
            f,
        }
    }
}

/// A mapped parallel iterator; terminal ops run the map.
pub struct Map<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T, R, F> Map<'a, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    /// Runs the map over the pool and collects results in input order.
    pub fn collect<C>(self) -> C
    where
        C: FromParallelResults<R>,
    {
        let Map { items, f } = self;
        C::from_ordered(run_indexed(items.len(), |i| f(&items[i])))
    }
}

/// Entry point providing `.par_iter_mut()` on slices and `Vec`s.
pub trait IntoParallelRefMutIterator<'a> {
    /// Mutably borrowed item type.
    type Item: Send + 'a;
    /// A parallel iterator over mutably borrowed items.
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, Self::Item>;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = T;
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
        ParIterMut {
            slots: self.iter_mut().map(Mutex::new).collect(),
        }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
        self.as_mut_slice().par_iter_mut()
    }
}

/// Parallel iterator over mutable borrows. Each item is pre-wrapped in its
/// own mutex so safe code can hand disjoint `&mut T`s to scoped workers;
/// every slot is claimed by exactly one worker, so the locks never contend.
pub struct ParIterMut<'a, T> {
    slots: Vec<Mutex<&'a mut T>>,
}

impl<T: Send> ParIterMut<'_, T> {
    /// Runs `f` on every item in parallel (unspecified order).
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut T) + Sync,
    {
        let slots = self.slots;
        run_indexed(slots.len(), |i| {
            let mut guard = slots[i].lock().expect("item slot poisoned");
            f(&mut guard);
        });
    }
}

/// Collection types `Map::collect` can produce.
pub trait FromParallelResults<R> {
    /// Builds the collection from results already in input order.
    fn from_ordered(results: Vec<R>) -> Self;
}

impl<R> FromParallelResults<R> for Vec<R> {
    fn from_ordered(results: Vec<R>) -> Self {
        results
    }
}

/// Builder for a fixed-size [`ThreadPool`].
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Fresh builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Caps the pool at `n` threads; `0` means "use the default".
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = if n == 0 { None } else { Some(n) };
        self
    }

    /// Builds the pool. Never fails in this stand-in; the `Result` mirrors
    /// upstream's signature.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = self.num_threads.unwrap_or_else(|| {
            POOL_OVERRIDE
                .with(Cell::get)
                .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, usize::from))
        });
        Ok(ThreadPool { threads })
    }
}

/// Error type for [`ThreadPoolBuilder::build`] (never produced here).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A scoped thread-count budget rather than a real resident pool: workers
/// are spawned per `par_iter` call, but `install` bounds how many.
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Runs `op` with this pool's thread count governing every `par_iter`
    /// reached from inside it (including nested ones).
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let prev = POOL_OVERRIDE.with(|c| c.replace(Some(self.threads)));
        let out = op();
        POOL_OVERRIDE.with(|c| c.set(prev));
        out
    }

    /// The pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let xs: Vec<u64> = (0..1000).collect();
        let ys: Vec<u64> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(ys, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_inputs_work() {
        let none: Vec<u32> = Vec::new();
        let out: Vec<u32> = none.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let one: Vec<u32> = vec![7u32].par_iter().map(|&x| x + 1).collect();
        assert_eq!(one, vec![8]);
    }

    #[test]
    fn for_each_mut_touches_every_item_once() {
        let mut xs: Vec<u64> = (0..500).collect();
        xs.par_iter_mut().for_each(|x| *x += 1);
        assert_eq!(xs, (1..=500).collect::<Vec<u64>>());
        let mut none: Vec<u64> = Vec::new();
        none.par_iter_mut().for_each(|x| *x += 1);
        assert!(none.is_empty());
    }

    #[test]
    fn install_overrides_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let (inside, nested) = pool.install(|| {
            let nested: Vec<usize> = vec![(), ()]
                .par_iter()
                .map(|()| current_num_threads())
                .collect();
            (current_num_threads(), nested)
        });
        assert_eq!(inside, 3);
        assert!(nested.iter().all(|&n| n == 3), "workers inherit budget");
        assert_eq!(POOL_OVERRIDE.with(Cell::get), None, "override restored");
    }

    #[test]
    fn nested_par_iter_runs_inline_on_workers() {
        // A par_iter reached from inside a worker must not spawn another
        // layer: every nested item runs on the worker's own thread.
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let inline_per_outer: Vec<bool> = pool.install(|| {
            vec![(); 4]
                .par_iter()
                .map(|()| {
                    let me = std::thread::current().id();
                    vec![(); 8]
                        .par_iter()
                        .map(|()| std::thread::current().id())
                        .collect::<Vec<_>>()
                        .iter()
                        .all(|&id| id == me)
                })
                .collect()
        });
        assert!(inline_per_outer.iter().all(|&b| b));
    }

    #[test]
    fn single_thread_pool_matches_many_thread_pool() {
        let work: Vec<u64> = (0..200).collect();
        let run = |n: usize| {
            ThreadPoolBuilder::new()
                .num_threads(n)
                .build()
                .unwrap()
                .install(|| {
                    work.par_iter()
                        .map(|&x| x.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                        .collect::<Vec<u64>>()
                })
        };
        assert_eq!(run(1), run(8));
    }
}
