//! Offline stand-in for `serde`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the subset of serde it uses: `#[derive(Serialize, Deserialize)]`
//! on plain structs and enums (no `#[serde(...)]` attributes), serialized
//! through the in-memory [`Value`] tree that the sibling `serde_json`
//! vendor crate renders and parses.
//!
//! The data model follows serde_json's conventions exactly where the
//! workspace depends on them:
//!
//! * named structs ↔ JSON objects with fields in declaration order;
//! * newtype structs ↔ the inner value;
//! * tuple structs ↔ arrays;
//! * unit enum variants ↔ `"VariantName"`;
//! * data-carrying variants ↔ externally tagged `{"VariantName": …}`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// The serialization tree: everything a JSON document can hold.
///
/// Objects preserve insertion order (a `Vec`, not a map) so that output is
/// byte-stable and matches field declaration order, like serde_json's
/// default struct serialization.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// A negative integer (positives use [`Value::U64`]).
    I64(i64),
    /// A non-negative integer.
    U64(u64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object: ordered key→value pairs.
    Object(Vec<(String, Value)>),
}

/// A (de)serialization error: a plain message, like serde's `de::Error`.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl Error {
    /// Builds an error from any displayable message.
    pub fn msg(m: impl fmt::Display) -> Self {
        Error(m.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// A type that can render itself into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` to a [`Value`].
    fn to_value(&self) -> Value;
}

/// A type that can rebuild itself from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parses `self` out of a [`Value`].
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------- integers

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match *v {
                    Value::U64(n) => n,
                    Value::I64(n) if n >= 0 => n as u64,
                    _ => return Err(Error::msg(concat!("expected ", stringify!($t)))),
                };
                <$t>::try_from(n).map_err(Error::msg)
            }
        }
    )*};
}
ser_unsigned!(u8, u16, u32, u64, usize);

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n: i64 = match *v {
                    Value::I64(n) => n,
                    Value::U64(n) => i64::try_from(n).map_err(Error::msg)?,
                    _ => return Err(Error::msg(concat!("expected ", stringify!($t)))),
                };
                <$t>::try_from(n).map_err(Error::msg)
            }
        }
    )*};
}
ser_signed!(i8, i16, i32, i64, isize);

// ------------------------------------------------------------------ floats

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::F64(x) => Ok(x),
            Value::U64(n) => Ok(n as f64),
            Value::I64(n) => Ok(n as f64),
            // serde_json writes non-finite floats as `null`; accept the
            // round trip back.
            Value::Null => Ok(f64::NAN),
            _ => Err(Error::msg("expected f64")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

// ----------------------------------------------------------- other scalars

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::msg("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::msg("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("one char")),
            _ => Err(Error::msg("expected single-char string")),
        }
    }
}

// -------------------------------------------------------------- containers

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::msg("expected array")),
        }
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+)),+ $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) if items.len() == [$($n),+].len() => {
                        Ok(($($t::from_value(&items[$n])?,)+))
                    }
                    _ => Err(Error::msg("expected tuple array")),
                }
            }
        }
    )+};
}
ser_tuple!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E)
);

/// Renders a map key: strings pass through, scalars use their JSON text —
/// the same keys serde_json produces for integer-keyed maps.
fn key_string<K: Serialize>(key: &K) -> String {
    match key.to_value() {
        Value::Str(s) => s,
        Value::U64(n) => n.to_string(),
        Value::I64(n) => n.to_string(),
        Value::F64(x) => x.to_string(),
        Value::Bool(b) => b.to_string(),
        other => panic!("map key must serialize to a scalar, got {other:?}"),
    }
}

/// Parses a map key back: try the string form first, then numeric forms.
fn key_parse<K: Deserialize>(key: &str) -> Result<K, Error> {
    if let Ok(k) = K::from_value(&Value::Str(key.to_string())) {
        return Ok(k);
    }
    if let Ok(n) = key.parse::<u64>() {
        if let Ok(k) = K::from_value(&Value::U64(n)) {
            return Ok(k);
        }
    }
    if let Ok(n) = key.parse::<i64>() {
        if let Ok(k) = K::from_value(&Value::I64(n)) {
            return Ok(k);
        }
    }
    if let Ok(x) = key.parse::<f64>() {
        if let Ok(k) = K::from_value(&Value::F64(x)) {
            return Ok(k);
        }
    }
    Err(Error::msg(format!("unparseable map key '{key}'")))
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_string(k), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((key_parse(k)?, V::from_value(v)?)))
                .collect(),
            _ => Err(Error::msg("expected object")),
        }
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Hash iteration order is unstable; sort keys for deterministic
        // output (serde_json leaves this to the map, we pin it down).
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_string(k), v.to_value()))
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(pairs)
    }
}

/// Helpers the derive macros expand to. Not part of the public API.
pub mod __private {
    use super::{Deserialize, Error, Value};

    /// Unwraps an object, naming the target type in the error.
    pub fn as_object<'v>(v: &'v Value, ty: &str) -> Result<&'v [(String, Value)], Error> {
        match v {
            Value::Object(fields) => Ok(fields),
            _ => Err(Error::msg(format!("expected object for {ty}"))),
        }
    }

    /// Unwraps an array of exactly `n` elements.
    pub fn as_array<'v>(v: &'v Value, n: usize, ty: &str) -> Result<&'v [Value], Error> {
        match v {
            Value::Array(items) if items.len() == n => Ok(items),
            Value::Array(items) => Err(Error::msg(format!(
                "expected {n} elements for {ty}, got {}",
                items.len()
            ))),
            _ => Err(Error::msg(format!("expected array for {ty}"))),
        }
    }

    /// Extracts and deserializes one named field.
    pub fn field<T: Deserialize>(
        fields: &[(String, Value)],
        key: &str,
        ty: &str,
    ) -> Result<T, Error> {
        let v = fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| Error::msg(format!("missing field `{key}` in {ty}")))?;
        T::from_value(v).map_err(|e| Error::msg(format!("{ty}.{key}: {e}")))
    }

    /// Splits an externally tagged enum value into (variant name, payload).
    /// Unit variants arrive as a bare string with no payload.
    pub fn enum_variant<'v>(v: &'v Value, ty: &str) -> Result<(&'v str, Option<&'v Value>), Error> {
        match v {
            Value::Str(name) => Ok((name, None)),
            Value::Object(fields) if fields.len() == 1 => {
                Ok((fields[0].0.as_str(), Some(&fields[0].1)))
            }
            _ => Err(Error::msg(format!(
                "expected variant string or single-key object for {ty}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        let s = String::from("hi");
        assert_eq!(String::from_value(&s.to_value()).unwrap(), "hi");
    }

    #[test]
    fn integer_widening_and_bounds() {
        assert_eq!(u8::from_value(&Value::U64(255)).unwrap(), 255);
        assert!(u8::from_value(&Value::U64(256)).is_err());
        assert!(u32::from_value(&Value::I64(-1)).is_err());
        assert_eq!(f64::from_value(&Value::U64(3)).unwrap(), 3.0);
    }

    #[test]
    fn containers_round_trip() {
        let xs = vec![1.0f64, 2.5, -3.0];
        assert_eq!(Vec::<f64>::from_value(&xs.to_value()).unwrap(), xs);
        let pair = (1u32, 2.5f64);
        assert_eq!(<(u32, f64)>::from_value(&pair.to_value()).unwrap(), pair);
        let opt: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&opt.to_value()).unwrap(), None);
        let mut map = std::collections::BTreeMap::new();
        map.insert(3u32, vec![1.0f64]);
        assert_eq!(
            std::collections::BTreeMap::<u32, Vec<f64>>::from_value(&map.to_value()).unwrap(),
            map
        );
    }

    #[test]
    fn nan_round_trips_via_null() {
        let v = f64::NAN.to_value();
        // The JSON layer renders non-finite as null; model the round trip.
        assert!(f64::from_value(&Value::Null).unwrap().is_nan());
        match v {
            Value::F64(x) => assert!(x.is_nan()),
            other => panic!("unexpected {other:?}"),
        }
    }
}
