//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the minimal generator surface it actually uses:
//!
//! * [`rngs::SmallRng`] — xoshiro256++ (the algorithm behind upstream's
//!   64-bit `SmallRng`), seeded from a `u64` via SplitMix64;
//! * [`Rng`] — the core `next_u32`/`next_u64`/`fill_bytes` trait;
//! * [`RngExt`] — `random`, `random_range`, `random_bool`, blanket-implemented
//!   for every [`Rng`];
//! * [`SeedableRng`] — `from_seed` / `seed_from_u64`.
//!
//! Determinism is the whole point of this crate: every mesh11 simulation
//! stream is keyed by a derived seed, so the generator must be a pure,
//! portable function of that seed. No `OsRng`, no thread-local state.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A random number generator: the two word primitives plus byte fill.
pub trait Rng {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u32(&mut self) -> u32 {
        R::next_u32(self)
    }
    fn next_u64(&mut self) -> u64 {
        R::next_u64(self)
    }
}

/// Types that can be sampled uniformly from a generator ("standard"
/// distribution: `[0, 1)` for floats, full range for integers).
pub trait StandardSample: Sized {
    /// Draws one value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    /// 53 random mantissa bits scaled into `[0, 1)` — the conventional
    /// `(next_u64 >> 11) * 2^-53` construction.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Scalars with a uniform-over-range sampler.
pub trait SampleUniform: PartialOrd + Copy {
    /// Draws uniformly from `[lo, hi)`.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Draws uniformly from `[lo, hi]`.
    fn sample_range_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range in random_range");
                let span = (hi as i128 - lo as i128) as u128;
                lo.wrapping_add(sample_below(rng, span) as $t)
            }
            fn sample_range_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                lo.wrapping_add(sample_below(rng, span) as $t)
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform draw from `[0, span)` by widening multiply with rejection —
/// unbiased for every span that fits in 64 bits (`span == 0` means the full
/// 2^64 range and cannot occur here: callers pass non-empty sub-ranges).
fn sample_below<R: Rng + ?Sized>(rng: &mut R, span: u128) -> u64 {
    debug_assert!(span > 0 && span <= u64::MAX as u128 + 1);
    if span == u64::MAX as u128 + 1 {
        return rng.next_u64();
    }
    let span = span as u64;
    // Lemire's method: take the high word of x*span; reject the biased tail.
    let threshold = span.wrapping_neg() % span;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range in random_range");
                let u = <$t as StandardSample>::sample(rng);
                // May round to `hi` at the very top of the range; clamp to
                // keep the half-open contract.
                let v = lo + (hi - lo) * u;
                if v < hi { v } else { <$t>::from_bits(hi.to_bits() - 1) }
            }
            fn sample_range_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty range in random_range");
                lo + (hi - lo) * <$t as StandardSample>::sample(rng)
            }
        }
    )*};
}
uniform_float!(f32, f64);

/// Range types accepted by [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range_inclusive(rng, *self.start(), *self.end())
    }
}

/// Convenience sampling methods, available on every [`Rng`].
pub trait RngExt: Rng {
    /// Draws a value from the standard distribution of `T` (`[0, 1)` for
    /// floats, uniform over all values for integers).
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from a range: `rng.random_range(0..n)`,
    /// `rng.random_range(-1.0..1.0)`, `rng.random_range(0..=k)`.
    fn random_range<T: SampleUniform, Sr: SampleRange<T>>(&mut self, range: Sr) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.random::<f64>() < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// A generator constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Builds the generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanded via SplitMix64 — the
    /// portable convention shared with upstream `rand`.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 (the standard xoshiro seeding PRNG).
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            let bytes = (z ^ (z >> 31)).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Named generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256++ — small, fast, and statistically strong; the algorithm
    /// upstream `rand` uses for 64-bit `SmallRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state is a fixed point of xoshiro; SplitMix64
            // seeding never produces it, but guard the raw-seed path.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            Self { s }
        }
    }

    impl Rng for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let i = rng.random_range(3..80);
            assert!((3..80).contains(&i));
            let j: i64 = rng.random_range(-50..50);
            assert!((-50..50).contains(&j));
            let k = rng.random_range(0..=5u32);
            assert!(k <= 5);
            let f = rng.random_range(-25.0..25.0);
            assert!((-25.0..25.0).contains(&f));
        }
    }

    #[test]
    fn integer_ranges_hit_all_values() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            seen[rng.random_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all bucket values reachable");
    }

    #[test]
    fn mean_of_unit_draws_is_half() {
        let mut rng = SmallRng::seed_from_u64(13);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.random::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = SmallRng::seed_from_u64(17);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
