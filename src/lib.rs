//! # mesh11 — Measurement and Analysis of Real-World 802.11 Mesh Networks
//!
//! Facade crate re-exporting the full `mesh11` toolkit: a reproduction of
//! LaCurts & Balakrishnan's IMC 2010 measurement study of 110 commercial
//! Meraki mesh networks (1407 APs), built as a synthetic-campaign simulator
//! plus the paper's analysis pipeline.
//!
//! See the workspace `README.md` for the architecture overview and
//! `DESIGN.md` for the per-experiment index.
//!
//! ```no_run
//! use mesh11::prelude::*;
//!
//! // Generate a small seeded campaign, simulate it, and ask the paper's
//! // first question: how well does a per-link SNR table pick bit rates?
//! let campaign = CampaignSpec::small(42).generate();
//! let dataset = SimConfig::quick().run_campaign(&campaign);
//! let index = DatasetIndex::build(&dataset);
//! let view = DatasetView::new(&dataset, &index);
//! let table = LookupTableSet::build(view, Scope::Link, Phy::Bg);
//! println!("per-link accuracy: {:.1}%", 100.0 * table.exact_accuracy(view));
//! ```

#![forbid(unsafe_code)]

pub use mesh11_channel as channel;
pub use mesh11_core as core;
pub use mesh11_phy as phy;
pub use mesh11_sim as sim;
pub use mesh11_stats as stats;
pub use mesh11_topo as topo;
pub use mesh11_trace as trace;

/// One-stop imports for examples and applications.
pub mod prelude {
    pub use mesh11_channel::{ChannelParams, Environment, LinkModel};
    pub use mesh11_core::bitrate::{
        link_stability, simulate_adapters, AdapterKind, LookupTableSet, Scope, StrategyKind,
        ThroughputPenalty,
    };
    pub use mesh11_core::mobility::{ClientSessions, MobilityReport};
    pub use mesh11_core::routing::{EtxVariant, OpportunisticAnalysis};
    pub use mesh11_core::triples::{HearRule, TripleAnalysis};
    pub use mesh11_phy::{BitRate, Phy, RateClass};
    pub use mesh11_sim::{FaultPlan, SimConfig};
    pub use mesh11_stats::{Cdf, Summary};
    pub use mesh11_topo::{CampaignSpec, NetworkSpec};
    pub use mesh11_trace::{Dataset, DatasetIndex, DatasetView, DeliveryMatrix, ProbeSet};
}
