//! Out-of-core probe storage: spill-able columnar chunks plus windowed
//! views, so metro-scale ensembles analyze under bounded memory.
//!
//! A [`ChunkedDataset`] holds network metadata, client samples, and the
//! horizons in memory (they are small), while the probe stream — the part
//! that scales with ensemble size — lives in fixed-capacity structure-of-
//! arrays [`ProbeChunk`]s managed by a [`ChunkStore`]. The store keeps at
//! most a configured number of chunks resident; beyond that, least-recently
//! used chunks are encoded to a compact spill file (the probe-record shape
//! of [`crate::codec`], written in columnar batches) and decoded back on
//! demand. When everything fits in the budget no file is ever created —
//! the in-memory fast path.
//!
//! ## Why windowed views are exact
//!
//! `Dataset::probes` is **network-major**: the campaign runner merges
//! per-network streams in network-id order, and within a network probes are
//! `(time, phy, sender, receiver)`-sorted. Every permutation a
//! [`DatasetIndex`] builds is a *stable* sort of that order on keys that
//! lead with (phy, network…), so for any PHY the global iteration order is
//! the concatenation, in network-id order, of each network's own iteration.
//! A *window* — a run of consecutive networks materialized as a mini
//! dataset with its own index — therefore reproduces the corresponding
//! segment of every global traversal exactly, including float-accumulation
//! order. [`ProbeSource::for_each_view`] walks the windows in order, which
//! is why the chunked analysis path is byte-identical to the in-memory one
//! (pinned by the `chunked_equivalence` integration test).
//!
//! ## Concurrency
//!
//! The store is built for many readers: each chunk sits in its own slot
//! behind a per-slot mutex, so N threads decode N *distinct* chunks
//! simultaneously; two threads racing for the *same* chunk serialize on
//! that slot and the second one gets the first one's decode (a per-chunk
//! decode memo). [`ChunkStore::chunk`] returns a pinned [`ChunkHandle`];
//! eviction only ever considers chunks with no live handles, so a reader
//! can never have its working set pulled out from under it — the store
//! runs transiently over budget instead. The same protocol governs
//! materialized windows: [`ChunkedDataset::window`] memoizes the
//! `Dataset + DatasetIndex` of each window in an LRU cache sized to the
//! effective thread count, so parallel figure builders walking the windows
//! in the same order drain one resident window together instead of each
//! re-decoding it (chunk-major scheduling).
//!
//! Lock order is strictly `window slot → chunk slot → spill file`; LRU
//! victim scans use `try_lock` only, so the hierarchy is deadlock-free.
//! Spill-file *reads* take the file mutex only long enough to clone the
//! file handle, then `pread` outside it — concurrent faults on distinct
//! chunks never serialize on each other's I/O. The background prefetch
//! thread (see [`ChunkConfig::prefetch_depth`]) uses exactly the same
//! `chunk slot → spill file` order as any consumer, so it adds no new
//! edges to the lock hierarchy.

use std::collections::{BTreeMap, BTreeSet};
use std::io;
#[cfg(not(unix))]
use std::io::{Read, Seek, SeekFrom, Write};
use std::ops::Deref;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::time::Instant;

use bytes::{Buf, BufMut};
use mesh11_phy::Phy;

use crate::client::ClientSample;
use crate::codec::{
    fnv1a64, get_f64_col, get_u32_col, get_u8_col, get_varint, phy_from_tag, phy_tag, put_f64_col,
    put_u32_col, put_u8_col, put_varint,
};
use crate::dataset::{Dataset, NetworkMeta};
use crate::ids::{ApId, NetworkId};
use crate::index::{DatasetIndex, DatasetView, IndexStitcher, StitchedIndex};
use crate::matrix::DeliveryMatrix;
use crate::probe::{ProbeSet, RateObs};

/// Which frame encoding evicted chunks spill under.
///
/// Both decode transparently on read-back (frames are self-describing), so
/// a store can in principle hold a mix; the codec choice only steers what
/// *new* spills write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SpillCodec {
    /// Raw little-endian columns — the original frame layout.
    V1,
    /// Per-column compression (delta+varint, bit-packing, loss-value
    /// dictionaries) behind per-column tags, with an FNV-1a 64 frame
    /// checksum. Typically ~0.5–0.6× the v1 byte count on probe data.
    #[default]
    V2,
}

impl SpillCodec {
    /// Parses the `--spill-codec` CLI spelling (`"v1"` / `"v2"`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "v1" => Some(SpillCodec::V1),
            "v2" => Some(SpillCodec::V2),
            _ => None,
        }
    }
}

/// Sizing of a [`ChunkStore`] and its analysis windows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkConfig {
    /// Probes per chunk (the spill/readback granule).
    pub chunk_capacity: usize,
    /// Maximum chunks resident at once — the memory budget. At least 2
    /// (one being filled, one being read).
    pub resident_chunks: usize,
    /// Directory for the spill file; the system temp dir when `None`.
    pub spill_dir: Option<PathBuf>,
    /// Target probes per analysis window (a window always holds at least
    /// one whole network, so a single huge network may exceed it).
    pub window_probes: usize,
    /// Raise `resident_chunks` to `effective threads + 1` at store build
    /// time, so parallel readers stop evicting each other's working set.
    /// Off in [`ChunkConfig::tiny`] so spill-forcing tests keep spilling
    /// at any thread count.
    pub scale_budget_with_threads: bool,
    /// Frame encoding for spilled chunks ([`SpillCodec::V2`] by default).
    pub spill_codec: SpillCodec,
    /// How many windows ahead of the fold the background prefetcher keeps
    /// warm (pinned + decoded). 0 disables the prefetch thread entirely.
    /// Only bites when the chunk sequence outgrows the resident budget —
    /// a fully resident store has nothing to read ahead.
    pub prefetch_depth: usize,
}

impl Default for ChunkConfig {
    fn default() -> Self {
        Self {
            chunk_capacity: 65_536,
            resident_chunks: 8,
            spill_dir: None,
            window_probes: 262_144,
            scale_budget_with_threads: true,
            spill_codec: SpillCodec::V2,
            prefetch_depth: 1,
        }
    }
}

impl ChunkConfig {
    /// A deliberately tiny configuration that forces many chunks and disk
    /// spill even on quick-scale data — for equivalence tests. Prefetch is
    /// off so eviction-pressure tests see exactly the traffic they drive.
    pub fn tiny() -> Self {
        Self {
            chunk_capacity: 512,
            resident_chunks: 2,
            spill_dir: None,
            window_probes: 2_048,
            scale_budget_with_threads: false,
            spill_codec: SpillCodec::V2,
            prefetch_depth: 0,
        }
    }

    /// The chunk budget this configuration yields at the current effective
    /// thread count (see [`ChunkConfig::scale_budget_with_threads`]).
    pub fn effective_resident_chunks(&self) -> usize {
        if self.scale_budget_with_threads {
            self.resident_chunks.max(rayon::current_num_threads() + 1)
        } else {
            self.resident_chunks
        }
    }
}

/// Leading magic of a v2 spill frame. A v1 frame starts with its probe
/// count instead, and no real chunk holds ~3.26 billion probes — so the
/// dispatch in [`ProbeChunk::decode_any`] is unambiguous, and a v2 frame
/// fed to the v1 parser fails its size check instead of mis-decoding.
const MAGIC_V2: u32 = 0xC211_4D31;

/// One fixed-capacity structure-of-arrays batch of probe sets, in stream
/// (dataset) order.
#[derive(Debug, Clone)]
pub struct ProbeChunk {
    networks: Vec<u32>,
    phys: Vec<u8>,
    time_s: Vec<f64>,
    senders: Vec<u32>,
    receivers: Vec<u32>,
    /// Prefix offsets into the observation columns; length `len() + 1`.
    obs_off: Vec<u32>,
    obs_rate_idx: Vec<u8>,
    obs_loss: Vec<f64>,
    obs_snr: Vec<f64>,
}

/// An empty chunk. Not derived: the `obs_off` prefix table must start
/// with its leading 0 even on an empty chunk, or `push`/`encode` build a
/// table one entry short.
impl Default for ProbeChunk {
    fn default() -> Self {
        Self::with_capacity(0)
    }
}

impl ProbeChunk {
    /// An empty chunk with room for `n` probe sets.
    pub fn with_capacity(n: usize) -> Self {
        let mut c = Self {
            networks: Vec::with_capacity(n),
            phys: Vec::with_capacity(n),
            time_s: Vec::with_capacity(n),
            senders: Vec::with_capacity(n),
            receivers: Vec::with_capacity(n),
            obs_off: Vec::with_capacity(n + 1),
            obs_rate_idx: Vec::new(),
            obs_loss: Vec::new(),
            obs_snr: Vec::new(),
        };
        c.obs_off.push(0);
        c
    }

    /// Number of probe sets stored.
    pub fn len(&self) -> usize {
        self.networks.len()
    }

    /// Whether the chunk is empty.
    pub fn is_empty(&self) -> bool {
        self.networks.is_empty()
    }

    /// Appends one probe set.
    pub fn push(&mut self, p: &ProbeSet) {
        self.networks.push(p.network.0);
        self.phys.push(phy_tag(p.phy));
        self.time_s.push(p.time_s);
        self.senders.push(p.sender.0);
        self.receivers.push(p.receiver.0);
        for o in &p.obs {
            self.obs_rate_idx.push(o.rate.index() as u8);
            self.obs_loss.push(o.loss);
            self.obs_snr.push(o.snr_db);
        }
        self.obs_off.push(self.obs_rate_idx.len() as u32);
    }

    /// Reconstructs the probe set at `i` — an exact inverse of
    /// [`ProbeChunk::push`] (rates round-trip through their PHY table
    /// index, floats through their bits).
    pub fn get(&self, i: usize) -> ProbeSet {
        let phy = phy_from_tag(self.phys[i]).expect("chunk stores valid phy tags");
        let rates = phy.all_rates();
        let r = self.obs_off[i] as usize..self.obs_off[i + 1] as usize;
        let obs = r
            .map(|k| RateObs {
                rate: rates[self.obs_rate_idx[k] as usize],
                loss: self.obs_loss[k],
                snr_db: self.obs_snr[k],
            })
            .collect();
        ProbeSet {
            network: NetworkId(self.networks[i]),
            phy,
            time_s: self.time_s[i],
            sender: ApId(self.senders[i]),
            receiver: ApId(self.receivers[i]),
            obs,
        }
    }

    /// Approximate heap footprint of the decoded columns, for pinned-byte
    /// accounting.
    pub fn mem_bytes(&self) -> u64 {
        let n = self.len() as u64;
        let m = self.obs_rate_idx.len() as u64;
        // networks/senders/receivers u32, phys u8, time f64, obs_off u32,
        // obs_rate_idx u8, obs_loss/obs_snr f64.
        n * (4 + 4 + 4 + 1 + 8) + (n + 1) * 4 + m * (1 + 8 + 8)
    }

    /// The exact byte count a v1 frame of this chunk occupies — the
    /// uncompressed reference the codec-v2 spill ratio is measured
    /// against (`spill_encoded_bytes / spill_raw_bytes`).
    pub fn v1_encoded_len(&self) -> u64 {
        let n = self.len() as u64;
        let m = self.obs_rate_idx.len() as u64;
        8 + n * 21 + (n + 1) * 4 + m * 17
    }

    /// Encodes the chunk into `buf` under the chosen spill codec. Both
    /// frame formats decode via [`ProbeChunk::decode_any`].
    pub fn encode_with(&self, codec: SpillCodec, buf: &mut Vec<u8>) {
        match codec {
            SpillCodec::V1 => self.encode_v1(buf),
            SpillCodec::V2 => self.encode_v2(buf),
        }
    }

    /// Decodes either frame format, dispatching on the leading magic: v2
    /// frames open with `MAGIC_V2` (a value no v1 probe count can
    /// plausibly reach), anything else parses as v1.
    pub fn decode_any(buf: &[u8]) -> io::Result<Self> {
        if buf.len() >= 4 && buf[..4] == MAGIC_V2.to_le_bytes() {
            Self::decode_v2(buf)
        } else {
            Self::decode_v1(buf)
        }
    }

    /// Encodes the chunk into `buf` (columnar, little-endian).
    fn encode_v1(&self, buf: &mut Vec<u8>) {
        let n = self.len();
        let m = self.obs_rate_idx.len();
        buf.put_u32_le(n as u32);
        buf.put_u32_le(m as u32);
        for &v in &self.networks {
            buf.put_u32_le(v);
        }
        buf.put_slice(&self.phys);
        for &v in &self.time_s {
            buf.put_f64_le(v);
        }
        for &v in &self.senders {
            buf.put_u32_le(v);
        }
        for &v in &self.receivers {
            buf.put_u32_le(v);
        }
        for &v in &self.obs_off {
            buf.put_u32_le(v);
        }
        buf.put_slice(&self.obs_rate_idx);
        for &v in &self.obs_loss {
            buf.put_f64_le(v);
        }
        for &v in &self.obs_snr {
            buf.put_f64_le(v);
        }
    }

    /// Encodes the chunk as a v2 frame:
    ///
    /// ```text
    /// magic     u32 le   MAGIC_V2
    /// checksum  u64 le   FNV-1a 64 over everything after this field
    /// n, m      varint   probe / observation counts
    /// 9 columns [tag u8][payload]   networks, phys, time_s, senders,
    ///                               receivers, obs_off, obs_rate_idx,
    ///                               obs_loss, obs_snr
    /// ```
    ///
    /// Each column independently picks the smallest of its candidate
    /// encodings (see `crate::codec`), so the frame adapts to the data:
    /// monotone times delta, id columns bit-pack, quantized loss values
    /// dictionary-encode, continuous SNR stays raw.
    fn encode_v2(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&MAGIC_V2.to_le_bytes());
        let cksum_at = buf.len();
        buf.extend_from_slice(&0u64.to_le_bytes());
        let body_at = buf.len();
        put_varint(buf, self.len() as u64);
        put_varint(buf, self.obs_rate_idx.len() as u64);
        put_u32_col(buf, &self.networks);
        put_u8_col(buf, &self.phys);
        put_f64_col(buf, &self.time_s);
        put_u32_col(buf, &self.senders);
        put_u32_col(buf, &self.receivers);
        put_u32_col(buf, &self.obs_off);
        put_u8_col(buf, &self.obs_rate_idx);
        put_f64_col(buf, &self.obs_loss);
        put_f64_col(buf, &self.obs_snr);
        let cksum = fnv1a64(&buf[body_at..]);
        buf[cksum_at..body_at].copy_from_slice(&cksum.to_le_bytes());
    }

    /// Decodes a v2 frame, rejecting truncation, trailing bytes, and any
    /// corruption the frame checksum catches.
    fn decode_v2(buf: &[u8]) -> io::Result<Self> {
        let err =
            |msg: &str| io::Error::new(io::ErrorKind::InvalidData, format!("v2 frame: {msg}"));
        if buf.len() < 12 {
            return Err(err("truncated header"));
        }
        if buf[..4] != MAGIC_V2.to_le_bytes() {
            return Err(err("bad magic"));
        }
        let stored = u64::from_le_bytes(buf[4..12].try_into().expect("12-byte header"));
        let body = &buf[12..];
        if fnv1a64(body) != stored {
            return Err(err("checksum mismatch (corrupt or torn frame)"));
        }
        let mut r = body;
        let n = usize::try_from(get_varint(&mut r)?).map_err(|_| err("probe count overflow"))?;
        let m = usize::try_from(get_varint(&mut r)?).map_err(|_| err("obs count overflow"))?;
        let mut c = Self::with_capacity(0);
        c.networks = get_u32_col(&mut r, n)?;
        c.phys = get_u8_col(&mut r, n)?;
        c.time_s = get_f64_col(&mut r, n)?;
        c.senders = get_u32_col(&mut r, n)?;
        c.receivers = get_u32_col(&mut r, n)?;
        c.obs_off = get_u32_col(&mut r, n + 1)?;
        c.obs_rate_idx = get_u8_col(&mut r, m)?;
        c.obs_loss = get_f64_col(&mut r, m)?;
        c.obs_snr = get_f64_col(&mut r, m)?;
        if !r.is_empty() {
            return Err(err("trailing bytes"));
        }
        if c.obs_off.first() != Some(&0) || c.obs_off.last() != Some(&(m as u32)) {
            return Err(err("obs_off prefix table malformed"));
        }
        Ok(c)
    }

    /// Decodes a chunk from the bytes [`ProbeChunk::encode_v1`] wrote.
    fn decode_v1(mut buf: &[u8]) -> io::Result<Self> {
        fn need(buf: &[u8], n: usize) -> io::Result<()> {
            if buf.remaining() < n {
                Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("truncated chunk: need {n} bytes, have {}", buf.remaining()),
                ))
            } else {
                Ok(())
            }
        }
        need(buf, 8)?;
        let n = buf.get_u32_le() as usize;
        let m = buf.get_u32_le() as usize;
        let want = n * 21 + (n + 1) * 4 + m * 17;
        need(buf, want)?;
        let mut c = Self::with_capacity(n);
        c.obs_off.clear();
        for _ in 0..n {
            c.networks.push(buf.get_u32_le());
        }
        for _ in 0..n {
            c.phys.push(buf.get_u8());
        }
        for _ in 0..n {
            c.time_s.push(buf.get_f64_le());
        }
        for _ in 0..n {
            c.senders.push(buf.get_u32_le());
        }
        for _ in 0..n {
            c.receivers.push(buf.get_u32_le());
        }
        for _ in 0..=n {
            c.obs_off.push(buf.get_u32_le());
        }
        for _ in 0..m {
            c.obs_rate_idx.push(buf.get_u8());
        }
        for _ in 0..m {
            c.obs_loss.push(buf.get_f64_le());
        }
        for _ in 0..m {
            c.obs_snr.push(buf.get_f64_le());
        }
        Ok(c)
    }
}

/// The mutable part of one chunk slot, behind the slot's own mutex.
#[derive(Debug, Default)]
struct SlotState {
    chunk: Option<Arc<ProbeChunk>>,
    /// `(offset, len)` of the encoded chunk in the spill file.
    disk: Option<(u64, u64)>,
}

/// One chunk slot: resident, on disk, or both. Each slot has its own lock
/// so readers of distinct chunks never serialize on each other.
#[derive(Debug, Default)]
struct Slot {
    state: Mutex<SlotState>,
    /// LRU tick of the last access (monotone store clock).
    last_use: AtomicU64,
    /// Set while the prefetch thread holds a read-ahead pin on this chunk;
    /// the first consumer fetch that finds it set counts a prefetch hit,
    /// a prefetcher release that finds it still set counts a waste.
    prefetched: AtomicBool,
}

/// The single spill file, shared by all slots. The mutex is held while
/// appending and while cloning the handle for a read; the read itself is
/// a lock-free positioned `pread` on the cloned `Arc`.
#[derive(Debug, Default)]
struct SpillFile {
    file: Option<Arc<std::fs::File>>,
    path: Option<PathBuf>,
    end_offset: u64,
    scratch: Vec<u8>,
}

impl Drop for SpillFile {
    fn drop(&mut self) {
        self.file = None;
        if let Some(p) = &self.path {
            let _ = std::fs::remove_file(p);
        }
    }
}

/// Monotone observability counters (all `Relaxed`; they order nothing).
#[derive(Debug, Default)]
struct Counters {
    hits: AtomicU64,
    decodes: AtomicU64,
    evictions: AtomicU64,
    pinned_bytes: AtomicU64,
    peak_pinned_bytes: AtomicU64,
    window_hits: AtomicU64,
    window_builds: AtomicU64,
    window_evictions: AtomicU64,
    prefetch_hits: AtomicU64,
    prefetch_wasted: AtomicU64,
    over_budget_events: AtomicU64,
    decode_ns: AtomicU64,
    spill_raw_bytes: AtomicU64,
    spill_encoded_bytes: AtomicU64,
}

impl Counters {
    /// Adds `bytes` to the live pinned total and folds it into the peak.
    fn pin(&self, bytes: u64) {
        let now = self.pinned_bytes.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.peak_pinned_bytes.fetch_max(now, Ordering::Relaxed);
    }
}

/// A snapshot of the store's observability counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChunkStoreStats {
    /// `chunk()` calls served from a resident chunk.
    pub chunk_hits: u64,
    /// `chunk()` calls that had to decode from the spill file (misses).
    pub chunk_decodes: u64,
    /// Chunks evicted from the resident set.
    pub chunk_evictions: u64,
    /// High-water mark of bytes held live by [`ChunkHandle`]s.
    pub peak_pinned_bytes: u64,
    /// Window requests served from the materialized-window cache.
    pub window_hits: u64,
    /// Windows materialized (chunk-span decode + index build).
    pub window_builds: u64,
    /// Materialized windows dropped from the cache (each later re-request
    /// is a fresh `window_builds`).
    pub window_evictions: u64,
    /// Consumer chunk fetches that found the chunk already pinned warm by
    /// the window-ahead prefetcher.
    pub prefetch_hits: u64,
    /// Chunks the prefetcher read ahead that were released without any
    /// consumer ever fetching them (wasted read-ahead I/O).
    pub prefetch_wasted: u64,
    /// Times eviction ran while over budget but found every resident chunk
    /// pinned or contended — the store stayed transiently over budget.
    pub over_budget_events: u64,
    /// Nanoseconds spent decoding spill frames, summed across all threads
    /// (consumer faults and the prefetch thread alike).
    pub decode_ns: u64,
    /// Uncompressed (v1-equivalent) bytes of every chunk ever spilled.
    pub spill_raw_bytes: u64,
    /// Bytes actually written to the spill file; the codec-v2 win is
    /// `spill_encoded_bytes / spill_raw_bytes` (1.0 under
    /// [`SpillCodec::V1`]).
    pub spill_encoded_bytes: u64,
}

/// A pinned, decoded chunk. Dereferences to [`ProbeChunk`]; while any
/// handle to a chunk is live the store will not evict it (it runs
/// transiently over budget instead).
#[derive(Debug)]
pub struct ChunkHandle {
    chunk: Arc<ProbeChunk>,
    bytes: u64,
    counters: Arc<Counters>,
}

impl Deref for ChunkHandle {
    type Target = ProbeChunk;
    fn deref(&self) -> &ProbeChunk {
        &self.chunk
    }
}

impl Drop for ChunkHandle {
    fn drop(&mut self) {
        self.counters
            .pinned_bytes
            .fetch_sub(self.bytes, Ordering::Relaxed);
    }
}

/// Distinguishes concurrently running stores' spill files.
static SPILL_SERIAL: AtomicU64 = AtomicU64::new(0);

/// A budget-bounded resident set of [`ProbeChunk`]s with LRU spill to a
/// single on-disk file.
///
/// Writes happen at most once per chunk (eviction of a never-spilled
/// chunk). The resident map is striped one lock per slot: N readers
/// decode N distinct chunks concurrently, while two readers of the same
/// chunk serialize on its slot and share one decode. Eviction scans with
/// `try_lock` and only considers chunks with no live [`ChunkHandle`]s
/// (`Arc` count 1 — new pins are only minted under the slot lock, so the
/// check cannot race against a pin being created).
#[derive(Debug)]
pub struct ChunkStore {
    budget: usize,
    codec: SpillCodec,
    spill_dir: Option<PathBuf>,
    slots: RwLock<Vec<Arc<Slot>>>,
    file: Mutex<SpillFile>,
    clock: AtomicU64,
    resident: AtomicUsize,
    spilled_bytes: AtomicU64,
    counters: Arc<Counters>,
}

impl ChunkStore {
    /// An empty store keeping at most `resident_chunks` chunks in memory
    /// (floor 2: one being filled, one being read), spilling under the
    /// default codec.
    pub fn new(resident_chunks: usize, spill_dir: Option<PathBuf>) -> Self {
        Self::with_codec(resident_chunks, spill_dir, SpillCodec::default())
    }

    /// As [`ChunkStore::new`], with an explicit spill codec.
    pub fn with_codec(
        resident_chunks: usize,
        spill_dir: Option<PathBuf>,
        codec: SpillCodec,
    ) -> Self {
        Self {
            budget: resident_chunks.max(2),
            codec,
            spill_dir,
            slots: RwLock::new(Vec::new()),
            file: Mutex::new(SpillFile::default()),
            clock: AtomicU64::new(0),
            resident: AtomicUsize::new(0),
            spilled_bytes: AtomicU64::new(0),
            counters: Arc::new(Counters::default()),
        }
    }

    /// The slot at `id` (clone of the `Arc`, so no table lock is held
    /// while the slot's own lock is taken).
    fn slot(&self, id: usize) -> Arc<Slot> {
        Arc::clone(&self.slots.read().expect("slot table poisoned")[id])
    }

    /// Next LRU tick.
    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Seals a finished chunk into the store, evicting older chunks past
    /// the resident budget. Returns the chunk's index.
    pub fn insert(&self, chunk: ProbeChunk) -> io::Result<usize> {
        let slot = Arc::new(Slot {
            state: Mutex::new(SlotState {
                chunk: Some(Arc::new(chunk)),
                disk: None,
            }),
            last_use: AtomicU64::new(self.tick()),
            prefetched: AtomicBool::new(false),
        });
        let id = {
            let mut table = self.slots.write().expect("slot table poisoned");
            table.push(slot);
            table.len() - 1
        };
        self.resident.fetch_add(1, Ordering::Relaxed);
        self.evict_past_budget()?;
        Ok(id)
    }

    /// The chunk at `id`, loading it back from the spill file if evicted.
    ///
    /// # Panics
    /// On spill-file I/O errors: the file is process-local scratch, so a
    /// read failure means the environment lost it out from under us.
    pub fn chunk(&self, id: usize) -> ChunkHandle {
        self.try_chunk(id)
            .expect("chunk spill file unreadable (scratch file lost mid-run?)")
    }

    /// As [`ChunkStore::chunk`], surfacing I/O errors.
    pub fn try_chunk(&self, id: usize) -> io::Result<ChunkHandle> {
        self.fetch(id, false)
    }

    /// The shared fetch path. `prefetch` marks the pin as read-ahead (set
    /// by the prefetch thread); consumer fetches clear the mark and count
    /// a prefetch hit when they find it.
    fn fetch(&self, id: usize, prefetch: bool) -> io::Result<ChunkHandle> {
        let slot = self.slot(id);
        slot.last_use.store(self.tick(), Ordering::Relaxed);
        let mut st = slot.state.lock().expect("chunk slot poisoned");
        if let Some(c) = &st.chunk {
            let handle = self.pin(Arc::clone(c));
            self.counters.hits.fetch_add(1, Ordering::Relaxed);
            if prefetch {
                slot.prefetched.store(true, Ordering::Relaxed);
            } else if slot.prefetched.swap(false, Ordering::Relaxed) {
                self.counters.prefetch_hits.fetch_add(1, Ordering::Relaxed);
            }
            return Ok(handle);
        }
        // Miss: look up the frame's extent under the slot lock, clone the
        // file handle under a brief file lock, then `pread` with no lock
        // between distinct slots — concurrent faults never serialize on
        // each other's I/O. Decode stays under the slot lock: a second
        // reader of the *same* chunk blocks here and then takes the hit
        // path above, so each spilled chunk decodes once per residency.
        let (off, len) = st.disk.expect("chunk neither resident nor spilled");
        let raw = self.read_spill(off, len)?;
        let t = Instant::now();
        let chunk = Arc::new(ProbeChunk::decode_any(&raw)?);
        self.counters
            .decode_ns
            .fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
        st.chunk = Some(Arc::clone(&chunk));
        let handle = self.pin(chunk);
        self.counters.decodes.fetch_add(1, Ordering::Relaxed);
        if prefetch {
            slot.prefetched.store(true, Ordering::Relaxed);
        }
        self.resident.fetch_add(1, Ordering::Relaxed);
        drop(st);
        self.evict_past_budget()?;
        Ok(handle)
    }

    /// Reads one spilled frame's bytes. On Unix this is a positioned read
    /// on a cloned handle — the file mutex is held only for the clone, so
    /// reads of distinct chunks proceed fully in parallel.
    fn read_spill(&self, off: u64, len: u64) -> io::Result<Vec<u8>> {
        let mut raw = vec![0u8; len as usize];
        #[cfg(unix)]
        {
            let file = {
                let f = self.file.lock().expect("spill file poisoned");
                Arc::clone(f.file.as_ref().expect("spilled chunk without a spill file"))
            };
            use std::os::unix::fs::FileExt;
            file.read_exact_at(&mut raw, off)?;
        }
        #[cfg(not(unix))]
        {
            // No positioned read: the shared cursor forces the whole
            // seek+read under the file lock.
            let f = self.file.lock().expect("spill file poisoned");
            let mut file: &std::fs::File =
                f.file.as_ref().expect("spilled chunk without a spill file");
            file.seek(SeekFrom::Start(off))?;
            file.read_exact(&mut raw)?;
        }
        Ok(raw)
    }

    /// Marks chunk `id` as prefetched-released: if no consumer consumed
    /// the read-ahead pin, it counts as wasted prefetch I/O.
    fn prefetch_release(&self, id: usize) {
        if self.slot(id).prefetched.swap(false, Ordering::Relaxed) {
            self.counters
                .prefetch_wasted
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Wraps a resident chunk's `Arc` in a pinned handle. Must be called
    /// with the chunk's slot lock held (all pin mints happen under it).
    fn pin(&self, chunk: Arc<ProbeChunk>) -> ChunkHandle {
        let bytes = chunk.mem_bytes();
        self.counters.pin(bytes);
        ChunkHandle {
            chunk,
            bytes,
            counters: Arc::clone(&self.counters),
        }
    }

    /// Evicts least-recently-used *unpinned* resident chunks until within
    /// budget, spilling any that have never been written. If every
    /// resident chunk is pinned (or its slot is contended), the store
    /// stays transiently over budget — correctness over strictness.
    pub fn evict_past_budget(&self) -> io::Result<()> {
        while self.resident.load(Ordering::Relaxed) > self.budget {
            let slots: Vec<Arc<Slot>> = self.slots.read().expect("slot table poisoned").clone();
            let mut victim: Option<(u64, usize)> = None;
            for (i, slot) in slots.iter().enumerate() {
                let Ok(st) = slot.state.try_lock() else {
                    continue;
                };
                if let Some(c) = &st.chunk {
                    // `Arc` count 1 = only the store's reference: no live
                    // handles. Pins are minted under this lock, so the
                    // observation holds until we release it.
                    if Arc::strong_count(c) == 1 {
                        let lu = slot.last_use.load(Ordering::Relaxed);
                        if victim.is_none_or(|(best, _)| lu < best) {
                            victim = Some((lu, i));
                        }
                    }
                }
            }
            let Some((lu, vi)) = victim else {
                // Everything pinned or contended: tolerate the transient
                // over-budget state (correctness over strictness), but
                // observably — sustained growth of this counter means the
                // budget is too small for the live working set.
                self.counters
                    .over_budget_events
                    .fetch_add(1, Ordering::Relaxed);
                #[cfg(debug_assertions)]
                eprintln!(
                    "mesh11-trace: chunk store over budget ({} resident > {}): \
                     every chunk pinned or contended",
                    self.resident.load(Ordering::Relaxed),
                    self.budget
                );
                return Ok(());
            };
            let slot = &slots[vi];
            let mut st = slot.state.lock().expect("chunk slot poisoned");
            // Revalidate: the chunk may have been pinned or touched
            // between the scan and this lock.
            let still_evictable = st.chunk.as_ref().is_some_and(|c| Arc::strong_count(c) == 1)
                && slot.last_use.load(Ordering::Relaxed) == lu;
            if !still_evictable {
                continue;
            }
            if st.disk.is_none() {
                let victim_chunk = st.chunk.as_ref().expect("victim is resident");
                let encoded = {
                    let mut f = self.file.lock().expect("spill file poisoned");
                    if f.file.is_none() {
                        let dir = self.spill_dir.clone().unwrap_or_else(std::env::temp_dir);
                        std::fs::create_dir_all(&dir)?;
                        let path = dir.join(format!(
                            "mesh11-chunks-{}-{}.spill",
                            std::process::id(),
                            SPILL_SERIAL.fetch_add(1, Ordering::Relaxed)
                        ));
                        f.file = Some(Arc::new(
                            std::fs::OpenOptions::new()
                                .create_new(true)
                                .read(true)
                                .write(true)
                                .open(&path)?,
                        ));
                        f.path = Some(path);
                    }
                    let mut scratch = std::mem::take(&mut f.scratch);
                    scratch.clear();
                    victim_chunk.encode_with(self.codec, &mut scratch);
                    let off = f.end_offset;
                    write_spill(f.file.as_ref().expect("opened above"), &scratch, off)?;
                    f.end_offset += scratch.len() as u64;
                    let len = scratch.len() as u64;
                    f.scratch = scratch;
                    (off, len)
                };
                self.spilled_bytes.fetch_add(encoded.1, Ordering::Relaxed);
                self.counters
                    .spill_raw_bytes
                    .fetch_add(victim_chunk.v1_encoded_len(), Ordering::Relaxed);
                self.counters
                    .spill_encoded_bytes
                    .fetch_add(encoded.1, Ordering::Relaxed);
                st.disk = Some(encoded);
            }
            st.chunk = None;
            self.resident.fetch_sub(1, Ordering::Relaxed);
            self.counters.evictions.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Number of chunks in the store (resident or spilled).
    pub fn n_chunks(&self) -> usize {
        self.slots.read().expect("slot table poisoned").len()
    }

    /// Number of chunks currently resident.
    pub fn resident_chunks(&self) -> usize {
        self.resident.load(Ordering::Relaxed)
    }

    /// Whether the chunk at `id` is currently resident (tests).
    pub fn is_resident(&self, id: usize) -> bool {
        let slot = self.slot(id);
        let st = slot.state.lock().expect("chunk slot poisoned");
        st.chunk.is_some()
    }

    /// Total bytes ever written to the spill file (0 when everything fit
    /// in the resident budget — the in-memory fast path).
    pub fn spilled_bytes(&self) -> u64 {
        self.spilled_bytes.load(Ordering::Relaxed)
    }

    /// A snapshot of the observability counters (window counters are
    /// folded in by [`ChunkedDataset::stats`]).
    pub fn stats(&self) -> ChunkStoreStats {
        let c = &self.counters;
        ChunkStoreStats {
            chunk_hits: c.hits.load(Ordering::Relaxed),
            chunk_decodes: c.decodes.load(Ordering::Relaxed),
            chunk_evictions: c.evictions.load(Ordering::Relaxed),
            peak_pinned_bytes: c.peak_pinned_bytes.load(Ordering::Relaxed),
            window_hits: c.window_hits.load(Ordering::Relaxed),
            window_builds: c.window_builds.load(Ordering::Relaxed),
            window_evictions: c.window_evictions.load(Ordering::Relaxed),
            prefetch_hits: c.prefetch_hits.load(Ordering::Relaxed),
            prefetch_wasted: c.prefetch_wasted.load(Ordering::Relaxed),
            over_budget_events: c.over_budget_events.load(Ordering::Relaxed),
            decode_ns: c.decode_ns.load(Ordering::Relaxed),
            spill_raw_bytes: c.spill_raw_bytes.load(Ordering::Relaxed),
            spill_encoded_bytes: c.spill_encoded_bytes.load(Ordering::Relaxed),
        }
    }
}

/// Writes one encoded frame at `off`. On Unix this is a positioned write,
/// so the shared cursor is never disturbed; either way the caller holds
/// the spill-file mutex, serializing appends.
fn write_spill(file: &std::fs::File, bytes: &[u8], off: u64) -> io::Result<()> {
    #[cfg(unix)]
    {
        use std::os::unix::fs::FileExt;
        file.write_all_at(bytes, off)
    }
    #[cfg(not(unix))]
    {
        let mut file = file;
        file.seek(SeekFrom::Start(off))?;
        file.write_all(bytes)
    }
}

/// A message to the window-ahead prefetch thread.
enum PrefetchMsg {
    /// The fold reached window `w`: warm the chunks of the next windows.
    Window(usize),
    /// Reply on the enclosed channel once every message queued before this
    /// one has been fully acted on (deterministic-test hook).
    Sync(mpsc::Sender<()>),
}

/// Handle to the background window-ahead prefetch thread (see
/// [`ChunkConfig::prefetch_depth`]). Dropping it closes the channel and
/// joins the thread, which releases any outstanding read-ahead pins.
struct Prefetcher {
    tx: Option<mpsc::Sender<PrefetchMsg>>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Prefetcher {
    /// Spawns the prefetch thread over `store`, handed the window →
    /// chunk-span plan. It keeps the chunks of the `depth` windows past
    /// the fold position warm, but never pins more than `budget - 1`
    /// chunks at once, so read-ahead cannot force the chunk a consumer is
    /// materializing from out of the resident set.
    fn spawn(store: Arc<ChunkStore>, spans: Vec<std::ops::Range<usize>>, depth: usize) -> Self {
        let (tx, rx) = mpsc::channel();
        let max_pinned = store.budget.saturating_sub(1).max(1);
        let thread = std::thread::Builder::new()
            .name("mesh11-prefetch".into())
            .spawn(move || prefetch_loop(&store, &spans, depth, max_pinned, &rx))
            .expect("spawn prefetch thread");
        Self {
            tx: Some(tx),
            thread: Some(thread),
        }
    }

    /// Tells the thread the fold reached window `w`. Non-blocking: the
    /// thread drains its queue to the newest position before acting, so a
    /// fast fold never waits on a slow prefetcher.
    fn notify(&self, w: usize) {
        if let Some(tx) = &self.tx {
            let _ = tx.send(PrefetchMsg::Window(w));
        }
    }

    /// Blocks until the thread has acted on everything sent so far.
    fn quiesce(&self) {
        let (ack_tx, ack_rx) = mpsc::channel();
        if let Some(tx) = &self.tx {
            if tx.send(PrefetchMsg::Sync(ack_tx)).is_ok() {
                let _ = ack_rx.recv();
            }
        }
    }
}

impl Drop for Prefetcher {
    fn drop(&mut self) {
        self.tx = None; // close the channel so the loop's recv errors out
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// The prefetch thread body: tracks the fold position, keeps the chunks
/// of the next `depth` windows pinned (at most `max_pinned` at once), and
/// accounts hits/wastes through the store's counters. Uses the same
/// `chunk slot → spill file` lock order as any consumer.
fn prefetch_loop(
    store: &ChunkStore,
    spans: &[std::ops::Range<usize>],
    depth: usize,
    max_pinned: usize,
    rx: &mpsc::Receiver<PrefetchMsg>,
) {
    let mut pinned: BTreeMap<usize, ChunkHandle> = BTreeMap::new();
    let mut acks: Vec<mpsc::Sender<()>> = Vec::new();
    loop {
        let mut pos = None;
        match rx.recv() {
            Ok(PrefetchMsg::Window(w)) => pos = Some(w),
            Ok(PrefetchMsg::Sync(tx)) => acks.push(tx),
            Err(_) => break, // dataset dropped; pins release on return
        }
        // Drain to the newest fold position: read-ahead for windows the
        // fold has already passed is pure waste.
        loop {
            match rx.try_recv() {
                Ok(PrefetchMsg::Window(w)) => pos = Some(w),
                Ok(PrefetchMsg::Sync(tx)) => acks.push(tx),
                Err(_) => break,
            }
        }
        if let Some(w) = pos {
            // Target: the chunk spans of the next `depth` windows, in
            // fold order, truncated to the pin cap.
            let mut target: BTreeSet<usize> = BTreeSet::new();
            let ahead = spans.len().min(w + 1 + depth);
            'fill: for span in spans.iter().take(ahead).skip(w + 1) {
                for ci in span.clone() {
                    if target.len() >= max_pinned {
                        break 'fill;
                    }
                    target.insert(ci);
                }
            }
            // Release stale pins first (behind the fold or past the cap)
            // so their budget headroom is free before new reads.
            let stale: Vec<usize> = pinned
                .keys()
                .copied()
                .filter(|id| !target.contains(id))
                .collect();
            for id in stale {
                pinned.remove(&id);
                store.prefetch_release(id);
            }
            for ci in target {
                if let std::collections::btree_map::Entry::Vacant(e) = pinned.entry(ci) {
                    match store.fetch(ci, true) {
                        Ok(h) => {
                            e.insert(h);
                        }
                        // I/O trouble: stop reading ahead; the consumer
                        // fault path will surface the error.
                        Err(_) => break,
                    }
                }
            }
        }
        for tx in acks.drain(..) {
            let _ = tx.send(());
        }
    }
}

/// Streams per-network datasets (in network-id order) into a
/// [`ChunkedDataset`], building the stitched index as probes pass through.
pub struct ChunkedDatasetBuilder {
    cfg: ChunkConfig,
    shell: Dataset,
    net_probe_off: Vec<u64>,
    store: ChunkStore,
    current: ProbeChunk,
    stitcher: IndexStitcher,
}

impl ChunkedDatasetBuilder {
    /// An empty builder. The store's resident budget is fixed here, from
    /// the configuration and (when enabled) the effective thread count.
    pub fn new(cfg: ChunkConfig) -> Self {
        let store = ChunkStore::with_codec(
            cfg.effective_resident_chunks(),
            cfg.spill_dir.clone(),
            cfg.spill_codec,
        );
        let current = ProbeChunk::with_capacity(cfg.chunk_capacity);
        Self {
            cfg,
            shell: Dataset::default(),
            net_probe_off: vec![0],
            store,
            current,
            stitcher: IndexStitcher::new(),
        }
    }

    /// Absorbs one or more networks' worth of dataset, in network-id order
    /// continuing the stream. Probes enter the chunk sequence; metadata and
    /// clients stay in the in-memory shell.
    pub fn add(&mut self, part: Dataset) -> io::Result<()> {
        for p in &part.probes {
            self.current.push(p);
            self.stitcher.observe(p);
            if self.current.len() >= self.cfg.chunk_capacity {
                let full = std::mem::replace(
                    &mut self.current,
                    ProbeChunk::with_capacity(self.cfg.chunk_capacity),
                );
                self.store.insert(full)?;
            }
        }
        // Per-network probe offsets: `part.probes` is network-major, so
        // count each network's run.
        let mut counts: Vec<u64> = vec![0; part.networks.len()];
        for p in &part.probes {
            let k = part
                .networks
                .iter()
                .position(|m| m.id == p.network)
                .expect("probe references an absorbed network");
            counts[k] += 1;
        }
        for (m, n) in part.networks.iter().zip(&counts) {
            assert!(
                self.shell
                    .networks
                    .last()
                    .is_none_or(|prev| prev.id.0 < m.id.0),
                "networks must stream in ascending id order"
            );
            let last = *self.net_probe_off.last().expect("seeded with 0");
            self.net_probe_off.push(last + n);
        }
        self.shell.networks.extend(part.networks);
        self.shell.clients.extend(part.clients);
        self.shell.probe_horizon_s = self.shell.probe_horizon_s.max(part.probe_horizon_s);
        self.shell.client_horizon_s = self.shell.client_horizon_s.max(part.client_horizon_s);
        Ok(())
    }

    /// Seals the final chunk and finishes the stitched index.
    pub fn finish(mut self) -> io::Result<ChunkedDataset> {
        if !self.current.is_empty() {
            let last = std::mem::take(&mut self.current);
            self.store.insert(last)?;
        }
        let n_probes = self.stitcher.n_probes();
        let windows = compute_windows(&self.net_probe_off, self.cfg.window_probes.max(1));
        let wcache = WindowCache::new(windows.len());
        let store = Arc::new(self.store);
        let prefetch = if self.cfg.prefetch_depth > 0
            && windows.len() > 1
            && store.n_chunks() > store.budget
        {
            Some(Prefetcher::spawn(
                Arc::clone(&store),
                chunk_spans(&self.net_probe_off, &windows, self.cfg.chunk_capacity),
                self.cfg.prefetch_depth,
            ))
        } else {
            None
        };
        Ok(ChunkedDataset {
            shell: self.shell,
            n_probes,
            chunk_capacity: self.cfg.chunk_capacity,
            net_probe_off: self.net_probe_off,
            store,
            stitched: self.stitcher.finish(),
            windows,
            wcache,
            prefetch,
        })
    }
}

/// Maps each analysis window to the chunk-id range its probes span —
/// the plan handed to the prefetch thread at build time.
fn chunk_spans(
    net_probe_off: &[u64],
    windows: &[std::ops::Range<usize>],
    cap: usize,
) -> Vec<std::ops::Range<usize>> {
    windows
        .iter()
        .map(|nets| {
            let p0 = net_probe_off[nets.start] as usize;
            let p1 = net_probe_off[nets.end] as usize;
            if p1 > p0 {
                (p0 / cap)..((p1 - 1) / cap + 1)
            } else {
                0..0
            }
        })
        .collect()
}

/// Splits the network sequence into consecutive runs of ≈`window_probes`
/// probes each (always at least one whole network per window).
fn compute_windows(net_probe_off: &[u64], window_probes: usize) -> Vec<std::ops::Range<usize>> {
    let n = net_probe_off.len() - 1;
    let mut out = Vec::new();
    let mut start = 0;
    while start < n {
        let mut end = start + 1;
        while end < n && (net_probe_off[end + 1] - net_probe_off[start]) <= window_probes as u64 {
            end += 1;
        }
        out.push(start..end);
        start = end;
    }
    out
}

/// One materialized analysis window: a mini dataset of consecutive
/// networks plus its index. Handed out as `Arc` pins from the window
/// cache; holding one keeps it from being dropped by eviction.
pub struct WindowData {
    ds: Dataset,
    ix: DatasetIndex,
}

impl WindowData {
    /// The window's indexed view.
    pub fn view(&self) -> DatasetView<'_> {
        DatasetView::new(&self.ds, &self.ix)
    }

    /// The window's mini dataset.
    pub fn dataset(&self) -> &Dataset {
        &self.ds
    }
}

/// The per-window decode memo: each slot caches its window's materialized
/// `Dataset + DatasetIndex` under its own lock (two threads racing for
/// the same window serialize on the slot; the second gets the first's
/// build). LRU eviction skips pinned windows (`Arc` count > 1).
struct WindowCache {
    slots: Vec<(Mutex<Option<Arc<WindowData>>>, AtomicU64)>,
    budget: usize,
    clock: AtomicU64,
    resident: AtomicUsize,
}

impl WindowCache {
    /// One slot per window; budget scales with effective threads (capped
    /// so windows — the big objects — cannot blow up peak RSS) and is 1
    /// in a single-threaded run, matching the old transient-window
    /// footprint.
    fn new(n_windows: usize) -> Self {
        let budget = rayon::current_num_threads().clamp(1, 4);
        Self {
            slots: (0..n_windows)
                .map(|_| (Mutex::new(None), AtomicU64::new(0)))
                .collect(),
            budget,
            clock: AtomicU64::new(0),
            resident: AtomicUsize::new(0),
        }
    }
}

/// An out-of-core dataset: in-memory metadata/clients, chunked probes, and
/// the stitched global index.
pub struct ChunkedDataset {
    /// Metadata + clients + horizons; `probes` is empty.
    shell: Dataset,
    n_probes: u64,
    chunk_capacity: usize,
    /// Per-network prefix offsets into the global probe stream; length
    /// `networks + 1`.
    net_probe_off: Vec<u64>,
    store: Arc<ChunkStore>,
    stitched: StitchedIndex,
    /// The analysis windows (consecutive-network ranges), fixed at build.
    windows: Vec<std::ops::Range<usize>>,
    /// Memo of materialized windows, shared by all kernels.
    wcache: WindowCache,
    /// The window-ahead prefetch thread, when the configuration enables
    /// it *and* the chunk sequence outgrew the resident budget (a fully
    /// resident store has nothing to read ahead).
    prefetch: Option<Prefetcher>,
}

impl ChunkedDataset {
    /// Chunks an already-materialized dataset (tests and ad-hoc use; the
    /// metro path streams through [`ChunkedDatasetBuilder`] instead).
    pub fn from_dataset(ds: &Dataset, cfg: ChunkConfig) -> io::Result<Self> {
        let mut b = ChunkedDatasetBuilder::new(cfg);
        for m in &ds.networks {
            let part = Dataset {
                networks: vec![m.clone()],
                probes: ds.probes_for_network(m.id).cloned().collect(),
                clients: ds.clients_for_network(m.id).cloned().collect(),
                probe_horizon_s: ds.probe_horizon_s,
                client_horizon_s: ds.client_horizon_s,
            };
            b.add(part)?;
        }
        b.finish()
    }

    /// Per-network metadata, in id order.
    pub fn networks(&self) -> &[NetworkMeta] {
        &self.shell.networks
    }

    /// Client samples (kept fully in memory — they are driven by user
    /// behaviour, not by ensemble scale, and §7 needs them whole).
    pub fn clients(&self) -> &[ClientSample] {
        &self.shell.clients
    }

    /// The in-memory shell: metadata, clients, and horizons with an empty
    /// probe vector. Client-side analyses (§7) run on it directly.
    pub fn shell(&self) -> &Dataset {
        &self.shell
    }

    /// Total probe sets across all chunks.
    pub fn n_probes(&self) -> u64 {
        self.n_probes
    }

    /// Probe-trace horizon (seconds).
    pub fn probe_horizon_s(&self) -> f64 {
        self.shell.probe_horizon_s
    }

    /// Client-trace horizon (seconds).
    pub fn client_horizon_s(&self) -> f64 {
        self.shell.client_horizon_s
    }

    /// Total AP count across networks.
    pub fn total_aps(&self) -> usize {
        self.shell.total_aps()
    }

    /// The stitched global range tables.
    pub fn stitched_index(&self) -> &StitchedIndex {
        &self.stitched
    }

    /// Bytes written to the spill file (0 = everything stayed resident).
    pub fn spilled_bytes(&self) -> u64 {
        self.store.spilled_bytes()
    }

    /// Chunks currently resident.
    pub fn resident_chunks(&self) -> usize {
        self.store.resident_chunks()
    }

    /// The analysis windows: consecutive-network ranges (indices into
    /// [`ChunkedDataset::networks`]) sized to ≈`window_probes` probes each.
    /// Every network appears in exactly one window.
    pub fn windows(&self) -> Vec<std::ops::Range<usize>> {
        self.windows.clone()
    }

    /// Number of analysis windows.
    pub fn n_windows(&self) -> usize {
        self.windows.len()
    }

    /// The materialized window `w`, from the shared decode memo: built at
    /// most once per residency, pinned while the returned `Arc` is live.
    /// All kernels walk windows in index order, so concurrent figure
    /// builders drain the same resident windows together instead of each
    /// re-decoding the chunk sequence (chunk-major scheduling).
    pub fn window(&self, w: usize) -> Arc<WindowData> {
        // Tell the prefetcher where the fold is *before* materializing,
        // so the next windows' reads overlap this window's build.
        if let Some(p) = &self.prefetch {
            p.notify(w);
        }
        let (slot, last_use) = &self.wcache.slots[w];
        last_use.store(
            self.wcache.clock.fetch_add(1, Ordering::Relaxed) + 1,
            Ordering::Relaxed,
        );
        let mut g = slot.lock().expect("window slot poisoned");
        if let Some(d) = &*g {
            let d = Arc::clone(d);
            drop(g);
            self.store
                .counters
                .window_hits
                .fetch_add(1, Ordering::Relaxed);
            return d;
        }
        // Make room *before* materializing: windows are the big objects,
        // and building the new one while the outgoing one is still cached
        // would double the peak (the old single-thread path never held
        // two at once). Our own slot stays locked, so the scan skips it.
        self.evict_windows_to(self.wcache.budget.saturating_sub(1));
        let ds = self.window_dataset(self.windows[w].clone());
        let ix = DatasetIndex::build(&ds);
        let d = Arc::new(WindowData { ds, ix });
        *g = Some(Arc::clone(&d));
        drop(g);
        self.store
            .counters
            .window_builds
            .fetch_add(1, Ordering::Relaxed);
        self.wcache.resident.fetch_add(1, Ordering::Relaxed);
        // Concurrent builders can each reserve headroom and overshoot
        // together; sweep back down to the budget.
        self.evict_windows_to(self.wcache.budget);
        d
    }

    /// Drops least-recently-used unpinned cached windows until at most
    /// `target` remain resident. Pinned windows (live `Arc`s outside the
    /// cache) are never dropped; new pins are only minted under the slot
    /// lock, so the `Arc`-count check cannot race a pin into eviction.
    fn evict_windows_to(&self, target: usize) {
        while self.wcache.resident.load(Ordering::Relaxed) > target {
            let mut victim: Option<(u64, usize)> = None;
            for (i, (slot, last_use)) in self.wcache.slots.iter().enumerate() {
                let Ok(g) = slot.try_lock() else {
                    continue;
                };
                if let Some(d) = &*g {
                    if Arc::strong_count(d) == 1 {
                        let lu = last_use.load(Ordering::Relaxed);
                        if victim.is_none_or(|(best, _)| lu < best) {
                            victim = Some((lu, i));
                        }
                    }
                }
            }
            let Some((lu, vi)) = victim else {
                return; // everything pinned or contended
            };
            let (slot, last_use) = &self.wcache.slots[vi];
            let Ok(mut g) = slot.try_lock() else {
                continue;
            };
            let still_evictable = g.as_ref().is_some_and(|d| Arc::strong_count(d) == 1)
                && last_use.load(Ordering::Relaxed) == lu;
            if !still_evictable {
                continue;
            }
            *g = None;
            self.wcache.resident.fetch_sub(1, Ordering::Relaxed);
            self.store
                .counters
                .window_evictions
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Observability counters: chunk-level from the store, window-level
    /// from the decode memo.
    pub fn stats(&self) -> ChunkStoreStats {
        self.store.stats()
    }

    /// Blocks until the window-ahead prefetch thread (if any) has acted
    /// on every notification sent so far. A test hook for deterministic
    /// prefetch-counter assertions; harmless elsewhere.
    pub fn prefetch_quiesce(&self) {
        if let Some(p) = &self.prefetch {
            p.quiesce();
        }
    }

    /// Materializes one window of consecutive networks as a mini dataset:
    /// their metadata and their probes (reconstructed from the chunk
    /// sequence, in stream order), with no clients.
    pub fn window_dataset(&self, nets: std::ops::Range<usize>) -> Dataset {
        let p0 = self.net_probe_off[nets.start] as usize;
        let p1 = self.net_probe_off[nets.end] as usize;
        let mut probes = Vec::with_capacity(p1 - p0);
        if p1 > p0 {
            let cap = self.chunk_capacity;
            for ci in (p0 / cap)..=((p1 - 1) / cap) {
                let chunk = self.store.chunk(ci);
                let lo = p0.saturating_sub(ci * cap);
                let hi = (p1 - ci * cap).min(chunk.len());
                for i in lo..hi {
                    probes.push(chunk.get(i));
                }
            }
        }
        Dataset {
            networks: self.shell.networks[nets].to_vec(),
            probes,
            clients: Vec::new(),
            probe_horizon_s: self.shell.probe_horizon_s,
            client_horizon_s: self.shell.client_horizon_s,
        }
    }

    /// Walks network `net`'s probe sets in stream order, straight off the
    /// raw chunk sequence — no window materialization, no index build (the
    /// handles count as chunk hits/decodes, never as `window_builds`).
    /// Stream order within a network is `(time, phy, sender, receiver)`-
    /// sorted, so filtering by PHY on the fly reproduces exactly the order
    /// an indexed per-(phy, network) walk yields.
    pub fn for_each_network_probe(&self, net: usize, mut f: impl FnMut(&ProbeSet)) {
        let p0 = self.net_probe_off[net] as usize;
        let p1 = self.net_probe_off[net + 1] as usize;
        if p1 <= p0 {
            return;
        }
        let cap = self.chunk_capacity;
        for ci in (p0 / cap)..=((p1 - 1) / cap) {
            let chunk = self.store.chunk(ci);
            let lo = p0.saturating_sub(ci * cap);
            let hi = (p1 - ci * cap).min(chunk.len());
            for i in lo..hi {
                f(&chunk.get(i));
            }
        }
    }
}

impl std::fmt::Debug for ChunkedDataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChunkedDataset")
            .field("networks", &self.shell.networks.len())
            .field("n_probes", &self.n_probes)
            .field("chunks", &self.store.n_chunks())
            .field("resident", &self.store.resident_chunks())
            .field("spilled_bytes", &self.store.spilled_bytes())
            .finish()
    }
}

/// Where a kernel's probes come from: one whole indexed view (the
/// in-memory path, untouched) or a chunked dataset walked window by
/// window. Kernels written as fold-over-views compute byte-identical
/// results either way (see the module docs for the ordering argument).
pub enum ProbeSource<'a> {
    /// The classic fully-resident path: the callback runs once with the
    /// whole view, so existing kernels behave exactly as before.
    Whole(DatasetView<'a>),
    /// The out-of-core path: one view per consecutive-network window, in
    /// network-id order.
    Chunked(&'a ChunkedDataset),
}

impl<'a> ProbeSource<'a> {
    /// Per-network metadata, in id order.
    pub fn networks(&self) -> &'a [NetworkMeta] {
        match self {
            ProbeSource::Whole(v) => v.networks(),
            ProbeSource::Chunked(c) => &c.shell.networks,
        }
    }

    /// Total probe sets.
    pub fn n_probes(&self) -> u64 {
        match self {
            ProbeSource::Whole(v) => v.dataset().probes.len() as u64,
            ProbeSource::Chunked(c) => c.n_probes,
        }
    }

    /// Runs `f` over the source's views in stream order: once with the
    /// whole view, or once per window. Chunked windows come from the
    /// shared decode memo, so concurrent kernels walking the same source
    /// share one materialization per window.
    pub fn for_each_view<F: for<'b> FnMut(DatasetView<'b>)>(&self, mut f: F) {
        match self {
            ProbeSource::Whole(v) => f(*v),
            ProbeSource::Chunked(c) => {
                for w in 0..c.n_windows() {
                    let win = c.window(w);
                    f(win.view());
                }
            }
        }
    }

    /// The delivery matrix of one (network, rate) — windowed or whole,
    /// identical to [`DatasetView::delivery_matrix`].
    pub fn delivery_matrix(
        &self,
        phy: Phy,
        network: NetworkId,
        rate: mesh11_phy::BitRate,
        n_aps: usize,
    ) -> DeliveryMatrix {
        match self {
            ProbeSource::Whole(v) => v.delivery_matrix(phy, network, rate, n_aps),
            ProbeSource::Chunked(c) => {
                let k = c
                    .shell
                    .networks
                    .iter()
                    .position(|m| m.id == network)
                    .expect("delivery matrix of an absorbed network");
                // The window containing network `k`: windows are the
                // consecutive partition of 0..n, so binary search on end.
                let w = c.windows.partition_point(|r| r.end <= k);
                // Per-network matrices read only the network's own index
                // group, so the containing window yields the same bytes
                // as a single-network mini dataset.
                c.window(w)
                    .view()
                    .delivery_matrix(phy, network, rate, n_aps)
            }
        }
    }

    /// Directed-link report counts across the whole source.
    pub fn link_report_counts(&self) -> BTreeMap<(NetworkId, ApId, ApId), usize> {
        match self {
            ProbeSource::Whole(v) => v.link_report_counts(),
            ProbeSource::Chunked(c) => c.stitched.link_report_counts(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::EnvLabel;
    use mesh11_phy::BitRate;

    fn probe(net: u32, s: u32, r: u32, t: f64, loss: f64) -> ProbeSet {
        ProbeSet {
            network: NetworkId(net),
            phy: Phy::Bg,
            time_s: t,
            sender: ApId(s),
            receiver: ApId(r),
            obs: vec![
                RateObs {
                    rate: BitRate::bg_mbps(11.0).unwrap(),
                    loss,
                    snr_db: 18.5,
                },
                RateObs {
                    rate: BitRate::bg_mbps(1.0).unwrap(),
                    loss: loss * 0.5,
                    snr_db: 20.25,
                },
            ],
        }
    }

    /// A dataset with enough probes to span several tiny chunks.
    fn big_dataset() -> Dataset {
        let mut probes = Vec::new();
        let mut networks = Vec::new();
        for net in 0..5u32 {
            networks.push(NetworkMeta {
                id: NetworkId(net),
                env: if net % 2 == 0 {
                    EnvLabel::Indoor
                } else {
                    EnvLabel::Outdoor
                },
                n_aps: 3,
                radios: vec![Phy::Bg],
                location: format!("Net {net}"),
            });
            for t in 0..40 {
                for (s, r) in [(0u32, 1u32), (1, 0), (0, 2)] {
                    probes.push(probe(net, s, r, 300.0 * (t + 1) as f64, 0.1));
                }
            }
        }
        Dataset {
            networks,
            probes,
            clients: Vec::new(),
            probe_horizon_s: 12_000.0,
            client_horizon_s: 0.0,
        }
    }

    fn tiny_cfg() -> ChunkConfig {
        ChunkConfig {
            chunk_capacity: 16,
            window_probes: 50,
            ..ChunkConfig::tiny()
        }
    }

    #[test]
    fn chunk_round_trips_probes() {
        let ds = big_dataset();
        let mut c = ProbeChunk::with_capacity(ds.probes.len());
        for p in &ds.probes {
            c.push(p);
        }
        assert_eq!(c.len(), ds.probes.len());
        for (i, p) in ds.probes.iter().enumerate() {
            assert_eq!(&c.get(i), p);
        }
        for codec in [SpillCodec::V1, SpillCodec::V2] {
            let mut raw = Vec::new();
            c.encode_with(codec, &mut raw);
            let back = ProbeChunk::decode_any(&raw).unwrap();
            for (i, p) in ds.probes.iter().enumerate() {
                assert_eq!(&back.get(i), p, "{codec:?}");
            }
        }
    }

    #[test]
    fn v2_frame_is_smaller_than_v1() {
        let ds = big_dataset();
        let mut c = ProbeChunk::with_capacity(ds.probes.len());
        for p in &ds.probes {
            c.push(p);
        }
        let (mut v1, mut v2) = (Vec::new(), Vec::new());
        c.encode_with(SpillCodec::V1, &mut v1);
        c.encode_with(SpillCodec::V2, &mut v2);
        assert_eq!(v1.len() as u64, c.v1_encoded_len());
        assert!(
            (v2.len() as f64) <= 0.7 * v1.len() as f64,
            "v2 {} vs v1 {} bytes",
            v2.len(),
            v1.len()
        );
    }

    #[test]
    fn empty_and_single_probe_chunks_round_trip() {
        for codec in [SpillCodec::V1, SpillCodec::V2] {
            for n in [0usize, 1] {
                let mut c = ProbeChunk::with_capacity(n);
                if n == 1 {
                    c.push(&probe(7, 2, 3, 1234.5, 0.25));
                }
                let mut raw = Vec::new();
                c.encode_with(codec, &mut raw);
                let back = ProbeChunk::decode_any(&raw).unwrap();
                assert_eq!(back.len(), n, "{codec:?}");
                if n == 1 {
                    assert_eq!(back.get(0), probe(7, 2, 3, 1234.5, 0.25));
                }
            }
        }
    }

    #[test]
    fn chunk_decode_rejects_truncation() {
        let mut c = ProbeChunk::with_capacity(4);
        c.push(&probe(0, 0, 1, 300.0, 0.2));
        for codec in [SpillCodec::V1, SpillCodec::V2] {
            let mut raw = Vec::new();
            c.encode_with(codec, &mut raw);
            for cut in 0..raw.len() {
                assert!(
                    ProbeChunk::decode_any(&raw[..cut]).is_err(),
                    "{codec:?} prefix {cut}"
                );
            }
        }
    }

    #[test]
    fn v2_decode_rejects_every_single_byte_flip() {
        let ds = big_dataset();
        let mut c = ProbeChunk::with_capacity(64);
        for p in ds.probes.iter().take(64) {
            c.push(p);
        }
        let mut raw = Vec::new();
        c.encode_with(SpillCodec::V2, &mut raw);
        assert!(ProbeChunk::decode_any(&raw).is_ok());
        for i in 0..raw.len() {
            let mut bad = raw.clone();
            bad[i] ^= 0x01;
            // A flip in the magic falls through to the v1 parser, which
            // must also reject; a flip anywhere else fails the checksum.
            assert!(
                ProbeChunk::decode_any(&bad).is_err(),
                "flip at byte {i} accepted"
            );
        }
    }

    #[test]
    fn mixed_v1_v2_frames_decode_from_one_stream() {
        let ds = big_dataset();
        let mut a = ProbeChunk::with_capacity(32);
        let mut b = ProbeChunk::with_capacity(32);
        for p in ds.probes.iter().take(32) {
            a.push(p);
        }
        for p in ds.probes.iter().skip(32).take(32) {
            b.push(p);
        }
        // One spill stream, two codecs — exactly what a store sees when a
        // run resumes over an old file with a different codec setting.
        let mut stream = Vec::new();
        let mut extents = Vec::new();
        for (c, codec) in [(&a, SpillCodec::V1), (&b, SpillCodec::V2)] {
            let mut raw = Vec::new();
            c.encode_with(codec, &mut raw);
            extents.push((stream.len(), raw.len()));
            stream.extend_from_slice(&raw);
        }
        for ((off, len), orig) in extents.into_iter().zip([&a, &b]) {
            let back = ProbeChunk::decode_any(&stream[off..off + len]).unwrap();
            assert_eq!(back.len(), orig.len());
            for i in 0..orig.len() {
                assert_eq!(back.get(i), orig.get(i));
            }
        }
    }

    #[test]
    fn store_spills_and_reloads_losslessly() {
        let ds = big_dataset();
        let chunked = ChunkedDataset::from_dataset(&ds, tiny_cfg()).unwrap();
        assert_eq!(chunked.n_probes(), ds.probes.len() as u64);
        assert!(
            chunked.spilled_bytes() > 0,
            "600 probes over 16-probe chunks with budget 2 must spill"
        );
        assert!(chunked.resident_chunks() <= 2);
        // Reconstructed windows concatenate back to the exact probe stream.
        let mut got = Vec::new();
        for w in chunked.windows() {
            got.extend(chunked.window_dataset(w).probes);
        }
        assert_eq!(got, ds.probes);
        assert!(chunked.resident_chunks() <= 2, "reads stay within budget");
    }

    #[test]
    fn in_memory_fast_path_never_touches_disk() {
        let ds = big_dataset();
        let cfg = ChunkConfig {
            chunk_capacity: 1 << 16,
            resident_chunks: 8,
            ..ChunkConfig::default()
        };
        let chunked = ChunkedDataset::from_dataset(&ds, cfg).unwrap();
        assert_eq!(chunked.spilled_bytes(), 0, "fits in budget: no spill file");
        let mut got = Vec::new();
        for w in chunked.windows() {
            got.extend(chunked.window_dataset(w).probes);
        }
        assert_eq!(got, ds.probes);
    }

    #[test]
    fn windows_cover_every_network_once() {
        let ds = big_dataset();
        let chunked = ChunkedDataset::from_dataset(&ds, tiny_cfg()).unwrap();
        let ws = chunked.windows();
        assert!(ws.len() > 1, "tiny window budget must split the ensemble");
        let mut covered = Vec::new();
        for w in &ws {
            covered.extend(w.clone());
        }
        assert_eq!(covered, (0..ds.networks.len()).collect::<Vec<_>>());
    }

    #[test]
    fn stitched_index_matches_monolithic() {
        let ds = big_dataset();
        let chunked = ChunkedDataset::from_dataset(&ds, tiny_cfg()).unwrap();
        let ix = DatasetIndex::build(&ds);
        assert_eq!(chunked.stitched_index().links, ix.link_range_table());
        assert_eq!(chunked.stitched_index().nets, ix.net_range_table());
        assert_eq!(
            chunked.stitched_index().link_report_counts(),
            ds.link_report_counts()
        );
    }

    #[test]
    fn source_views_are_equivalent() {
        let ds = big_dataset();
        let ix = DatasetIndex::build(&ds);
        let whole = ProbeSource::Whole(DatasetView::new(&ds, &ix));
        let chunked_ds = ChunkedDataset::from_dataset(&ds, tiny_cfg()).unwrap();
        let chunked = ProbeSource::Chunked(&chunked_ds);

        assert_eq!(whole.n_probes(), chunked.n_probes());
        assert_eq!(whole.networks(), chunked.networks());
        assert_eq!(whole.link_report_counts(), chunked.link_report_counts());

        // The windowed per-PHY walk concatenates to the whole walk.
        let collect = |src: &ProbeSource| {
            let mut times = Vec::new();
            src.for_each_view(|v| {
                times.extend(v.probes_for_phy(Phy::Bg).map(|p| (p.network.0, p.time_s)));
            });
            times
        };
        assert_eq!(collect(&whole), collect(&chunked));

        // Delivery matrices agree per network.
        let rate = BitRate::bg_mbps(11.0).unwrap();
        for m in &ds.networks {
            assert_eq!(
                whole.delivery_matrix(Phy::Bg, m.id, rate, m.n_aps),
                chunked.delivery_matrix(Phy::Bg, m.id, rate, m.n_aps),
            );
        }
    }

    /// A store of `n` single-probe chunks with the given budget.
    fn store_with_chunks(n: usize, budget: usize) -> ChunkStore {
        let store = ChunkStore::new(budget, None);
        for i in 0..n {
            let mut c = ProbeChunk::with_capacity(1);
            c.push(&probe(i as u32, 0, 1, 300.0 * (i + 1) as f64, 0.1));
            store.insert(c).unwrap();
        }
        store
    }

    #[test]
    fn pinned_chunks_are_never_evicted() {
        let store = store_with_chunks(6, 2);
        let pinned = store.chunk(0); // reload + pin chunk 0
        assert!(store.is_resident(0));
        // Fault in every other chunk; the budget (2) forces evictions,
        // but never of the pinned chunk.
        for id in 1..6 {
            let h = store.chunk(id);
            assert_eq!(h.get(0).network, NetworkId(id as u32));
            assert!(store.is_resident(0), "pinned chunk evicted at id {id}");
        }
        assert!(store.resident_chunks() >= 2);
        assert_eq!(pinned.get(0).network, NetworkId(0));
        drop(pinned);
        // Unpinned now: one more fault can evict it.
        let _h = store.chunk(5);
        let _h2 = store.chunk(4);
        let _h3 = store.chunk(3);
        assert!(!store.is_resident(0), "LRU victim once unpinned");
    }

    #[test]
    fn concurrent_readers_round_trip_distinct_chunks() {
        let store = store_with_chunks(8, 2);
        std::thread::scope(|scope| {
            for t in 0..4usize {
                let store = &store;
                scope.spawn(move || {
                    for round in 0..50 {
                        let id = (t * 3 + round * 7) % 8;
                        let h = store.chunk(id);
                        assert_eq!(h.get(0).network, NetworkId(id as u32));
                    }
                });
            }
        });
        let s = store.stats();
        assert!(s.chunk_decodes > 0, "budget 2 over 8 chunks must fault");
        assert!(s.peak_pinned_bytes > 0);
        assert_eq!(store.counters.pinned_bytes.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn window_memo_counts_builds_and_hits() {
        let ds = big_dataset();
        let chunked = ChunkedDataset::from_dataset(&ds, tiny_cfg()).unwrap();
        let n = chunked.n_windows();
        assert!(n > 1);
        let walk = |expect_probes: usize| {
            let mut total = 0;
            let src = ProbeSource::Chunked(&chunked);
            src.for_each_view(|v| total += v.dataset().probes.len());
            assert_eq!(total, expect_probes);
        };
        walk(ds.probes.len());
        walk(ds.probes.len());
        let s = chunked.stats();
        assert_eq!(
            s.window_builds + s.window_hits,
            2 * n as u64,
            "two full walks over {n} windows"
        );
        // A pinned window is a guaranteed memo hit: re-requesting it must
        // return the same materialization, not rebuild it.
        let a = chunked.window(0);
        let before = chunked.stats();
        let b = chunked.window(0);
        let after = chunked.stats();
        assert!(Arc::ptr_eq(&a, &b), "second request shares the build");
        assert_eq!(after.window_hits, before.window_hits + 1);
        assert_eq!(after.window_builds, before.window_builds);
    }

    #[test]
    fn spill_file_is_removed_on_drop() {
        let dir =
            std::env::temp_dir().join(format!("mesh11-chunk-drop-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let cfg = ChunkConfig {
            spill_dir: Some(dir.clone()),
            ..tiny_cfg()
        };
        let ds = big_dataset();
        let chunked = ChunkedDataset::from_dataset(&ds, cfg).unwrap();
        assert!(chunked.spilled_bytes() > 0);
        let files = || {
            std::fs::read_dir(&dir)
                .unwrap()
                .filter_map(|e| e.ok())
                .filter(|e| e.file_name().to_string_lossy().contains("chunks"))
                .count()
        };
        assert_eq!(files(), 1);
        drop(chunked);
        assert_eq!(files(), 0, "spill file cleaned up");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn spill_accounts_raw_and_encoded_bytes() {
        let ds = big_dataset();
        for (codec, bound) in [(SpillCodec::V1, 1.0), (SpillCodec::V2, 0.7)] {
            let cfg = ChunkConfig {
                spill_codec: codec,
                ..tiny_cfg()
            };
            let chunked = ChunkedDataset::from_dataset(&ds, cfg).unwrap();
            let s = chunked.stats();
            assert!(s.spill_raw_bytes > 0, "{codec:?} must spill");
            assert!(
                s.spill_encoded_bytes as f64 <= bound * s.spill_raw_bytes as f64,
                "{codec:?}: {} encoded vs {} raw",
                s.spill_encoded_bytes,
                s.spill_raw_bytes
            );
            if codec == SpillCodec::V1 {
                assert_eq!(s.spill_encoded_bytes, s.spill_raw_bytes);
            }
        }
    }

    #[test]
    fn over_budget_is_counted_when_everything_is_pinned() {
        let store = store_with_chunks(3, 2);
        assert_eq!(store.stats().over_budget_events, 0);
        // Pin all three chunks: the last fault runs over budget with every
        // resident chunk pinned, so eviction finds no victim and must
        // record the event instead of staying silent.
        let handles: Vec<_> = (0..3).map(|i| store.chunk(i)).collect();
        assert!(store.resident_chunks() > 2);
        assert!(store.stats().over_budget_events > 0);
        drop(handles);
    }

    #[test]
    fn prefetcher_warms_next_windows_deterministically() {
        let ds = big_dataset();
        let cfg = ChunkConfig {
            prefetch_depth: 2,
            ..tiny_cfg()
        };
        let chunked = ChunkedDataset::from_dataset(&ds, cfg).unwrap();
        assert!(chunked.prefetch.is_some(), "spilling store must prefetch");
        let n = chunked.n_windows();
        assert!(n > 1);
        let mut got = Vec::new();
        for w in 0..n {
            let win = chunked.window(w);
            got.extend(win.dataset().probes.clone());
            // Let the read-ahead land before the fold moves on, so the
            // next window's chunk fetches deterministically hit.
            chunked.prefetch_quiesce();
        }
        assert_eq!(got, ds.probes, "prefetched walk is byte-identical");
        let s = chunked.stats();
        assert!(s.prefetch_hits > 0, "quiesced walk must score hits: {s:?}");
        // Dropping the dataset joins the prefetch thread and releases its
        // pins; nothing stays pinned.
        drop(chunked);
    }

    #[test]
    fn fully_resident_store_spawns_no_prefetcher() {
        let ds = big_dataset();
        let cfg = ChunkConfig {
            prefetch_depth: 2,
            ..ChunkConfig::default()
        };
        let chunked = ChunkedDataset::from_dataset(&ds, cfg).unwrap();
        assert!(
            chunked.prefetch.is_none(),
            "nothing spills, nothing to read ahead"
        );
    }
}
