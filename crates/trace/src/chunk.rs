//! Out-of-core probe storage: spill-able columnar chunks plus windowed
//! views, so metro-scale ensembles analyze under bounded memory.
//!
//! A [`ChunkedDataset`] holds network metadata, client samples, and the
//! horizons in memory (they are small), while the probe stream — the part
//! that scales with ensemble size — lives in fixed-capacity structure-of-
//! arrays [`ProbeChunk`]s managed by a [`ChunkStore`]. The store keeps at
//! most a configured number of chunks resident; beyond that, least-recently
//! used chunks are encoded to a compact spill file (the probe-record shape
//! of [`crate::codec`], written in columnar batches) and decoded back on
//! demand. When everything fits in the budget no file is ever created —
//! the in-memory fast path.
//!
//! ## Why windowed views are exact
//!
//! `Dataset::probes` is **network-major**: the campaign runner merges
//! per-network streams in network-id order, and within a network probes are
//! `(time, phy, sender, receiver)`-sorted. Every permutation a
//! [`DatasetIndex`] builds is a *stable* sort of that order on keys that
//! lead with (phy, network…), so for any PHY the global iteration order is
//! the concatenation, in network-id order, of each network's own iteration.
//! A *window* — a run of consecutive networks materialized as a mini
//! dataset with its own index — therefore reproduces the corresponding
//! segment of every global traversal exactly, including float-accumulation
//! order. [`ProbeSource::for_each_view`] walks the windows in order, which
//! is why the chunked analysis path is byte-identical to the in-memory one
//! (pinned by the `chunked_equivalence` integration test).
//!
//! ## Concurrency
//!
//! The store is built for many readers: each chunk sits in its own slot
//! behind a per-slot mutex, so N threads decode N *distinct* chunks
//! simultaneously; two threads racing for the *same* chunk serialize on
//! that slot and the second one gets the first one's decode (a per-chunk
//! decode memo). [`ChunkStore::chunk`] returns a pinned [`ChunkHandle`];
//! eviction only ever considers chunks with no live handles, so a reader
//! can never have its working set pulled out from under it — the store
//! runs transiently over budget instead. The same protocol governs
//! materialized windows: [`ChunkedDataset::window`] memoizes the
//! `Dataset + DatasetIndex` of each window in an LRU cache sized to the
//! effective thread count, so parallel figure builders walking the windows
//! in the same order drain one resident window together instead of each
//! re-decoding it (chunk-major scheduling).
//!
//! Lock order is strictly `window slot → chunk slot → spill file`; LRU
//! victim scans use `try_lock` only, so the hierarchy is deadlock-free.

use std::collections::BTreeMap;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::ops::Deref;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use bytes::{Buf, BufMut};
use mesh11_phy::Phy;

use crate::client::ClientSample;
use crate::codec::{phy_from_tag, phy_tag};
use crate::dataset::{Dataset, NetworkMeta};
use crate::ids::{ApId, NetworkId};
use crate::index::{DatasetIndex, DatasetView, IndexStitcher, StitchedIndex};
use crate::matrix::DeliveryMatrix;
use crate::probe::{ProbeSet, RateObs};

/// Sizing of a [`ChunkStore`] and its analysis windows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkConfig {
    /// Probes per chunk (the spill/readback granule).
    pub chunk_capacity: usize,
    /// Maximum chunks resident at once — the memory budget. At least 2
    /// (one being filled, one being read).
    pub resident_chunks: usize,
    /// Directory for the spill file; the system temp dir when `None`.
    pub spill_dir: Option<PathBuf>,
    /// Target probes per analysis window (a window always holds at least
    /// one whole network, so a single huge network may exceed it).
    pub window_probes: usize,
    /// Raise `resident_chunks` to `effective threads + 1` at store build
    /// time, so parallel readers stop evicting each other's working set.
    /// Off in [`ChunkConfig::tiny`] so spill-forcing tests keep spilling
    /// at any thread count.
    pub scale_budget_with_threads: bool,
}

impl Default for ChunkConfig {
    fn default() -> Self {
        Self {
            chunk_capacity: 65_536,
            resident_chunks: 8,
            spill_dir: None,
            window_probes: 262_144,
            scale_budget_with_threads: true,
        }
    }
}

impl ChunkConfig {
    /// A deliberately tiny configuration that forces many chunks and disk
    /// spill even on quick-scale data — for equivalence tests.
    pub fn tiny() -> Self {
        Self {
            chunk_capacity: 512,
            resident_chunks: 2,
            spill_dir: None,
            window_probes: 2_048,
            scale_budget_with_threads: false,
        }
    }

    /// The chunk budget this configuration yields at the current effective
    /// thread count (see [`ChunkConfig::scale_budget_with_threads`]).
    pub fn effective_resident_chunks(&self) -> usize {
        if self.scale_budget_with_threads {
            self.resident_chunks.max(rayon::current_num_threads() + 1)
        } else {
            self.resident_chunks
        }
    }
}

/// One fixed-capacity structure-of-arrays batch of probe sets, in stream
/// (dataset) order.
#[derive(Debug, Clone)]
pub struct ProbeChunk {
    networks: Vec<u32>,
    phys: Vec<u8>,
    time_s: Vec<f64>,
    senders: Vec<u32>,
    receivers: Vec<u32>,
    /// Prefix offsets into the observation columns; length `len() + 1`.
    obs_off: Vec<u32>,
    obs_rate_idx: Vec<u8>,
    obs_loss: Vec<f64>,
    obs_snr: Vec<f64>,
}

/// An empty chunk. Not derived: the `obs_off` prefix table must start
/// with its leading 0 even on an empty chunk, or `push`/`encode` build a
/// table one entry short.
impl Default for ProbeChunk {
    fn default() -> Self {
        Self::with_capacity(0)
    }
}

impl ProbeChunk {
    fn with_capacity(n: usize) -> Self {
        let mut c = Self {
            networks: Vec::with_capacity(n),
            phys: Vec::with_capacity(n),
            time_s: Vec::with_capacity(n),
            senders: Vec::with_capacity(n),
            receivers: Vec::with_capacity(n),
            obs_off: Vec::with_capacity(n + 1),
            obs_rate_idx: Vec::new(),
            obs_loss: Vec::new(),
            obs_snr: Vec::new(),
        };
        c.obs_off.push(0);
        c
    }

    /// Number of probe sets stored.
    pub fn len(&self) -> usize {
        self.networks.len()
    }

    /// Whether the chunk is empty.
    pub fn is_empty(&self) -> bool {
        self.networks.is_empty()
    }

    /// Appends one probe set.
    pub fn push(&mut self, p: &ProbeSet) {
        self.networks.push(p.network.0);
        self.phys.push(phy_tag(p.phy));
        self.time_s.push(p.time_s);
        self.senders.push(p.sender.0);
        self.receivers.push(p.receiver.0);
        for o in &p.obs {
            self.obs_rate_idx.push(o.rate.index() as u8);
            self.obs_loss.push(o.loss);
            self.obs_snr.push(o.snr_db);
        }
        self.obs_off.push(self.obs_rate_idx.len() as u32);
    }

    /// Reconstructs the probe set at `i` — an exact inverse of
    /// [`ProbeChunk::push`] (rates round-trip through their PHY table
    /// index, floats through their bits).
    pub fn get(&self, i: usize) -> ProbeSet {
        let phy = phy_from_tag(self.phys[i]).expect("chunk stores valid phy tags");
        let rates = phy.all_rates();
        let r = self.obs_off[i] as usize..self.obs_off[i + 1] as usize;
        let obs = r
            .map(|k| RateObs {
                rate: rates[self.obs_rate_idx[k] as usize],
                loss: self.obs_loss[k],
                snr_db: self.obs_snr[k],
            })
            .collect();
        ProbeSet {
            network: NetworkId(self.networks[i]),
            phy,
            time_s: self.time_s[i],
            sender: ApId(self.senders[i]),
            receiver: ApId(self.receivers[i]),
            obs,
        }
    }

    /// Approximate heap footprint of the decoded columns, for pinned-byte
    /// accounting.
    pub fn mem_bytes(&self) -> u64 {
        let n = self.len() as u64;
        let m = self.obs_rate_idx.len() as u64;
        // networks/senders/receivers u32, phys u8, time f64, obs_off u32,
        // obs_rate_idx u8, obs_loss/obs_snr f64.
        n * (4 + 4 + 4 + 1 + 8) + (n + 1) * 4 + m * (1 + 8 + 8)
    }

    /// Encodes the chunk into `buf` (columnar, little-endian).
    fn encode(&self, buf: &mut Vec<u8>) {
        let n = self.len();
        let m = self.obs_rate_idx.len();
        buf.put_u32_le(n as u32);
        buf.put_u32_le(m as u32);
        for &v in &self.networks {
            buf.put_u32_le(v);
        }
        buf.put_slice(&self.phys);
        for &v in &self.time_s {
            buf.put_f64_le(v);
        }
        for &v in &self.senders {
            buf.put_u32_le(v);
        }
        for &v in &self.receivers {
            buf.put_u32_le(v);
        }
        for &v in &self.obs_off {
            buf.put_u32_le(v);
        }
        buf.put_slice(&self.obs_rate_idx);
        for &v in &self.obs_loss {
            buf.put_f64_le(v);
        }
        for &v in &self.obs_snr {
            buf.put_f64_le(v);
        }
    }

    /// Decodes a chunk from the bytes [`ProbeChunk::encode`] wrote.
    fn decode(mut buf: &[u8]) -> io::Result<Self> {
        fn need(buf: &[u8], n: usize) -> io::Result<()> {
            if buf.remaining() < n {
                Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("truncated chunk: need {n} bytes, have {}", buf.remaining()),
                ))
            } else {
                Ok(())
            }
        }
        need(buf, 8)?;
        let n = buf.get_u32_le() as usize;
        let m = buf.get_u32_le() as usize;
        let want = n * 21 + (n + 1) * 4 + m * 17;
        need(buf, want)?;
        let mut c = Self::with_capacity(n);
        c.obs_off.clear();
        for _ in 0..n {
            c.networks.push(buf.get_u32_le());
        }
        for _ in 0..n {
            c.phys.push(buf.get_u8());
        }
        for _ in 0..n {
            c.time_s.push(buf.get_f64_le());
        }
        for _ in 0..n {
            c.senders.push(buf.get_u32_le());
        }
        for _ in 0..n {
            c.receivers.push(buf.get_u32_le());
        }
        for _ in 0..=n {
            c.obs_off.push(buf.get_u32_le());
        }
        for _ in 0..m {
            c.obs_rate_idx.push(buf.get_u8());
        }
        for _ in 0..m {
            c.obs_loss.push(buf.get_f64_le());
        }
        for _ in 0..m {
            c.obs_snr.push(buf.get_f64_le());
        }
        Ok(c)
    }
}

/// The mutable part of one chunk slot, behind the slot's own mutex.
#[derive(Debug, Default)]
struct SlotState {
    chunk: Option<Arc<ProbeChunk>>,
    /// `(offset, len)` of the encoded chunk in the spill file.
    disk: Option<(u64, u64)>,
}

/// One chunk slot: resident, on disk, or both. Each slot has its own lock
/// so readers of distinct chunks never serialize on each other.
#[derive(Debug, Default)]
struct Slot {
    state: Mutex<SlotState>,
    /// LRU tick of the last access (monotone store clock).
    last_use: AtomicU64,
}

/// The single spill file, shared by all slots; held only while actually
/// reading or appending encoded bytes.
#[derive(Debug, Default)]
struct SpillFile {
    file: Option<std::fs::File>,
    path: Option<PathBuf>,
    end_offset: u64,
    scratch: Vec<u8>,
}

impl Drop for SpillFile {
    fn drop(&mut self) {
        self.file = None;
        if let Some(p) = &self.path {
            let _ = std::fs::remove_file(p);
        }
    }
}

/// Monotone observability counters (all `Relaxed`; they order nothing).
#[derive(Debug, Default)]
struct Counters {
    hits: AtomicU64,
    decodes: AtomicU64,
    evictions: AtomicU64,
    pinned_bytes: AtomicU64,
    peak_pinned_bytes: AtomicU64,
    window_hits: AtomicU64,
    window_builds: AtomicU64,
    window_evictions: AtomicU64,
}

impl Counters {
    /// Adds `bytes` to the live pinned total and folds it into the peak.
    fn pin(&self, bytes: u64) {
        let now = self.pinned_bytes.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.peak_pinned_bytes.fetch_max(now, Ordering::Relaxed);
    }
}

/// A snapshot of the store's observability counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChunkStoreStats {
    /// `chunk()` calls served from a resident chunk.
    pub chunk_hits: u64,
    /// `chunk()` calls that had to decode from the spill file (misses).
    pub chunk_decodes: u64,
    /// Chunks evicted from the resident set.
    pub chunk_evictions: u64,
    /// High-water mark of bytes held live by [`ChunkHandle`]s.
    pub peak_pinned_bytes: u64,
    /// Window requests served from the materialized-window cache.
    pub window_hits: u64,
    /// Windows materialized (chunk-span decode + index build).
    pub window_builds: u64,
    /// Materialized windows dropped from the cache (each later re-request
    /// is a fresh `window_builds`).
    pub window_evictions: u64,
}

/// A pinned, decoded chunk. Dereferences to [`ProbeChunk`]; while any
/// handle to a chunk is live the store will not evict it (it runs
/// transiently over budget instead).
#[derive(Debug)]
pub struct ChunkHandle {
    chunk: Arc<ProbeChunk>,
    bytes: u64,
    counters: Arc<Counters>,
}

impl Deref for ChunkHandle {
    type Target = ProbeChunk;
    fn deref(&self) -> &ProbeChunk {
        &self.chunk
    }
}

impl Drop for ChunkHandle {
    fn drop(&mut self) {
        self.counters
            .pinned_bytes
            .fetch_sub(self.bytes, Ordering::Relaxed);
    }
}

/// Distinguishes concurrently running stores' spill files.
static SPILL_SERIAL: AtomicU64 = AtomicU64::new(0);

/// A budget-bounded resident set of [`ProbeChunk`]s with LRU spill to a
/// single on-disk file.
///
/// Writes happen at most once per chunk (eviction of a never-spilled
/// chunk). The resident map is striped one lock per slot: N readers
/// decode N distinct chunks concurrently, while two readers of the same
/// chunk serialize on its slot and share one decode. Eviction scans with
/// `try_lock` and only considers chunks with no live [`ChunkHandle`]s
/// (`Arc` count 1 — new pins are only minted under the slot lock, so the
/// check cannot race against a pin being created).
#[derive(Debug)]
pub struct ChunkStore {
    budget: usize,
    spill_dir: Option<PathBuf>,
    slots: RwLock<Vec<Arc<Slot>>>,
    file: Mutex<SpillFile>,
    clock: AtomicU64,
    resident: AtomicUsize,
    spilled_bytes: AtomicU64,
    counters: Arc<Counters>,
}

impl ChunkStore {
    /// An empty store keeping at most `resident_chunks` chunks in memory
    /// (floor 2: one being filled, one being read).
    pub fn new(resident_chunks: usize, spill_dir: Option<PathBuf>) -> Self {
        Self {
            budget: resident_chunks.max(2),
            spill_dir,
            slots: RwLock::new(Vec::new()),
            file: Mutex::new(SpillFile::default()),
            clock: AtomicU64::new(0),
            resident: AtomicUsize::new(0),
            spilled_bytes: AtomicU64::new(0),
            counters: Arc::new(Counters::default()),
        }
    }

    /// The slot at `id` (clone of the `Arc`, so no table lock is held
    /// while the slot's own lock is taken).
    fn slot(&self, id: usize) -> Arc<Slot> {
        Arc::clone(&self.slots.read().expect("slot table poisoned")[id])
    }

    /// Next LRU tick.
    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Seals a finished chunk into the store, evicting older chunks past
    /// the resident budget. Returns the chunk's index.
    pub fn insert(&self, chunk: ProbeChunk) -> io::Result<usize> {
        let slot = Arc::new(Slot {
            state: Mutex::new(SlotState {
                chunk: Some(Arc::new(chunk)),
                disk: None,
            }),
            last_use: AtomicU64::new(self.tick()),
        });
        let id = {
            let mut table = self.slots.write().expect("slot table poisoned");
            table.push(slot);
            table.len() - 1
        };
        self.resident.fetch_add(1, Ordering::Relaxed);
        self.evict_past_budget()?;
        Ok(id)
    }

    /// The chunk at `id`, loading it back from the spill file if evicted.
    ///
    /// # Panics
    /// On spill-file I/O errors: the file is process-local scratch, so a
    /// read failure means the environment lost it out from under us.
    pub fn chunk(&self, id: usize) -> ChunkHandle {
        self.try_chunk(id)
            .expect("chunk spill file unreadable (scratch file lost mid-run?)")
    }

    /// As [`ChunkStore::chunk`], surfacing I/O errors.
    pub fn try_chunk(&self, id: usize) -> io::Result<ChunkHandle> {
        let slot = self.slot(id);
        slot.last_use.store(self.tick(), Ordering::Relaxed);
        let mut st = slot.state.lock().expect("chunk slot poisoned");
        if let Some(c) = &st.chunk {
            let handle = self.pin(Arc::clone(c));
            self.counters.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(handle);
        }
        // Miss: read the encoded bytes (slot → file lock order), then
        // decode while still holding the slot lock — a second reader of
        // the same chunk blocks here and then takes the hit path above,
        // so each spilled chunk is decoded once per residency.
        let (off, len) = st.disk.expect("chunk neither resident nor spilled");
        let raw = {
            let mut f = self.file.lock().expect("spill file poisoned");
            let file = f.file.as_mut().expect("spilled chunk without a spill file");
            file.seek(SeekFrom::Start(off))?;
            let mut raw = vec![0u8; len as usize];
            file.read_exact(&mut raw)?;
            raw
        };
        let chunk = Arc::new(ProbeChunk::decode(&raw)?);
        st.chunk = Some(Arc::clone(&chunk));
        let handle = self.pin(chunk);
        self.counters.decodes.fetch_add(1, Ordering::Relaxed);
        self.resident.fetch_add(1, Ordering::Relaxed);
        drop(st);
        self.evict_past_budget()?;
        Ok(handle)
    }

    /// Wraps a resident chunk's `Arc` in a pinned handle. Must be called
    /// with the chunk's slot lock held (all pin mints happen under it).
    fn pin(&self, chunk: Arc<ProbeChunk>) -> ChunkHandle {
        let bytes = chunk.mem_bytes();
        self.counters.pin(bytes);
        ChunkHandle {
            chunk,
            bytes,
            counters: Arc::clone(&self.counters),
        }
    }

    /// Evicts least-recently-used *unpinned* resident chunks until within
    /// budget, spilling any that have never been written. If every
    /// resident chunk is pinned (or its slot is contended), the store
    /// stays transiently over budget — correctness over strictness.
    pub fn evict_past_budget(&self) -> io::Result<()> {
        while self.resident.load(Ordering::Relaxed) > self.budget {
            let slots: Vec<Arc<Slot>> = self.slots.read().expect("slot table poisoned").clone();
            let mut victim: Option<(u64, usize)> = None;
            for (i, slot) in slots.iter().enumerate() {
                let Ok(st) = slot.state.try_lock() else {
                    continue;
                };
                if let Some(c) = &st.chunk {
                    // `Arc` count 1 = only the store's reference: no live
                    // handles. Pins are minted under this lock, so the
                    // observation holds until we release it.
                    if Arc::strong_count(c) == 1 {
                        let lu = slot.last_use.load(Ordering::Relaxed);
                        if victim.is_none_or(|(best, _)| lu < best) {
                            victim = Some((lu, i));
                        }
                    }
                }
            }
            let Some((lu, vi)) = victim else {
                return Ok(()); // everything pinned or contended
            };
            let slot = &slots[vi];
            let mut st = slot.state.lock().expect("chunk slot poisoned");
            // Revalidate: the chunk may have been pinned or touched
            // between the scan and this lock.
            let still_evictable = st.chunk.as_ref().is_some_and(|c| Arc::strong_count(c) == 1)
                && slot.last_use.load(Ordering::Relaxed) == lu;
            if !still_evictable {
                continue;
            }
            if st.disk.is_none() {
                let encoded = {
                    let mut f = self.file.lock().expect("spill file poisoned");
                    if f.file.is_none() {
                        let dir = self.spill_dir.clone().unwrap_or_else(std::env::temp_dir);
                        std::fs::create_dir_all(&dir)?;
                        let path = dir.join(format!(
                            "mesh11-chunks-{}-{}.spill",
                            std::process::id(),
                            SPILL_SERIAL.fetch_add(1, Ordering::Relaxed)
                        ));
                        f.file = Some(
                            std::fs::OpenOptions::new()
                                .create_new(true)
                                .read(true)
                                .write(true)
                                .open(&path)?,
                        );
                        f.path = Some(path);
                    }
                    let mut scratch = std::mem::take(&mut f.scratch);
                    scratch.clear();
                    st.chunk
                        .as_ref()
                        .expect("victim is resident")
                        .encode(&mut scratch);
                    let off = f.end_offset;
                    let file = f.file.as_mut().expect("opened above");
                    file.seek(SeekFrom::Start(off))?;
                    file.write_all(&scratch)?;
                    f.end_offset += scratch.len() as u64;
                    let len = scratch.len() as u64;
                    f.scratch = scratch;
                    (off, len)
                };
                self.spilled_bytes.fetch_add(encoded.1, Ordering::Relaxed);
                st.disk = Some(encoded);
            }
            st.chunk = None;
            self.resident.fetch_sub(1, Ordering::Relaxed);
            self.counters.evictions.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Number of chunks in the store (resident or spilled).
    pub fn n_chunks(&self) -> usize {
        self.slots.read().expect("slot table poisoned").len()
    }

    /// Number of chunks currently resident.
    pub fn resident_chunks(&self) -> usize {
        self.resident.load(Ordering::Relaxed)
    }

    /// Whether the chunk at `id` is currently resident (tests).
    pub fn is_resident(&self, id: usize) -> bool {
        let slot = self.slot(id);
        let st = slot.state.lock().expect("chunk slot poisoned");
        st.chunk.is_some()
    }

    /// Total bytes ever written to the spill file (0 when everything fit
    /// in the resident budget — the in-memory fast path).
    pub fn spilled_bytes(&self) -> u64 {
        self.spilled_bytes.load(Ordering::Relaxed)
    }

    /// A snapshot of the observability counters (window counters are
    /// folded in by [`ChunkedDataset::stats`]).
    pub fn stats(&self) -> ChunkStoreStats {
        let c = &self.counters;
        ChunkStoreStats {
            chunk_hits: c.hits.load(Ordering::Relaxed),
            chunk_decodes: c.decodes.load(Ordering::Relaxed),
            chunk_evictions: c.evictions.load(Ordering::Relaxed),
            peak_pinned_bytes: c.peak_pinned_bytes.load(Ordering::Relaxed),
            window_hits: c.window_hits.load(Ordering::Relaxed),
            window_builds: c.window_builds.load(Ordering::Relaxed),
            window_evictions: c.window_evictions.load(Ordering::Relaxed),
        }
    }
}

/// Streams per-network datasets (in network-id order) into a
/// [`ChunkedDataset`], building the stitched index as probes pass through.
pub struct ChunkedDatasetBuilder {
    cfg: ChunkConfig,
    shell: Dataset,
    net_probe_off: Vec<u64>,
    store: ChunkStore,
    current: ProbeChunk,
    stitcher: IndexStitcher,
}

impl ChunkedDatasetBuilder {
    /// An empty builder. The store's resident budget is fixed here, from
    /// the configuration and (when enabled) the effective thread count.
    pub fn new(cfg: ChunkConfig) -> Self {
        let store = ChunkStore::new(cfg.effective_resident_chunks(), cfg.spill_dir.clone());
        let current = ProbeChunk::with_capacity(cfg.chunk_capacity);
        Self {
            cfg,
            shell: Dataset::default(),
            net_probe_off: vec![0],
            store,
            current,
            stitcher: IndexStitcher::new(),
        }
    }

    /// Absorbs one or more networks' worth of dataset, in network-id order
    /// continuing the stream. Probes enter the chunk sequence; metadata and
    /// clients stay in the in-memory shell.
    pub fn add(&mut self, part: Dataset) -> io::Result<()> {
        for p in &part.probes {
            self.current.push(p);
            self.stitcher.observe(p);
            if self.current.len() >= self.cfg.chunk_capacity {
                let full = std::mem::replace(
                    &mut self.current,
                    ProbeChunk::with_capacity(self.cfg.chunk_capacity),
                );
                self.store.insert(full)?;
            }
        }
        // Per-network probe offsets: `part.probes` is network-major, so
        // count each network's run.
        let mut counts: Vec<u64> = vec![0; part.networks.len()];
        for p in &part.probes {
            let k = part
                .networks
                .iter()
                .position(|m| m.id == p.network)
                .expect("probe references an absorbed network");
            counts[k] += 1;
        }
        for (m, n) in part.networks.iter().zip(&counts) {
            assert!(
                self.shell
                    .networks
                    .last()
                    .is_none_or(|prev| prev.id.0 < m.id.0),
                "networks must stream in ascending id order"
            );
            let last = *self.net_probe_off.last().expect("seeded with 0");
            self.net_probe_off.push(last + n);
        }
        self.shell.networks.extend(part.networks);
        self.shell.clients.extend(part.clients);
        self.shell.probe_horizon_s = self.shell.probe_horizon_s.max(part.probe_horizon_s);
        self.shell.client_horizon_s = self.shell.client_horizon_s.max(part.client_horizon_s);
        Ok(())
    }

    /// Seals the final chunk and finishes the stitched index.
    pub fn finish(mut self) -> io::Result<ChunkedDataset> {
        if !self.current.is_empty() {
            let last = std::mem::take(&mut self.current);
            self.store.insert(last)?;
        }
        let n_probes = self.stitcher.n_probes();
        let windows = compute_windows(&self.net_probe_off, self.cfg.window_probes.max(1));
        let wcache = WindowCache::new(windows.len());
        Ok(ChunkedDataset {
            shell: self.shell,
            n_probes,
            chunk_capacity: self.cfg.chunk_capacity,
            net_probe_off: self.net_probe_off,
            store: self.store,
            stitched: self.stitcher.finish(),
            windows,
            wcache,
        })
    }
}

/// Splits the network sequence into consecutive runs of ≈`window_probes`
/// probes each (always at least one whole network per window).
fn compute_windows(net_probe_off: &[u64], window_probes: usize) -> Vec<std::ops::Range<usize>> {
    let n = net_probe_off.len() - 1;
    let mut out = Vec::new();
    let mut start = 0;
    while start < n {
        let mut end = start + 1;
        while end < n && (net_probe_off[end + 1] - net_probe_off[start]) <= window_probes as u64 {
            end += 1;
        }
        out.push(start..end);
        start = end;
    }
    out
}

/// One materialized analysis window: a mini dataset of consecutive
/// networks plus its index. Handed out as `Arc` pins from the window
/// cache; holding one keeps it from being dropped by eviction.
pub struct WindowData {
    ds: Dataset,
    ix: DatasetIndex,
}

impl WindowData {
    /// The window's indexed view.
    pub fn view(&self) -> DatasetView<'_> {
        DatasetView::new(&self.ds, &self.ix)
    }

    /// The window's mini dataset.
    pub fn dataset(&self) -> &Dataset {
        &self.ds
    }
}

/// The per-window decode memo: each slot caches its window's materialized
/// `Dataset + DatasetIndex` under its own lock (two threads racing for
/// the same window serialize on the slot; the second gets the first's
/// build). LRU eviction skips pinned windows (`Arc` count > 1).
struct WindowCache {
    slots: Vec<(Mutex<Option<Arc<WindowData>>>, AtomicU64)>,
    budget: usize,
    clock: AtomicU64,
    resident: AtomicUsize,
}

impl WindowCache {
    /// One slot per window; budget scales with effective threads (capped
    /// so windows — the big objects — cannot blow up peak RSS) and is 1
    /// in a single-threaded run, matching the old transient-window
    /// footprint.
    fn new(n_windows: usize) -> Self {
        let budget = rayon::current_num_threads().clamp(1, 4);
        Self {
            slots: (0..n_windows)
                .map(|_| (Mutex::new(None), AtomicU64::new(0)))
                .collect(),
            budget,
            clock: AtomicU64::new(0),
            resident: AtomicUsize::new(0),
        }
    }
}

/// An out-of-core dataset: in-memory metadata/clients, chunked probes, and
/// the stitched global index.
pub struct ChunkedDataset {
    /// Metadata + clients + horizons; `probes` is empty.
    shell: Dataset,
    n_probes: u64,
    chunk_capacity: usize,
    /// Per-network prefix offsets into the global probe stream; length
    /// `networks + 1`.
    net_probe_off: Vec<u64>,
    store: ChunkStore,
    stitched: StitchedIndex,
    /// The analysis windows (consecutive-network ranges), fixed at build.
    windows: Vec<std::ops::Range<usize>>,
    /// Memo of materialized windows, shared by all kernels.
    wcache: WindowCache,
}

impl ChunkedDataset {
    /// Chunks an already-materialized dataset (tests and ad-hoc use; the
    /// metro path streams through [`ChunkedDatasetBuilder`] instead).
    pub fn from_dataset(ds: &Dataset, cfg: ChunkConfig) -> io::Result<Self> {
        let mut b = ChunkedDatasetBuilder::new(cfg);
        for m in &ds.networks {
            let part = Dataset {
                networks: vec![m.clone()],
                probes: ds.probes_for_network(m.id).cloned().collect(),
                clients: ds.clients_for_network(m.id).cloned().collect(),
                probe_horizon_s: ds.probe_horizon_s,
                client_horizon_s: ds.client_horizon_s,
            };
            b.add(part)?;
        }
        b.finish()
    }

    /// Per-network metadata, in id order.
    pub fn networks(&self) -> &[NetworkMeta] {
        &self.shell.networks
    }

    /// Client samples (kept fully in memory — they are driven by user
    /// behaviour, not by ensemble scale, and §7 needs them whole).
    pub fn clients(&self) -> &[ClientSample] {
        &self.shell.clients
    }

    /// The in-memory shell: metadata, clients, and horizons with an empty
    /// probe vector. Client-side analyses (§7) run on it directly.
    pub fn shell(&self) -> &Dataset {
        &self.shell
    }

    /// Total probe sets across all chunks.
    pub fn n_probes(&self) -> u64 {
        self.n_probes
    }

    /// Probe-trace horizon (seconds).
    pub fn probe_horizon_s(&self) -> f64 {
        self.shell.probe_horizon_s
    }

    /// Client-trace horizon (seconds).
    pub fn client_horizon_s(&self) -> f64 {
        self.shell.client_horizon_s
    }

    /// Total AP count across networks.
    pub fn total_aps(&self) -> usize {
        self.shell.total_aps()
    }

    /// The stitched global range tables.
    pub fn stitched_index(&self) -> &StitchedIndex {
        &self.stitched
    }

    /// Bytes written to the spill file (0 = everything stayed resident).
    pub fn spilled_bytes(&self) -> u64 {
        self.store.spilled_bytes()
    }

    /// Chunks currently resident.
    pub fn resident_chunks(&self) -> usize {
        self.store.resident_chunks()
    }

    /// The analysis windows: consecutive-network ranges (indices into
    /// [`ChunkedDataset::networks`]) sized to ≈`window_probes` probes each.
    /// Every network appears in exactly one window.
    pub fn windows(&self) -> Vec<std::ops::Range<usize>> {
        self.windows.clone()
    }

    /// Number of analysis windows.
    pub fn n_windows(&self) -> usize {
        self.windows.len()
    }

    /// The materialized window `w`, from the shared decode memo: built at
    /// most once per residency, pinned while the returned `Arc` is live.
    /// All kernels walk windows in index order, so concurrent figure
    /// builders drain the same resident windows together instead of each
    /// re-decoding the chunk sequence (chunk-major scheduling).
    pub fn window(&self, w: usize) -> Arc<WindowData> {
        let (slot, last_use) = &self.wcache.slots[w];
        last_use.store(
            self.wcache.clock.fetch_add(1, Ordering::Relaxed) + 1,
            Ordering::Relaxed,
        );
        let mut g = slot.lock().expect("window slot poisoned");
        if let Some(d) = &*g {
            let d = Arc::clone(d);
            drop(g);
            self.store
                .counters
                .window_hits
                .fetch_add(1, Ordering::Relaxed);
            return d;
        }
        // Make room *before* materializing: windows are the big objects,
        // and building the new one while the outgoing one is still cached
        // would double the peak (the old single-thread path never held
        // two at once). Our own slot stays locked, so the scan skips it.
        self.evict_windows_to(self.wcache.budget.saturating_sub(1));
        let ds = self.window_dataset(self.windows[w].clone());
        let ix = DatasetIndex::build(&ds);
        let d = Arc::new(WindowData { ds, ix });
        *g = Some(Arc::clone(&d));
        drop(g);
        self.store
            .counters
            .window_builds
            .fetch_add(1, Ordering::Relaxed);
        self.wcache.resident.fetch_add(1, Ordering::Relaxed);
        // Concurrent builders can each reserve headroom and overshoot
        // together; sweep back down to the budget.
        self.evict_windows_to(self.wcache.budget);
        d
    }

    /// Drops least-recently-used unpinned cached windows until at most
    /// `target` remain resident. Pinned windows (live `Arc`s outside the
    /// cache) are never dropped; new pins are only minted under the slot
    /// lock, so the `Arc`-count check cannot race a pin into eviction.
    fn evict_windows_to(&self, target: usize) {
        while self.wcache.resident.load(Ordering::Relaxed) > target {
            let mut victim: Option<(u64, usize)> = None;
            for (i, (slot, last_use)) in self.wcache.slots.iter().enumerate() {
                let Ok(g) = slot.try_lock() else {
                    continue;
                };
                if let Some(d) = &*g {
                    if Arc::strong_count(d) == 1 {
                        let lu = last_use.load(Ordering::Relaxed);
                        if victim.is_none_or(|(best, _)| lu < best) {
                            victim = Some((lu, i));
                        }
                    }
                }
            }
            let Some((lu, vi)) = victim else {
                return; // everything pinned or contended
            };
            let (slot, last_use) = &self.wcache.slots[vi];
            let Ok(mut g) = slot.try_lock() else {
                continue;
            };
            let still_evictable = g.as_ref().is_some_and(|d| Arc::strong_count(d) == 1)
                && last_use.load(Ordering::Relaxed) == lu;
            if !still_evictable {
                continue;
            }
            *g = None;
            self.wcache.resident.fetch_sub(1, Ordering::Relaxed);
            self.store
                .counters
                .window_evictions
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Observability counters: chunk-level from the store, window-level
    /// from the decode memo.
    pub fn stats(&self) -> ChunkStoreStats {
        self.store.stats()
    }

    /// Materializes one window of consecutive networks as a mini dataset:
    /// their metadata and their probes (reconstructed from the chunk
    /// sequence, in stream order), with no clients.
    pub fn window_dataset(&self, nets: std::ops::Range<usize>) -> Dataset {
        let p0 = self.net_probe_off[nets.start] as usize;
        let p1 = self.net_probe_off[nets.end] as usize;
        let mut probes = Vec::with_capacity(p1 - p0);
        if p1 > p0 {
            let cap = self.chunk_capacity;
            for ci in (p0 / cap)..=((p1 - 1) / cap) {
                let chunk = self.store.chunk(ci);
                let lo = p0.saturating_sub(ci * cap);
                let hi = (p1 - ci * cap).min(chunk.len());
                for i in lo..hi {
                    probes.push(chunk.get(i));
                }
            }
        }
        Dataset {
            networks: self.shell.networks[nets].to_vec(),
            probes,
            clients: Vec::new(),
            probe_horizon_s: self.shell.probe_horizon_s,
            client_horizon_s: self.shell.client_horizon_s,
        }
    }

    /// Walks network `net`'s probe sets in stream order, straight off the
    /// raw chunk sequence — no window materialization, no index build (the
    /// handles count as chunk hits/decodes, never as `window_builds`).
    /// Stream order within a network is `(time, phy, sender, receiver)`-
    /// sorted, so filtering by PHY on the fly reproduces exactly the order
    /// an indexed per-(phy, network) walk yields.
    pub fn for_each_network_probe(&self, net: usize, mut f: impl FnMut(&ProbeSet)) {
        let p0 = self.net_probe_off[net] as usize;
        let p1 = self.net_probe_off[net + 1] as usize;
        if p1 <= p0 {
            return;
        }
        let cap = self.chunk_capacity;
        for ci in (p0 / cap)..=((p1 - 1) / cap) {
            let chunk = self.store.chunk(ci);
            let lo = p0.saturating_sub(ci * cap);
            let hi = (p1 - ci * cap).min(chunk.len());
            for i in lo..hi {
                f(&chunk.get(i));
            }
        }
    }
}

impl std::fmt::Debug for ChunkedDataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChunkedDataset")
            .field("networks", &self.shell.networks.len())
            .field("n_probes", &self.n_probes)
            .field("chunks", &self.store.n_chunks())
            .field("resident", &self.store.resident_chunks())
            .field("spilled_bytes", &self.store.spilled_bytes())
            .finish()
    }
}

/// Where a kernel's probes come from: one whole indexed view (the
/// in-memory path, untouched) or a chunked dataset walked window by
/// window. Kernels written as fold-over-views compute byte-identical
/// results either way (see the module docs for the ordering argument).
pub enum ProbeSource<'a> {
    /// The classic fully-resident path: the callback runs once with the
    /// whole view, so existing kernels behave exactly as before.
    Whole(DatasetView<'a>),
    /// The out-of-core path: one view per consecutive-network window, in
    /// network-id order.
    Chunked(&'a ChunkedDataset),
}

impl<'a> ProbeSource<'a> {
    /// Per-network metadata, in id order.
    pub fn networks(&self) -> &'a [NetworkMeta] {
        match self {
            ProbeSource::Whole(v) => v.networks(),
            ProbeSource::Chunked(c) => &c.shell.networks,
        }
    }

    /// Total probe sets.
    pub fn n_probes(&self) -> u64 {
        match self {
            ProbeSource::Whole(v) => v.dataset().probes.len() as u64,
            ProbeSource::Chunked(c) => c.n_probes,
        }
    }

    /// Runs `f` over the source's views in stream order: once with the
    /// whole view, or once per window. Chunked windows come from the
    /// shared decode memo, so concurrent kernels walking the same source
    /// share one materialization per window.
    pub fn for_each_view<F: for<'b> FnMut(DatasetView<'b>)>(&self, mut f: F) {
        match self {
            ProbeSource::Whole(v) => f(*v),
            ProbeSource::Chunked(c) => {
                for w in 0..c.n_windows() {
                    let win = c.window(w);
                    f(win.view());
                }
            }
        }
    }

    /// The delivery matrix of one (network, rate) — windowed or whole,
    /// identical to [`DatasetView::delivery_matrix`].
    pub fn delivery_matrix(
        &self,
        phy: Phy,
        network: NetworkId,
        rate: mesh11_phy::BitRate,
        n_aps: usize,
    ) -> DeliveryMatrix {
        match self {
            ProbeSource::Whole(v) => v.delivery_matrix(phy, network, rate, n_aps),
            ProbeSource::Chunked(c) => {
                let k = c
                    .shell
                    .networks
                    .iter()
                    .position(|m| m.id == network)
                    .expect("delivery matrix of an absorbed network");
                // The window containing network `k`: windows are the
                // consecutive partition of 0..n, so binary search on end.
                let w = c.windows.partition_point(|r| r.end <= k);
                // Per-network matrices read only the network's own index
                // group, so the containing window yields the same bytes
                // as a single-network mini dataset.
                c.window(w)
                    .view()
                    .delivery_matrix(phy, network, rate, n_aps)
            }
        }
    }

    /// Directed-link report counts across the whole source.
    pub fn link_report_counts(&self) -> BTreeMap<(NetworkId, ApId, ApId), usize> {
        match self {
            ProbeSource::Whole(v) => v.link_report_counts(),
            ProbeSource::Chunked(c) => c.stitched.link_report_counts(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::EnvLabel;
    use mesh11_phy::BitRate;

    fn probe(net: u32, s: u32, r: u32, t: f64, loss: f64) -> ProbeSet {
        ProbeSet {
            network: NetworkId(net),
            phy: Phy::Bg,
            time_s: t,
            sender: ApId(s),
            receiver: ApId(r),
            obs: vec![
                RateObs {
                    rate: BitRate::bg_mbps(11.0).unwrap(),
                    loss,
                    snr_db: 18.5,
                },
                RateObs {
                    rate: BitRate::bg_mbps(1.0).unwrap(),
                    loss: loss * 0.5,
                    snr_db: 20.25,
                },
            ],
        }
    }

    /// A dataset with enough probes to span several tiny chunks.
    fn big_dataset() -> Dataset {
        let mut probes = Vec::new();
        let mut networks = Vec::new();
        for net in 0..5u32 {
            networks.push(NetworkMeta {
                id: NetworkId(net),
                env: if net % 2 == 0 {
                    EnvLabel::Indoor
                } else {
                    EnvLabel::Outdoor
                },
                n_aps: 3,
                radios: vec![Phy::Bg],
                location: format!("Net {net}"),
            });
            for t in 0..40 {
                for (s, r) in [(0u32, 1u32), (1, 0), (0, 2)] {
                    probes.push(probe(net, s, r, 300.0 * (t + 1) as f64, 0.1));
                }
            }
        }
        Dataset {
            networks,
            probes,
            clients: Vec::new(),
            probe_horizon_s: 12_000.0,
            client_horizon_s: 0.0,
        }
    }

    fn tiny_cfg() -> ChunkConfig {
        ChunkConfig {
            chunk_capacity: 16,
            window_probes: 50,
            ..ChunkConfig::tiny()
        }
    }

    #[test]
    fn chunk_round_trips_probes() {
        let ds = big_dataset();
        let mut c = ProbeChunk::with_capacity(ds.probes.len());
        for p in &ds.probes {
            c.push(p);
        }
        assert_eq!(c.len(), ds.probes.len());
        for (i, p) in ds.probes.iter().enumerate() {
            assert_eq!(&c.get(i), p);
        }
        let mut raw = Vec::new();
        c.encode(&mut raw);
        let back = ProbeChunk::decode(&raw).unwrap();
        for (i, p) in ds.probes.iter().enumerate() {
            assert_eq!(&back.get(i), p);
        }
    }

    #[test]
    fn chunk_decode_rejects_truncation() {
        let mut c = ProbeChunk::with_capacity(4);
        c.push(&probe(0, 0, 1, 300.0, 0.2));
        let mut raw = Vec::new();
        c.encode(&mut raw);
        for cut in 0..raw.len() {
            assert!(ProbeChunk::decode(&raw[..cut]).is_err(), "prefix {cut}");
        }
    }

    #[test]
    fn store_spills_and_reloads_losslessly() {
        let ds = big_dataset();
        let chunked = ChunkedDataset::from_dataset(&ds, tiny_cfg()).unwrap();
        assert_eq!(chunked.n_probes(), ds.probes.len() as u64);
        assert!(
            chunked.spilled_bytes() > 0,
            "600 probes over 16-probe chunks with budget 2 must spill"
        );
        assert!(chunked.resident_chunks() <= 2);
        // Reconstructed windows concatenate back to the exact probe stream.
        let mut got = Vec::new();
        for w in chunked.windows() {
            got.extend(chunked.window_dataset(w).probes);
        }
        assert_eq!(got, ds.probes);
        assert!(chunked.resident_chunks() <= 2, "reads stay within budget");
    }

    #[test]
    fn in_memory_fast_path_never_touches_disk() {
        let ds = big_dataset();
        let cfg = ChunkConfig {
            chunk_capacity: 1 << 16,
            resident_chunks: 8,
            ..ChunkConfig::default()
        };
        let chunked = ChunkedDataset::from_dataset(&ds, cfg).unwrap();
        assert_eq!(chunked.spilled_bytes(), 0, "fits in budget: no spill file");
        let mut got = Vec::new();
        for w in chunked.windows() {
            got.extend(chunked.window_dataset(w).probes);
        }
        assert_eq!(got, ds.probes);
    }

    #[test]
    fn windows_cover_every_network_once() {
        let ds = big_dataset();
        let chunked = ChunkedDataset::from_dataset(&ds, tiny_cfg()).unwrap();
        let ws = chunked.windows();
        assert!(ws.len() > 1, "tiny window budget must split the ensemble");
        let mut covered = Vec::new();
        for w in &ws {
            covered.extend(w.clone());
        }
        assert_eq!(covered, (0..ds.networks.len()).collect::<Vec<_>>());
    }

    #[test]
    fn stitched_index_matches_monolithic() {
        let ds = big_dataset();
        let chunked = ChunkedDataset::from_dataset(&ds, tiny_cfg()).unwrap();
        let ix = DatasetIndex::build(&ds);
        assert_eq!(chunked.stitched_index().links, ix.link_range_table());
        assert_eq!(chunked.stitched_index().nets, ix.net_range_table());
        assert_eq!(
            chunked.stitched_index().link_report_counts(),
            ds.link_report_counts()
        );
    }

    #[test]
    fn source_views_are_equivalent() {
        let ds = big_dataset();
        let ix = DatasetIndex::build(&ds);
        let whole = ProbeSource::Whole(DatasetView::new(&ds, &ix));
        let chunked_ds = ChunkedDataset::from_dataset(&ds, tiny_cfg()).unwrap();
        let chunked = ProbeSource::Chunked(&chunked_ds);

        assert_eq!(whole.n_probes(), chunked.n_probes());
        assert_eq!(whole.networks(), chunked.networks());
        assert_eq!(whole.link_report_counts(), chunked.link_report_counts());

        // The windowed per-PHY walk concatenates to the whole walk.
        let collect = |src: &ProbeSource| {
            let mut times = Vec::new();
            src.for_each_view(|v| {
                times.extend(v.probes_for_phy(Phy::Bg).map(|p| (p.network.0, p.time_s)));
            });
            times
        };
        assert_eq!(collect(&whole), collect(&chunked));

        // Delivery matrices agree per network.
        let rate = BitRate::bg_mbps(11.0).unwrap();
        for m in &ds.networks {
            assert_eq!(
                whole.delivery_matrix(Phy::Bg, m.id, rate, m.n_aps),
                chunked.delivery_matrix(Phy::Bg, m.id, rate, m.n_aps),
            );
        }
    }

    /// A store of `n` single-probe chunks with the given budget.
    fn store_with_chunks(n: usize, budget: usize) -> ChunkStore {
        let store = ChunkStore::new(budget, None);
        for i in 0..n {
            let mut c = ProbeChunk::with_capacity(1);
            c.push(&probe(i as u32, 0, 1, 300.0 * (i + 1) as f64, 0.1));
            store.insert(c).unwrap();
        }
        store
    }

    #[test]
    fn pinned_chunks_are_never_evicted() {
        let store = store_with_chunks(6, 2);
        let pinned = store.chunk(0); // reload + pin chunk 0
        assert!(store.is_resident(0));
        // Fault in every other chunk; the budget (2) forces evictions,
        // but never of the pinned chunk.
        for id in 1..6 {
            let h = store.chunk(id);
            assert_eq!(h.get(0).network, NetworkId(id as u32));
            assert!(store.is_resident(0), "pinned chunk evicted at id {id}");
        }
        assert!(store.resident_chunks() >= 2);
        assert_eq!(pinned.get(0).network, NetworkId(0));
        drop(pinned);
        // Unpinned now: one more fault can evict it.
        let _h = store.chunk(5);
        let _h2 = store.chunk(4);
        let _h3 = store.chunk(3);
        assert!(!store.is_resident(0), "LRU victim once unpinned");
    }

    #[test]
    fn concurrent_readers_round_trip_distinct_chunks() {
        let store = store_with_chunks(8, 2);
        std::thread::scope(|scope| {
            for t in 0..4usize {
                let store = &store;
                scope.spawn(move || {
                    for round in 0..50 {
                        let id = (t * 3 + round * 7) % 8;
                        let h = store.chunk(id);
                        assert_eq!(h.get(0).network, NetworkId(id as u32));
                    }
                });
            }
        });
        let s = store.stats();
        assert!(s.chunk_decodes > 0, "budget 2 over 8 chunks must fault");
        assert!(s.peak_pinned_bytes > 0);
        assert_eq!(store.counters.pinned_bytes.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn window_memo_counts_builds_and_hits() {
        let ds = big_dataset();
        let chunked = ChunkedDataset::from_dataset(&ds, tiny_cfg()).unwrap();
        let n = chunked.n_windows();
        assert!(n > 1);
        let walk = |expect_probes: usize| {
            let mut total = 0;
            let src = ProbeSource::Chunked(&chunked);
            src.for_each_view(|v| total += v.dataset().probes.len());
            assert_eq!(total, expect_probes);
        };
        walk(ds.probes.len());
        walk(ds.probes.len());
        let s = chunked.stats();
        assert_eq!(
            s.window_builds + s.window_hits,
            2 * n as u64,
            "two full walks over {n} windows"
        );
        // A pinned window is a guaranteed memo hit: re-requesting it must
        // return the same materialization, not rebuild it.
        let a = chunked.window(0);
        let before = chunked.stats();
        let b = chunked.window(0);
        let after = chunked.stats();
        assert!(Arc::ptr_eq(&a, &b), "second request shares the build");
        assert_eq!(after.window_hits, before.window_hits + 1);
        assert_eq!(after.window_builds, before.window_builds);
    }

    #[test]
    fn spill_file_is_removed_on_drop() {
        let dir =
            std::env::temp_dir().join(format!("mesh11-chunk-drop-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let cfg = ChunkConfig {
            spill_dir: Some(dir.clone()),
            ..tiny_cfg()
        };
        let ds = big_dataset();
        let chunked = ChunkedDataset::from_dataset(&ds, cfg).unwrap();
        assert!(chunked.spilled_bytes() > 0);
        let files = || {
            std::fs::read_dir(&dir)
                .unwrap()
                .filter_map(|e| e.ok())
                .filter(|e| e.file_name().to_string_lossy().contains("chunks"))
                .count()
        };
        assert_eq!(files(), 1);
        drop(chunked);
        assert_eq!(files(), 0, "spill file cleaned up");
        std::fs::remove_dir_all(&dir).ok();
    }
}
