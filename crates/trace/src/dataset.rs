//! The dataset container.

use mesh11_phy::Phy;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io;
use std::path::Path;

use crate::client::ClientSample;
use crate::ids::{ApId, EnvLabel, NetworkId};
use crate::probe::ProbeSet;

/// Metadata of one network as carried in the dataset (a strict subset of
/// the topology spec — the analysis layer must not see simulator ground
/// truth such as AP coordinates).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkMeta {
    /// Campaign-unique id.
    pub id: NetworkId,
    /// Environment classification.
    pub env: EnvLabel,
    /// Number of APs.
    pub n_aps: usize,
    /// Radio families present.
    pub radios: Vec<Phy>,
    /// Human-readable location label.
    pub location: String,
}

/// The full dataset: metadata, probe sets, and client samples.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// Per-network metadata, indexed by `NetworkId.0`.
    pub networks: Vec<NetworkMeta>,
    /// Probe-set reports, in (network, time) order.
    pub probes: Vec<ProbeSet>,
    /// Client aggregate records, in (network, time) order.
    pub clients: Vec<ClientSample>,
    /// Length of the probe trace (seconds); 24 h in the paper.
    pub probe_horizon_s: f64,
    /// Length of the client trace (seconds); 11 h in the paper.
    pub client_horizon_s: f64,
}

impl Dataset {
    /// Metadata of a network. `O(1)` when `networks` is the usual dense
    /// id-indexed vector; falls back to a scan for filtered datasets (see
    /// [`Dataset::filter_networks`]) whose kept set has gaps.
    pub fn meta(&self, id: NetworkId) -> Option<&NetworkMeta> {
        match self.networks.get(id.0 as usize) {
            Some(m) if m.id == id => Some(m),
            _ => self.networks.iter().find(|m| m.id == id),
        }
    }

    /// Probe sets of one PHY family (most analyses split b/g from n).
    pub fn probes_for_phy(&self, phy: Phy) -> impl Iterator<Item = &ProbeSet> {
        self.probes.iter().filter(move |p| p.phy == phy)
    }

    /// Probe sets of one network (all PHYs).
    pub fn probes_for_network(&self, id: NetworkId) -> impl Iterator<Item = &ProbeSet> {
        self.probes.iter().filter(move |p| p.network == id)
    }

    /// Networks with at least `n` APs (the §5 analyses use `n = 5`).
    pub fn networks_with_at_least(&self, n: usize) -> impl Iterator<Item = &NetworkMeta> {
        self.networks.iter().filter(move |m| m.n_aps >= n)
    }

    /// Networks of a given environment.
    pub fn networks_in_env(&self, env: EnvLabel) -> impl Iterator<Item = &NetworkMeta> {
        self.networks.iter().filter(move |m| m.env == env)
    }

    /// Client samples of one network.
    pub fn clients_for_network(&self, id: NetworkId) -> impl Iterator<Item = &ClientSample> {
        self.clients.iter().filter(move |c| c.network == id)
    }

    /// All directed links `(network, sender, receiver)` that ever produced a
    /// probe set, with their report counts — a cheap structural summary.
    pub fn link_report_counts(&self) -> BTreeMap<(NetworkId, ApId, ApId), usize> {
        let mut map = BTreeMap::new();
        for p in &self.probes {
            *map.entry((p.network, p.sender, p.receiver)).or_insert(0) += 1;
        }
        map
    }

    /// Total AP count across networks.
    pub fn total_aps(&self) -> usize {
        self.networks.iter().map(|m| m.n_aps).sum()
    }

    /// Saves as pretty JSON (interchange format; see [`crate::codec`] for
    /// the compact binary form).
    pub fn save_json(&self, path: &Path) -> io::Result<()> {
        let file = std::fs::File::create(path)?;
        serde_json::to_writer(io::BufWriter::new(file), self)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Loads from JSON.
    pub fn load_json(path: &Path) -> io::Result<Self> {
        let file = std::fs::File::open(path)?;
        serde_json::from_reader(io::BufReader::new(file))
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Shifts every network id in the dataset — metadata, probe reports,
    /// and client samples — up by `by`. Multi-seed ensembles use this to
    /// tag each seed's replica networks into a disjoint id range (seed `k`
    /// of an `n`-network campaign occupies ids `k·n .. (k+1)·n`) so
    /// per-seed datasets can [`Dataset::merge`] into one ensemble dataset,
    /// or stream in ascending-id order through a shared chunked builder.
    pub fn offset_network_ids(&mut self, by: u32) {
        for m in &mut self.networks {
            m.id = NetworkId(m.id.0 + by);
        }
        for p in &mut self.probes {
            p.network = NetworkId(p.network.0 + by);
        }
        for c in &mut self.clients {
            c.network = NetworkId(c.network.0 + by);
        }
    }

    /// Merges another dataset (disjoint networks) into this one. Network ids
    /// must already be globally unique — the campaign runner guarantees it.
    ///
    /// # Index invalidation
    ///
    /// Merging appends to `probes`, so any [`crate::DatasetIndex`] built
    /// over either input is stale afterwards (a stale index is rejected by
    /// [`crate::DatasetView::new`]). The index holds no incremental state:
    /// rebuilding after the merge yields exactly the index of the merged
    /// dataset — merge-then-index equals index-of-merged.
    pub fn merge(&mut self, other: Dataset) {
        // Keep `networks` indexable by id: grow and place by id.
        for meta in other.networks {
            let idx = meta.id.0 as usize;
            if self.networks.len() <= idx {
                self.networks.resize(
                    idx + 1,
                    NetworkMeta {
                        id: NetworkId(u32::MAX),
                        env: EnvLabel::Mixed,
                        n_aps: 0,
                        radios: Vec::new(),
                        location: String::new(),
                    },
                );
            }
            self.networks[idx] = meta;
        }
        self.probes.extend(other.probes);
        self.clients.extend(other.clients);
        self.probe_horizon_s = self.probe_horizon_s.max(other.probe_horizon_s);
        self.client_horizon_s = self.client_horizon_s.max(other.client_horizon_s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::RateObs;
    use mesh11_phy::BitRate;

    fn tiny_dataset() -> Dataset {
        let meta = |i: u32, env, n| NetworkMeta {
            id: NetworkId(i),
            env,
            n_aps: n,
            radios: vec![Phy::Bg],
            location: "Testville".into(),
        };
        let probe = |net: u32, s: u32, r: u32, t: f64| ProbeSet {
            network: NetworkId(net),
            phy: Phy::Bg,
            time_s: t,
            sender: ApId(s),
            receiver: ApId(r),
            obs: vec![RateObs {
                rate: BitRate::bg_mbps(1.0).unwrap(),
                loss: 0.1,
                snr_db: 20.0,
            }],
        };
        Dataset {
            networks: vec![meta(0, EnvLabel::Indoor, 3), meta(1, EnvLabel::Outdoor, 7)],
            probes: vec![
                probe(0, 0, 1, 300.0),
                probe(0, 0, 1, 600.0),
                probe(1, 2, 3, 300.0),
            ],
            clients: vec![ClientSample {
                network: NetworkId(0),
                ap: ApId(0),
                client: crate::ids::ClientId(0),
                bin_start_s: 0.0,
                assoc_requests: 1,
                data_pkts: 5,
            }],
            probe_horizon_s: 900.0,
            client_horizon_s: 300.0,
        }
    }

    #[test]
    fn filters() {
        let d = tiny_dataset();
        assert_eq!(d.probes_for_phy(Phy::Bg).count(), 3);
        assert_eq!(d.probes_for_phy(Phy::Ht).count(), 0);
        assert_eq!(d.probes_for_network(NetworkId(0)).count(), 2);
        assert_eq!(d.networks_with_at_least(5).count(), 1);
        assert_eq!(d.networks_in_env(EnvLabel::Indoor).count(), 1);
        assert_eq!(d.clients_for_network(NetworkId(0)).count(), 1);
        assert_eq!(d.total_aps(), 10);
    }

    #[test]
    fn link_counts() {
        let d = tiny_dataset();
        let counts = d.link_report_counts();
        assert_eq!(counts[&(NetworkId(0), ApId(0), ApId(1))], 2);
        assert_eq!(counts[&(NetworkId(1), ApId(2), ApId(3))], 1);
    }

    #[test]
    fn meta_lookup() {
        let d = tiny_dataset();
        assert_eq!(d.meta(NetworkId(1)).unwrap().n_aps, 7);
        assert!(d.meta(NetworkId(9)).is_none());
    }

    #[test]
    fn json_round_trip() {
        let d = tiny_dataset();
        let dir = std::env::temp_dir().join("mesh11-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ds.json");
        d.save_json(&path).unwrap();
        let back = Dataset::load_json(&path).unwrap();
        assert_eq!(d, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn merge_combines() {
        let mut a = tiny_dataset();
        let mut b = tiny_dataset();
        // Shift b's network ids to be disjoint.
        b.offset_network_ids(2);
        a.merge(b);
        assert_eq!(a.networks.len(), 4);
        assert_eq!(a.probes.len(), 6);
        assert_eq!(a.meta(NetworkId(3)).unwrap().n_aps, 7);
    }

    #[test]
    fn offset_network_ids_retags_everything_and_nothing_else() {
        let orig = tiny_dataset();
        let mut shifted = orig.clone();
        shifted.offset_network_ids(5);
        assert_eq!(
            shifted.networks.iter().map(|m| m.id.0).collect::<Vec<_>>(),
            vec![5, 6]
        );
        assert!(shifted.probes.iter().all(|p| p.network.0 >= 5));
        assert!(shifted.clients.iter().all(|c| c.network.0 >= 5));
        // Only the tags moved: shifting back reproduces the original
        // byte for byte (payloads, times, and order untouched).
        shifted.offset_network_ids(0); // no-op
        let mut back = shifted.clone();
        for m in &mut back.networks {
            m.id = NetworkId(m.id.0 - 5);
        }
        for p in &mut back.probes {
            p.network = NetworkId(p.network.0 - 5);
        }
        for c in &mut back.clients {
            c.network = NetworkId(c.network.0 - 5);
        }
        assert_eq!(back, orig);
    }

    /// The documented invalidation contract: indexing after a merge gives
    /// exactly the index of the merged dataset, and a pre-merge index is
    /// rejected as stale.
    #[test]
    fn merge_then_index_equals_index_of_merged() {
        let mut a = tiny_dataset();
        let mut b = tiny_dataset();
        for m in &mut b.networks {
            m.id = NetworkId(m.id.0 + 2);
        }
        for p in &mut b.probes {
            p.network = NetworkId(p.network.0 + 2);
        }
        for c in &mut b.clients {
            c.network = NetworkId(c.network.0 + 2);
        }
        let stale = crate::DatasetIndex::build(&a);
        a.merge(b.clone());

        // Rebuild == index of an identical dataset assembled in one shot.
        let rebuilt = crate::DatasetIndex::build(&a);
        let mut oneshot = tiny_dataset();
        oneshot.networks.extend(b.networks);
        oneshot.probes.extend(b.probes);
        oneshot.clients.extend(b.clients);
        assert_eq!(rebuilt, crate::DatasetIndex::build(&oneshot));
        assert_eq!(
            rebuilt.link_report_counts(),
            a.link_report_counts(),
            "rebuilt index must agree with the full scan"
        );

        // The pre-merge index no longer matches and must be refused.
        assert_ne!(stale, rebuilt);
        assert!(std::panic::catch_unwind(|| crate::DatasetView::new(&a, &stale)).is_err());
    }
}
