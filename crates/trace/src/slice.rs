//! Dataset slicing: time windows and network subsets.
//!
//! The paper's own methodology slices its data ("a 24-hour snapshot", "an
//! 11-hour snapshot of this data"); these utilities give downstream
//! analyses the same power over any dataset — re-running an analysis on
//! the first vs second half of a trace, or on one environment's networks,
//! without re-simulating.

use mesh11_phy::Phy;

use crate::dataset::Dataset;
use crate::ids::{EnvLabel, NetworkId};

impl Dataset {
    /// The records whose timestamps fall in `[t0, t1)`, horizons adjusted.
    /// Network metadata is kept whole (it is time-invariant).
    pub fn time_window(&self, t0_s: f64, t1_s: f64) -> Dataset {
        assert!(t0_s <= t1_s, "window must be ordered");
        Dataset {
            networks: self.networks.clone(),
            probes: self
                .probes
                .iter()
                .filter(|p| (t0_s..t1_s).contains(&p.time_s))
                .cloned()
                .collect(),
            clients: self
                .clients
                .iter()
                .filter(|c| (t0_s..t1_s).contains(&c.bin_start_s))
                .copied()
                .collect(),
            probe_horizon_s: t1_s.min(self.probe_horizon_s),
            client_horizon_s: t1_s.min(self.client_horizon_s),
        }
    }

    /// Only the networks accepted by `keep` (and their records). Ids are
    /// preserved, so `networks` stays indexable only when the kept set is a
    /// prefix — use [`Dataset::meta`] lookups, which handle gaps, rather
    /// than positional indexing on filtered datasets.
    pub fn filter_networks(&self, keep: impl Fn(&crate::dataset::NetworkMeta) -> bool) -> Dataset {
        let kept: std::collections::BTreeSet<NetworkId> = self
            .networks
            .iter()
            .filter(|m| keep(m))
            .map(|m| m.id)
            .collect();
        Dataset {
            networks: self
                .networks
                .iter()
                .filter(|m| kept.contains(&m.id))
                .cloned()
                .collect(),
            probes: self
                .probes
                .iter()
                .filter(|p| kept.contains(&p.network))
                .cloned()
                .collect(),
            clients: self
                .clients
                .iter()
                .filter(|c| kept.contains(&c.network))
                .copied()
                .collect(),
            probe_horizon_s: self.probe_horizon_s,
            client_horizon_s: self.client_horizon_s,
        }
    }

    /// Shorthand: only networks of one environment.
    pub fn only_env(&self, env: EnvLabel) -> Dataset {
        self.filter_networks(|m| m.env == env)
    }

    /// Shorthand: only networks running `phy`.
    pub fn only_phy(&self, phy: Phy) -> Dataset {
        self.filter_networks(|m| m.radios.contains(&phy))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::NetworkMeta;
    use crate::ids::{ApId, ClientId};
    use crate::probe::{ProbeSet, RateObs};
    use crate::ClientSample;
    use mesh11_phy::BitRate;

    fn two_network_dataset() -> Dataset {
        let meta = |i: u32, env| NetworkMeta {
            id: NetworkId(i),
            env,
            n_aps: 3,
            radios: vec![if i == 0 { Phy::Bg } else { Phy::Ht }],
            location: String::new(),
        };
        let probe = |net: u32, t: f64| ProbeSet {
            network: NetworkId(net),
            phy: if net == 0 { Phy::Bg } else { Phy::Ht },
            time_s: t,
            sender: ApId(0),
            receiver: ApId(1),
            obs: vec![RateObs {
                rate: if net == 0 {
                    BitRate::bg_mbps(1.0).unwrap()
                } else {
                    BitRate::ht_mcs(0, false).unwrap()
                },
                loss: 0.0,
                snr_db: 20.0,
            }],
        };
        let client = |net: u32, bin: f64| ClientSample {
            network: NetworkId(net),
            ap: ApId(0),
            client: ClientId(0),
            bin_start_s: bin,
            assoc_requests: 1,
            data_pkts: 5,
        };
        Dataset {
            networks: vec![meta(0, EnvLabel::Indoor), meta(1, EnvLabel::Outdoor)],
            probes: vec![
                probe(0, 300.0),
                probe(0, 600.0),
                probe(1, 300.0),
                probe(1, 900.0),
            ],
            clients: vec![client(0, 0.0), client(0, 600.0), client(1, 300.0)],
            probe_horizon_s: 1_200.0,
            client_horizon_s: 900.0,
        }
    }

    #[test]
    fn time_window_halves() {
        let ds = two_network_dataset();
        let first = ds.time_window(0.0, 600.0);
        assert_eq!(first.probes.len(), 2, "t=300 twice");
        assert_eq!(first.clients.len(), 2, "bins 0 and 300");
        assert_eq!(first.probe_horizon_s, 600.0);
        let second = ds.time_window(600.0, 1_200.0);
        assert_eq!(second.probes.len(), 2, "t=600 and t=900");
        assert_eq!(second.clients.len(), 1);
        // Windows partition the records.
        assert_eq!(first.probes.len() + second.probes.len(), ds.probes.len());
    }

    #[test]
    #[should_panic(expected = "ordered")]
    fn time_window_rejects_reversed() {
        two_network_dataset().time_window(10.0, 5.0);
    }

    #[test]
    fn env_filter() {
        let ds = two_network_dataset();
        let indoor = ds.only_env(EnvLabel::Indoor);
        assert_eq!(indoor.networks.len(), 1);
        assert!(indoor.probes.iter().all(|p| p.network == NetworkId(0)));
        assert!(indoor.clients.iter().all(|c| c.network == NetworkId(0)));
        // Meta lookup still works by id on the kept network.
        assert!(indoor.meta(NetworkId(0)).is_some());
    }

    #[test]
    fn phy_filter() {
        let ds = two_network_dataset();
        let ht = ds.only_phy(Phy::Ht);
        assert_eq!(ht.networks.len(), 1);
        assert_eq!(ht.networks[0].id, NetworkId(1));
        assert_eq!(ht.probes.len(), 2);
    }

    #[test]
    fn filters_compose() {
        let ds = two_network_dataset();
        let composed = ds.only_env(EnvLabel::Indoor).time_window(0.0, 400.0);
        assert_eq!(composed.probes.len(), 1);
        assert_eq!(composed.clients.len(), 1);
    }
}
