//! The fold-style kernel contract for window-major analysis.
//!
//! Every heavy analysis kernel in the workspace has the same shape: an
//! accumulator is initialized, each window of the probe source is folded
//! into it (fanning out per network inside the window and merging the
//! per-network partials back in network order), and a finish step distills
//! the accumulated state into the kernel's output. [`FoldKernel`] names
//! that shape so a *window-major* scheduler can drive many kernels over a
//! single walk of the windows — each spilled window is decoded exactly
//! once, every registered kernel folds it while it is resident, and then
//! it is evicted.
//!
//! ## Byte-identity contract
//!
//! The scheduler threads each kernel's **single** partial sequentially
//! through the windows in window order (never folding windows into
//! separate partials and merging after the fact). Because windows are
//! network-aligned and walked in network order, every kernel sees exactly
//! the same accumulation sequence as a solo kernel-major walk — including
//! kernels whose partials carry order-sensitive float sums (bitrate
//! adaptation). Parallelism comes from the per-network fan-out *inside*
//! `fold` and from fanning *across* kernels (each mutates only its own
//! partial), never from reordering the window sequence.
//!
//! [`FoldKernel::merge`] exists for callers that *can* prove their partial
//! is order-insensitive (e.g. commutative integer counts) and want
//! cross-window parallelism; the window-major scheduler never calls it.

use crate::chunk::ProbeSource;
use crate::index::DatasetView;

/// A fold-style analysis kernel: `init → fold(window)* → finish`, with an
/// explicit `merge` for partials that tolerate re-association.
pub trait FoldKernel {
    /// The accumulated state threaded through the windows.
    type Partial: Send;
    /// The finished analysis result.
    type Output;

    /// A fresh (empty) partial.
    fn init(&self) -> Self::Partial;

    /// Folds one window view into the partial. Windows arrive in network
    /// order; implementations may fan out per network internally but must
    /// merge those per-network results back in network order.
    fn fold(&self, view: DatasetView<'_>, partial: &mut Self::Partial);

    /// Merges a later partial into an earlier one. Only exact for kernels
    /// whose partials are order-insensitive; kernels with order-sensitive
    /// accumulation (float sums) document the caveat and are only ever
    /// driven sequentially by the window-major scheduler.
    fn merge(&self, into: &mut Self::Partial, from: Self::Partial);

    /// Distills the accumulated partial into the kernel's output.
    fn finish(&self, partial: Self::Partial) -> Self::Output;
}

/// Runs one kernel to completion over a probe source — the kernel-major
/// oracle path every legacy `*_from` entry point delegates to.
pub fn run_fold<K: FoldKernel>(src: &ProbeSource<'_>, kernel: &K) -> K::Output {
    let mut partial = kernel.init();
    src.for_each_view(|view| kernel.fold(view, &mut partial));
    kernel.finish(partial)
}

/// The object-safe face of a running fold, so a scheduler can drive a
/// heterogeneous set of kernels over one window walk.
pub trait WindowFold: Send {
    /// Folds one window into this kernel's partial.
    fn fold_window(&mut self, view: DatasetView<'_>);
}

/// A kernel paired with its in-flight partial. Construct one per kernel,
/// drive them all through [`fold_windows`], then take each output with
/// [`Running::finish`].
pub struct Running<K: FoldKernel> {
    kernel: K,
    partial: K::Partial,
}

impl<K: FoldKernel> Running<K> {
    /// Starts a kernel with a fresh partial.
    pub fn new(kernel: K) -> Self {
        let partial = kernel.init();
        Self { kernel, partial }
    }

    /// Finishes the fold, consuming the runner.
    pub fn finish(self) -> K::Output {
        self.kernel.finish(self.partial)
    }
}

impl<K: FoldKernel + Send> WindowFold for Running<K>
where
    K::Partial: Send,
{
    fn fold_window(&mut self, view: DatasetView<'_>) {
        self.kernel.fold(view, &mut self.partial);
    }
}

/// The window-major scheduler: one walk over the source's windows, every
/// kernel folding each window while it is resident. For a chunked source
/// this materializes each window exactly once (`window_builds ==
/// n_windows` when no other walk runs); for a resident source there is a
/// single "window" — the whole view.
///
/// Kernels fold each window concurrently (they share the read-only view
/// and own disjoint partials); the window *sequence* stays strictly
/// ordered, preserving byte identity at any thread count.
pub fn fold_windows(src: &ProbeSource<'_>, kernels: &mut [&mut dyn WindowFold]) {
    use rayon::prelude::*;
    src.for_each_view(|view| {
        kernels.par_iter_mut().for_each(|k| k.fold_window(view));
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::{ChunkConfig, ChunkedDataset};
    use crate::dataset::{Dataset, NetworkMeta};
    use crate::ids::{ApId, NetworkId};
    use crate::probe::{ProbeSet, RateObs};
    use mesh11_phy::{BitRate, Phy};

    /// Counts probe sets per fold call — enough to show the scheduler
    /// visits every window exactly once and sums match the whole view.
    struct CountProbes;

    impl FoldKernel for CountProbes {
        type Partial = (usize, usize); // (probes, windows folded)
        type Output = (usize, usize);
        fn init(&self) -> Self::Partial {
            (0, 0)
        }
        fn fold(&self, view: DatasetView<'_>, partial: &mut Self::Partial) {
            partial.0 += view.dataset().probes.len();
            partial.1 += 1;
        }
        fn merge(&self, into: &mut Self::Partial, from: Self::Partial) {
            into.0 += from.0;
            into.1 += from.1;
        }
        fn finish(&self, partial: Self::Partial) -> Self::Output {
            partial
        }
    }

    fn toy_dataset(nets: u32, probes_per_net: u32) -> Dataset {
        let mut ds = Dataset::default();
        for n in 0..nets {
            ds.networks.push(NetworkMeta {
                id: NetworkId(n),
                env: crate::ids::EnvLabel::Indoor,
                n_aps: 4,
                radios: vec![Phy::Bg],
                location: "toy".into(),
            });
            for i in 0..probes_per_net {
                ds.probes.push(ProbeSet {
                    network: NetworkId(n),
                    phy: Phy::Bg,
                    time_s: f64::from(i),
                    sender: ApId(i % 2),
                    receiver: ApId(2 + i % 2),
                    obs: vec![RateObs {
                        rate: BitRate::bg_mbps(1.0).unwrap(),
                        loss: 0.25,
                        snr_db: 12.0,
                    }],
                });
            }
        }
        ds
    }

    #[test]
    fn fold_windows_visits_each_window_once() {
        let ds = toy_dataset(6, 40);
        let cfg = ChunkConfig {
            chunk_capacity: 16,
            resident_chunks: 2,
            window_probes: 50,
            ..ChunkConfig::tiny()
        };
        let chunked = ChunkedDataset::from_dataset(&ds, cfg).expect("chunk");
        let n_windows = chunked.n_windows();
        assert!(n_windows > 1, "test needs several windows");
        let src = ProbeSource::Chunked(&chunked);

        let mut a = Running::new(CountProbes);
        let mut b = Running::new(CountProbes);
        {
            let mut kernels: Vec<&mut dyn WindowFold> = vec![&mut a, &mut b];
            fold_windows(&src, &mut kernels);
        }
        let (probes_a, folds_a) = a.finish();
        let (probes_b, folds_b) = b.finish();
        assert_eq!(probes_a, ds.probes.len());
        assert_eq!(probes_b, ds.probes.len());
        assert_eq!(folds_a, n_windows);
        assert_eq!(folds_b, n_windows);
        // One walk, two kernels: each window was built exactly once.
        assert_eq!(chunked.stats().window_builds, n_windows as u64);
    }

    #[test]
    fn run_fold_matches_whole_view() {
        let ds = toy_dataset(3, 25);
        let ix = crate::index::DatasetIndex::build(&ds);
        let view = DatasetView::new(&ds, &ix);
        let whole = run_fold(&ProbeSource::Whole(view), &CountProbes);
        assert_eq!(whole, (ds.probes.len(), 1));
    }
}
