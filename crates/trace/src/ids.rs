//! Identifier newtypes shared across the toolkit.
//!
//! All ids are small dense integers: `NetworkId` is campaign-scoped,
//! `ApId`/`ClientId` are network-scoped. Analyses exploit the density to use
//! flat arrays instead of hash maps.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A network within a campaign (dense, `0..n_networks`).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct NetworkId(pub u32);

impl fmt::Display for NetworkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "net{:03}", self.0)
    }
}

/// An access point within a network (dense, `0..n_aps`).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct ApId(pub u32);

impl ApId {
    /// The id as a flat array index.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ApId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ap{}", self.0)
    }
}

/// A client device within a network (dense per network).
///
/// Clients are anonymized MAC addresses in the original data; here they are
/// dense integers. The mobility analysis re-identifies a client that
/// disappears for more than five minutes as a *new* client (paper §7), a
/// transformation performed at analysis time, not here.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct ClientId(pub u32);

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "client{}", self.0)
    }
}

/// Environment label carried in network metadata.
///
/// Mirrors the paper's classification: 72 indoor, 17 outdoor, and 21 mixed
/// networks, the last excluded from environment-keyed analyses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum EnvLabel {
    /// All nodes indoors.
    Indoor,
    /// All nodes outdoors.
    Outdoor,
    /// Mixed indoor/outdoor deployment.
    Mixed,
}

impl EnvLabel {
    /// Lowercase display name.
    pub fn name(self) -> &'static str {
        match self {
            EnvLabel::Indoor => "indoor",
            EnvLabel::Outdoor => "outdoor",
            EnvLabel::Mixed => "mixed",
        }
    }

    /// Whether this label participates in indoor-vs-outdoor comparisons.
    pub fn is_pure(self) -> bool {
        !matches!(self, EnvLabel::Mixed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(NetworkId(3).to_string(), "net003");
        assert_eq!(ApId(12).to_string(), "ap12");
        assert_eq!(ClientId(9).to_string(), "client9");
    }

    #[test]
    fn ap_idx() {
        assert_eq!(ApId(7).idx(), 7);
    }

    #[test]
    fn env_label_purity() {
        assert!(EnvLabel::Indoor.is_pure());
        assert!(EnvLabel::Outdoor.is_pure());
        assert!(!EnvLabel::Mixed.is_pure());
        assert_eq!(EnvLabel::Mixed.name(), "mixed");
    }

    #[test]
    fn ids_order_densely() {
        assert!(ApId(1) < ApId(2));
        assert!(NetworkId(0) < NetworkId(1));
    }
}
