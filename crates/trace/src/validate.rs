//! Dataset integrity validation.
//!
//! The analyses assume well-formed inputs (dense ids, probability-valued
//! losses, in-horizon timestamps, per-set rate/PHY consistency). Simulated
//! datasets satisfy these by construction; *imported* ones — converted from
//! a real deployment's logs, the use-case `mesh11 analyze` exists for —
//! should be checked first. `mesh11 inspect` runs this automatically.

use mesh11_phy::Phy;

use crate::dataset::Dataset;

/// A single integrity violation, with enough context to locate it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// What is wrong.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl Dataset {
    /// Checks structural integrity; returns every violation found (bounded
    /// at `limit` to keep reports readable on badly broken inputs).
    pub fn validate(&self, limit: usize) -> Vec<Violation> {
        let mut out = Vec::new();
        let push = |out: &mut Vec<Violation>, msg: String| {
            if out.len() < limit {
                out.push(Violation { message: msg });
            }
        };

        // Metadata sanity.
        for m in &self.networks {
            if m.n_aps == 0 {
                push(&mut out, format!("{}: zero APs", m.id));
            }
            if m.radios.is_empty() {
                push(&mut out, format!("{}: no radios", m.id));
            }
        }

        // Probe sets.
        for (i, p) in self.probes.iter().enumerate() {
            let Some(meta) = self.meta(p.network) else {
                push(
                    &mut out,
                    format!("probe[{i}]: unknown network {}", p.network),
                );
                continue;
            };
            if !meta.radios.contains(&p.phy) {
                push(
                    &mut out,
                    format!("probe[{i}]: {} has no {} radio", p.network, p.phy),
                );
            }
            let n = meta.n_aps as u32;
            if p.sender.0 >= n || p.receiver.0 >= n {
                push(
                    &mut out,
                    format!(
                        "probe[{i}]: AP ids {}→{} out of range (n_aps {})",
                        p.sender, p.receiver, n
                    ),
                );
            }
            if p.sender == p.receiver {
                push(&mut out, format!("probe[{i}]: self link {}", p.sender));
            }
            if !(0.0..=self.probe_horizon_s).contains(&p.time_s) {
                push(
                    &mut out,
                    format!("probe[{i}]: time {} outside horizon", p.time_s),
                );
            }
            if p.obs.is_empty() {
                push(&mut out, format!("probe[{i}]: no observations"));
            }
            for o in &p.obs {
                if !(0.0..=1.0).contains(&o.loss) || !o.loss.is_finite() {
                    push(
                        &mut out,
                        format!("probe[{i}]: loss {} not a probability", o.loss),
                    );
                }
                if !o.snr_db.is_finite() {
                    push(&mut out, format!("probe[{i}]: non-finite SNR"));
                }
                if o.rate.phy() != p.phy {
                    push(
                        &mut out,
                        format!("probe[{i}]: rate {} does not belong to {}", o.rate, p.phy),
                    );
                }
            }
        }

        // Client samples.
        for (i, c) in self.clients.iter().enumerate() {
            let Some(meta) = self.meta(c.network) else {
                push(
                    &mut out,
                    format!("client[{i}]: unknown network {}", c.network),
                );
                continue;
            };
            if c.ap.0 >= meta.n_aps as u32 {
                push(&mut out, format!("client[{i}]: AP {} out of range", c.ap));
            }
            if !(0.0..=self.client_horizon_s).contains(&c.bin_start_s) {
                push(
                    &mut out,
                    format!("client[{i}]: bin {} outside horizon", c.bin_start_s),
                );
            }
            if c.bin_start_s % crate::client::CLIENT_BIN_S != 0.0 {
                push(
                    &mut out,
                    format!("client[{i}]: bin start {} not bin-aligned", c.bin_start_s),
                );
            }
        }

        // PHY coverage: any probes for a PHY no network declares?
        for phy in [Phy::Bg, Phy::Ht] {
            let declared = self.networks.iter().any(|m| m.radios.contains(&phy));
            if !declared && self.probes_for_phy(phy).next().is_some() {
                push(&mut out, format!("probes exist for undeclared PHY {phy}"));
            }
        }

        out
    }

    /// True when [`Dataset::validate`] finds nothing.
    pub fn is_valid(&self) -> bool {
        self.validate(1).is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::NetworkMeta;
    use crate::ids::{ApId, ClientId, EnvLabel, NetworkId};
    use crate::probe::{ProbeSet, RateObs};
    use crate::ClientSample;
    use mesh11_phy::BitRate;

    fn valid_dataset() -> Dataset {
        Dataset {
            networks: vec![NetworkMeta {
                id: NetworkId(0),
                env: EnvLabel::Indoor,
                n_aps: 3,
                radios: vec![Phy::Bg],
                location: String::new(),
            }],
            probes: vec![ProbeSet {
                network: NetworkId(0),
                phy: Phy::Bg,
                time_s: 300.0,
                sender: ApId(0),
                receiver: ApId(1),
                obs: vec![RateObs {
                    rate: BitRate::bg_mbps(1.0).unwrap(),
                    loss: 0.25,
                    snr_db: 18.0,
                }],
            }],
            clients: vec![ClientSample {
                network: NetworkId(0),
                ap: ApId(2),
                client: ClientId(0),
                bin_start_s: 600.0,
                assoc_requests: 1,
                data_pkts: 3,
            }],
            probe_horizon_s: 3_600.0,
            client_horizon_s: 3_600.0,
        }
    }

    #[test]
    fn valid_dataset_passes() {
        let ds = valid_dataset();
        assert!(ds.validate(100).is_empty(), "{:?}", ds.validate(100));
        assert!(ds.is_valid());
    }

    #[test]
    fn catches_bad_loss() {
        let mut ds = valid_dataset();
        ds.probes[0].obs[0].loss = 1.5;
        let v = ds.validate(100);
        assert!(
            v.iter().any(|v| v.message.contains("not a probability")),
            "{v:?}"
        );
        assert!(!ds.is_valid());
    }

    #[test]
    fn catches_out_of_range_ids() {
        let mut ds = valid_dataset();
        ds.probes[0].receiver = ApId(9);
        assert!(ds
            .validate(100)
            .iter()
            .any(|v| v.message.contains("out of range")));

        let mut ds2 = valid_dataset();
        ds2.clients[0].ap = ApId(9);
        assert!(ds2
            .validate(100)
            .iter()
            .any(|v| v.message.contains("out of range")));
    }

    #[test]
    fn catches_unknown_network_and_self_link() {
        let mut ds = valid_dataset();
        ds.probes[0].network = NetworkId(7);
        assert!(ds
            .validate(100)
            .iter()
            .any(|v| v.message.contains("unknown network")));

        let mut ds2 = valid_dataset();
        ds2.probes[0].receiver = ds2.probes[0].sender;
        assert!(ds2
            .validate(100)
            .iter()
            .any(|v| v.message.contains("self link")));
    }

    #[test]
    fn catches_phy_mismatches() {
        // Rate family differs from the probe's PHY.
        let mut ds = valid_dataset();
        ds.probes[0].obs[0].rate = BitRate::ht_mcs(0, false).unwrap();
        assert!(ds
            .validate(100)
            .iter()
            .any(|v| v.message.contains("does not belong")));

        // Probe claims a radio the network doesn't have.
        let mut ds2 = valid_dataset();
        ds2.probes[0].phy = Phy::Ht;
        let v = ds2.validate(100);
        assert!(
            v.iter().any(|v| v.message.contains("has no 802.11n radio")),
            "{v:?}"
        );
    }

    #[test]
    fn catches_horizon_and_alignment() {
        let mut ds = valid_dataset();
        ds.probes[0].time_s = 999_999.0;
        assert!(ds
            .validate(100)
            .iter()
            .any(|v| v.message.contains("outside horizon")));

        let mut ds2 = valid_dataset();
        ds2.clients[0].bin_start_s = 601.0;
        assert!(ds2
            .validate(100)
            .iter()
            .any(|v| v.message.contains("bin-aligned")));
    }

    #[test]
    fn limit_bounds_output() {
        let mut ds = valid_dataset();
        // Make many violations.
        for _ in 0..50 {
            let mut p = ds.probes[0].clone();
            p.obs[0].loss = 2.0;
            ds.probes.push(p);
        }
        assert_eq!(ds.validate(5).len(), 5);
    }
}
