//! Delivery-rate matrices.
//!
//! §5 and §6 of the paper operate not on individual probe sets but on the
//! per-(network, bit-rate) matrix of directed packet success rates. A
//! [`DeliveryMatrix`] is that matrix: `p[i][j]` is the average delivery
//! probability of broadcasts from AP `i` as heard by AP `j`, aggregated over
//! the whole trace. Pairs that never produced a probe set at the rate have
//! delivery 0 — exactly what the real infrastructure would report.

use mesh11_phy::BitRate;
use serde::{Deserialize, Serialize};

use crate::ids::{ApId, NetworkId};
use crate::probe::ProbeSet;

/// Directed delivery probabilities for one (network, rate).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeliveryMatrix {
    /// The network.
    pub network: NetworkId,
    /// The bit rate the probes were sent at.
    pub rate: BitRate,
    n: usize,
    /// Row-major: `p[from * n + to]`.
    p: Vec<f64>,
}

impl DeliveryMatrix {
    /// An all-zero matrix.
    pub fn new_zero(network: NetworkId, rate: BitRate, n_aps: usize) -> Self {
        Self {
            network,
            rate,
            n: n_aps,
            p: vec![0.0; n_aps * n_aps],
        }
    }

    /// Builds the matrix by averaging probe-set deliveries over the trace.
    ///
    /// `probes` may contain reports for other networks or rates; they are
    /// filtered out, so passing `dataset.probes.iter()` works.
    pub fn from_probes<'a>(
        network: NetworkId,
        rate: BitRate,
        n_aps: usize,
        probes: impl IntoIterator<Item = &'a ProbeSet>,
    ) -> Self {
        let mut sum = vec![0.0f64; n_aps * n_aps];
        let mut cnt = vec![0u32; n_aps * n_aps];
        for ps in probes {
            if ps.network != network {
                continue;
            }
            let Some(obs) = ps.obs_for(rate) else {
                continue;
            };
            let idx = ps.sender.idx() * n_aps + ps.receiver.idx();
            sum[idx] += obs.delivery();
            cnt[idx] += 1;
        }
        let p = sum
            .iter()
            .zip(&cnt)
            .map(|(&s, &c)| if c == 0 { 0.0 } else { s / c as f64 })
            .collect();
        Self {
            network,
            rate,
            n: n_aps,
            p,
        }
    }

    /// Assembles a matrix from an already-averaged row-major probability
    /// vector — the indexed single-pass kernels (`DatasetView::
    /// delivery_stack`) compute the averages themselves.
    pub(crate) fn from_parts(network: NetworkId, rate: BitRate, n_aps: usize, p: Vec<f64>) -> Self {
        debug_assert_eq!(p.len(), n_aps * n_aps);
        Self {
            network,
            rate,
            n: n_aps,
            p,
        }
    }

    /// Number of APs.
    pub fn n_aps(&self) -> usize {
        self.n
    }

    /// Delivery probability `from → to`. The diagonal is 0 by convention.
    pub fn get(&self, from: ApId, to: ApId) -> f64 {
        if from == to {
            return 0.0;
        }
        self.p[from.idx() * self.n + to.idx()]
    }

    /// Sets one directed entry (used by tests and synthetic topologies).
    pub fn set(&mut self, from: ApId, to: ApId, delivery: f64) {
        assert!(
            (0.0..=1.0).contains(&delivery),
            "delivery must be a probability"
        );
        assert_ne!(from, to, "no self links");
        self.p[from.idx() * self.n + to.idx()] = delivery;
    }

    /// Iterates over every ordered pair `(from, to, delivery)`, diagonal
    /// excluded.
    pub fn directed_pairs(&self) -> impl Iterator<Item = (ApId, ApId, f64)> + '_ {
        (0..self.n).flat_map(move |i| {
            (0..self.n)
                .filter(move |&j| i != j)
                .map(move |j| (ApId(i as u32), ApId(j as u32), self.p[i * self.n + j]))
        })
    }

    /// The mean of the two directions — the paper's "probes sent between
    /// them" hearing statistic for §6.
    pub fn symmetric_mean(&self, a: ApId, b: ApId) -> f64 {
        0.5 * (self.get(a, b) + self.get(b, a))
    }

    /// Forward/reverse delivery ratio for Fig 5.2, `None` when the reverse
    /// direction was never heard (the ratio is undefined, matching the
    /// paper's per-pair CDF which only includes measurable pairs).
    pub fn asymmetry_ratio(&self, a: ApId, b: ApId) -> Option<f64> {
        let fwd = self.get(a, b);
        let rev = self.get(b, a);
        (rev > 0.0).then(|| fwd / rev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::RateObs;
    use mesh11_phy::Phy;

    fn r(mbps: f64) -> BitRate {
        BitRate::bg_mbps(mbps).unwrap()
    }

    fn ps(net: u32, s: u32, rx: u32, rate: BitRate, loss: f64) -> ProbeSet {
        ProbeSet {
            network: NetworkId(net),
            phy: Phy::Bg,
            time_s: 0.0,
            sender: ApId(s),
            receiver: ApId(rx),
            obs: vec![RateObs {
                rate,
                loss,
                snr_db: 15.0,
            }],
        }
    }

    #[test]
    fn averages_reports() {
        let probes = vec![
            ps(0, 0, 1, r(1.0), 0.2),
            ps(0, 0, 1, r(1.0), 0.4),
            ps(0, 1, 0, r(1.0), 0.5),
        ];
        let m = DeliveryMatrix::from_probes(NetworkId(0), r(1.0), 2, &probes);
        assert!((m.get(ApId(0), ApId(1)) - 0.7).abs() < 1e-12);
        assert!((m.get(ApId(1), ApId(0)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn filters_other_networks_and_rates() {
        let probes = vec![
            ps(1, 0, 1, r(1.0), 0.0), // wrong network
            ps(0, 0, 1, r(6.0), 0.0), // wrong rate
        ];
        let m = DeliveryMatrix::from_probes(NetworkId(0), r(1.0), 2, &probes);
        assert_eq!(m.get(ApId(0), ApId(1)), 0.0);
    }

    #[test]
    fn unheard_pairs_are_zero() {
        let m = DeliveryMatrix::from_probes(NetworkId(0), r(1.0), 3, &[]);
        for (_, _, p) in m.directed_pairs() {
            assert_eq!(p, 0.0);
        }
        assert_eq!(m.directed_pairs().count(), 6);
    }

    #[test]
    fn diagonal_is_zero() {
        let mut m = DeliveryMatrix::new_zero(NetworkId(0), r(1.0), 2);
        m.set(ApId(0), ApId(1), 0.9);
        assert_eq!(m.get(ApId(0), ApId(0)), 0.0);
        assert_eq!(m.get(ApId(0), ApId(1)), 0.9);
    }

    #[test]
    fn symmetric_mean_and_asymmetry() {
        let mut m = DeliveryMatrix::new_zero(NetworkId(0), r(1.0), 2);
        m.set(ApId(0), ApId(1), 0.8);
        m.set(ApId(1), ApId(0), 0.4);
        assert!((m.symmetric_mean(ApId(0), ApId(1)) - 0.6).abs() < 1e-12);
        assert!((m.asymmetry_ratio(ApId(0), ApId(1)).unwrap() - 2.0).abs() < 1e-12);
        assert!((m.asymmetry_ratio(ApId(1), ApId(0)).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn asymmetry_undefined_when_silent() {
        let mut m = DeliveryMatrix::new_zero(NetworkId(0), r(1.0), 2);
        m.set(ApId(0), ApId(1), 0.8);
        assert_eq!(m.asymmetry_ratio(ApId(0), ApId(1)), None);
    }

    #[test]
    #[should_panic(expected = "no self links")]
    fn set_rejects_diagonal() {
        let mut m = DeliveryMatrix::new_zero(NetworkId(0), r(1.0), 2);
        m.set(ApId(0), ApId(0), 0.5);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn set_rejects_bad_probability() {
        let mut m = DeliveryMatrix::new_zero(NetworkId(0), r(1.0), 2);
        m.set(ApId(0), ApId(1), 1.5);
    }
}
