//! Dataset-level SNR variability statistics (paper Fig 3.1).
//!
//! Three spreads, each a CDF in the paper:
//!
//! * **within a probe set** — the σ of the per-rate most-recent SNRs of one
//!   report (< 5 dB ≥ 97.5% of the time in the paper; justifies using the
//!   median as "the SNR of the probe set");
//! * **per link** — the σ of a directed link's probe-set SNRs over time;
//! * **per network** — the σ over every probe-set SNR in a network (large:
//!   each network spans a diverse range of link qualities).

use std::collections::BTreeMap;

use rayon::prelude::*;

use crate::chunk::ProbeSource;
use crate::dataset::Dataset;
use crate::ids::{ApId, NetworkId};

/// Splits `0..n` into contiguous ranges for parallel walks whose outputs
/// concatenate back in index order.
fn split_ranges(n: usize) -> Vec<std::ops::Range<usize>> {
    let step = n.div_ceil(rayon::current_num_threads().max(1) * 4).max(1);
    (0..n).step_by(step).map(|s| s..(s + step).min(n)).collect()
}

/// Groups probe indices by network, in `NetworkId` order; indices within a
/// group stay in dataset order. Per-network outputs concatenated in this
/// order rebuild exactly what a `BTreeMap` keyed with `NetworkId` leading
/// would flatten to.
fn probes_by_network(ds: &Dataset) -> Vec<Vec<u32>> {
    let mut m: BTreeMap<NetworkId, Vec<u32>> = BTreeMap::new();
    for (i, p) in ds.probes.iter().enumerate() {
        m.entry(p.network).or_default().push(i as u32);
    }
    m.into_values().collect()
}

/// Which of the Fig 3.1 spreads a [`SigmaKernel`] extracts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SigmaKind {
    /// σ within each probe set.
    ProbeSet,
    /// σ of each link's probe-set SNRs over time.
    Link,
    /// σ of each length-`k` run of a link's most recent SNRs.
    RecentK(usize),
    /// σ over every probe-set SNR of a network.
    Network,
}

/// The fold-style form of the Fig 3.1 sigma extraction: every spread here
/// flattens a `BTreeMap` keyed with `NetworkId` leading, and windows are
/// consecutive network runs, so per-window outputs concatenate to exactly
/// the whole-dataset output (the partial is order-insensitive up to the
/// window order the scheduler already guarantees).
#[derive(Debug, Clone, Copy)]
pub struct SigmaKernel(pub SigmaKind);

impl crate::fold::FoldKernel for SigmaKernel {
    type Partial = Vec<f64>;
    type Output = Vec<f64>;

    fn init(&self) -> Vec<f64> {
        Vec::new()
    }

    fn fold(&self, view: crate::index::DatasetView<'_>, partial: &mut Vec<f64>) {
        let ds = view.dataset();
        partial.extend(match self.0 {
            SigmaKind::ProbeSet => probe_set_sigmas(ds),
            SigmaKind::Link => link_sigmas(ds),
            SigmaKind::RecentK(k) => recent_k_sigmas(ds, k),
            SigmaKind::Network => network_sigmas(ds),
        });
    }

    fn merge(&self, into: &mut Vec<f64>, from: Vec<f64>) {
        into.extend(from);
    }

    fn finish(&self, partial: Vec<f64>) -> Vec<f64> {
        partial
    }
}

/// [`probe_set_sigmas`] over a whole or chunked source.
pub fn probe_set_sigmas_from(src: &ProbeSource<'_>) -> Vec<f64> {
    crate::fold::run_fold(src, &SigmaKernel(SigmaKind::ProbeSet))
}

/// [`link_sigmas`] over a whole or chunked source.
pub fn link_sigmas_from(src: &ProbeSource<'_>) -> Vec<f64> {
    crate::fold::run_fold(src, &SigmaKernel(SigmaKind::Link))
}

/// [`recent_k_sigmas`] over a whole or chunked source.
pub fn recent_k_sigmas_from(src: &ProbeSource<'_>, k: usize) -> Vec<f64> {
    crate::fold::run_fold(src, &SigmaKernel(SigmaKind::RecentK(k)))
}

/// [`network_sigmas`] over a whole or chunked source.
pub fn network_sigmas_from(src: &ProbeSource<'_>) -> Vec<f64> {
    crate::fold::run_fold(src, &SigmaKernel(SigmaKind::Network))
}

/// σ of SNR within each probe set (one value per probe set).
pub fn probe_set_sigmas(ds: &Dataset) -> Vec<f64> {
    let parts: Vec<Vec<f64>> = split_ranges(ds.probes.len())
        .par_iter()
        .map(|r| {
            ds.probes[r.clone()]
                .iter()
                .map(|p| p.snr_stddev())
                .collect()
        })
        .collect();
    parts.into_iter().flatten().collect()
}

/// σ of probe-set SNR over time, per directed link (links with at least two
/// reports).
pub fn link_sigmas(ds: &Dataset) -> Vec<f64> {
    let parts: Vec<Vec<f64>> = probes_by_network(ds)
        .par_iter()
        .map(|idxs| {
            let mut per_link: BTreeMap<(ApId, ApId), Vec<f64>> = BTreeMap::new();
            for &i in idxs {
                let p = &ds.probes[i as usize];
                per_link
                    .entry((p.sender, p.receiver))
                    .or_default()
                    .push(p.snr_db());
            }
            per_link
                .values()
                .filter_map(|snrs| mesh11_stats::stddev(snrs))
                .collect()
        })
        .collect();
    parts.into_iter().flatten().collect()
}

/// σ of the `k` most recent probe-set SNRs per directed link — the paper's
/// unpictured §3.1.1 robustness note: "the standard deviation of the k most
/// recent SNR values on a link … comparable to the standard deviation
/// within a probe set for small values of k", which justifies using the
/// most recent SNR instead of an average.
///
/// One value per (link, window position): every length-`k` run of a link's
/// time-ordered reports contributes its σ.
pub fn recent_k_sigmas(ds: &Dataset, k: usize) -> Vec<f64> {
    assert!(k >= 2, "a spread needs at least two values");
    let parts: Vec<Vec<f64>> = probes_by_network(ds)
        .par_iter()
        .map(|idxs| {
            let mut per_link: BTreeMap<(ApId, ApId), Vec<(f64, f64)>> = BTreeMap::new();
            for &i in idxs {
                let p = &ds.probes[i as usize];
                per_link
                    .entry((p.sender, p.receiver))
                    .or_default()
                    .push((p.time_s, p.snr_db()));
            }
            let mut out = Vec::new();
            for series in per_link.values_mut() {
                series.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite times"));
                let snrs: Vec<f64> = series.iter().map(|p| p.1).collect();
                for w in snrs.windows(k) {
                    if let Some(sd) = mesh11_stats::stddev(w) {
                        out.push(sd);
                    }
                }
            }
            out
        })
        .collect();
    parts.into_iter().flatten().collect()
}

/// σ over all probe-set SNRs within each network (networks with at least two
/// probe sets).
pub fn network_sigmas(ds: &Dataset) -> Vec<f64> {
    let parts: Vec<Option<f64>> = probes_by_network(ds)
        .par_iter()
        .map(|idxs| {
            let snrs: Vec<f64> = idxs
                .iter()
                .map(|&i| ds.probes[i as usize].snr_db())
                .collect();
            mesh11_stats::stddev(&snrs)
        })
        .collect();
    parts.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ApId, EnvLabel, NetworkId};
    use crate::probe::{ProbeSet, RateObs};
    use mesh11_phy::{BitRate, Phy};

    fn ps(net: u32, s: u32, r: u32, snrs: &[f64]) -> ProbeSet {
        ProbeSet {
            network: NetworkId(net),
            phy: Phy::Bg,
            time_s: 0.0,
            sender: ApId(s),
            receiver: ApId(r),
            obs: snrs
                .iter()
                .map(|&snr| RateObs {
                    rate: BitRate::bg_mbps(1.0).unwrap(),
                    loss: 0.0,
                    snr_db: snr,
                })
                .collect(),
        }
    }

    fn ds(probes: Vec<ProbeSet>) -> Dataset {
        Dataset {
            networks: vec![crate::dataset::NetworkMeta {
                id: NetworkId(0),
                env: EnvLabel::Indoor,
                n_aps: 4,
                radios: vec![Phy::Bg],
                location: String::new(),
            }],
            probes,
            clients: vec![],
            probe_horizon_s: 0.0,
            client_horizon_s: 0.0,
        }
    }

    #[test]
    fn probe_set_sigma_values() {
        let d = ds(vec![ps(0, 0, 1, &[10.0, 14.0]), ps(0, 0, 1, &[20.0])]);
        let sigmas = probe_set_sigmas(&d);
        assert_eq!(sigmas, vec![2.0, 0.0]);
    }

    #[test]
    fn link_sigma_needs_two_reports() {
        // Link (0→1) has two reports at SNR 10 and 14; link (0→2) only one.
        let d = ds(vec![
            ps(0, 0, 1, &[10.0]),
            ps(0, 0, 1, &[14.0]),
            ps(0, 0, 2, &[30.0]),
        ]);
        let sigmas = link_sigmas(&d);
        assert_eq!(sigmas.len(), 1);
        assert!((sigmas[0] - (2.0f64 * 2.0f64 * 2.0).sqrt()).abs() < 1e-9); // sample σ of {10,14} = √8
    }

    #[test]
    fn network_sigma_spans_links() {
        let d = ds(vec![ps(0, 0, 1, &[10.0]), ps(0, 2, 3, &[30.0])]);
        let sigmas = network_sigmas(&d);
        assert_eq!(sigmas.len(), 1);
        // Sample σ of {10, 30} = √200 ≈ 14.14.
        assert!((sigmas[0] - 200f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn recent_k_windows() {
        // One link with SNRs 10, 14, 10 over three reports: two length-2
        // windows, each σ = √8.
        let d = ds(vec![
            ps(0, 0, 1, &[10.0]),
            ps(0, 0, 1, &[14.0]),
            ps(0, 0, 1, &[10.0]),
        ]);
        let sig = recent_k_sigmas(&d, 2);
        assert_eq!(sig.len(), 2);
        for s in sig {
            assert!((s - 8.0f64.sqrt()).abs() < 1e-9);
        }
        // k longer than the series yields nothing.
        assert!(recent_k_sigmas(&d, 5).is_empty());
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn recent_k_rejects_k1() {
        recent_k_sigmas(&ds(vec![]), 1);
    }

    #[test]
    fn network_spread_exceeds_link_spread() {
        // The qualitative ordering Fig 3.1 shows: networks vary more than
        // links, which vary more than single probe sets.
        let d = ds(vec![
            ps(0, 0, 1, &[10.0, 10.5]),
            ps(0, 0, 1, &[11.0, 11.5]),
            ps(0, 2, 3, &[38.0, 38.2]),
            ps(0, 2, 3, &[39.0, 38.8]),
        ]);
        let set_max = probe_set_sigmas(&d).into_iter().fold(0.0, f64::max);
        let link_max = link_sigmas(&d).into_iter().fold(0.0, f64::max);
        let net_max = network_sigmas(&d).into_iter().fold(0.0, f64::max);
        assert!(set_max < link_max && link_max < net_max);
    }
}
