//! Compact binary dataset codec.
//!
//! JSON (see [`crate::dataset::Dataset::save_json`]) is the interchange
//! format; this codec is the fast path for large campaign exports — a probe
//! set costs ~25 bytes plus 17 per rate observation, roughly 10× smaller
//! than JSON and with no parsing ambiguity. Built on [`bytes`].
//!
//! Format (little-endian via `bytes`' `_le` accessors):
//!
//! ```text
//! magic  u32  "M11T" (0x4D313154)
//! ver    u16  1
//! networks, horizons, probes, clients — length-prefixed records
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};
use mesh11_phy::Phy;
use std::io;

use crate::client::ClientSample;
use crate::dataset::{Dataset, NetworkMeta};
use crate::ids::{ApId, ClientId, EnvLabel, NetworkId};
use crate::probe::{ProbeSet, RateObs};

const MAGIC: u32 = 0x4D31_3154;
const VERSION: u16 = 1;

pub(crate) fn phy_tag(phy: Phy) -> u8 {
    match phy {
        Phy::Bg => 0,
        Phy::Ht => 1,
    }
}

pub(crate) fn phy_from_tag(tag: u8) -> io::Result<Phy> {
    match tag {
        0 => Ok(Phy::Bg),
        1 => Ok(Phy::Ht),
        other => Err(bad(format!("unknown phy tag {other}"))),
    }
}

fn env_tag(env: EnvLabel) -> u8 {
    match env {
        EnvLabel::Indoor => 0,
        EnvLabel::Outdoor => 1,
        EnvLabel::Mixed => 2,
    }
}

fn env_from_tag(tag: u8) -> io::Result<EnvLabel> {
    match tag {
        0 => Ok(EnvLabel::Indoor),
        1 => Ok(EnvLabel::Outdoor),
        2 => Ok(EnvLabel::Mixed),
        other => Err(bad(format!("unknown env tag {other}"))),
    }
}

fn bad(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Appends one network-metadata record to a buffer.
fn put_network(buf: &mut impl BufMut, m: &NetworkMeta) {
    buf.put_u32_le(m.id.0);
    buf.put_u8(env_tag(m.env));
    buf.put_u32_le(m.n_aps as u32);
    buf.put_u8(m.radios.len() as u8);
    for &r in &m.radios {
        buf.put_u8(phy_tag(r));
    }
    let loc = m.location.as_bytes();
    buf.put_u16_le(loc.len() as u16);
    buf.put_slice(loc);
}

/// Appends one probe-set record to a buffer (shared with the chunk spill
/// codec, which writes the same record shape in columnar batches).
pub(crate) fn put_probe(buf: &mut impl BufMut, p: &ProbeSet) {
    buf.put_u32_le(p.network.0);
    buf.put_u8(phy_tag(p.phy));
    buf.put_f64_le(p.time_s);
    buf.put_u32_le(p.sender.0);
    buf.put_u32_le(p.receiver.0);
    buf.put_u8(p.obs.len() as u8);
    for o in &p.obs {
        buf.put_u8(o.rate.index() as u8);
        buf.put_f64_le(o.loss);
        buf.put_f64_le(o.snr_db);
    }
}

/// Appends one client-sample record to a buffer.
fn put_client(buf: &mut impl BufMut, c: &ClientSample) {
    buf.put_u32_le(c.network.0);
    buf.put_u32_le(c.ap.0);
    buf.put_u32_le(c.client.0);
    buf.put_f64_le(c.bin_start_s);
    buf.put_u32_le(c.assoc_requests);
    buf.put_u32_le(c.data_pkts);
}

/// Writes the binary form through `w` record by record, so peak memory is
/// one record's scratch buffer rather than the whole serialized dataset
/// (the old `encode`-then-write path doubled a large dataset's RSS).
pub fn write_to<W: io::Write>(ds: &Dataset, w: &mut W) -> io::Result<()> {
    let mut scratch = BytesMut::with_capacity(4096);
    scratch.put_u32_le(MAGIC);
    scratch.put_u16_le(VERSION);

    scratch.put_u32_le(ds.networks.len() as u32);
    for m in &ds.networks {
        put_network(&mut scratch, m);
        if scratch.len() >= 64 * 1024 {
            w.write_all(&scratch)?;
            scratch.clear();
        }
    }

    scratch.put_f64_le(ds.probe_horizon_s);
    scratch.put_f64_le(ds.client_horizon_s);

    scratch.put_u64_le(ds.probes.len() as u64);
    for p in &ds.probes {
        put_probe(&mut scratch, p);
        if scratch.len() >= 64 * 1024 {
            w.write_all(&scratch)?;
            scratch.clear();
        }
    }

    scratch.put_u64_le(ds.clients.len() as u64);
    for c in &ds.clients {
        put_client(&mut scratch, c);
        if scratch.len() >= 64 * 1024 {
            w.write_all(&scratch)?;
            scratch.clear();
        }
    }
    w.write_all(&scratch)
}

/// Encodes a dataset to bytes (in-memory convenience; large exports should
/// prefer [`save`], which streams).
pub fn encode(ds: &Dataset) -> Bytes {
    let mut buf = Vec::with_capacity(64 + ds.probes.len() * 160 + ds.clients.len() * 32);
    write_to(ds, &mut buf).expect("Vec write cannot fail");
    Bytes::from(buf)
}

/// Ensures `buf` has at least `n` bytes remaining before a fixed-size read.
fn need(buf: &impl Buf, n: usize) -> io::Result<()> {
    if buf.remaining() < n {
        Err(bad(format!(
            "truncated: need {n} bytes, have {}",
            buf.remaining()
        )))
    } else {
        Ok(())
    }
}

/// Decodes a dataset from bytes.
pub fn decode(mut buf: Bytes) -> io::Result<Dataset> {
    need(&buf, 6)?;
    if buf.get_u32_le() != MAGIC {
        return Err(bad("bad magic".into()));
    }
    let ver = buf.get_u16_le();
    if ver != VERSION {
        return Err(bad(format!("unsupported version {ver}")));
    }

    need(&buf, 4)?;
    let n_networks = buf.get_u32_le() as usize;
    // Never trust a count for allocation: each record needs ≥10 bytes, so a
    // count exceeding remaining/10 is corrupt and must not drive
    // with_capacity into an abort.
    if n_networks > buf.remaining() / 10 {
        return Err(bad(format!("implausible network count {n_networks}")));
    }
    let mut networks = Vec::with_capacity(n_networks);
    for _ in 0..n_networks {
        need(&buf, 10)?;
        let id = NetworkId(buf.get_u32_le());
        let env = env_from_tag(buf.get_u8())?;
        let n_aps = buf.get_u32_le() as usize;
        let n_radios = buf.get_u8() as usize;
        need(&buf, n_radios + 2)?;
        let mut radios = Vec::with_capacity(n_radios);
        for _ in 0..n_radios {
            radios.push(phy_from_tag(buf.get_u8())?);
        }
        let loc_len = buf.get_u16_le() as usize;
        need(&buf, loc_len)?;
        let loc_bytes = buf.copy_to_bytes(loc_len);
        let location = String::from_utf8(loc_bytes.to_vec())
            .map_err(|e| bad(format!("bad utf8 location: {e}")))?;
        networks.push(NetworkMeta {
            id,
            env,
            n_aps,
            radios,
            location,
        });
    }

    need(&buf, 16)?;
    let probe_horizon_s = buf.get_f64_le();
    let client_horizon_s = buf.get_f64_le();

    need(&buf, 8)?;
    let n_probes = buf.get_u64_le() as usize;
    if n_probes > buf.remaining() / 22 {
        return Err(bad(format!("implausible probe count {n_probes}")));
    }
    let mut probes = Vec::with_capacity(n_probes);
    for _ in 0..n_probes {
        need(&buf, 22)?;
        let network = NetworkId(buf.get_u32_le());
        let phy = phy_from_tag(buf.get_u8())?;
        let time_s = buf.get_f64_le();
        let sender = ApId(buf.get_u32_le());
        let receiver = ApId(buf.get_u32_le());
        let n_obs = buf.get_u8() as usize;
        need(&buf, n_obs * 17)?;
        let rates = phy.all_rates();
        let mut obs = Vec::with_capacity(n_obs);
        for _ in 0..n_obs {
            let idx = buf.get_u8() as usize;
            let rate = *rates
                .get(idx)
                .ok_or_else(|| bad(format!("rate index {idx} out of range for {phy}")))?;
            let loss = buf.get_f64_le();
            let snr_db = buf.get_f64_le();
            obs.push(RateObs { rate, loss, snr_db });
        }
        probes.push(ProbeSet {
            network,
            phy,
            time_s,
            sender,
            receiver,
            obs,
        });
    }

    need(&buf, 8)?;
    let n_clients = buf.get_u64_le() as usize;
    if n_clients > buf.remaining() / 28 {
        return Err(bad(format!("implausible client count {n_clients}")));
    }
    let mut clients = Vec::with_capacity(n_clients);
    for _ in 0..n_clients {
        need(&buf, 28)?;
        clients.push(ClientSample {
            network: NetworkId(buf.get_u32_le()),
            ap: ApId(buf.get_u32_le()),
            client: ClientId(buf.get_u32_le()),
            bin_start_s: buf.get_f64_le(),
            assoc_requests: buf.get_u32_le(),
            data_pkts: buf.get_u32_le(),
        });
    }

    Ok(Dataset {
        networks,
        probes,
        clients,
        probe_horizon_s,
        client_horizon_s,
    })
}

// ---------------------------------------------------------------------------
// Spill codec v2 column primitives (used by the chunk spill frames in
// `crate::chunk`)
// ---------------------------------------------------------------------------
//
// Each column is written as `[tag u8][payload]`, so the decoder needs no
// out-of-band schema and one frame can mix encodings as the data dictates:
//
//   COL_RAW    little-endian values — exactly the v1 layout
//   COL_DELTA  first value as a varint, then zigzag varints of successive
//              deltas (f64 columns delta their IEEE bit patterns) — wins on
//              monotone columns: report times, `obs_off` prefix tables
//   COL_PACK   `min` + bit width + LSB-first packed `value - min` — wins on
//              small-domain integer columns: network/AP ids, phy/rate tags
//   COL_DICT   sorted value dictionary + bit-packed indices — wins on
//              quantized f64 columns (windowed loss is `k/n` over ≤ ~20
//              probes); continuous columns (SNR) fall back to COL_RAW
//
// Encoders compute every candidate's exact size and keep the smallest, so
// the choice is deterministic per column and invisible to the decoder.

pub(crate) const COL_RAW: u8 = 0;
pub(crate) const COL_DELTA: u8 = 1;
pub(crate) const COL_PACK: u8 = 2;
pub(crate) const COL_DICT: u8 = 3;

/// Dictionary candidates stop growing past this many distinct values: the
/// scan cost stops paying for itself and RAW/DELTA win on size anyway.
const DICT_MAX: usize = 1024;

/// Appends `v` as an LEB128 varint (7 bits per byte, high bit = more).
pub(crate) fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        buf.push((v as u8) | 0x80);
        v >>= 7;
    }
    buf.push(v as u8);
}

/// Encoded size of `v` as a varint, without writing it.
pub(crate) fn varint_len(mut v: u64) -> usize {
    let mut n = 1;
    while v >= 0x80 {
        v >>= 7;
        n += 1;
    }
    n
}

/// Reads one varint, advancing `buf`. Rejects truncation and anything that
/// overflows a `u64`.
pub(crate) fn get_varint(buf: &mut &[u8]) -> io::Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let Some((&b, rest)) = buf.split_first() else {
            return Err(bad("truncated varint".into()));
        };
        *buf = rest;
        if shift == 63 && b > 1 {
            return Err(bad("varint overflows u64".into()));
        }
        v |= u64::from(b & 0x7F) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(bad("varint too long".into()));
        }
    }
}

/// Maps a signed delta onto an unsigned varint-friendly value (small
/// magnitudes of either sign stay small).
pub(crate) fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub(crate) fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// FNV-1a 64-bit hash — the spill-frame checksum. Not cryptographic; it
/// guards scratch-file integrity (truncation, bit rot, torn writes), not
/// adversaries.
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Bits needed to represent `v` (0 for 0).
fn bits_for(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Packs `width`-bit residuals LSB-first into whole bytes.
fn pack_bits(buf: &mut Vec<u8>, residuals: impl Iterator<Item = u64>, width: usize) {
    if width == 0 {
        return;
    }
    let mut acc = 0u64;
    let mut nbits = 0;
    for r in residuals {
        acc |= r << nbits;
        nbits += width;
        while nbits >= 8 {
            buf.push((acc & 0xFF) as u8);
            acc >>= 8;
            nbits -= 8;
        }
    }
    if nbits > 0 {
        buf.push((acc & 0xFF) as u8);
    }
}

/// Unpacks `n` `width`-bit values LSB-first from `bytes` (length already
/// validated by the caller).
fn unpack_bits(bytes: &[u8], n: usize, width: usize) -> Vec<u64> {
    let mask = if width == 0 { 0 } else { (1u64 << width) - 1 };
    let mut acc = 0u64;
    let mut nbits = 0;
    let mut it = bytes.iter();
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        while nbits < width {
            acc |= u64::from(*it.next().expect("caller validated length")) << nbits;
            nbits += 8;
        }
        out.push(acc & mask);
        acc >>= width;
        nbits -= width;
    }
    out
}

/// Takes `n` bytes off the front of `buf`, or errors on truncation.
fn take<'a>(buf: &mut &'a [u8], n: usize) -> io::Result<&'a [u8]> {
    if buf.len() < n {
        return Err(bad(format!(
            "truncated column: need {n}, have {}",
            buf.len()
        )));
    }
    let (head, rest) = buf.split_at(n);
    *buf = rest;
    Ok(head)
}

/// Appends a u32 column as `[tag][payload]`, keeping the smallest of RAW,
/// DELTA, and PACK.
pub(crate) fn put_u32_col(buf: &mut Vec<u8>, vals: &[u32]) {
    let raw = 4 * vals.len();
    let mut best = (COL_RAW, raw);
    if let (Some(&min), Some(&max)) = (vals.iter().min(), vals.iter().max()) {
        let width = bits_for(u64::from(max - min));
        let pack = 5 + (vals.len() * width).div_ceil(8);
        let mut delta = varint_len(u64::from(vals[0]));
        for w in vals.windows(2) {
            delta += varint_len(zigzag(i64::from(w[1]) - i64::from(w[0])));
        }
        if delta < best.1 {
            best = (COL_DELTA, delta);
        }
        if pack < best.1 {
            best = (COL_PACK, pack);
        }
    }
    buf.push(best.0);
    match best.0 {
        COL_DELTA => {
            put_varint(buf, u64::from(vals[0]));
            for w in vals.windows(2) {
                put_varint(buf, zigzag(i64::from(w[1]) - i64::from(w[0])));
            }
        }
        COL_PACK => {
            let min = *vals.iter().min().expect("non-empty");
            let max = *vals.iter().max().expect("non-empty");
            let width = bits_for(u64::from(max - min));
            buf.extend_from_slice(&min.to_le_bytes());
            buf.push(width as u8);
            pack_bits(buf, vals.iter().map(|&v| u64::from(v - min)), width);
        }
        _ => {
            for &v in vals {
                buf.extend_from_slice(&v.to_le_bytes());
            }
        }
    }
}

/// Reads a u32 column of `n` values written by [`put_u32_col`].
pub(crate) fn get_u32_col(buf: &mut &[u8], n: usize) -> io::Result<Vec<u32>> {
    let tag = take(buf, 1)?[0];
    match tag {
        COL_RAW => {
            let raw = take(buf, 4 * n)?;
            Ok(raw
                .chunks_exact(4)
                .map(|c| u32::from_le_bytes(c.try_into().expect("chunks_exact(4)")))
                .collect())
        }
        COL_DELTA => {
            let mut out = Vec::with_capacity(n);
            if n > 0 {
                let first = u32::try_from(get_varint(buf)?)
                    .map_err(|_| bad("u32 delta column: first value out of range".into()))?;
                out.push(first);
                let mut prev = i64::from(first);
                for _ in 1..n {
                    let d = unzigzag(get_varint(buf)?);
                    let v = prev
                        .checked_add(d)
                        .and_then(|v| u32::try_from(v).ok())
                        .ok_or_else(|| bad("u32 delta column: value out of range".into()))?;
                    out.push(v);
                    prev = i64::from(v);
                }
            }
            Ok(out)
        }
        COL_PACK => {
            let head = take(buf, 5)?;
            let min = u32::from_le_bytes(head[..4].try_into().expect("5-byte head"));
            let width = head[4] as usize;
            if width > 32 {
                return Err(bad(format!("u32 pack column: width {width} > 32")));
            }
            let packed = take(buf, (n * width).div_ceil(8))?;
            unpack_bits(packed, n, width)
                .into_iter()
                .map(|r| {
                    u32::try_from(r)
                        .ok()
                        .and_then(|r| min.checked_add(r))
                        .ok_or_else(|| bad("u32 pack column: value overflows".into()))
                })
                .collect()
        }
        other => Err(bad(format!("unknown u32 column tag {other}"))),
    }
}

/// Appends a u8 column as `[tag][payload]`, keeping the smaller of RAW and
/// PACK.
pub(crate) fn put_u8_col(buf: &mut Vec<u8>, vals: &[u8]) {
    let raw = vals.len();
    if let (Some(&min), Some(&max)) = (vals.iter().min(), vals.iter().max()) {
        let width = bits_for(u64::from(max - min));
        let pack = 2 + (vals.len() * width).div_ceil(8);
        if pack < raw {
            buf.push(COL_PACK);
            buf.push(min);
            buf.push(width as u8);
            pack_bits(buf, vals.iter().map(|&v| u64::from(v - min)), width);
            return;
        }
    }
    buf.push(COL_RAW);
    buf.extend_from_slice(vals);
}

/// Reads a u8 column of `n` values written by [`put_u8_col`].
pub(crate) fn get_u8_col(buf: &mut &[u8], n: usize) -> io::Result<Vec<u8>> {
    let tag = take(buf, 1)?[0];
    match tag {
        COL_RAW => Ok(take(buf, n)?.to_vec()),
        COL_PACK => {
            let head = take(buf, 2)?;
            let (min, width) = (head[0], head[1] as usize);
            if width > 8 {
                return Err(bad(format!("u8 pack column: width {width} > 8")));
            }
            let packed = take(buf, (n * width).div_ceil(8))?;
            unpack_bits(packed, n, width)
                .into_iter()
                .map(|r| {
                    u8::try_from(r)
                        .ok()
                        .and_then(|r| min.checked_add(r))
                        .ok_or_else(|| bad("u8 pack column: value overflows".into()))
                })
                .collect()
        }
        other => Err(bad(format!("unknown u8 column tag {other}"))),
    }
}

/// Appends an f64 column as `[tag][payload]`, keeping the smallest of RAW,
/// DELTA (over IEEE bit patterns — exact for every value including NaN),
/// and DICT (sorted bit-pattern dictionary + packed indices — wins on
/// quantized columns like windowed loss).
pub(crate) fn put_f64_col(buf: &mut Vec<u8>, vals: &[f64]) {
    let raw = 8 * vals.len();
    let mut best = (COL_RAW, raw);
    let mut dict: Option<Vec<u64>> = None;
    if !vals.is_empty() {
        let mut delta = varint_len(vals[0].to_bits());
        for w in vals.windows(2) {
            delta += varint_len(zigzag(w[1].to_bits().wrapping_sub(w[0].to_bits()) as i64));
        }
        if delta < best.1 {
            best = (COL_DELTA, delta);
        }
        let mut set = std::collections::BTreeSet::new();
        for &v in vals {
            set.insert(v.to_bits());
            if set.len() > DICT_MAX {
                break;
            }
        }
        if set.len() <= DICT_MAX {
            let d: Vec<u64> = set.into_iter().collect();
            let width = bits_for(d.len() as u64 - 1);
            let size =
                varint_len(d.len() as u64) + 8 * d.len() + 1 + (vals.len() * width).div_ceil(8);
            if size < best.1 {
                best = (COL_DICT, size);
                dict = Some(d);
            }
        }
    }
    buf.push(best.0);
    match best.0 {
        COL_DELTA => {
            put_varint(buf, vals[0].to_bits());
            for w in vals.windows(2) {
                put_varint(
                    buf,
                    zigzag(w[1].to_bits().wrapping_sub(w[0].to_bits()) as i64),
                );
            }
        }
        COL_DICT => {
            let d = dict.expect("dict candidate won");
            let width = bits_for(d.len() as u64 - 1);
            put_varint(buf, d.len() as u64);
            for &bits in &d {
                buf.extend_from_slice(&bits.to_le_bytes());
            }
            buf.push(width as u8);
            let idx_of = |v: f64| d.binary_search(&v.to_bits()).expect("value in dict") as u64;
            pack_bits(buf, vals.iter().map(|&v| idx_of(v)), width);
        }
        _ => {
            for &v in vals {
                buf.extend_from_slice(&v.to_le_bytes());
            }
        }
    }
}

/// Reads an f64 column of `n` values written by [`put_f64_col`].
pub(crate) fn get_f64_col(buf: &mut &[u8], n: usize) -> io::Result<Vec<f64>> {
    let tag = take(buf, 1)?[0];
    match tag {
        COL_RAW => {
            let raw = take(buf, 8 * n)?;
            Ok(raw
                .chunks_exact(8)
                .map(|c| f64::from_le_bytes(c.try_into().expect("chunks_exact(8)")))
                .collect())
        }
        COL_DELTA => {
            let mut out = Vec::with_capacity(n);
            if n > 0 {
                let mut prev = get_varint(buf)?;
                out.push(f64::from_bits(prev));
                for _ in 1..n {
                    let d = unzigzag(get_varint(buf)?);
                    prev = prev.wrapping_add(d as u64);
                    out.push(f64::from_bits(prev));
                }
            }
            Ok(out)
        }
        COL_DICT => {
            let d = get_varint(buf)? as usize;
            if d == 0 || d > DICT_MAX {
                return Err(bad(format!("f64 dict column: implausible dict size {d}")));
            }
            let dict_bytes = take(buf, 8 * d)?;
            let dict: Vec<f64> = dict_bytes
                .chunks_exact(8)
                .map(|c| f64::from_le_bytes(c.try_into().expect("chunks_exact(8)")))
                .collect();
            let width = take(buf, 1)?[0] as usize;
            if width > 32 {
                return Err(bad(format!("f64 dict column: width {width} > 32")));
            }
            let packed = take(buf, (n * width).div_ceil(8))?;
            unpack_bits(packed, n, width)
                .into_iter()
                .map(|i| {
                    dict.get(i as usize)
                        .copied()
                        .ok_or_else(|| bad(format!("f64 dict column: index {i} out of range")))
                })
                .collect()
        }
        other => Err(bad(format!("unknown f64 column tag {other}"))),
    }
}

/// Writes the binary form to a file through a streaming writer — the full
/// serialized buffer is never materialized.
pub fn save(ds: &Dataset, path: &std::path::Path) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut w = io::BufWriter::new(file);
    write_to(ds, &mut w)?;
    io::Write::flush(&mut w)
}

/// Reads the binary form from a file.
pub fn load(path: &std::path::Path) -> io::Result<Dataset> {
    let data = std::fs::read(path)?;
    decode(Bytes::from(data))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh11_phy::BitRate;

    fn sample_dataset() -> Dataset {
        Dataset {
            networks: vec![NetworkMeta {
                id: NetworkId(0),
                env: EnvLabel::Outdoor,
                n_aps: 2,
                radios: vec![Phy::Bg, Phy::Ht],
                location: "Nairobi, Kenya".into(),
            }],
            probes: vec![ProbeSet {
                network: NetworkId(0),
                phy: Phy::Bg,
                time_s: 300.0,
                sender: ApId(0),
                receiver: ApId(1),
                obs: vec![
                    RateObs {
                        rate: BitRate::bg_mbps(1.0).unwrap(),
                        loss: 0.05,
                        snr_db: 22.5,
                    },
                    RateObs {
                        rate: BitRate::bg_mbps(48.0).unwrap(),
                        loss: 0.9,
                        snr_db: 21.75,
                    },
                ],
            }],
            clients: vec![ClientSample {
                network: NetworkId(0),
                ap: ApId(1),
                client: ClientId(3),
                bin_start_s: 900.0,
                assoc_requests: 2,
                data_pkts: 117,
            }],
            probe_horizon_s: 86_400.0,
            client_horizon_s: 39_600.0,
        }
    }

    #[test]
    fn round_trip() {
        let ds = sample_dataset();
        let bytes = encode(&ds);
        let back = decode(bytes).unwrap();
        assert_eq!(ds, back);
    }

    #[test]
    fn round_trip_ht_rates() {
        let mut ds = sample_dataset();
        ds.probes[0].phy = Phy::Ht;
        ds.probes[0].obs = vec![RateObs {
            rate: BitRate::ht_mcs(15, true).unwrap(),
            loss: 0.3,
            snr_db: 28.0,
        }];
        let back = decode(encode(&ds)).unwrap();
        assert_eq!(ds, back);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut b = BytesMut::new();
        b.put_u32_le(0xDEAD_BEEF);
        b.put_u16_le(VERSION);
        assert!(decode(b.freeze()).is_err());
    }

    #[test]
    fn rejects_bad_version() {
        let mut b = BytesMut::new();
        b.put_u32_le(MAGIC);
        b.put_u16_le(99);
        assert!(decode(b.freeze()).is_err());
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let full = encode(&sample_dataset());
        // Every proper prefix must fail cleanly, never panic.
        for cut in 0..full.len() {
            let prefix = full.slice(0..cut);
            assert!(decode(prefix).is_err(), "prefix of {cut} bytes decoded");
        }
    }

    #[test]
    fn rejects_bad_rate_index() {
        let mut ds = sample_dataset();
        ds.probes[0].obs.truncate(1);
        let mut raw = BytesMut::from(&encode(&ds)[..]);
        // Find the rate-index byte and corrupt it. It sits right after the
        // probe header; rather than hand-computing, corrupt every byte and
        // require no panics (errors are fine, silent corruption of the rate
        // table is what the explicit bounds check prevents).
        for i in 0..raw.len() {
            let orig = raw[i];
            raw[i] = 0xFF;
            let _ = decode(Bytes::copy_from_slice(&raw)); // must not panic
            raw[i] = orig;
        }
    }

    #[test]
    fn file_round_trip() {
        let ds = sample_dataset();
        let dir = std::env::temp_dir().join("mesh11-codec-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ds.m11t");
        save(&ds, &path).unwrap();
        assert_eq!(load(&path).unwrap(), ds);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn binary_much_smaller_than_json() {
        let ds = sample_dataset();
        let bin = encode(&ds).len();
        let json = serde_json::to_vec(&ds).unwrap().len();
        assert!(bin * 2 < json, "binary {bin} vs json {json}");
    }

    // -- spill codec v2 column primitives --

    use proptest::prelude::*;

    #[test]
    fn varint_round_trips_boundaries() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX - 1, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            assert_eq!(buf.len(), varint_len(v));
            let mut r = buf.as_slice();
            assert_eq!(get_varint(&mut r).unwrap(), v);
            assert!(r.is_empty());
        }
    }

    #[test]
    fn varint_rejects_truncation_and_overflow() {
        let mut buf = Vec::new();
        put_varint(&mut buf, u64::MAX);
        for cut in 0..buf.len() {
            let mut r = &buf[..cut];
            assert!(get_varint(&mut r).is_err(), "prefix {cut}");
        }
        // 11 continuation bytes: more than a u64 can hold.
        let long = [0x80u8; 11];
        assert!(get_varint(&mut &long[..]).is_err());
        // 10th byte with payload bits above bit 63.
        let over = [0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x02];
        assert!(get_varint(&mut &over[..]).is_err());
    }

    #[test]
    fn zigzag_round_trips_extremes() {
        for v in [0i64, 1, -1, i64::MAX, i64::MIN, 42, -42] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn small_domain_u32_column_bit_packs() {
        let vals: Vec<u32> = (0..4096).map(|i| 1000 + (i % 7)).collect();
        let mut buf = Vec::new();
        put_u32_col(&mut buf, &vals);
        assert_eq!(buf[0], COL_PACK);
        // 3-bit residuals: ~0.375 bytes per value instead of 4.
        assert!(buf.len() < vals.len(), "packed {} bytes", buf.len());
        let mut r = buf.as_slice();
        assert_eq!(get_u32_col(&mut r, vals.len()).unwrap(), vals);
        assert!(r.is_empty());
    }

    #[test]
    fn monotone_u32_column_deltas() {
        // A prefix table with small increments: delta varints win.
        let mut vals = vec![0u32];
        for i in 0..2000u32 {
            vals.push(vals.last().unwrap() + 8 + (i % 5));
        }
        let mut buf = Vec::new();
        put_u32_col(&mut buf, &vals);
        assert_eq!(buf[0], COL_DELTA);
        assert!(buf.len() < 2 * vals.len(), "delta {} bytes", buf.len());
        let mut r = buf.as_slice();
        assert_eq!(get_u32_col(&mut r, vals.len()).unwrap(), vals);
    }

    #[test]
    fn quantized_f64_column_uses_dictionary() {
        // Windowed loss shape: k/20 fractions, few distinct values.
        let vals: Vec<f64> = (0..8192).map(|i| (i % 21) as f64 / 20.0).collect();
        let mut buf = Vec::new();
        put_f64_col(&mut buf, &vals);
        assert_eq!(buf[0], COL_DICT);
        assert!(
            buf.len() < vals.len(),
            "dict column {} bytes for {} values",
            buf.len(),
            vals.len()
        );
        let mut r = buf.as_slice();
        let back = get_f64_col(&mut r, vals.len()).unwrap();
        assert!(back
            .iter()
            .zip(&vals)
            .all(|(a, b)| a.to_bits() == b.to_bits()));
    }

    #[test]
    fn continuous_f64_column_stays_raw() {
        // Pseudo-continuous values (distinct mantissas): RAW must win.
        let vals: Vec<f64> = (0..2048)
            .map(|i| (i as f64).sin() * 40.0 + 1e-9 * i as f64)
            .collect();
        let mut buf = Vec::new();
        put_f64_col(&mut buf, &vals);
        assert_eq!(buf[0], COL_RAW);
        assert_eq!(buf.len(), 1 + 8 * vals.len());
    }

    proptest! {
        #[test]
        fn prop_u32_col_round_trips(vals in proptest::collection::vec(0u32..=u32::MAX, 0..300)) {
            let mut buf = Vec::new();
            put_u32_col(&mut buf, &vals);
            let mut r = buf.as_slice();
            prop_assert_eq!(get_u32_col(&mut r, vals.len()).unwrap(), vals);
            prop_assert!(r.is_empty(), "column over-reads or under-writes");
        }

        #[test]
        fn prop_u8_col_round_trips(vals in proptest::collection::vec(0u8..=u8::MAX, 0..300)) {
            let mut buf = Vec::new();
            put_u8_col(&mut buf, &vals);
            let mut r = buf.as_slice();
            prop_assert_eq!(get_u8_col(&mut r, vals.len()).unwrap(), vals);
            prop_assert!(r.is_empty());
        }

        #[test]
        fn prop_f64_col_round_trips_bits(bits in proptest::collection::vec(0u64..=u64::MAX, 0..300)) {
            // Arbitrary bit patterns: NaNs, infinities, subnormals — the
            // column must round-trip every one exactly.
            let vals: Vec<f64> = bits.iter().map(|&b| f64::from_bits(b)).collect();
            let mut buf = Vec::new();
            put_f64_col(&mut buf, &vals);
            let mut r = buf.as_slice();
            let back = get_f64_col(&mut r, vals.len()).unwrap();
            prop_assert!(r.is_empty());
            prop_assert_eq!(back.len(), vals.len());
            for (a, b) in back.iter().zip(&vals) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }

        #[test]
        fn prop_monotone_f64_col_round_trips(
            start in -1.0e6f64..1.0e6,
            steps in proptest::collection::vec(0.0f64..400.0, 0..300),
        ) {
            // The report-time shape: non-decreasing ramps (DELTA territory).
            let mut t = start;
            let mut vals = vec![t];
            for s in steps {
                t += s;
                vals.push(t);
            }
            let mut buf = Vec::new();
            put_f64_col(&mut buf, &vals);
            let mut r = buf.as_slice();
            let back = get_f64_col(&mut r, vals.len()).unwrap();
            for (a, b) in back.iter().zip(&vals) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }

        #[test]
        fn prop_column_truncation_rejected(vals in proptest::collection::vec(0u32..=u32::MAX, 1..100)) {
            let mut buf = Vec::new();
            put_u32_col(&mut buf, &vals);
            for cut in 0..buf.len() {
                let mut r = &buf[..cut];
                prop_assert!(get_u32_col(&mut r, vals.len()).is_err(), "prefix {} decoded", cut);
            }
        }
    }
}
