//! Compact binary dataset codec.
//!
//! JSON (see [`crate::dataset::Dataset::save_json`]) is the interchange
//! format; this codec is the fast path for large campaign exports — a probe
//! set costs ~25 bytes plus 17 per rate observation, roughly 10× smaller
//! than JSON and with no parsing ambiguity. Built on [`bytes`].
//!
//! Format (little-endian via `bytes`' `_le` accessors):
//!
//! ```text
//! magic  u32  "M11T" (0x4D313154)
//! ver    u16  1
//! networks, horizons, probes, clients — length-prefixed records
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};
use mesh11_phy::Phy;
use std::io;

use crate::client::ClientSample;
use crate::dataset::{Dataset, NetworkMeta};
use crate::ids::{ApId, ClientId, EnvLabel, NetworkId};
use crate::probe::{ProbeSet, RateObs};

const MAGIC: u32 = 0x4D31_3154;
const VERSION: u16 = 1;

pub(crate) fn phy_tag(phy: Phy) -> u8 {
    match phy {
        Phy::Bg => 0,
        Phy::Ht => 1,
    }
}

pub(crate) fn phy_from_tag(tag: u8) -> io::Result<Phy> {
    match tag {
        0 => Ok(Phy::Bg),
        1 => Ok(Phy::Ht),
        other => Err(bad(format!("unknown phy tag {other}"))),
    }
}

fn env_tag(env: EnvLabel) -> u8 {
    match env {
        EnvLabel::Indoor => 0,
        EnvLabel::Outdoor => 1,
        EnvLabel::Mixed => 2,
    }
}

fn env_from_tag(tag: u8) -> io::Result<EnvLabel> {
    match tag {
        0 => Ok(EnvLabel::Indoor),
        1 => Ok(EnvLabel::Outdoor),
        2 => Ok(EnvLabel::Mixed),
        other => Err(bad(format!("unknown env tag {other}"))),
    }
}

fn bad(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Appends one network-metadata record to a buffer.
fn put_network(buf: &mut impl BufMut, m: &NetworkMeta) {
    buf.put_u32_le(m.id.0);
    buf.put_u8(env_tag(m.env));
    buf.put_u32_le(m.n_aps as u32);
    buf.put_u8(m.radios.len() as u8);
    for &r in &m.radios {
        buf.put_u8(phy_tag(r));
    }
    let loc = m.location.as_bytes();
    buf.put_u16_le(loc.len() as u16);
    buf.put_slice(loc);
}

/// Appends one probe-set record to a buffer (shared with the chunk spill
/// codec, which writes the same record shape in columnar batches).
pub(crate) fn put_probe(buf: &mut impl BufMut, p: &ProbeSet) {
    buf.put_u32_le(p.network.0);
    buf.put_u8(phy_tag(p.phy));
    buf.put_f64_le(p.time_s);
    buf.put_u32_le(p.sender.0);
    buf.put_u32_le(p.receiver.0);
    buf.put_u8(p.obs.len() as u8);
    for o in &p.obs {
        buf.put_u8(o.rate.index() as u8);
        buf.put_f64_le(o.loss);
        buf.put_f64_le(o.snr_db);
    }
}

/// Appends one client-sample record to a buffer.
fn put_client(buf: &mut impl BufMut, c: &ClientSample) {
    buf.put_u32_le(c.network.0);
    buf.put_u32_le(c.ap.0);
    buf.put_u32_le(c.client.0);
    buf.put_f64_le(c.bin_start_s);
    buf.put_u32_le(c.assoc_requests);
    buf.put_u32_le(c.data_pkts);
}

/// Writes the binary form through `w` record by record, so peak memory is
/// one record's scratch buffer rather than the whole serialized dataset
/// (the old `encode`-then-write path doubled a large dataset's RSS).
pub fn write_to<W: io::Write>(ds: &Dataset, w: &mut W) -> io::Result<()> {
    let mut scratch = BytesMut::with_capacity(4096);
    scratch.put_u32_le(MAGIC);
    scratch.put_u16_le(VERSION);

    scratch.put_u32_le(ds.networks.len() as u32);
    for m in &ds.networks {
        put_network(&mut scratch, m);
        if scratch.len() >= 64 * 1024 {
            w.write_all(&scratch)?;
            scratch.clear();
        }
    }

    scratch.put_f64_le(ds.probe_horizon_s);
    scratch.put_f64_le(ds.client_horizon_s);

    scratch.put_u64_le(ds.probes.len() as u64);
    for p in &ds.probes {
        put_probe(&mut scratch, p);
        if scratch.len() >= 64 * 1024 {
            w.write_all(&scratch)?;
            scratch.clear();
        }
    }

    scratch.put_u64_le(ds.clients.len() as u64);
    for c in &ds.clients {
        put_client(&mut scratch, c);
        if scratch.len() >= 64 * 1024 {
            w.write_all(&scratch)?;
            scratch.clear();
        }
    }
    w.write_all(&scratch)
}

/// Encodes a dataset to bytes (in-memory convenience; large exports should
/// prefer [`save`], which streams).
pub fn encode(ds: &Dataset) -> Bytes {
    let mut buf = Vec::with_capacity(64 + ds.probes.len() * 160 + ds.clients.len() * 32);
    write_to(ds, &mut buf).expect("Vec write cannot fail");
    Bytes::from(buf)
}

/// Ensures `buf` has at least `n` bytes remaining before a fixed-size read.
fn need(buf: &impl Buf, n: usize) -> io::Result<()> {
    if buf.remaining() < n {
        Err(bad(format!(
            "truncated: need {n} bytes, have {}",
            buf.remaining()
        )))
    } else {
        Ok(())
    }
}

/// Decodes a dataset from bytes.
pub fn decode(mut buf: Bytes) -> io::Result<Dataset> {
    need(&buf, 6)?;
    if buf.get_u32_le() != MAGIC {
        return Err(bad("bad magic".into()));
    }
    let ver = buf.get_u16_le();
    if ver != VERSION {
        return Err(bad(format!("unsupported version {ver}")));
    }

    need(&buf, 4)?;
    let n_networks = buf.get_u32_le() as usize;
    // Never trust a count for allocation: each record needs ≥10 bytes, so a
    // count exceeding remaining/10 is corrupt and must not drive
    // with_capacity into an abort.
    if n_networks > buf.remaining() / 10 {
        return Err(bad(format!("implausible network count {n_networks}")));
    }
    let mut networks = Vec::with_capacity(n_networks);
    for _ in 0..n_networks {
        need(&buf, 10)?;
        let id = NetworkId(buf.get_u32_le());
        let env = env_from_tag(buf.get_u8())?;
        let n_aps = buf.get_u32_le() as usize;
        let n_radios = buf.get_u8() as usize;
        need(&buf, n_radios + 2)?;
        let mut radios = Vec::with_capacity(n_radios);
        for _ in 0..n_radios {
            radios.push(phy_from_tag(buf.get_u8())?);
        }
        let loc_len = buf.get_u16_le() as usize;
        need(&buf, loc_len)?;
        let loc_bytes = buf.copy_to_bytes(loc_len);
        let location = String::from_utf8(loc_bytes.to_vec())
            .map_err(|e| bad(format!("bad utf8 location: {e}")))?;
        networks.push(NetworkMeta {
            id,
            env,
            n_aps,
            radios,
            location,
        });
    }

    need(&buf, 16)?;
    let probe_horizon_s = buf.get_f64_le();
    let client_horizon_s = buf.get_f64_le();

    need(&buf, 8)?;
    let n_probes = buf.get_u64_le() as usize;
    if n_probes > buf.remaining() / 22 {
        return Err(bad(format!("implausible probe count {n_probes}")));
    }
    let mut probes = Vec::with_capacity(n_probes);
    for _ in 0..n_probes {
        need(&buf, 22)?;
        let network = NetworkId(buf.get_u32_le());
        let phy = phy_from_tag(buf.get_u8())?;
        let time_s = buf.get_f64_le();
        let sender = ApId(buf.get_u32_le());
        let receiver = ApId(buf.get_u32_le());
        let n_obs = buf.get_u8() as usize;
        need(&buf, n_obs * 17)?;
        let rates = phy.all_rates();
        let mut obs = Vec::with_capacity(n_obs);
        for _ in 0..n_obs {
            let idx = buf.get_u8() as usize;
            let rate = *rates
                .get(idx)
                .ok_or_else(|| bad(format!("rate index {idx} out of range for {phy}")))?;
            let loss = buf.get_f64_le();
            let snr_db = buf.get_f64_le();
            obs.push(RateObs { rate, loss, snr_db });
        }
        probes.push(ProbeSet {
            network,
            phy,
            time_s,
            sender,
            receiver,
            obs,
        });
    }

    need(&buf, 8)?;
    let n_clients = buf.get_u64_le() as usize;
    if n_clients > buf.remaining() / 28 {
        return Err(bad(format!("implausible client count {n_clients}")));
    }
    let mut clients = Vec::with_capacity(n_clients);
    for _ in 0..n_clients {
        need(&buf, 28)?;
        clients.push(ClientSample {
            network: NetworkId(buf.get_u32_le()),
            ap: ApId(buf.get_u32_le()),
            client: ClientId(buf.get_u32_le()),
            bin_start_s: buf.get_f64_le(),
            assoc_requests: buf.get_u32_le(),
            data_pkts: buf.get_u32_le(),
        });
    }

    Ok(Dataset {
        networks,
        probes,
        clients,
        probe_horizon_s,
        client_horizon_s,
    })
}

/// Writes the binary form to a file through a streaming writer — the full
/// serialized buffer is never materialized.
pub fn save(ds: &Dataset, path: &std::path::Path) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut w = io::BufWriter::new(file);
    write_to(ds, &mut w)?;
    io::Write::flush(&mut w)
}

/// Reads the binary form from a file.
pub fn load(path: &std::path::Path) -> io::Result<Dataset> {
    let data = std::fs::read(path)?;
    decode(Bytes::from(data))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh11_phy::BitRate;

    fn sample_dataset() -> Dataset {
        Dataset {
            networks: vec![NetworkMeta {
                id: NetworkId(0),
                env: EnvLabel::Outdoor,
                n_aps: 2,
                radios: vec![Phy::Bg, Phy::Ht],
                location: "Nairobi, Kenya".into(),
            }],
            probes: vec![ProbeSet {
                network: NetworkId(0),
                phy: Phy::Bg,
                time_s: 300.0,
                sender: ApId(0),
                receiver: ApId(1),
                obs: vec![
                    RateObs {
                        rate: BitRate::bg_mbps(1.0).unwrap(),
                        loss: 0.05,
                        snr_db: 22.5,
                    },
                    RateObs {
                        rate: BitRate::bg_mbps(48.0).unwrap(),
                        loss: 0.9,
                        snr_db: 21.75,
                    },
                ],
            }],
            clients: vec![ClientSample {
                network: NetworkId(0),
                ap: ApId(1),
                client: ClientId(3),
                bin_start_s: 900.0,
                assoc_requests: 2,
                data_pkts: 117,
            }],
            probe_horizon_s: 86_400.0,
            client_horizon_s: 39_600.0,
        }
    }

    #[test]
    fn round_trip() {
        let ds = sample_dataset();
        let bytes = encode(&ds);
        let back = decode(bytes).unwrap();
        assert_eq!(ds, back);
    }

    #[test]
    fn round_trip_ht_rates() {
        let mut ds = sample_dataset();
        ds.probes[0].phy = Phy::Ht;
        ds.probes[0].obs = vec![RateObs {
            rate: BitRate::ht_mcs(15, true).unwrap(),
            loss: 0.3,
            snr_db: 28.0,
        }];
        let back = decode(encode(&ds)).unwrap();
        assert_eq!(ds, back);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut b = BytesMut::new();
        b.put_u32_le(0xDEAD_BEEF);
        b.put_u16_le(VERSION);
        assert!(decode(b.freeze()).is_err());
    }

    #[test]
    fn rejects_bad_version() {
        let mut b = BytesMut::new();
        b.put_u32_le(MAGIC);
        b.put_u16_le(99);
        assert!(decode(b.freeze()).is_err());
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let full = encode(&sample_dataset());
        // Every proper prefix must fail cleanly, never panic.
        for cut in 0..full.len() {
            let prefix = full.slice(0..cut);
            assert!(decode(prefix).is_err(), "prefix of {cut} bytes decoded");
        }
    }

    #[test]
    fn rejects_bad_rate_index() {
        let mut ds = sample_dataset();
        ds.probes[0].obs.truncate(1);
        let mut raw = BytesMut::from(&encode(&ds)[..]);
        // Find the rate-index byte and corrupt it. It sits right after the
        // probe header; rather than hand-computing, corrupt every byte and
        // require no panics (errors are fine, silent corruption of the rate
        // table is what the explicit bounds check prevents).
        for i in 0..raw.len() {
            let orig = raw[i];
            raw[i] = 0xFF;
            let _ = decode(Bytes::copy_from_slice(&raw)); // must not panic
            raw[i] = orig;
        }
    }

    #[test]
    fn file_round_trip() {
        let ds = sample_dataset();
        let dir = std::env::temp_dir().join("mesh11-codec-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ds.m11t");
        save(&ds, &path).unwrap();
        assert_eq!(load(&path).unwrap(), ds);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn binary_much_smaller_than_json() {
        let ds = sample_dataset();
        let bin = encode(&ds).len();
        let json = serde_json::to_vec(&ds).unwrap().len();
        assert!(bin * 2 < json, "binary {bin} vs json {json}");
    }
}
