//! Probe-set records (paper §3.1).
//!
//! Each AP broadcasts probes every 40 s at every probed bit rate; receivers
//! track per-(sender, rate) loss over an 800 s sliding window and report
//! every 300 s. One [`ProbeSet`] is one such report for one (receiver,
//! sender) pair: per rate, the windowed mean loss and the most recent SNR.

use mesh11_phy::{BitRate, Phy};
use serde::{Deserialize, Serialize};

use crate::ids::{ApId, NetworkId};

/// One rate's entry within a probe set: the paper's tuple
/// `(Sender, Bit rate, Mean loss rate, Most recent SNR)` minus the sender
/// (lifted to the probe set).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RateObs {
    /// The probed transmit configuration.
    pub rate: BitRate,
    /// Mean loss rate over the 800 s window, in `[0, 1]`.
    pub loss: f64,
    /// SNR (dB) of the most recently received probe at this rate. `NaN`
    /// never appears: if no probe at this rate was ever received the rate
    /// simply has no entry.
    pub snr_db: f64,
}

impl RateObs {
    /// Delivery probability (`1 − loss`).
    pub fn delivery(&self) -> f64 {
        (1.0 - self.loss).clamp(0.0, 1.0)
    }

    /// Throughput in Mbit/s under the paper's definition (§3.1.2):
    /// bit rate × packet success rate.
    pub fn throughput_mbps(&self) -> f64 {
        self.rate.throughput_mbps(self.delivery())
    }
}

/// One probe-set report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProbeSet {
    /// The network this report belongs to.
    pub network: NetworkId,
    /// The radio family the probes were sent on.
    pub phy: Phy,
    /// Report time (seconds since trace start).
    pub time_s: f64,
    /// The AP whose broadcasts are being measured.
    pub sender: ApId,
    /// The AP that received (and reports) the measurements.
    pub receiver: ApId,
    /// Per-rate observations; only rates with at least one reception appear.
    pub obs: Vec<RateObs>,
}

impl ProbeSet {
    /// The probe set's SNR: the median of the per-rate most-recent SNRs
    /// (paper §3.1.1 — robust because the within-set spread is small,
    /// Fig 3.1).
    pub fn snr_db(&self) -> f64 {
        let snrs: Vec<f64> = self.obs.iter().map(|o| o.snr_db).collect();
        mesh11_stats::median(&snrs).expect("probe sets always have ≥1 observation")
    }

    /// The probe set's SNR rounded to the integer dB the lookup tables key
    /// on.
    pub fn snr_key(&self) -> i64 {
        self.snr_db().round() as i64
    }

    /// `P_opt`: the rate maximizing `b · (1 − b_loss)` among this set's
    /// rates (paper §4.1). Ties break toward the lower rate, matching the
    /// conservative choice a real adapter makes.
    pub fn optimal(&self) -> RateObs {
        *self
            .obs
            .iter()
            .max_by(|a, b| {
                a.throughput_mbps()
                    .partial_cmp(&b.throughput_mbps())
                    .expect("throughputs are finite")
                    .then(b.rate.cmp(&a.rate))
            })
            .expect("probe sets always have ≥1 observation")
    }

    /// The observation for a specific rate, if probed and heard.
    pub fn obs_for(&self, rate: BitRate) -> Option<&RateObs> {
        self.obs.iter().find(|o| o.rate == rate)
    }

    /// Population standard deviation of the SNRs within the set — the
    /// per-probe-set statistic of Fig 3.1.
    pub fn snr_stddev(&self) -> f64 {
        let snrs: Vec<f64> = self.obs.iter().map(|o| o.snr_db).collect();
        mesh11_stats::stddev_pop(&snrs).expect("probe sets always have ≥1 observation")
    }

    /// The directed link this report describes, as `(sender, receiver)`.
    pub fn link(&self) -> (ApId, ApId) {
        (self.sender, self.receiver)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rate(mbps: f64) -> BitRate {
        BitRate::bg_mbps(mbps).unwrap()
    }

    fn set(obs: Vec<RateObs>) -> ProbeSet {
        ProbeSet {
            network: NetworkId(0),
            phy: Phy::Bg,
            time_s: 300.0,
            sender: ApId(1),
            receiver: ApId(2),
            obs,
        }
    }

    #[test]
    fn delivery_and_throughput() {
        let o = RateObs {
            rate: rate(24.0),
            loss: 0.25,
            snr_db: 20.0,
        };
        assert_eq!(o.delivery(), 0.75);
        assert_eq!(o.throughput_mbps(), 18.0);
    }

    #[test]
    fn delivery_clamps_noisy_loss() {
        let o = RateObs {
            rate: rate(1.0),
            loss: 1.2,
            snr_db: 1.0,
        };
        assert_eq!(o.delivery(), 0.0);
    }

    #[test]
    fn optimal_maximizes_throughput() {
        // 11 Mbit/s with no loss (11.0) beats 48 Mbit/s at 80% loss (9.6).
        let s = set(vec![
            RateObs {
                rate: rate(11.0),
                loss: 0.0,
                snr_db: 18.0,
            },
            RateObs {
                rate: rate(48.0),
                loss: 0.8,
                snr_db: 19.0,
            },
        ]);
        assert_eq!(s.optimal().rate, rate(11.0));
    }

    #[test]
    fn optimal_tie_breaks_low() {
        // 12 @ 50% = 6.0 and 6 @ 0% = 6.0: prefer the lower rate.
        let s = set(vec![
            RateObs {
                rate: rate(6.0),
                loss: 0.0,
                snr_db: 15.0,
            },
            RateObs {
                rate: rate(12.0),
                loss: 0.5,
                snr_db: 15.0,
            },
        ]);
        assert_eq!(s.optimal().rate, rate(6.0));
    }

    #[test]
    fn median_snr_of_set() {
        let s = set(vec![
            RateObs {
                rate: rate(1.0),
                loss: 0.0,
                snr_db: 10.0,
            },
            RateObs {
                rate: rate(6.0),
                loss: 0.0,
                snr_db: 14.0,
            },
            RateObs {
                rate: rate(11.0),
                loss: 0.0,
                snr_db: 30.0,
            },
        ]);
        assert_eq!(s.snr_db(), 14.0);
        assert_eq!(s.snr_key(), 14);
    }

    #[test]
    fn snr_key_rounds() {
        let s = set(vec![RateObs {
            rate: rate(1.0),
            loss: 0.0,
            snr_db: 17.6,
        }]);
        assert_eq!(s.snr_key(), 18);
    }

    #[test]
    fn stddev_within_set() {
        let s = set(vec![
            RateObs {
                rate: rate(1.0),
                loss: 0.0,
                snr_db: 10.0,
            },
            RateObs {
                rate: rate(6.0),
                loss: 0.0,
                snr_db: 14.0,
            },
        ]);
        assert_eq!(s.snr_stddev(), 2.0);
    }

    #[test]
    fn obs_lookup() {
        let s = set(vec![RateObs {
            rate: rate(6.0),
            loss: 0.1,
            snr_db: 12.0,
        }]);
        assert!(s.obs_for(rate(6.0)).is_some());
        assert!(s.obs_for(rate(48.0)).is_none());
        assert_eq!(s.link(), (ApId(1), ApId(2)));
    }
}
