//! Indexed, columnar views over a [`Dataset`].
//!
//! Every analysis in the paper (§4–§7) is a *grouped scan*: per-link probe
//! histories (rate adaptation), per-(network, rate) delivery matrices
//! (routing, hidden triples), per-PHY probe streams (lookup tables, SNR
//! correlation). The raw [`Dataset`] only offers linear filters, so each of
//! those scans re-walked the whole probe vector. A [`DatasetIndex`] is built
//! once and turns each grouped scan into a contiguous range walk:
//!
//! * **`phy_order`** — probe positions stably sorted by PHY. The slice for a
//!   PHY preserves *dataset order*, so iterating it is bit-for-bit the same
//!   as `Dataset::probes_for_phy` (order-sensitive consumers such as the SNR
//!   correlation sums rely on this).
//! * **`link_order`** — positions stably sorted by
//!   `(phy, network, sender, receiver)`. Each directed link is a contiguous
//!   range whose *within-group order is dataset order* (stable sort), which
//!   is what makes indexed delivery-matrix accumulation byte-identical to
//!   the old linear filters: every matrix cell is fed by exactly one link,
//!   in the same order as before.
//! * **link/network groups** — interned link ids ([`LinkView::link_id`]) and
//!   per-network link + probe ranges, so per-network analyses touch only
//!   their own probes.
//! * **columnar side arrays** — per-probe `time_s`, median SNR (and its
//!   integer key), the optimal rate observation, plus flattened per-rate
//!   observation columns (rate, delivery, throughput, SNR). The hottest
//!   kernels (lookup-table training, penalty scoring, single-pass matrix
//!   stacks) read these instead of re-deriving medians and optima per call.
//!
//! The index is a pure function of the probe vector; it holds **positions**,
//! not copies, and must be rebuilt after any mutation of `Dataset::probes`
//! (see [`Dataset::merge`]). [`DatasetView`] bundles a dataset with its
//! index; analyses take a view by value (it is `Copy`).

use std::collections::BTreeMap;
use std::ops::Range;

use mesh11_phy::{BitRate, Phy};

use crate::dataset::{Dataset, NetworkMeta};
use crate::ids::{ApId, NetworkId};
use crate::matrix::DeliveryMatrix;
use crate::probe::{ProbeSet, RateObs};

/// Number of PHY families ([`Phy::Bg`], [`Phy::Ht`]).
const N_PHYS: usize = 2;

/// Dense slot of a PHY in the index's per-PHY range tables.
fn phy_slot(phy: Phy) -> usize {
    match phy {
        Phy::Bg => 0,
        Phy::Ht => 1,
    }
}

/// One directed link's contiguous range of `link_order`.
#[derive(Debug, Clone, PartialEq)]
struct LinkGroup {
    network: NetworkId,
    sender: ApId,
    receiver: ApId,
    /// Range into `DatasetIndex::link_order`.
    probes: Range<u32>,
}

/// One (PHY, network)'s contiguous ranges of links and probes.
#[derive(Debug, Clone, PartialEq)]
struct NetGroup {
    network: NetworkId,
    /// Range into `DatasetIndex::links`.
    links: Range<u32>,
    /// Range into `DatasetIndex::link_order`.
    probes: Range<u32>,
}

/// Precomputed grouping + columnar side arrays for one [`Dataset`].
///
/// Build with [`DatasetIndex::build`]; pair with the dataset via
/// [`DatasetView::new`]. The index refers to probes by position, so it is
/// invalidated by any mutation of `Dataset::probes` and must then be
/// rebuilt (building after mutation gives exactly the index of the mutated
/// dataset — there is no incremental state).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DatasetIndex {
    /// Probe count the index was built over (consistency check).
    n_probes: usize,
    /// Probe positions stably sorted by PHY; dataset order within a PHY.
    phy_order: Vec<u32>,
    /// Per-PHY range into `phy_order`, indexed by `phy_slot`.
    phy_ranges: [Range<u32>; N_PHYS],
    /// Probe positions stably sorted by (phy, network); dataset order
    /// within a group. Shares `phy_ranges` (same PHY split).
    net_order: Vec<u32>,
    /// Probe positions stably sorted by (phy, network, sender, receiver).
    link_order: Vec<u32>,
    /// Directed links, each a contiguous range of `link_order`, in
    /// (phy, network, sender, receiver) order.
    links: Vec<LinkGroup>,
    /// Per-PHY range into `links`.
    link_ranges: [Range<u32>; N_PHYS],
    /// Per-(phy, network) groups, in (phy, network) order.
    nets: Vec<NetGroup>,
    /// Per-PHY range into `nets`.
    net_ranges: [Range<u32>; N_PHYS],
    /// Per-probe report time (dataset position order).
    time_s: Vec<f64>,
    /// Per-probe median SNR (`ProbeSet::snr_db`), precomputed.
    snr_db: Vec<f64>,
    /// Per-probe integer SNR key (`ProbeSet::snr_key`), precomputed.
    snr_key: Vec<i64>,
    /// Per-probe optimal observation (`ProbeSet::optimal`), precomputed.
    opt: Vec<RateObs>,
    /// Prefix offsets into the flattened observation columns; length
    /// `n_probes + 1`.
    obs_off: Vec<u32>,
    /// Flattened per-observation rate.
    obs_rate: Vec<BitRate>,
    /// Flattened per-observation delivery probability (`1 − loss`, clamped).
    obs_delivery: Vec<f64>,
    /// Flattened per-observation throughput (Mbit/s).
    obs_thr_mbps: Vec<f64>,
    /// Flattened per-observation SNR (dB).
    obs_snr_db: Vec<f64>,
}

/// The flattened observation columns of one probe set, in `obs` order.
#[derive(Debug, Clone, Copy)]
pub struct ObsColumns<'a> {
    /// Rate of each observation.
    pub rates: &'a [BitRate],
    /// Delivery probability of each observation.
    pub deliveries: &'a [f64],
    /// Throughput (Mbit/s) of each observation.
    pub thr_mbps: &'a [f64],
    /// Most-recent SNR (dB) of each observation.
    pub snr_db: &'a [f64],
}

impl DatasetIndex {
    /// Builds the index over `ds.probes`. `O(n log n)` in the probe count.
    pub fn build(ds: &Dataset) -> Self {
        let n = ds.probes.len();
        assert!(n < u32::MAX as usize, "dataset too large to index");

        let mut time_s = Vec::with_capacity(n);
        let mut snr_db = Vec::with_capacity(n);
        let mut snr_key = Vec::with_capacity(n);
        let mut opt = Vec::with_capacity(n);
        let mut obs_off = Vec::with_capacity(n + 1);
        let mut obs_rate = Vec::new();
        let mut obs_delivery = Vec::new();
        let mut obs_thr_mbps = Vec::new();
        let mut obs_snr_db = Vec::new();
        obs_off.push(0u32);
        for p in &ds.probes {
            time_s.push(p.time_s);
            let snr = p.snr_db();
            snr_db.push(snr);
            snr_key.push(snr.round() as i64);
            opt.push(p.optimal());
            for o in &p.obs {
                obs_rate.push(o.rate);
                obs_delivery.push(o.delivery());
                obs_thr_mbps.push(o.throughput_mbps());
                obs_snr_db.push(o.snr_db);
            }
            obs_off.push(obs_rate.len() as u32);
        }

        // Stable by-PHY permutation: dataset order within each PHY.
        let mut phy_order: Vec<u32> = (0..n as u32).collect();
        phy_order.sort_by_key(|&i| phy_slot(ds.probes[i as usize].phy));
        let split = phy_order.partition_point(|&i| phy_slot(ds.probes[i as usize].phy) == 0);
        let phy_ranges = [0..split as u32, split as u32..n as u32];

        // Stable by-(phy, network) permutation: dataset order within each
        // group. Equal to `phy_order` when the dataset is network-major
        // (every campaign and window dataset is), which is what makes
        // per-network parallel folds concatenate back to the global
        // per-PHY walk byte-identically.
        let mut net_order = phy_order.clone();
        net_order.sort_by_key(|&i| {
            let p = &ds.probes[i as usize];
            (phy_slot(p.phy), p.network.0)
        });

        // Stable by-link permutation: dataset order within each directed
        // link (the ordering invariant every consumer relies on).
        let key = |i: u32| {
            let p = &ds.probes[i as usize];
            (phy_slot(p.phy), p.network.0, p.sender.0, p.receiver.0)
        };
        let mut link_order = phy_order.clone();
        link_order.sort_by_key(|&i| key(i));

        let mut links = Vec::new();
        let mut i = 0usize;
        while i < n {
            let k = key(link_order[i]);
            let start = i;
            while i < n && key(link_order[i]) == k {
                i += 1;
            }
            let p = &ds.probes[link_order[start] as usize];
            links.push(LinkGroup {
                network: p.network,
                sender: p.sender,
                receiver: p.receiver,
                probes: start as u32..i as u32,
            });
        }

        let link_phy = |g: &LinkGroup| {
            let first = g.probes.start as usize;
            phy_slot(ds.probes[link_order[first] as usize].phy)
        };
        let link_split = links.partition_point(|g| link_phy(g) == 0);
        let link_ranges = [0..link_split as u32, link_split as u32..links.len() as u32];

        let mut nets = Vec::new();
        let mut j = 0usize;
        while j < links.len() {
            let k = (link_phy(&links[j]), links[j].network);
            let start = j;
            while j < links.len() && (link_phy(&links[j]), links[j].network) == k {
                j += 1;
            }
            nets.push(NetGroup {
                network: k.1,
                links: start as u32..j as u32,
                probes: links[start].probes.start..links[j - 1].probes.end,
            });
        }
        let net_split = nets.partition_point(|g| {
            let first = g.links.start as usize;
            link_phy(&links[first]) == 0
        });
        let net_ranges = [0..net_split as u32, net_split as u32..nets.len() as u32];

        Self {
            n_probes: n,
            phy_order,
            phy_ranges,
            net_order,
            link_order,
            links,
            link_ranges,
            nets,
            net_ranges,
            time_s,
            snr_db,
            snr_key,
            opt,
            obs_off,
            obs_rate,
            obs_delivery,
            obs_thr_mbps,
            obs_snr_db,
        }
    }

    /// Probe count the index covers.
    pub fn n_probes(&self) -> usize {
        self.n_probes
    }

    /// Number of distinct directed links (across both PHYs).
    pub fn n_links(&self) -> usize {
        self.links.len()
    }

    /// Per-probe report time, by dataset position.
    pub fn time_s(&self, pos: usize) -> f64 {
        self.time_s[pos]
    }

    /// Per-probe median SNR (precomputed `ProbeSet::snr_db`).
    pub fn snr_db(&self, pos: usize) -> f64 {
        self.snr_db[pos]
    }

    /// Per-probe integer SNR key (precomputed `ProbeSet::snr_key`).
    pub fn snr_key(&self, pos: usize) -> i64 {
        self.snr_key[pos]
    }

    /// Per-probe optimal observation (precomputed `ProbeSet::optimal`).
    pub fn optimal(&self, pos: usize) -> RateObs {
        self.opt[pos]
    }

    /// The flattened observation columns of one probe set.
    pub fn obs(&self, pos: usize) -> ObsColumns<'_> {
        let r = self.obs_off[pos] as usize..self.obs_off[pos + 1] as usize;
        ObsColumns {
            rates: &self.obs_rate[r.clone()],
            deliveries: &self.obs_delivery[r.clone()],
            thr_mbps: &self.obs_thr_mbps[r.clone()],
            snr_db: &self.obs_snr_db[r],
        }
    }

    /// All directed links that ever produced a probe set, with their report
    /// counts — identical to [`Dataset::link_report_counts`] but assembled
    /// from the link groups instead of a full probe scan.
    pub fn link_report_counts(&self) -> BTreeMap<(NetworkId, ApId, ApId), usize> {
        let mut map = BTreeMap::new();
        for g in &self.links {
            *map.entry((g.network, g.sender, g.receiver)).or_insert(0) += g.probes.len();
        }
        map
    }

    fn net_group(&self, phy: Phy, network: NetworkId) -> Option<&NetGroup> {
        let r = self.net_ranges[phy_slot(phy)].clone();
        let slice = &self.nets[r.start as usize..r.end as usize];
        slice
            .binary_search_by_key(&network.0, |g| g.network.0)
            .ok()
            .map(|k| &slice[k])
    }

    /// The directed-link range table: one row per link, in
    /// (phy, network, sender, receiver) order, with each link's contiguous
    /// range of `link_order`. This is the introspection surface the
    /// incremental [`IndexStitcher`] is validated against.
    pub fn link_range_table(&self) -> Vec<LinkRange> {
        [Phy::Bg, Phy::Ht]
            .into_iter()
            .flat_map(|phy| {
                let r = self.link_ranges[phy_slot(phy)].clone();
                self.links[r.start as usize..r.end as usize]
                    .iter()
                    .map(move |g| LinkRange {
                        phy,
                        network: g.network,
                        sender: g.sender,
                        receiver: g.receiver,
                        probes: g.probes.clone(),
                    })
            })
            .collect()
    }

    /// The per-(phy, network) range table, in (phy, network) order, with
    /// each group's contiguous link and probe ranges.
    pub fn net_range_table(&self) -> Vec<NetRange> {
        [Phy::Bg, Phy::Ht]
            .into_iter()
            .flat_map(|phy| {
                let r = self.net_ranges[phy_slot(phy)].clone();
                self.nets[r.start as usize..r.end as usize]
                    .iter()
                    .map(move |g| NetRange {
                        phy,
                        network: g.network,
                        links: g.links.clone(),
                        probes: g.probes.clone(),
                    })
            })
            .collect()
    }
}

/// One row of [`DatasetIndex::link_range_table`]: a directed link and its
/// contiguous probe range in the (phy, network, sender, receiver)-sorted
/// permutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkRange {
    /// PHY family of the link's probes.
    pub phy: Phy,
    /// Owning network.
    pub network: NetworkId,
    /// Sending AP.
    pub sender: ApId,
    /// Receiving AP.
    pub receiver: ApId,
    /// Range into the link-sorted probe permutation.
    pub probes: Range<u32>,
}

/// One row of [`DatasetIndex::net_range_table`]: a (phy, network) group's
/// contiguous link and probe ranges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetRange {
    /// PHY family of the group.
    pub phy: Phy,
    /// The network.
    pub network: NetworkId,
    /// Range into the link table.
    pub links: Range<u32>,
    /// Range into the link-sorted probe permutation.
    pub probes: Range<u32>,
}

/// Incremental construction of the [`DatasetIndex`] range tables from a
/// probe *stream*, without holding the probes.
///
/// Feed every probe in dataset order (chunk by chunk — boundaries are
/// irrelevant), then [`IndexStitcher::finish`]. Because the monolithic
/// index's permutations are **stable** sorts of dataset order, each link's
/// range start is exactly the number of probes whose sort key precedes it
/// and its length is its probe count — both pure functions of the per-key
/// counts, which is all the stitcher keeps. `finish` therefore reproduces
/// [`DatasetIndex::link_range_table`] / [`DatasetIndex::net_range_table`]
/// bit for bit (property-tested over arbitrary chunk placements).
#[derive(Debug, Clone, Default)]
pub struct IndexStitcher {
    /// Probe count per (phy_slot, network, sender, receiver).
    counts: BTreeMap<(usize, u32, u32, u32), u32>,
    n_probes: u64,
}

impl IndexStitcher {
    /// A stitcher with no observed probes.
    pub fn new() -> Self {
        Self::default()
    }

    /// Observes one probe of the stream.
    pub fn observe(&mut self, p: &ProbeSet) {
        *self
            .counts
            .entry((phy_slot(p.phy), p.network.0, p.sender.0, p.receiver.0))
            .or_insert(0) += 1;
        self.n_probes += 1;
    }

    /// Probes observed so far.
    pub fn n_probes(&self) -> u64 {
        self.n_probes
    }

    /// Assigns the stable global ranges.
    pub fn finish(self) -> StitchedIndex {
        assert!(
            self.n_probes < u32::MAX as u64,
            "dataset too large to index"
        );
        let mut links = Vec::with_capacity(self.counts.len());
        let mut off = 0u32;
        for (&(slot, net, s, r), &n) in &self.counts {
            links.push(LinkRange {
                phy: if slot == 0 { Phy::Bg } else { Phy::Ht },
                network: NetworkId(net),
                sender: ApId(s),
                receiver: ApId(r),
                probes: off..off + n,
            });
            off += n;
        }
        let mut nets = Vec::new();
        let mut i = 0usize;
        while i < links.len() {
            let k = (links[i].phy, links[i].network);
            let start = i;
            while i < links.len() && (links[i].phy, links[i].network) == k {
                i += 1;
            }
            nets.push(NetRange {
                phy: k.0,
                network: k.1,
                links: start as u32..i as u32,
                probes: links[start].probes.start..links[i - 1].probes.end,
            });
        }
        StitchedIndex { links, nets }
    }
}

/// The stitched global range tables of a chunked dataset — the structural
/// part of a [`DatasetIndex`] (the columnar side arrays stay chunk-local).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StitchedIndex {
    /// Per-link ranges, identical to [`DatasetIndex::link_range_table`].
    pub links: Vec<LinkRange>,
    /// Per-(phy, network) ranges, identical to
    /// [`DatasetIndex::net_range_table`].
    pub nets: Vec<NetRange>,
}

impl StitchedIndex {
    /// Number of distinct directed links (across both PHYs).
    pub fn n_links(&self) -> usize {
        self.links.len()
    }

    /// Directed-link report counts, identical to
    /// [`DatasetIndex::link_report_counts`].
    pub fn link_report_counts(&self) -> BTreeMap<(NetworkId, ApId, ApId), usize> {
        let mut map = BTreeMap::new();
        for g in &self.links {
            *map.entry((g.network, g.sender, g.receiver)).or_insert(0) += g.probes.len();
        }
        map
    }
}

/// A [`Dataset`] paired with its [`DatasetIndex`]. `Copy` — analyses take
/// it by value.
#[derive(Debug, Clone, Copy)]
pub struct DatasetView<'a> {
    ds: &'a Dataset,
    ix: &'a DatasetIndex,
}

impl<'a> DatasetView<'a> {
    /// Pairs a dataset with an index built over it.
    ///
    /// # Panics
    /// If the index was built over a different probe count (stale index).
    pub fn new(ds: &'a Dataset, ix: &'a DatasetIndex) -> Self {
        assert_eq!(
            ds.probes.len(),
            ix.n_probes,
            "stale DatasetIndex: rebuild after mutating the dataset"
        );
        Self { ds, ix }
    }

    /// The underlying dataset.
    pub fn dataset(&self) -> &'a Dataset {
        self.ds
    }

    /// The index.
    pub fn index(&self) -> &'a DatasetIndex {
        self.ix
    }

    /// Per-network metadata (delegates to the dataset).
    pub fn networks(&self) -> &'a [NetworkMeta] {
        &self.ds.networks
    }

    /// Metadata of one network (delegates to the dataset).
    pub fn meta(&self, id: NetworkId) -> Option<&'a NetworkMeta> {
        self.ds.meta(id)
    }

    /// Networks with at least `n` APs (delegates to the dataset).
    pub fn networks_with_at_least(&self, n: usize) -> impl Iterator<Item = &'a NetworkMeta> {
        self.ds.networks_with_at_least(n)
    }

    /// The probe entry at a dataset position.
    pub fn entry(&self, pos: usize) -> ProbeEntry<'a> {
        ProbeEntry {
            pos,
            probe: &self.ds.probes[pos],
            time_s: self.ix.time_s[pos],
            snr_db: self.ix.snr_db[pos],
            snr_key: self.ix.snr_key[pos],
            opt: self.ix.opt[pos],
        }
    }

    /// Probe sets of one PHY, in dataset order — same sequence as
    /// [`Dataset::probes_for_phy`], without the full-vector filter walk.
    pub fn probes_for_phy(&self, phy: Phy) -> impl Iterator<Item = &'a ProbeSet> + 'a {
        let ds = self.ds;
        self.phy_positions(phy)
            .iter()
            .map(move |&i| &ds.probes[i as usize])
    }

    /// Probe entries (probe + precomputed columns) of one PHY, in dataset
    /// order.
    pub fn entries_for_phy(&self, phy: Phy) -> impl Iterator<Item = ProbeEntry<'a>> + 'a {
        let v = *self;
        self.phy_positions(phy)
            .iter()
            .map(move |&i| v.entry(i as usize))
    }

    fn phy_positions(&self, phy: Phy) -> &'a [u32] {
        let r = self.ix.phy_ranges[phy_slot(phy)].clone();
        &self.ix.phy_order[r.start as usize..r.end as usize]
    }

    /// Directed links of one PHY, in (network, sender, receiver) order.
    pub fn links_for_phy(&self, phy: Phy) -> impl Iterator<Item = LinkView<'a>> + 'a {
        let v = *self;
        let r = self.ix.link_ranges[phy_slot(phy)].clone();
        (r.start as usize..r.end as usize).map(move |k| LinkView {
            view: v,
            link_id: k as u32,
        })
    }

    /// The indexed group of one (PHY, network); `None` when the network has
    /// no probes for that PHY (an empty group, as the linear filters would
    /// also have produced).
    pub fn network(&self, phy: Phy, network: NetworkId) -> Option<NetworkView<'a>> {
        let r = self.ix.net_ranges[phy_slot(phy)].clone();
        let slice = &self.ix.nets[r.start as usize..r.end as usize];
        let k = slice
            .binary_search_by_key(&network.0, |g| g.network.0)
            .ok()?;
        let phy_off: u32 = slice[..k].iter().map(|g| g.probes.len() as u32).sum();
        Some(NetworkView {
            view: *self,
            group: &slice[k],
            phy,
            phy_off,
        })
    }

    /// All (PHY, network) groups of one PHY, in network-id order — the
    /// flat work list intra-kernel parallelism fans out over. For every
    /// per-network traversal ([`NetworkView::links`], [`NetworkView::entries`],
    /// [`NetworkView::entries_in_order`], …) concatenating the networks'
    /// iterations in this order reproduces the corresponding global
    /// per-PHY traversal exactly, float-accumulation order included.
    pub fn network_views(&self, phy: Phy) -> Vec<NetworkView<'a>> {
        let r = self.ix.net_ranges[phy_slot(phy)].clone();
        let mut off = 0u32;
        self.ix.nets[r.start as usize..r.end as usize]
            .iter()
            .map(|g| {
                let nv = NetworkView {
                    view: *self,
                    group: g,
                    phy,
                    phy_off: off,
                };
                off += g.probes.len() as u32;
                nv
            })
            .collect()
    }

    /// The delivery matrix of one (network, rate) — identical to
    /// `DeliveryMatrix::from_probes` over the network's probes, computed
    /// from the indexed range.
    pub fn delivery_matrix(
        &self,
        phy: Phy,
        network: NetworkId,
        rate: BitRate,
        n_aps: usize,
    ) -> DeliveryMatrix {
        self.delivery_stack(phy, network, std::slice::from_ref(&rate), n_aps)
            .pop()
            .expect("one rate in, one matrix out")
    }

    /// One delivery matrix per rate, from a **single pass** over the
    /// network's probes. Byte-identical to calling
    /// `DeliveryMatrix::from_probes` once per rate: every matrix cell is
    /// fed by exactly one link, the within-link order is dataset order,
    /// and only the first observation of a rate within a probe set counts
    /// (the `obs_for` contract).
    pub fn delivery_stack(
        &self,
        phy: Phy,
        network: NetworkId,
        rates: &[BitRate],
        n_aps: usize,
    ) -> Vec<DeliveryMatrix> {
        assert!(rates.len() <= 128, "rate stack too deep");
        let n2 = n_aps * n_aps;
        let mut sums = vec![0.0f64; rates.len() * n2];
        let mut cnts = vec![0u32; rates.len() * n2];
        // First slot of each distinct rate; duplicate rates in `rates`
        // share the first slot's accumulation (copied below).
        let mut slot_of: BTreeMap<BitRate, usize> = BTreeMap::new();
        for (j, &r) in rates.iter().enumerate() {
            slot_of.entry(r).or_insert(j);
        }
        if let Some(g) = self.ix.net_group(phy, network) {
            let positions = &self.ix.link_order[g.probes.start as usize..g.probes.end as usize];
            for &pos in positions {
                let p = &self.ds.probes[pos as usize];
                let cell = p.sender.idx() * n_aps + p.receiver.idx();
                let obs = self.ix.obs(pos as usize);
                let mut seen = 0u128;
                for (k, r) in obs.rates.iter().enumerate() {
                    let Some(&slot) = slot_of.get(r) else {
                        continue;
                    };
                    if seen & (1 << slot) != 0 {
                        continue; // obs_for takes the first observation
                    }
                    seen |= 1 << slot;
                    sums[slot * n2 + cell] += obs.deliveries[k];
                    cnts[slot * n2 + cell] += 1;
                }
            }
        }
        rates
            .iter()
            .map(|&rate| {
                let src = slot_of[&rate];
                let p = sums[src * n2..(src + 1) * n2]
                    .iter()
                    .zip(&cnts[src * n2..(src + 1) * n2])
                    .map(|(&s, &c)| if c == 0 { 0.0 } else { s / c as f64 })
                    .collect();
                DeliveryMatrix::from_parts(network, rate, n_aps, p)
            })
            .collect()
    }

    /// Directed-link report counts (delegates to the index).
    pub fn link_report_counts(&self) -> BTreeMap<(NetworkId, ApId, ApId), usize> {
        self.ix.link_report_counts()
    }
}

/// One probe set plus its precomputed columns.
#[derive(Debug, Clone, Copy)]
pub struct ProbeEntry<'a> {
    /// Position in `Dataset::probes`.
    pub pos: usize,
    /// The probe set itself.
    pub probe: &'a ProbeSet,
    /// Report time (seconds), from the time column.
    pub time_s: f64,
    /// Median SNR (`ProbeSet::snr_db`), precomputed.
    pub snr_db: f64,
    /// Integer SNR key (`ProbeSet::snr_key`), precomputed.
    pub snr_key: i64,
    /// Optimal observation (`ProbeSet::optimal`), precomputed.
    pub opt: RateObs,
}

/// One directed link's indexed probe range.
#[derive(Debug, Clone, Copy)]
pub struct LinkView<'a> {
    view: DatasetView<'a>,
    link_id: u32,
}

impl<'a> LinkView<'a> {
    fn group(&self) -> &'a LinkGroup {
        &self.view.ix.links[self.link_id as usize]
    }

    /// Interned link id: dense index of this directed link in the index's
    /// (phy, network, sender, receiver)-ordered link table.
    pub fn link_id(&self) -> u32 {
        self.link_id
    }

    /// The network the link belongs to.
    pub fn network(&self) -> NetworkId {
        self.group().network
    }

    /// Sending AP.
    pub fn sender(&self) -> ApId {
        self.group().sender
    }

    /// Receiving AP.
    pub fn receiver(&self) -> ApId {
        self.group().receiver
    }

    /// Number of probe-set reports on this link.
    pub fn len(&self) -> usize {
        self.group().probes.len()
    }

    /// Whether the link has no reports (never true for indexed links).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn positions(&self) -> &'a [u32] {
        let g = self.group();
        &self.view.ix.link_order[g.probes.start as usize..g.probes.end as usize]
    }

    /// The link's probe sets, in dataset order (time order for trace data).
    pub fn probes(&self) -> impl Iterator<Item = &'a ProbeSet> + 'a {
        let ds = self.view.ds;
        self.positions()
            .iter()
            .map(move |&i| &ds.probes[i as usize])
    }

    /// The link's probe entries, in dataset order.
    pub fn entries(&self) -> impl Iterator<Item = ProbeEntry<'a>> + 'a {
        let v = self.view;
        self.positions().iter().map(move |&i| v.entry(i as usize))
    }
}

/// One (PHY, network)'s indexed probe and link ranges.
#[derive(Debug, Clone, Copy)]
pub struct NetworkView<'a> {
    view: DatasetView<'a>,
    group: &'a NetGroup,
    /// The PHY the group was looked up under.
    phy: Phy,
    /// Offset of this network's probes inside the PHY's `phy_order`
    /// segment. Valid because datasets are network-major: the stable
    /// phy sort keeps each network's probes a contiguous run, in
    /// network-id order, so run offsets are the prefix sums of the
    /// groups' probe counts.
    phy_off: u32,
}

impl<'a> NetworkView<'a> {
    /// The network id.
    pub fn network(&self) -> NetworkId {
        self.group.network
    }

    /// Number of probe-set reports in the group.
    pub fn n_reports(&self) -> usize {
        self.group.probes.len()
    }

    /// The network's directed links, in (sender, receiver) order.
    pub fn links(&self) -> impl Iterator<Item = LinkView<'a>> + 'a {
        let v = self.view;
        let r = self.group.links.clone();
        (r.start..r.end).map(move |k| LinkView {
            view: v,
            link_id: k,
        })
    }

    /// The network's probe sets, grouped by link, dataset order within
    /// each link.
    pub fn probes(&self) -> impl Iterator<Item = &'a ProbeSet> + 'a {
        let ds = self.view.ds;
        let g = self.group;
        self.view.ix.link_order[g.probes.start as usize..g.probes.end as usize]
            .iter()
            .map(move |&i| &ds.probes[i as usize])
    }

    /// The network's probe entries, grouped by link.
    pub fn entries(&self) -> impl Iterator<Item = ProbeEntry<'a>> + 'a {
        let v = self.view;
        let g = self.group;
        self.view.ix.link_order[g.probes.start as usize..g.probes.end as usize]
            .iter()
            .map(move |&i| v.entry(i as usize))
    }

    /// This network's contiguous run of dataset-order probe positions:
    /// its segment of the (phy, network)-stable permutation, located by
    /// the prefix-sum offset of the preceding groups.
    fn phy_run(&self) -> &'a [u32] {
        let ix = self.view.ix;
        let r = ix.phy_ranges[phy_slot(self.phy)].clone();
        let seg = &ix.net_order[r.start as usize..r.end as usize];
        &seg[self.phy_off as usize..self.phy_off as usize + self.group.probes.len()]
    }

    /// The network's probe entries in dataset (stream) order — exactly
    /// the subsequence [`DatasetView::entries_for_phy`] yields for this
    /// network, unlike [`NetworkView::entries`] which groups by link.
    pub fn entries_in_order(&self) -> impl Iterator<Item = ProbeEntry<'a>> + 'a {
        let v = self.view;
        self.phy_run().iter().map(move |&i| v.entry(i as usize))
    }

    /// The network's probe sets in dataset (stream) order (see
    /// [`NetworkView::entries_in_order`]).
    pub fn probes_in_order(&self) -> impl Iterator<Item = &'a ProbeSet> + 'a {
        let ds = self.view.ds;
        self.phy_run().iter().map(move |&i| &ds.probes[i as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::EnvLabel;
    use mesh11_phy::rate::BG_PROBED;

    fn rate(mbps: f64) -> BitRate {
        BitRate::bg_mbps(mbps).unwrap()
    }

    fn probe(net: u32, phy: Phy, s: u32, r: u32, t: f64, loss: f64) -> ProbeSet {
        let rt = match phy {
            Phy::Bg => rate(11.0),
            Phy::Ht => BitRate::ht_mcs(3, false).unwrap(),
        };
        ProbeSet {
            network: NetworkId(net),
            phy,
            time_s: t,
            sender: ApId(s),
            receiver: ApId(r),
            obs: vec![
                RateObs {
                    rate: rt,
                    loss,
                    snr_db: 18.0,
                },
                RateObs {
                    rate: match phy {
                        Phy::Bg => rate(1.0),
                        Phy::Ht => BitRate::ht_mcs(0, false).unwrap(),
                    },
                    loss: 0.0,
                    snr_db: 20.0,
                },
            ],
        }
    }

    fn mixed_dataset() -> Dataset {
        let meta = |i: u32, n: usize, radios: Vec<Phy>| NetworkMeta {
            id: NetworkId(i),
            env: EnvLabel::Indoor,
            n_aps: n,
            radios,
            location: "Testville".into(),
        };
        Dataset {
            networks: vec![
                meta(0, 3, vec![Phy::Bg]),
                meta(1, 2, vec![Phy::Ht]),
                meta(2, 2, vec![Phy::Bg]),
            ],
            probes: vec![
                probe(2, Phy::Bg, 0, 1, 300.0, 0.1),
                probe(0, Phy::Bg, 0, 1, 300.0, 0.2),
                probe(1, Phy::Ht, 1, 0, 300.0, 0.3),
                probe(0, Phy::Bg, 1, 0, 300.0, 0.4),
                probe(0, Phy::Bg, 0, 1, 600.0, 0.5),
                probe(1, Phy::Ht, 0, 1, 600.0, 0.6),
                probe(0, Phy::Bg, 0, 2, 600.0, 0.7),
            ],
            clients: Vec::new(),
            probe_horizon_s: 900.0,
            client_horizon_s: 0.0,
        }
    }

    fn view_over(ds: &Dataset, ix: &DatasetIndex) -> (Vec<f64>, Vec<f64>) {
        let v = DatasetView::new(ds, ix);
        let bg: Vec<f64> = v.probes_for_phy(Phy::Bg).map(|p| p.time_s).collect();
        let ht: Vec<f64> = v.probes_for_phy(Phy::Ht).map(|p| p.time_s).collect();
        (bg, ht)
    }

    #[test]
    fn phy_order_matches_linear_filter() {
        let ds = mixed_dataset();
        let ix = DatasetIndex::build(&ds);
        let v = DatasetView::new(&ds, &ix);
        for phy in [Phy::Bg, Phy::Ht] {
            let linear: Vec<&ProbeSet> = ds.probes_for_phy(phy).collect();
            let indexed: Vec<&ProbeSet> = v.probes_for_phy(phy).collect();
            assert_eq!(linear, indexed, "{phy}: order must be dataset order");
        }
        let _ = view_over(&ds, &ix);
    }

    #[test]
    fn link_groups_preserve_dataset_order() {
        let ds = mixed_dataset();
        let ix = DatasetIndex::build(&ds);
        let v = DatasetView::new(&ds, &ix);
        // Network 0, link 0→1 has two reports, dataset (time) order.
        let net = v.network(Phy::Bg, NetworkId(0)).unwrap();
        let links: Vec<LinkView> = net.links().collect();
        assert_eq!(links.len(), 3);
        assert_eq!(
            (links[0].sender(), links[0].receiver(), links[0].len()),
            (ApId(0), ApId(1), 2)
        );
        let times: Vec<f64> = links[0].probes().map(|p| p.time_s).collect();
        assert_eq!(times, vec![300.0, 600.0]);
        // Entries expose the precomputed columns.
        let e: Vec<ProbeEntry> = links[0].entries().collect();
        assert_eq!(e[0].snr_key, 19); // median of {18, 20}
        assert_eq!(e[0].opt.rate, rate(11.0));
        assert_eq!(net.n_reports(), 4);
    }

    #[test]
    fn network_views_concatenate_to_global_walks() {
        let ds = mixed_dataset();
        let ix = DatasetIndex::build(&ds);
        let v = DatasetView::new(&ds, &ix);
        for phy in [Phy::Bg, Phy::Ht] {
            let nets = v.network_views(phy);
            // Per-network link iterations concatenate to links_for_phy.
            let global: Vec<u32> = v.links_for_phy(phy).map(|l| l.link_id()).collect();
            let concat: Vec<u32> = nets
                .iter()
                .flat_map(|nv| nv.links().map(|l| l.link_id()))
                .collect();
            assert_eq!(concat, global, "{phy}: link order");
            // Each network's stream-order entries are that network's
            // subsequence of the global per-PHY dataset-order walk.
            for nv in &nets {
                let direct: Vec<usize> = v
                    .entries_for_phy(phy)
                    .filter(|e| e.probe.network == nv.network())
                    .map(|e| e.pos)
                    .collect();
                let run: Vec<usize> = nv.entries_in_order().map(|e| e.pos).collect();
                assert_eq!(run, direct, "{phy}: net {}", nv.network().0);
                let probes: Vec<usize> = nv
                    .probes_in_order()
                    .map(|p| p.time_s as usize * 10 + p.sender.idx())
                    .collect();
                let entries: Vec<usize> = nv
                    .entries_in_order()
                    .map(|e| e.probe.time_s as usize * 10 + e.probe.sender.idx())
                    .collect();
                assert_eq!(probes, entries);
            }
            // `network()` agrees with `network_views` on the offsets.
            for nv in &nets {
                let single = v.network(phy, nv.network()).unwrap();
                assert_eq!(
                    single.entries_in_order().map(|e| e.pos).collect::<Vec<_>>(),
                    nv.entries_in_order().map(|e| e.pos).collect::<Vec<_>>()
                );
            }
        }
    }

    #[test]
    fn network_lookup_misses_are_none() {
        let ds = mixed_dataset();
        let ix = DatasetIndex::build(&ds);
        let v = DatasetView::new(&ds, &ix);
        assert!(v.network(Phy::Ht, NetworkId(0)).is_none());
        assert!(v.network(Phy::Bg, NetworkId(1)).is_none());
        assert!(v.network(Phy::Bg, NetworkId(9)).is_none());
    }

    #[test]
    fn link_report_counts_match_full_scan() {
        let ds = mixed_dataset();
        let ix = DatasetIndex::build(&ds);
        assert_eq!(ix.link_report_counts(), ds.link_report_counts());
        assert_eq!(ix.n_links(), 6);
        assert_eq!(ix.n_probes(), ds.probes.len());
    }

    #[test]
    fn delivery_stack_matches_from_probes() {
        let ds = mixed_dataset();
        let ix = DatasetIndex::build(&ds);
        let v = DatasetView::new(&ds, &ix);
        for m in &ds.networks {
            let probes: Vec<&ProbeSet> = ds
                .probes_for_network(m.id)
                .filter(|p| p.phy == Phy::Bg)
                .collect();
            let stack = v.delivery_stack(Phy::Bg, m.id, BG_PROBED, m.n_aps);
            for (k, &r) in BG_PROBED.iter().enumerate() {
                let lin = DeliveryMatrix::from_probes(m.id, r, m.n_aps, probes.iter().copied());
                assert_eq!(stack[k], lin, "net {} rate {r}", m.id.0);
            }
            let single = v.delivery_matrix(Phy::Bg, m.id, rate(11.0), m.n_aps);
            let lin = DeliveryMatrix::from_probes(m.id, rate(11.0), m.n_aps, probes);
            assert_eq!(single, lin);
        }
    }

    #[test]
    fn delivery_stack_first_obs_wins_and_duplicates_share() {
        // A probe set with a duplicate rate entry: obs_for takes the first,
        // so the stack must too; a duplicated rate in the request list gets
        // a copy of the same matrix.
        let mut ds = mixed_dataset();
        ds.probes[1].obs.push(RateObs {
            rate: rate(11.0),
            loss: 0.9,
            snr_db: 5.0,
        });
        let ix = DatasetIndex::build(&ds);
        let v = DatasetView::new(&ds, &ix);
        let rates = [rate(11.0), rate(1.0), rate(11.0)];
        let stack = v.delivery_stack(Phy::Bg, NetworkId(0), &rates, 3);
        let probes: Vec<&ProbeSet> = ds.probes_for_network(NetworkId(0)).collect();
        let lin = DeliveryMatrix::from_probes(NetworkId(0), rate(11.0), 3, probes);
        assert_eq!(stack[0], lin);
        assert_eq!(stack[0], stack[2]);
    }

    #[test]
    fn columns_match_probe_methods() {
        let ds = mixed_dataset();
        let ix = DatasetIndex::build(&ds);
        for (pos, p) in ds.probes.iter().enumerate() {
            assert_eq!(ix.time_s(pos), p.time_s);
            assert_eq!(ix.snr_db(pos), p.snr_db());
            assert_eq!(ix.snr_key(pos), p.snr_key());
            assert_eq!(ix.optimal(pos), p.optimal());
            let obs = ix.obs(pos);
            assert_eq!(obs.rates.len(), p.obs.len());
            for (k, o) in p.obs.iter().enumerate() {
                assert_eq!(obs.rates[k], o.rate);
                assert_eq!(obs.deliveries[k], o.delivery());
                assert_eq!(obs.thr_mbps[k], o.throughput_mbps());
                assert_eq!(obs.snr_db[k], o.snr_db);
            }
        }
    }

    #[test]
    fn empty_dataset_indexes() {
        let ds = Dataset::default();
        let ix = DatasetIndex::build(&ds);
        let v = DatasetView::new(&ds, &ix);
        assert_eq!(v.probes_for_phy(Phy::Bg).count(), 0);
        assert_eq!(v.links_for_phy(Phy::Ht).count(), 0);
        assert!(v.network(Phy::Bg, NetworkId(0)).is_none());
        assert!(ix.link_report_counts().is_empty());
    }

    #[test]
    fn stitcher_matches_monolithic_tables() {
        let ds = mixed_dataset();
        let ix = DatasetIndex::build(&ds);
        let mut st = IndexStitcher::new();
        for p in &ds.probes {
            st.observe(p);
        }
        assert_eq!(st.n_probes(), ds.probes.len() as u64);
        let stitched = st.finish();
        assert_eq!(stitched.links, ix.link_range_table());
        assert_eq!(stitched.nets, ix.net_range_table());
        assert_eq!(stitched.link_report_counts(), ix.link_report_counts());
        assert_eq!(stitched.n_links(), ix.n_links());
    }

    #[test]
    #[should_panic(expected = "stale DatasetIndex")]
    fn stale_index_is_rejected() {
        let mut ds = mixed_dataset();
        let ix = DatasetIndex::build(&ds);
        ds.probes.push(probe(0, Phy::Bg, 2, 0, 900.0, 0.1));
        let _ = DatasetView::new(&ds, &ix);
    }
}
