//! Aggregate client records (paper §3.2).
//!
//! Each AP logs, per client and per 5-minute bin, the number of association
//! requests and data packets seen. The stream is uncontrolled — it is
//! whatever real users did — and is the sole input to the §7 mobility
//! analysis. An 11-hour snapshot is used there.

use serde::{Deserialize, Serialize};

use crate::ids::{ApId, ClientId, NetworkId};

/// Bin width of the aggregate client data (seconds).
pub const CLIENT_BIN_S: f64 = 300.0;

/// One (AP, client, 5-minute bin) aggregate record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClientSample {
    /// Network the AP belongs to.
    pub network: NetworkId,
    /// The AP that logged the record.
    pub ap: ApId,
    /// The client (anonymized, network-scoped).
    pub client: ClientId,
    /// Bin start time (seconds since trace start; multiple of
    /// [`CLIENT_BIN_S`]).
    pub bin_start_s: f64,
    /// Association requests seen in the bin.
    pub assoc_requests: u32,
    /// Data packets exchanged in the bin.
    pub data_pkts: u32,
}

impl ClientSample {
    /// Whether the client was meaningfully present at the AP in this bin
    /// (any traffic or association activity).
    pub fn is_active(&self) -> bool {
        self.assoc_requests > 0 || self.data_pkts > 0
    }

    /// Bin index (`bin_start_s / 300`).
    pub fn bin_index(&self) -> u64 {
        (self.bin_start_s / CLIENT_BIN_S).round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activity() {
        let mut s = ClientSample {
            network: NetworkId(0),
            ap: ApId(1),
            client: ClientId(2),
            bin_start_s: 600.0,
            assoc_requests: 0,
            data_pkts: 0,
        };
        assert!(!s.is_active());
        s.data_pkts = 1;
        assert!(s.is_active());
        s.data_pkts = 0;
        s.assoc_requests = 1;
        assert!(s.is_active());
    }

    #[test]
    fn bin_index() {
        let s = ClientSample {
            network: NetworkId(0),
            ap: ApId(0),
            client: ClientId(0),
            bin_start_s: 1500.0,
            assoc_requests: 0,
            data_pkts: 0,
        };
        assert_eq!(s.bin_index(), 5);
    }
}
