//! # mesh11-trace
//!
//! The dataset model: the shape of the data the paper's measurement
//! infrastructure produced, independent of how it was produced.
//!
//! Everything downstream (the `mesh11-core` analyses) consumes only these
//! types; the simulator (`mesh11-sim`) is just one producer. A real
//! Meraki-style export could be loaded into the same structures and the
//! entire analysis pipeline would run unchanged — that separation is the
//! design center of the reproduction.
//!
//! ## Data shapes (paper §3)
//!
//! * [`ProbeSet`] — one report of inter-AP broadcast-probe statistics: for a
//!   (receiver, sender) pair, the mean loss rate over the past 800 s and the
//!   most recent SNR, per probed bit rate. Reports arrive every 300 s; each
//!   rate's loss aggregates ≈20 probes (40 s cadence).
//! * [`ClientSample`] — one 5-minute bin of per-client counters at an AP:
//!   association requests and data packets. Driven by real user behaviour,
//!   not controlled probes.
//! * [`Dataset`] — the container: network metadata plus both record streams,
//!   with JSON and compact binary codecs.
//! * [`DeliveryMatrix`] — the per-(network, rate) directed delivery-rate
//!   matrix distilled from probe sets; the input to the routing (§5) and
//!   hidden-triple (§6) analyses.
//! * [`DatasetIndex`] / [`DatasetView`] — precomputed grouped ranges
//!   (per PHY, per network, per directed link) plus columnar side arrays,
//!   so the analyses walk contiguous slices instead of re-filtering the
//!   probe vector.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chunk;
pub mod client;
pub mod codec;
pub mod dataset;
pub mod fold;
pub mod ids;
pub mod index;
pub mod matrix;
pub mod probe;
pub mod slice;
pub mod snrstats;
pub mod validate;

pub use chunk::{
    ChunkConfig, ChunkHandle, ChunkStore, ChunkStoreStats, ChunkedDataset, ChunkedDatasetBuilder,
    ProbeChunk, ProbeSource, SpillCodec, WindowData,
};
pub use client::ClientSample;
pub use dataset::{Dataset, NetworkMeta};
pub use fold::{fold_windows, run_fold, FoldKernel, Running, WindowFold};
pub use ids::{ApId, ClientId, EnvLabel, NetworkId};
pub use index::{
    DatasetIndex, DatasetView, IndexStitcher, LinkRange, LinkView, NetRange, NetworkView,
    ObsColumns, ProbeEntry, StitchedIndex,
};
pub use matrix::DeliveryMatrix;
pub use probe::{ProbeSet, RateObs};
