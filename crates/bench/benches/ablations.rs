//! Criterion benchmarks of the extension/ablation kernels (DESIGN.md §8):
//! adapter replay, capped-ExOR, floor sweeps, and triple-definition sweeps.

use criterion::{criterion_group, criterion_main, Criterion};
use mesh11_bench::{ReproContext, Scale};
use mesh11_core::bitrate::{simulate_adapters, AdapterKind};
use mesh11_core::routing::ablation::{delivery_floor_sweep, improvement_vs_cap};
use mesh11_core::triples::sweep::threshold_sweep;
use mesh11_core::triples::HearRule;
use mesh11_phy::{BitRate, Phy};
use mesh11_trace::DeliveryMatrix;
use std::hint::black_box;
use std::sync::OnceLock;

fn ctx() -> &'static ReproContext {
    static CTX: OnceLock<ReproContext> = OnceLock::new();
    CTX.get_or_init(|| ReproContext::build(Scale::Quick, 42))
}

fn biggest_bg_matrix() -> DeliveryMatrix {
    let view = ctx().view();
    let one = BitRate::bg_mbps(1.0).unwrap();
    let meta = view
        .networks_with_at_least(5)
        .filter(|m| m.radios.contains(&Phy::Bg))
        .max_by_key(|m| m.n_aps)
        .expect("quick campaign has a big b/g network");
    view.delivery_matrix(Phy::Bg, meta.id, one, meta.n_aps)
}

fn bench_adapters(c: &mut Criterion) {
    let view = ctx().view();
    let kinds = [
        AdapterKind::Oracle,
        AdapterKind::SnrTable { top_k: 2 },
        AdapterKind::EwmaProbing { alpha: 0.3 },
    ];
    c.bench_function("ablation/adapter-replay", |b| {
        b.iter(|| black_box(simulate_adapters(black_box(view), Phy::Bg, &kinds, 0.10)))
    });
}

fn bench_capped_exor(c: &mut Criterion) {
    let m = biggest_bg_matrix();
    c.bench_function("ablation/exor-cap-sweep", |b| {
        b.iter(|| black_box(improvement_vs_cap(black_box(&m), &[1, 2, 4, usize::MAX])))
    });
}

fn bench_floor_sweep(c: &mut Criterion) {
    let m = biggest_bg_matrix();
    c.bench_function("ablation/delivery-floor-sweep", |b| {
        b.iter(|| black_box(delivery_floor_sweep(black_box(&m), &[0.05, 0.1, 0.2, 0.4])))
    });
}

fn bench_threshold_sweep(c: &mut Criterion) {
    let view = ctx().view();
    let one = BitRate::bg_mbps(1.0).unwrap();
    c.bench_function("ablation/triple-threshold-sweep", |b| {
        b.iter(|| {
            black_box(threshold_sweep(
                black_box(view),
                Phy::Bg,
                one,
                &[0.05, 0.1, 0.2, 0.3],
                HearRule::Mean,
            ))
        })
    });
}

fn bench_ett(c: &mut Criterion) {
    let view = ctx().view();
    c.bench_function("ablation/ett-analysis", |b| {
        b.iter(|| {
            black_box(mesh11_core::routing::ett::analyze_ett(
                black_box(view),
                Phy::Bg,
                5,
            ))
        })
    });
}

fn config() -> Criterion {
    Criterion::default().sample_size(10)
}

criterion_group! {
    name = ablations;
    config = config();
    targets = bench_adapters, bench_capped_exor, bench_floor_sweep, bench_threshold_sweep, bench_ett
}
criterion_main!(ablations);
