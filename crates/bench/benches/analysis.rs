//! Indexed vs. linear analysis kernels.
//!
//! Measures the payoff of `DatasetIndex` directly: each pair runs the same
//! analysis once through the indexed `DatasetView` path the pipeline uses
//! today, and once through an inline re-implementation of the pre-index
//! linear code (full-trace scans per network, per-probe key recomputation).
//! The linear variants are deliberately local to this bench — they are the
//! baseline, not API.
//!
//! The shared context's index is built once outside the timed regions, so
//! the indexed numbers measure steady-state reads, which is how every
//! consumer after the first touch sees the index.

use criterion::{criterion_group, criterion_main, Criterion};
use mesh11_bench::{ReproContext, Scale};
use mesh11_core::bitrate::{LookupTableSet, Scope};
use mesh11_core::routing::improvement::{analyze_dataset, OpportunisticAnalysis};
use mesh11_phy::{BitRate, Phy};
use mesh11_trace::{Dataset, DeliveryMatrix};
use std::collections::{BTreeMap, HashMap};
use std::hint::black_box;
use std::sync::OnceLock;

fn ctx() -> &'static ReproContext {
    static CTX: OnceLock<ReproContext> = OnceLock::new();
    CTX.get_or_init(|| {
        let ctx = ReproContext::build(Scale::Quick, 42);
        ctx.index(); // amortized once, outside every timed region
        ctx
    })
}

/// The pre-index §5 routing bundle: collect each network's probes by a
/// linear scan of the whole trace, then one delivery matrix per rate.
fn linear_routing(ds: &Dataset, phy: Phy, min_aps: usize) -> Vec<OpportunisticAnalysis> {
    let mut out = Vec::new();
    for meta in ds.networks_with_at_least(min_aps) {
        if !meta.radios.contains(&phy) {
            continue;
        }
        let probes: Vec<_> = ds
            .probes_for_network(meta.id)
            .filter(|p| p.phy == phy)
            .collect();
        for &rate in phy.probed_rates() {
            let m = DeliveryMatrix::from_probes(meta.id, rate, meta.n_aps, probes.iter().copied());
            out.push(OpportunisticAnalysis::compute(&m));
        }
    }
    out
}

/// Per-link SNR-bucketed optimal-rate counts, as the pre-index trainer
/// accumulated them.
type LinearTables = HashMap<(u32, u32, u32), BTreeMap<i64, BTreeMap<BitRate, u32>>>;

/// The pre-index §4 link-scope lookup training loop: one hash lookup per
/// probe set, recomputing the SNR bucket and the optimal rate from the
/// row-level observations each time.
fn linear_lookup_training(ds: &Dataset, phy: Phy) -> LinearTables {
    let mut tables: LinearTables = HashMap::new();
    for p in ds.probes_for_phy(phy) {
        let key = (p.network.0, p.sender.0, p.receiver.0);
        *tables
            .entry(key)
            .or_default()
            .entry(p.snr_key())
            .or_default()
            .entry(p.optimal().rate)
            .or_insert(0) += 1;
    }
    tables
}

fn routing_bundle(c: &mut Criterion) {
    let ctx = ctx();
    let mut g = c.benchmark_group("analysis/routing-bundle");
    g.bench_function("indexed", |b| {
        b.iter(|| black_box(analyze_dataset(black_box(ctx.view()), Phy::Bg, 5)))
    });
    g.bench_function("linear", |b| {
        b.iter(|| black_box(linear_routing(black_box(ctx.dataset()), Phy::Bg, 5)))
    });
    g.finish();
}

fn lookup_training(c: &mut Criterion) {
    let ctx = ctx();
    let mut g = c.benchmark_group("analysis/lookup-training");
    g.bench_function("indexed", |b| {
        b.iter(|| {
            black_box(LookupTableSet::build(
                black_box(ctx.view()),
                Scope::Link,
                Phy::Bg,
            ))
        })
    });
    g.bench_function("linear", |b| {
        b.iter(|| black_box(linear_lookup_training(black_box(ctx.dataset()), Phy::Bg)))
    });
    g.finish();
}

fn config() -> Criterion {
    Criterion::default().sample_size(10)
}

criterion_group! {
    name = analysis;
    config = config();
    targets = routing_bundle, lookup_training
}
criterion_main!(analysis);
