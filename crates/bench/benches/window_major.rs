//! Kernel-major vs window-major scheduling of the fused analysis pass,
//! over the same kernel set: one probe-source walk **per kernel** (each
//! kernel re-materializing windows as it goes) against **one** shared
//! window walk folding every kernel while the window is resident. Three
//! data shapes: the in-memory quick dataset (windows are free — the
//! schedules should tie), the quick dataset forced through tiny spilled
//! chunks (window rebuilds hit the decoder), and a metro-2 chunked
//! ensemble (the headline case). Run with
//! `cargo bench -p mesh11-bench window_major`.

use criterion::{criterion_group, criterion_main, Criterion};
use mesh11_bench::{fused, DataMode, FusedOutputs, FusedRunner, ReproContext, Scale};
use mesh11_trace::{fold_windows, ChunkConfig, ProbeSource};
use std::hint::black_box;

const SEED: u64 = 42;

fn build_ctx(scale: Scale, mode: DataMode) -> ReproContext {
    ReproContext::build_timed_with_mode(scale, SEED, mesh11_sim::FaultPlan::none(), mode).0
}

/// The kernel-major schedule: every fused kernel gets its own full walk
/// over the source, then pass B runs as usual. Byte-identical outputs to
/// [`fused::run_fused`] — only the window traffic differs.
fn run_kernel_major(src: &ProbeSource<'_>) -> FusedOutputs {
    let mut runner = FusedRunner::new();
    {
        let mut kernels = runner.kernels();
        for k in kernels.iter_mut() {
            fold_windows(src, std::slice::from_mut(k));
        }
    }
    runner.finish(src)
}

fn bench_schedules(c: &mut Criterion, label: &str, ctx: &ReproContext) {
    c.bench_function(&format!("window_major/{label}-kernel-major"), |b| {
        b.iter(|| black_box(run_kernel_major(&ctx.probe_source())))
    });
    c.bench_function(&format!("window_major/{label}-window-major"), |b| {
        b.iter(|| black_box(fused::run_fused(&ctx.probe_source())))
    });
}

/// Fully resident quick dataset: no window cost, schedules should tie.
fn quick(c: &mut Criterion) {
    let ctx = build_ctx(Scale::Quick, DataMode::InMemory);
    bench_schedules(c, "quick", &ctx);
}

/// Quick dataset through tiny spilled chunks: kernel-major re-decodes
/// spilled chunks per kernel, window-major decodes each window once.
fn forced_spill(c: &mut Criterion) {
    let ctx = build_ctx(Scale::Quick, DataMode::Chunked(ChunkConfig::tiny()));
    assert!(
        ctx.chunked().expect("chunked").spilled_bytes() > 0,
        "tiny budget must force spilling"
    );
    bench_schedules(c, "spill", &ctx);
}

/// The headline case: metro-2 chunked ensemble under the default config.
fn metro2(c: &mut Criterion) {
    let ctx = build_ctx(
        Scale::Metro { factor: 2 },
        DataMode::Chunked(ChunkConfig::default()),
    );
    bench_schedules(c, "metro2", &ctx);
}

criterion_group! {
    name = window_major;
    config = Criterion::default().sample_size(10);
    targets = quick, forced_spill, metro2
}
criterion_main!(window_major);
