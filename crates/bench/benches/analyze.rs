//! Analyze-phase benchmarks: the fig4-2 family's kernels sequential (one
//! worker) versus parallel (default pool), over the in-memory quick
//! dataset, the same dataset forced through the spill-able chunk store,
//! and a metro-2 chunked ensemble — plus a chunk-store contention
//! micro-bench (N threads hammering random chunk gets through one store).
//! Run with `cargo bench -p mesh11-bench analyze`.

use criterion::{criterion_group, criterion_main, Criterion};
use mesh11_bench::{DataMode, ReproContext, Scale};
use mesh11_core::bitrate::{LookupTableSet, Scope};
use mesh11_phy::{BitRate, Phy};
use mesh11_trace::{ApId, ChunkConfig, ChunkStore, NetworkId, ProbeChunk, ProbeSet, RateObs};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use rayon::prelude::*;
use std::hint::black_box;

const SEED: u64 = 42;

/// The fig4-2 family's dominant kernel: one lookup-table build plus the
/// exact-accuracy walk, per scope.
fn fig4_2_kernel(ctx: &ReproContext, scopes: &[Scope]) -> f64 {
    let src = ctx.probe_source();
    scopes
        .iter()
        .map(|&scope| {
            let table = LookupTableSet::build_from(&src, scope, Phy::Bg);
            table.exact_accuracy_from(&src)
        })
        .sum()
}

/// Runs `f` under a scoped pool of exactly `n` workers.
fn with_threads<R: Send>(n: usize, f: impl FnOnce() -> R + Send) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(n)
        .build()
        .expect("build pool")
        .install(f)
}

fn build_ctx(scale: Scale, mode: DataMode) -> ReproContext {
    ReproContext::build_timed_with_mode(scale, SEED, mesh11_sim::FaultPlan::none(), mode).0
}

/// Sequential vs parallel kernel, fully resident quick dataset.
fn fig4_2_quick(c: &mut Criterion) {
    let ctx = build_ctx(Scale::Quick, DataMode::InMemory);
    c.bench_function("analyze/fig4-2-quick-seq-1t", |b| {
        b.iter(|| with_threads(1, || black_box(fig4_2_kernel(&ctx, &Scope::ALL))))
    });
    c.bench_function("analyze/fig4-2-quick-par", |b| {
        b.iter(|| black_box(fig4_2_kernel(&ctx, &Scope::ALL)))
    });
}

/// The same kernels with the dataset forced through tiny spilled chunks —
/// measures the concurrent store under kernel-driven window traffic.
fn fig4_2_spill(c: &mut Criterion) {
    let ctx = build_ctx(Scale::Quick, DataMode::Chunked(ChunkConfig::tiny()));
    assert!(
        ctx.chunked().expect("chunked").spilled_bytes() > 0,
        "tiny budget must force spilling"
    );
    c.bench_function("analyze/fig4-2-spill-seq-1t", |b| {
        b.iter(|| with_threads(1, || black_box(fig4_2_kernel(&ctx, &Scope::ALL))))
    });
    c.bench_function("analyze/fig4-2-spill-par", |b| {
        b.iter(|| black_box(fig4_2_kernel(&ctx, &Scope::ALL)))
    });
}

/// The headline scaling case: a metro-2 chunked ensemble (220 networks,
/// default chunk config), Global scope only to keep the bench bounded.
fn fig4_2_metro(c: &mut Criterion) {
    let ctx = build_ctx(
        Scale::Metro { factor: 2 },
        DataMode::Chunked(ChunkConfig::default()),
    );
    c.bench_function("analyze/fig4-2-metro2-seq-1t", |b| {
        b.iter(|| with_threads(1, || black_box(fig4_2_kernel(&ctx, &[Scope::Global]))))
    });
    c.bench_function("analyze/fig4-2-metro2-par", |b| {
        b.iter(|| black_box(fig4_2_kernel(&ctx, &[Scope::Global])))
    });
}

/// A store with `n_chunks` synthetic spilled chunks and a small resident
/// budget, so concurrent gets contend on decode, pinning, and eviction.
fn contention_store(n_chunks: usize, budget: usize) -> ChunkStore {
    let store = ChunkStore::new(budget, None);
    for k in 0..n_chunks {
        let mut chunk = ProbeChunk::default();
        for i in 0..512u32 {
            chunk.push(&ProbeSet {
                network: NetworkId(k as u32),
                phy: Phy::Bg,
                time_s: f64::from(i),
                sender: ApId(i % 7),
                receiver: ApId(i % 5 + 7),
                obs: vec![RateObs {
                    rate: BitRate::bg_mbps(1.0).unwrap(),
                    loss: 0.25,
                    snr_db: 12.0,
                }],
            });
        }
        store.insert(chunk).expect("insert");
        store.evict_past_budget().expect("evict");
    }
    store
}

/// N workers × random chunk gets against one shared store.
fn chunkstore_contention(c: &mut Criterion) {
    const N_CHUNKS: usize = 32;
    const GETS: usize = 256;
    let store = contention_store(N_CHUNKS, 4);
    for threads in [1usize, 4, 8] {
        let name = format!("chunkstore/contention-{threads}t");
        c.bench_function(&name, |b| {
            b.iter(|| {
                with_threads(threads, || {
                    let mut rng = SmallRng::seed_from_u64(SEED);
                    let ids: Vec<usize> =
                        (0..GETS).map(|_| rng.random_range(0..N_CHUNKS)).collect();
                    let lens: Vec<usize> = ids
                        .par_iter()
                        .map(|&id| {
                            let h = store.chunk(id);
                            let n = h.len();
                            drop(h);
                            let _ = store.evict_past_budget();
                            n
                        })
                        .collect();
                    black_box(lens.iter().sum::<usize>())
                })
            })
        });
    }
}

criterion_group! {
    name = analyze;
    config = Criterion::default().sample_size(10);
    targets = fig4_2_quick, fig4_2_spill, fig4_2_metro, chunkstore_contention
}
criterion_main!(analyze);
