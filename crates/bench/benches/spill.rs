//! Spill codec v1 vs v2: frame encode and decode throughput on real
//! simulated probe chunks, and the end-to-end forced-spill window fold
//! with the window-ahead prefetcher off vs on. Run with
//! `cargo bench -p mesh11-bench spill`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mesh11_bench::{fused, DataMode, ReproContext, Scale};
use mesh11_trace::{ChunkConfig, ProbeChunk, SpillCodec};
use std::hint::black_box;

const SEED: u64 = 42;

/// One chunk holding every probe of the quick-scale dataset — the
/// realistic column shapes (monotone times, quantized losses, Gaussian
/// SNRs) the codec was designed against.
fn quick_chunk() -> ProbeChunk {
    let ctx = ReproContext::build_timed_with_mode(
        Scale::Quick,
        SEED,
        mesh11_sim::FaultPlan::none(),
        DataMode::InMemory,
    )
    .0;
    let ds = ctx.dataset();
    let mut chunk = ProbeChunk::with_capacity(ds.probes.len());
    for p in &ds.probes {
        chunk.push(p);
    }
    chunk
}

fn codec_throughput(c: &mut Criterion) {
    let chunk = quick_chunk();
    let raw_bytes = chunk.v1_encoded_len();
    let mut g = c.benchmark_group("spill/codec");
    g.throughput(Throughput::Bytes(raw_bytes));
    for codec in [SpillCodec::V1, SpillCodec::V2] {
        let label = format!("{codec:?}").to_lowercase();
        g.bench_function(&format!("encode-{label}"), |b| {
            let mut buf = Vec::new();
            b.iter(|| {
                buf.clear();
                chunk.encode_with(codec, &mut buf);
                black_box(buf.len())
            })
        });
        let mut frame = Vec::new();
        chunk.encode_with(codec, &mut frame);
        eprintln!(
            "# spill/codec {label}: {} -> {} bytes ({:.3}x)",
            raw_bytes,
            frame.len(),
            frame.len() as f64 / raw_bytes as f64
        );
        g.bench_function(&format!("decode-{label}"), |b| {
            b.iter(|| black_box(ProbeChunk::decode_any(&frame).expect("frame decodes")))
        });
    }
    g.finish();
}

/// The fused analysis fold over a forced-spill chunked quick dataset,
/// prefetch off vs on — the wall-clock claim behind the prefetcher.
fn forced_spill_fold(c: &mut Criterion) {
    for (label, depth) in [("prefetch-off", 0usize), ("prefetch-on", 2)] {
        let cfg = ChunkConfig {
            prefetch_depth: depth,
            ..ChunkConfig::tiny()
        };
        let ctx = ReproContext::build_timed_with_mode(
            Scale::Quick,
            SEED,
            mesh11_sim::FaultPlan::none(),
            DataMode::Chunked(cfg),
        )
        .0;
        assert!(
            ctx.chunked().expect("chunked").spilled_bytes() > 0,
            "tiny budget must force spilling"
        );
        c.bench_function(&format!("spill/fold-{label}"), |b| {
            b.iter(|| black_box(fused::run_fused(&ctx.probe_source())))
        });
    }
}

criterion_group!(benches, codec_throughput, forced_spill_fold);
criterion_main!(benches);
