//! Criterion benchmarks of the substrate kernels: the PHY waterfalls, the
//! channel sampler, the probe engine, the codec, and the core statistics —
//! the building blocks every figure regeneration spends its time in.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mesh11_channel::{ChannelParams, LinkModel, RadioHardware};
use mesh11_phy::{BitRate, CalibratedPhy, Phy, SuccessTable};
use mesh11_sim::SimConfig;
use mesh11_topo::CampaignSpec;
use std::hint::black_box;

fn bench_phy(c: &mut Criterion) {
    let mut g = c.benchmark_group("phy");
    let phy = CalibratedPhy::new();
    let table = SuccessTable::new(&phy);
    let r24 = BitRate::bg_mbps(24.0).unwrap();

    g.bench_function("calibrate", |b| b.iter(|| black_box(CalibratedPhy::new())));
    g.bench_function("success-direct", |b| {
        b.iter(|| black_box(phy.success(black_box(r24), black_box(17.3))))
    });
    g.bench_function("success-table", |b| {
        b.iter(|| black_box(table.success(black_box(r24), black_box(17.3))))
    });
    g.bench_function("best-rate-bg", |b| {
        b.iter(|| black_box(phy.best_rate(Phy::Bg, black_box(22.0))))
    });
    g.finish();
}

fn bench_channel(c: &mut Criterion) {
    let mut g = c.benchmark_group("channel");
    g.bench_function("link-build", |b| {
        b.iter(|| {
            black_box(LinkModel::new(
                ChannelParams::indoor(),
                black_box(7),
                1,
                2,
                (0.0, 0.0),
                (25.0, 0.0),
                RadioHardware::nominal(),
                RadioHardware::nominal(),
            ))
        })
    });
    let mut link = LinkModel::new(
        ChannelParams::indoor(),
        7,
        1,
        2,
        (0.0, 0.0),
        (25.0, 0.0),
        RadioHardware::nominal(),
        RadioHardware::nominal(),
    );
    let mut t = 0.0;
    g.bench_function("link-sample", |b| {
        b.iter(|| {
            t += 40.0;
            black_box(link.sample(t, true))
        })
    });
    g.finish();
}

fn bench_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim");
    g.sample_size(10);
    let campaign = CampaignSpec::scaled(3, 4).generate();
    let spec = campaign
        .networks
        .iter()
        .find(|n| n.size() >= 7)
        .expect("scaled(,4) includes a mid-size network")
        .clone();
    let mut cfg = SimConfig::quick();
    cfg.probe_horizon_s = 1_200.0;
    cfg.client_horizon_s = 1_200.0;
    // Report probe-set production rate.
    let probes = cfg.run_network(&spec).probes.len() as u64;
    g.throughput(Throughput::Elements(probes));
    g.bench_function("network-20min", |b| {
        b.iter(|| black_box(cfg.run_network(black_box(&spec))))
    });
    g.finish();
}

fn bench_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("codec");
    g.sample_size(20);
    let campaign = CampaignSpec::scaled(5, 6).generate();
    let mut cfg = SimConfig::quick();
    cfg.probe_horizon_s = 1_800.0;
    cfg.client_horizon_s = 1_800.0;
    let ds = cfg.run_campaign(&campaign);
    let bytes = mesh11_trace::codec::encode(&ds);
    g.throughput(Throughput::Bytes(bytes.len() as u64));
    g.bench_function("encode", |b| {
        b.iter(|| black_box(mesh11_trace::codec::encode(black_box(&ds))))
    });
    g.bench_function("decode", |b| {
        b.iter(|| black_box(mesh11_trace::codec::decode(black_box(bytes.clone()))).unwrap())
    });
    g.finish();
}

fn bench_stats(c: &mut Criterion) {
    let mut g = c.benchmark_group("stats");
    let xs: Vec<f64> = (0..10_000)
        .map(|i| ((i * 2_654_435_761u64 as usize) % 1_000) as f64)
        .collect();
    g.bench_function("cdf-build-10k", |b| {
        b.iter(|| black_box(mesh11_stats::Cdf::from_samples(xs.iter().copied())))
    });
    let cdf = mesh11_stats::Cdf::from_samples(xs.iter().copied()).unwrap();
    g.bench_function("cdf-eval", |b| {
        b.iter(|| black_box(cdf.eval(black_box(500.0))))
    });
    g.bench_function("summary-10k", |b| {
        b.iter(|| black_box(mesh11_stats::Summary::of(black_box(&xs))))
    });
    g.finish();
}

criterion_group!(
    substrate,
    bench_phy,
    bench_channel,
    bench_sim,
    bench_codec,
    bench_stats
);
criterion_main!(substrate);
