//! Probe-engine hot-path benchmarks: the flat-state pieces against their
//! general-purpose counterparts, and the end-to-end simulate phase.
//!
//! * `simulate/window-*` — the bit-packed tick-indexed rings of one pair
//!   ([`PairWindows`]) vs per-rate `VecDeque` sliding windows
//!   ([`LossWindow`]), driven with the engine's access pattern on the
//!   paper's fixed 40 s cadence (advance per tick, record per rate, loss
//!   reads at 300 s report cuts).
//! * `simulate/faults-*` — compiled interval timelines with monotone
//!   cursors vs naive per-query linear scans over a sizeable fault plan.
//! * `simulate/probes-*` — one network radio end to end through
//!   `simulate_probes`, clean and under the demo fault plan.
//!
//! Run with `cargo bench -p mesh11-bench simulate` (add `-- --quick` in
//! CI smoke).

use criterion::{criterion_group, criterion_main, Criterion};
use mesh11_phy::Phy;
use mesh11_sim::probe_engine::simulate_probes;
use mesh11_sim::{
    probe_slots, ApOutage, FaultPlan, InterferenceBurst, LossWindow, PairWindows, SimConfig,
};
use mesh11_topo::{EnvClass, NetworkSpec};
use mesh11_trace::{ApId, NetworkId};
use std::hint::black_box;

const TICKS: u64 = 4_000;
const DT: f64 = 40.0;
const WINDOW_S: f64 = 800.0;
/// Rates per direction, matching the b/g probed set.
const RATES: usize = 7;
/// Report cadence in ticks (300 s / 40 s, rounded up like the engine's cut).
const REPORT_TICKS: u64 = 8;

/// The engine's window access pattern on the ring state: advance both
/// directions once per tick, record every rate, read loss at report cuts.
fn window_ring(c: &mut Criterion) {
    c.bench_function("simulate/window-ring", |b| {
        b.iter(|| {
            let mut w = PairWindows::new(RATES, probe_slots(WINDOW_S, DT));
            let mut acc = 0.0f64;
            for tick in 1..=TICKS {
                w.advance(0, tick);
                w.advance(1, tick);
                for ri in 0..RATES {
                    w.record(0, ri, tick % 3 != 0, 25.0);
                    w.record(1, ri, tick % 5 != 0, 25.0);
                }
                if tick % REPORT_TICKS == 0 {
                    for dir in 0..2 {
                        for ri in 0..RATES {
                            acc += w.loss(dir, ri).unwrap_or(0.0);
                        }
                    }
                }
            }
            black_box(acc)
        })
    });
}

/// The same schedule through the general `VecDeque` windows the engine
/// used to keep per (direction, rate).
fn window_vecdeque(c: &mut Criterion) {
    c.bench_function("simulate/window-vecdeque", |b| {
        b.iter(|| {
            let mut ws: Vec<LossWindow> =
                (0..2 * RATES).map(|_| LossWindow::new(WINDOW_S)).collect();
            let mut acc = 0.0f64;
            for tick in 1..=TICKS {
                let t = tick as f64 * DT;
                for ri in 0..RATES {
                    ws[ri].record(t, tick % 3 != 0);
                    ws[RATES + ri].record(t, tick % 5 != 0);
                }
                if tick % REPORT_TICKS == 0 {
                    for w in &ws {
                        acc += w.loss().unwrap_or(0.0);
                    }
                }
            }
            black_box(acc)
        })
    });
}

/// A fault plan big enough that the naive linear scans have something to
/// chew on: 40 outages across 8 APs and 24 bursts, many overlapping.
fn sizeable_plan() -> FaultPlan {
    let mut plan = FaultPlan::none();
    for k in 0..40u32 {
        let start = 100.0 * f64::from(k);
        plan.outages.push(ApOutage {
            network: NetworkId(0),
            ap: ApId(k % 8),
            start_s: start,
            end_s: start + 350.0,
        });
    }
    for k in 0..24u32 {
        let start = 180.0 * f64::from(k);
        plan.bursts.push(InterferenceBurst {
            network: NetworkId(0),
            start_s: start,
            end_s: start + 400.0,
            penalty_db: 3.0 + f64::from(k % 5),
        });
    }
    plan
}

fn faults_compiled(c: &mut Criterion) {
    let plan = sizeable_plan();
    c.bench_function("simulate/faults-compiled", |b| {
        b.iter(|| {
            let compiled = plan.compile(NetworkId(0));
            let mut bursts = compiled.burst_cursor();
            let mut a = compiled.outage_cursor(ApId(0));
            let mut b_cur = compiled.outage_cursor(ApId(1));
            let mut acc = 0.0;
            let mut up = 0usize;
            for tick in 1..=TICKS {
                let t = tick as f64 * DT;
                acc += bursts.penalty_at(t);
                up += usize::from(a.up_at(t)) + usize::from(b_cur.up_at(t));
            }
            black_box((acc, up))
        })
    });
}

fn faults_naive(c: &mut Criterion) {
    let plan = sizeable_plan();
    c.bench_function("simulate/faults-naive", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            let mut up = 0usize;
            for tick in 1..=TICKS {
                let t = tick as f64 * DT;
                acc += plan.burst_penalty_db(NetworkId(0), t);
                up += usize::from(plan.ap_up(NetworkId(0), ApId(0), t))
                    + usize::from(plan.ap_up(NetworkId(0), ApId(1), t));
            }
            black_box((acc, up))
        })
    });
}

/// A 9-AP indoor grid: 36 candidate pairs, all in range.
fn bench_spec() -> NetworkSpec {
    let positions = (0..9)
        .map(|i| (f64::from(i % 3) * 16.0, f64::from(i / 3) * 16.0))
        .collect();
    NetworkSpec {
        id: NetworkId(0),
        env: EnvClass::Indoor,
        radios: vec![Phy::Bg],
        seed: 42,
        positions,
        params: mesh11_channel::ChannelParams::indoor(),
        geo: mesh11_topo::geo::GeoTag::for_network(0),
    }
}

fn probes_clean(c: &mut Criterion) {
    let spec = bench_spec();
    let cfg = SimConfig::quick();
    c.bench_function("simulate/probes-clean", |b| {
        b.iter(|| black_box(simulate_probes(&spec, Phy::Bg, &cfg)))
    });
}

fn probes_faulted(c: &mut Criterion) {
    let spec = bench_spec();
    let mut cfg = SimConfig::quick();
    cfg.faults = FaultPlan::demo(cfg.probe_horizon_s);
    c.bench_function("simulate/probes-faulted", |b| {
        b.iter(|| black_box(simulate_probes(&spec, Phy::Bg, &cfg)))
    });
}

criterion_group!(
    benches,
    window_ring,
    window_vecdeque,
    faults_compiled,
    faults_naive,
    probes_clean,
    probes_faulted
);
criterion_main!(benches);
