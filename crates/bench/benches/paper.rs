//! Criterion benchmarks: one per paper table/figure.
//!
//! Each benchmark measures the *analysis kernel* that regenerates the
//! artifact, over a fixed quick-scale campaign (the dataset is built once,
//! outside the timed region). The context is shared, so builders that lean
//! on its cached heavy analyses measure the warm-cache path here — the
//! cold path is covered by `benches/pipeline.rs` and the explicit bundle
//! benches below. `cargo bench -p mesh11-bench` runs them all; individual
//! ones via e.g. `cargo bench -p mesh11-bench fig5_1`.

use criterion::{criterion_group, criterion_main, Criterion};
use mesh11_bench::figures;
use mesh11_bench::{ReproContext, Scale};
use std::hint::black_box;
use std::sync::OnceLock;

fn ctx() -> &'static ReproContext {
    static CTX: OnceLock<ReproContext> = OnceLock::new();
    CTX.get_or_init(|| ReproContext::build(Scale::Quick, 42))
}

macro_rules! figure_bench {
    ($fn_name:ident, $id:literal) => {
        fn $fn_name(c: &mut Criterion) {
            let ctx = ctx();
            c.bench_function(concat!("paper/", $id), |b| {
                b.iter(|| black_box(figures::build(black_box(ctx), $id).expect("known id")))
            });
        }
    };
}

figure_bench!(fig3_1, "fig3-1");
figure_bench!(fig4_1, "fig4-1");
figure_bench!(fig4_2, "fig4-2");
figure_bench!(fig4_3, "fig4-3");
figure_bench!(fig4_4, "fig4-4");
figure_bench!(fig4_5, "fig4-5");
figure_bench!(fig4_6, "fig4-6");
figure_bench!(tab4_1, "tab4-1");
figure_bench!(fig5_2, "fig5-2");
figure_bench!(fig6_1, "fig6-1");
figure_bench!(fig6_2, "fig6-2");
figure_bench!(sec6_3, "sec6-3");
figure_bench!(fig7_1, "fig7-1");
figure_bench!(fig7_2, "fig7-2");
figure_bench!(fig7_3, "fig7-3");
figure_bench!(fig7_4, "fig7-4");
figure_bench!(fig7_5, "fig7-5");

/// Figs 5.1 / 5.3 / 5.4 / 5.5 share the heavy routing bundle; bench the
/// bundle itself (uncached) once, and the figure assembly on the cached
/// bundle separately.
fn fig5_routing_bundle(c: &mut Criterion) {
    let ctx = ctx();
    c.bench_function("paper/fig5-routing-bundle", |b| {
        b.iter(|| {
            black_box(mesh11_core::routing::improvement::analyze_dataset(
                black_box(ctx.view()),
                mesh11_phy::Phy::Bg,
                5,
            ))
        })
    });
}

figure_bench!(fig5_1, "fig5-1");
figure_bench!(fig5_3, "fig5-3");
figure_bench!(fig5_4, "fig5-4");
figure_bench!(fig5_5, "fig5-5");

fn config() -> Criterion {
    Criterion::default().sample_size(10)
}

criterion_group! {
    name = paper;
    config = config();
    targets = fig3_1, fig4_1, fig4_2, fig4_3, fig4_4, fig4_5, fig4_6, tab4_1,
        fig5_routing_bundle, fig5_1, fig5_2, fig5_3, fig5_4, fig5_5,
        fig6_1, fig6_2, sec6_3, fig7_1, fig7_2, fig7_3, fig7_4, fig7_5
}
criterion_main!(paper);
