//! End-to-end pipeline benchmark: the whole `repro --all` path at quick
//! scale — campaign generation, simulation, and every figure builder over
//! the shared analysis cache — plus the two phases in isolation, so a
//! regression can be attributed to the simulator or the analyses without
//! re-profiling. Run with `cargo bench -p mesh11-bench pipeline`.

use criterion::{criterion_group, criterion_main, Criterion};
use mesh11_bench::figures::{self, ALL_IDS};
use mesh11_bench::{ReproContext, Scale};
use rayon::prelude::*;
use std::hint::black_box;

const SEED: u64 = 42;

/// Builds every figure in parallel, exactly as `repro --all` does.
fn analyze_all(ctx: &ReproContext) -> Vec<Vec<mesh11_core::report::FigureData>> {
    analyze(ctx, ALL_IDS)
}

fn analyze(ctx: &ReproContext, ids: &[&str]) -> Vec<Vec<mesh11_core::report::FigureData>> {
    ids.par_iter()
        .map(|id| figures::build(ctx, id).expect("known id"))
        .collect()
}

/// The ids for the cold/warm cache comparison: everything except
/// ext-client, whose client-probe pass is computed in the simulate phase
/// (its figure is a cheap read of `ReproContext::client_probes`, and it
/// silently no-ops on campaign-less contexts) — either way it would skew a
/// cache-effect measurement of the analyze phase.
fn cacheable_ids() -> Vec<&'static str> {
    ALL_IDS
        .iter()
        .copied()
        .filter(|&id| id != "ext-client")
        .collect()
}

/// Generate + simulate + analyze everything, from nothing.
fn end_to_end(c: &mut Criterion) {
    c.bench_function("pipeline/quick-end-to-end", |b| {
        b.iter(|| {
            let ctx = ReproContext::build(Scale::Quick, SEED);
            black_box(analyze_all(&ctx))
        })
    });
}

/// Generate + simulate only (the pre-analysis phases).
fn simulate(c: &mut Criterion) {
    c.bench_function("pipeline/quick-simulate", |b| {
        b.iter(|| black_box(ReproContext::build(Scale::Quick, SEED)))
    });
}

/// All figure builders against a fresh (cold-cache) context; the dataset
/// clone is timed but cheap next to the analyses.
fn analyze_cold(c: &mut Criterion) {
    let base = ReproContext::build(Scale::Quick, SEED);
    let ids = cacheable_ids();
    c.bench_function("pipeline/quick-analyze-cold", |b| {
        b.iter(|| {
            let ctx =
                ReproContext::from_dataset(base.dataset().clone(), base.config.clone(), base.seed);
            black_box(analyze(&ctx, &ids))
        })
    });
}

/// All figure builders with every shared analysis already cached — the
/// floor the cache buys on repeat builds.
fn analyze_warm(c: &mut Criterion) {
    let ctx = ReproContext::build(Scale::Quick, SEED);
    let ids = cacheable_ids();
    analyze(&ctx, &ids);
    c.bench_function("pipeline/quick-analyze-warm", |b| {
        b.iter(|| black_box(analyze(&ctx, &ids)))
    });
}

criterion_group! {
    name = pipeline;
    config = Criterion::default().sample_size(10);
    targets = end_to_end, simulate, analyze_cold, analyze_warm
}
criterion_main!(pipeline);
