//! Client-path hot-path benchmarks: the flat-state pieces of the downlink
//! client-probe engine against their general-purpose counterparts, and the
//! end-to-end per-network passes.
//!
//! * `clients/window-*` — one client's loss state under the client access
//!   pattern: a lane per AP ([`PairWindows::with_lanes`]), only the lanes
//!   above the SNR gate advancing each tick, vs the per-(AP, rate)
//!   `VecDeque` windows ([`LossWindow`]) the engine used to allocate.
//! * `clients/probes-network` — one network's downlink probe pass end to
//!   end (`simulate_client_probes_with_table`, the table hoisted like the
//!   campaign runner does); `-cold` includes the per-call success-table
//!   build the old engine paid.
//! * `clients/sessions-network` — the association/session tracker
//!   (`simulate_clients`), the other per-client simulate-phase pass.
//!
//! Run with `cargo bench -p mesh11-bench clients` (add `-- --quick` in
//! CI smoke).

use criterion::{criterion_group, criterion_main, Criterion};
use mesh11_phy::{CalibratedPhy, Phy, SuccessTable};
use mesh11_sim::client_engine::simulate_clients;
use mesh11_sim::{
    probe_slots, simulate_client_probes, simulate_client_probes_with_table, LossWindow,
    PairWindows, SimConfig,
};
use mesh11_topo::{EnvClass, NetworkSpec};
use mesh11_trace::NetworkId;
use std::hint::black_box;

const TICKS: u64 = 4_000;
const DT: f64 = 40.0;
const WINDOW_S: f64 = 800.0;
/// Rates per AP lane, matching the b/g probed set.
const RATES: usize = 7;
/// APs heard by the client; a lane each.
const APS: usize = 9;
/// Report cadence in ticks (300 s / 40 s, rounded up like the engine's cut).
const REPORT_TICKS: u64 = 8;

/// Whether AP lane `ap` passes the client's SNR gate at `tick` — a fixed
/// schedule where roughly a third of the lanes are audible at a time, so
/// lanes advance independently like a walker drifting between APs.
fn gated(ap: usize, tick: u64) -> bool {
    !(tick / 64 + ap as u64).is_multiple_of(3)
}

/// The client engine's window access pattern on the ring block: advance
/// only the gated lanes, record every rate on them, read loss per lane at
/// report cuts.
fn window_ring_lanes(c: &mut Criterion) {
    c.bench_function("clients/window-ring-lanes", |b| {
        b.iter(|| {
            let mut w = PairWindows::with_lanes(APS, RATES, probe_slots(WINDOW_S, DT));
            let mut acc = 0.0f64;
            for tick in 1..=TICKS {
                for ap in 0..APS {
                    if !gated(ap, tick) {
                        continue;
                    }
                    w.advance(ap, tick);
                    for ri in 0..RATES {
                        w.record(ap, ri, tick % 3 != 0, 25.0);
                    }
                }
                if tick.is_multiple_of(REPORT_TICKS) {
                    for ap in 0..APS {
                        for ri in 0..RATES {
                            acc += w.loss(ap, ri).unwrap_or(0.0);
                        }
                    }
                }
            }
            black_box(acc)
        })
    });
}

/// The same schedule through the per-(AP, rate) `VecDeque` windows the
/// engine used to keep (the inner two levels of its old
/// `Vec<Vec<Vec<LossWindow>>>` state).
fn window_vecdeque_lanes(c: &mut Criterion) {
    c.bench_function("clients/window-vecdeque-lanes", |b| {
        b.iter(|| {
            let mut ws: Vec<LossWindow> = (0..APS * RATES)
                .map(|_| LossWindow::new(WINDOW_S))
                .collect();
            let mut acc = 0.0f64;
            for tick in 1..=TICKS {
                let t = tick as f64 * DT;
                for ap in 0..APS {
                    if !gated(ap, tick) {
                        continue;
                    }
                    for ri in 0..RATES {
                        ws[ap * RATES + ri].record(t, tick % 3 != 0);
                    }
                }
                if tick.is_multiple_of(REPORT_TICKS) {
                    for w in &ws {
                        acc += w.loss().unwrap_or(0.0);
                    }
                }
            }
            black_box(acc)
        })
    });
}

/// A 9-AP indoor grid, the same deployment the probe-engine benches use.
fn bench_spec() -> NetworkSpec {
    let positions = (0..9)
        .map(|i| (f64::from(i % 3) * 16.0, f64::from(i / 3) * 16.0))
        .collect();
    NetworkSpec {
        id: NetworkId(0),
        env: EnvClass::Indoor,
        radios: vec![Phy::Bg],
        seed: 42,
        positions,
        params: mesh11_channel::ChannelParams::indoor(),
        geo: mesh11_topo::geo::GeoTag::for_network(0),
    }
}

/// One network's downlink probe pass with the success table hoisted — the
/// per-client kernel plus prep and merge, as the batch scheduler runs it.
fn probes_network(c: &mut Criterion) {
    let spec = bench_spec();
    let cfg = SimConfig::quick();
    let table = SuccessTable::new(&CalibratedPhy::new());
    c.bench_function("clients/probes-network", |b| {
        b.iter(|| black_box(simulate_client_probes_with_table(&spec, &cfg, &table)))
    });
}

/// The same pass paying a fresh success-table build per call, as the
/// pre-shard engine did on every ext-client evaluation.
fn probes_network_cold(c: &mut Criterion) {
    let spec = bench_spec();
    let cfg = SimConfig::quick();
    c.bench_function("clients/probes-network-cold", |b| {
        b.iter(|| black_box(simulate_client_probes(&spec, &cfg)))
    });
}

/// The association/session tracker over the same population — the other
/// per-client pass of the simulate phase.
fn sessions_network(c: &mut Criterion) {
    let spec = bench_spec();
    let cfg = SimConfig::quick();
    c.bench_function("clients/sessions-network", |b| {
        b.iter(|| black_box(simulate_clients(&spec, &cfg)))
    });
}

criterion_group!(
    benches,
    window_ring_lanes,
    window_vecdeque_lanes,
    probes_network,
    probes_network_cold,
    sessions_network
);
criterion_main!(benches);
