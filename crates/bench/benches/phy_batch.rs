//! Scalar-vs-batch PHY kernel benchmarks: the SNR→success waterfall lookup
//! (full-grid [`RateRow`] and cache-compact [`CompactRow`]) and the
//! Marsaglia-polar fade generator, at lane widths 8 / 64 / 512.
//!
//! The batch kernels are what the probe engine's per-tick lane slabs
//! actually execute; the scalar loops here are the pre-batching hot path.
//! The interesting width is 512: wide enough that the branchless slab body
//! autovectorizes and the scalar path's clamp/branch mispredicts dominate.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mesh11_channel::PolarNormal;
use mesh11_phy::{BitRate, CalibratedPhy, SuccessTable};
use mesh11_stats::dist::derive_seed;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;

const WIDTHS: [usize; 3] = [8, 64, 512];

/// Mixed SNR input spanning the whole waterfall — head clamp, transition
/// band, and tail clamp interleaved so the scalar path's branches are
/// unpredictable, as they are for real probe slabs.
fn snr_lanes(n: usize) -> Vec<f64> {
    let mut rng = SmallRng::seed_from_u64(derive_seed(4242, n as u64));
    (0..n)
        .map(|_| -35.0 + 100.0 * rng.random::<f64>())
        .collect()
}

fn bench_success(c: &mut Criterion) {
    let phy = CalibratedPhy::new();
    let table = SuccessTable::new(&phy);
    let r24 = BitRate::bg_mbps(24.0).unwrap();
    let row = table.rate_row(r24);
    let compact = row.compact();

    let mut g = c.benchmark_group("phy-batch/success");
    for n in WIDTHS {
        let snrs = snr_lanes(n);
        let mut out = vec![0.0f64; n];
        g.throughput(Throughput::Elements(n as u64));
        g.bench_function(&format!("scalar/{n}"), |b| {
            b.iter(|| {
                for (o, &s) in out.iter_mut().zip(black_box(&snrs)) {
                    *o = row.success(s);
                }
                black_box(&mut out);
            })
        });
        g.bench_function(&format!("slab/{n}"), |b| {
            b.iter(|| {
                row.success_slab(black_box(&snrs), &mut out);
                black_box(&mut out);
            })
        });
        g.bench_function(&format!("compact-scalar/{n}"), |b| {
            b.iter(|| {
                for (o, &s) in out.iter_mut().zip(black_box(&snrs)) {
                    *o = compact.success(s);
                }
                black_box(&mut out);
            })
        });
        g.bench_function(&format!("compact-slab/{n}"), |b| {
            b.iter(|| {
                compact.success_slab(black_box(&snrs), &mut out);
                black_box(&mut out);
            })
        });
    }
    g.finish();
}

fn bench_fade(c: &mut Criterion) {
    let mut g = c.benchmark_group("phy-batch/fade");
    for n in WIDTHS {
        let mut out = vec![0.0f64; n];
        let mut rng = SmallRng::seed_from_u64(7);
        let mut gen = PolarNormal::default();
        g.throughput(Throughput::Elements(n as u64));
        g.bench_function(&format!("scalar/{n}"), |b| {
            b.iter(|| {
                for o in out.iter_mut() {
                    *o = gen.next(&mut rng);
                }
                black_box(&mut out);
            })
        });
        g.bench_function(&format!("fill/{n}"), |b| {
            b.iter(|| {
                gen.fill(&mut rng, &mut out);
                black_box(&mut out);
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_success, bench_fade);
criterion_main!(benches);
