//! Cross-seed figure aggregation: mean ± 95% t-interval series.
//!
//! A multi-seed reproduction run (`repro --seeds N`) produces one
//! [`FigureData`] per (figure, seed). This module collapses the seed axis:
//! every curve point becomes the across-seed mean with a two-sided 95%
//! Student-t interval ([`mesh11_stats::mean_ci95`]), emitted as three
//! series per input series — the mean and the lower/upper interval
//! envelopes — under `out/figures_ci/`. With N small (4–16 seeds) the
//! t multiplier matters: at N = 4 the interval is 1.6× wider than the
//! normal approximation would claim.

use std::collections::BTreeMap;

use mesh11_core::report::{FigureData, Series};
use mesh11_stats::mean_ci95;

/// Aggregates one figure's per-seed replicas (same figure id, ≥ 2 seeds)
/// into a mean ± 95% CI figure. Series are matched by label against the
/// first replica's series list; point `k` of a series aggregates over the
/// seeds whose series reaches index `k` (curves may differ in length when
/// a seed's campaign populates a bin others miss). X coordinates are
/// averaged the same way so binned curves keep their bin centres — except
/// on quantile-grid curves (identical y sequence every seed, e.g. CDFs),
/// where the interval is attached to x instead.
///
/// Returns `None` for fewer than two replicas — a one-seed "interval" is
/// unbounded and not worth emitting.
pub fn aggregate_ci(replicas: &[&FigureData]) -> Option<FigureData> {
    if replicas.len() < 2 {
        return None;
    }
    let base = replicas[0];
    debug_assert!(
        replicas.iter().all(|f| f.id == base.id),
        "replicas must share a figure id"
    );
    let mut series = Vec::new();
    for s in &base.series {
        let runs: Vec<&Series> = replicas
            .iter()
            .filter_map(|f| f.series.iter().find(|r| r.label == s.label))
            .collect();
        let longest = runs.iter().map(|r| r.points.len()).max().unwrap_or(0);
        let mut mean_pts = Vec::with_capacity(longest);
        let mut lo_pts = Vec::with_capacity(longest);
        let mut hi_pts = Vec::with_capacity(longest);
        for k in 0..longest {
            let xs: Vec<f64> = runs
                .iter()
                .filter_map(|r| r.points.get(k))
                .map(|p| p.0)
                .collect();
            let ys: Vec<f64> = runs
                .iter()
                .filter_map(|r| r.points.get(k))
                .map(|p| p.1)
                .collect();
            // Quantile-grid curves (CDFs and percentile sweeps) share the
            // same y sequence across every seed, so the seed scatter is
            // horizontal: put the interval on x and keep the grid value.
            let y_fixed = ys.windows(2).all(|w| w[0] == w[1]);
            let x_varies = xs.windows(2).any(|w| w[0] != w[1]);
            if y_fixed && x_varies {
                let Some((x, half)) = mean_ci95(&xs) else {
                    continue;
                };
                let y = ys[0];
                mean_pts.push((x, y));
                if half.is_finite() {
                    lo_pts.push((x - half, y));
                    hi_pts.push((x + half, y));
                }
                continue;
            }
            let x = xs.iter().sum::<f64>() / xs.len() as f64;
            let Some((y, half)) = mean_ci95(&ys) else {
                continue;
            };
            mean_pts.push((x, y));
            if half.is_finite() {
                lo_pts.push((x, y - half));
                hi_pts.push((x, y + half));
            }
        }
        series.push(Series {
            label: format!("{} mean", s.label),
            points: mean_pts,
        });
        series.push(Series {
            label: format!("{} lo95", s.label),
            points: lo_pts,
        });
        series.push(Series {
            label: format!("{} hi95", s.label),
            points: hi_pts,
        });
    }
    let mut notes = base.notes.clone();
    notes.push(format!(
        "mean ± 95% t-interval across {} seeds; lo95/hi95 are the interval envelopes",
        replicas.len()
    ));
    Some(FigureData {
        id: base.id.clone(),
        title: format!("{} (mean ± 95% CI, {} seeds)", base.title, replicas.len()),
        xlabel: base.xlabel.clone(),
        ylabel: base.ylabel.clone(),
        series,
        notes,
    })
}

/// Groups per-seed figure outputs by figure id (seed order preserved) —
/// the shape [`aggregate_ci`] consumes. Input: each seed's full list of
/// built figures.
pub fn group_by_figure(per_seed: &[Vec<FigureData>]) -> BTreeMap<&str, Vec<&FigureData>> {
    let mut map: BTreeMap<&str, Vec<&FigureData>> = BTreeMap::new();
    for seed_figs in per_seed {
        for fig in seed_figs {
            map.entry(fig.id.as_str()).or_default().push(fig);
        }
    }
    map
}

/// The maximum relative half-width (`half / |mean|`, on whichever axis
/// carries the interval) over all finite, nonzero-mean points of an
/// aggregated figure — the single number the CI summary table reports per
/// figure. `None` if no point qualifies.
pub fn max_relative_halfwidth(fig: &FigureData) -> Option<f64> {
    let mut worst: Option<f64> = None;
    for chunk in fig.series.chunks(3) {
        let [mean_s, lo_s, _hi] = chunk else { continue };
        if !mean_s.label.ends_with(" mean") {
            continue;
        }
        for (k, &(lo_x, lo_y)) in lo_s.points.iter().enumerate() {
            let Some(&(mx, my)) = mean_s.points.get(k) else {
                continue;
            };
            for (m, lo) in [(my, lo_y), (mx, lo_x)] {
                if m != 0.0 && m.is_finite() && lo.is_finite() {
                    let rel = ((m - lo) / m).abs();
                    worst = Some(worst.map_or(rel, |w: f64| w.max(rel)));
                }
            }
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig(id: &str, ys: &[f64]) -> FigureData {
        FigureData {
            id: id.into(),
            title: "T".into(),
            xlabel: "x".into(),
            ylabel: "y".into(),
            series: vec![Series {
                label: "curve".into(),
                points: ys.iter().enumerate().map(|(i, &y)| (i as f64, y)).collect(),
            }],
            notes: vec![],
        }
    }

    #[test]
    fn single_replica_has_no_interval() {
        let f = fig("fig", &[1.0, 2.0]);
        assert!(aggregate_ci(&[&f]).is_none());
        assert!(aggregate_ci(&[]).is_none());
    }

    #[test]
    fn aggregates_mean_and_t_interval() {
        let replicas = [
            fig("fig3-1", &[1.0, 10.0]),
            fig("fig3-1", &[2.0, 20.0]),
            fig("fig3-1", &[3.0, 30.0]),
            fig("fig3-1", &[4.0, 40.0]),
        ];
        let refs: Vec<&FigureData> = replicas.iter().collect();
        let agg = aggregate_ci(&refs).unwrap();
        assert_eq!(agg.id, "fig3-1");
        assert_eq!(agg.series.len(), 3);
        assert_eq!(agg.series[0].label, "curve mean");
        assert_eq!(agg.series[1].label, "curve lo95");
        assert_eq!(agg.series[2].label, "curve hi95");
        // Point 0: ys = 1..4, mean 2.5, half = 3.182·√(5/3)/2.
        let (x, m) = agg.series[0].points[0];
        assert_eq!(x, 0.0);
        assert!((m - 2.5).abs() < 1e-12);
        let half = 3.182 * (5.0f64 / 3.0).sqrt() / 2.0;
        assert!((agg.series[2].points[0].1 - (2.5 + half)).abs() < 1e-12);
        assert!((agg.series[1].points[0].1 - (2.5 - half)).abs() < 1e-12);
        // Symmetric envelope around the second point too.
        let (_, m1) = agg.series[0].points[1];
        assert!((m1 - 25.0).abs() < 1e-12);
        assert!(agg.title.contains("4 seeds"));
        assert!(agg.notes.last().unwrap().contains("4 seeds"));
        // Relative half-width at point 0 dominates: half/2.5.
        let rel = max_relative_halfwidth(&agg).unwrap();
        assert!((rel - half / 2.5).abs() < 1e-9, "rel {rel}");
    }

    /// CDF replicas share the quantile grid on y; the seed scatter is in
    /// x, so that's where the interval must land.
    #[test]
    fn quantile_grid_curves_get_horizontal_intervals() {
        let cdf = |xs: &[f64]| FigureData {
            id: "fig3-1".into(),
            title: "T".into(),
            xlabel: "x".into(),
            ylabel: "CDF".into(),
            series: vec![Series {
                label: "curve".into(),
                points: xs
                    .iter()
                    .enumerate()
                    .map(|(i, &x)| (x, i as f64 * 0.5))
                    .collect(),
            }],
            notes: vec![],
        };
        let replicas = [cdf(&[1.0, 4.0]), cdf(&[2.0, 6.0]), cdf(&[3.0, 8.0])];
        let refs: Vec<&FigureData> = replicas.iter().collect();
        let agg = aggregate_ci(&refs).unwrap();
        // Point 0: xs = 1..3 mean 2, y stays on the grid at 0.0.
        assert_eq!(agg.series[0].points[0], (2.0, 0.0));
        assert_eq!(agg.series[0].points[1].1, 0.5);
        assert!((agg.series[0].points[1].0 - 6.0).abs() < 1e-12);
        // Envelopes straddle x, not y.
        let (lo_x, lo_y) = agg.series[1].points[0];
        let (hi_x, hi_y) = agg.series[2].points[0];
        assert_eq!(lo_y, 0.0);
        assert_eq!(hi_y, 0.0);
        assert!(lo_x < 2.0 && hi_x > 2.0);
        assert!((hi_x - 2.0) - (2.0 - lo_x) < 1e-12, "symmetric about mean");
        assert!(max_relative_halfwidth(&agg).unwrap() > 0.0);
    }

    #[test]
    fn ragged_series_aggregate_over_available_seeds() {
        let a = fig("f", &[1.0, 5.0, 9.0]);
        let b = fig("f", &[3.0, 7.0]); // one point short
        let refs = [&a, &b];
        let agg = aggregate_ci(&refs).unwrap();
        // Point 2 exists in only one seed: mean emitted, no envelope.
        assert_eq!(agg.series[0].points.len(), 3);
        assert_eq!(agg.series[0].points[2].1, 9.0);
        assert_eq!(agg.series[1].points.len(), 2);
        assert_eq!(agg.series[2].points.len(), 2);
        assert!((agg.series[0].points[0].1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn groups_by_id_in_seed_order() {
        let per_seed = vec![
            vec![fig("a", &[1.0]), fig("b", &[2.0])],
            vec![fig("a", &[3.0]), fig("b", &[4.0])],
        ];
        let groups = group_by_figure(&per_seed);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups["a"].len(), 2);
        assert_eq!(groups["a"][0].series[0].points[0].1, 1.0);
        assert_eq!(groups["a"][1].series[0].points[0].1, 3.0);
    }
}
