//! # mesh11-bench
//!
//! The benchmark and reproduction harness.
//!
//! * [`setup`] — builds the seeded campaign + dataset a reproduction run
//!   operates on, at three scales (quick / standard / paper).
//! * [`figures`] — one builder per paper table/figure, each returning a
//!   [`mesh11_core::report::FigureData`] with the paper-expected values
//!   recorded as notes. The `repro` binary prints them; `EXPERIMENTS.md`
//!   records a full run.
//! * [`fused`] — the window-major fused analysis pass: every heavy kernel
//!   folds each window while it is resident, so a chunked run decodes
//!   every window exactly once instead of once per kernel.
//! * [`ensemble`] — cross-seed aggregation for multi-seed runs
//!   (`repro --seeds N`): mean ± 95% t-interval series under
//!   `out/figures_ci/`.
//! * [`timing`] — the per-phase wall-clock breakdown `repro` prints and
//!   writes to `out/bench_timings.json`.
//! * `benches/` — Criterion benchmarks of every analysis kernel (one bench
//!   group per table/figure family) plus the simulator hot loop.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ensemble;
pub mod figures;
pub mod fused;
pub mod setup;
pub mod timing;

pub use ensemble::{aggregate_ci, group_by_figure, max_relative_halfwidth};
pub use fused::{CapMatrix, FusedOutputs, FusedRunner, SnrSigmas};
pub use setup::{
    AnalysisMode, DataMode, DataStore, MultiBuildTimings, ReproContext, Scale, DEFAULT_METRO_FACTOR,
};
pub use timing::{peak_rss_mb, PhaseTimings};
