//! Per-phase wall-clock accounting for reproduction runs.
//!
//! `repro` prints this breakdown at the end of a run and writes it to
//! `<out>/bench_timings.json`, so thread-scaling claims are
//! machine-checkable instead of eyeballed from log lines.

use serde::Serialize;
use std::collections::BTreeMap;

/// Wall-clock breakdown of one `repro` run.
#[derive(Debug, Clone, Serialize)]
pub struct PhaseTimings {
    /// Scale the run used (`"quick"` / `"standard"` / `"paper"` /
    /// `"metro-<factor>"`).
    pub scale: String,
    /// Campaign seed (the base seed of a multi-seed run).
    pub seed: u64,
    /// Seeds the run covered (`--seeds`, consecutive from `seed`); 1 for
    /// single-seed runs.
    pub seeds: usize,
    /// Thread budget the run executed under (`--threads`, 0 = default).
    pub threads: usize,
    /// Threads rayon actually ran with — what thread-scaling claims are
    /// made against.
    pub effective_threads: usize,
    /// Campaign generation (topology, populations, specs).
    pub generate_s: f64,
    /// Probe + client simulation across all networks.
    pub simulate_s: f64,
    /// Candidate AP pairs the simulate phase ran — the work-item count of
    /// the global pair scheduler, giving `simulate_s` a denominator.
    pub pairs_simulated: usize,
    /// Amortized per-seed simulate cost, `simulate_s / seeds` — the number
    /// the multi-seed batching claim is made against (equals `simulate_s`
    /// for single-seed runs).
    pub simulate_s_per_seed: f64,
    /// Pairs simulated per seed, in seed order (singleton for single-seed
    /// runs). Multi-seed batching fuses the simulate pass, so per-seed
    /// wall-clock is unobservable; per-seed work is.
    pub per_seed_pairs: Vec<usize>,
    /// Per-seed figure-analysis wall-clock, in seed order (singleton for
    /// single-seed runs; the analyze phase stays per-seed even when the
    /// simulate phase is fused).
    pub per_seed_analyze_s: Vec<f64>,
    /// Mean per-seed analyze wall-clock — the analyze-phase counterpart of
    /// `simulate_s_per_seed` (equals `analyze_s` for single-seed runs).
    pub analyze_s_per_seed: f64,
    /// 95% Student-t half-width of `analyze_s_per_seed`; `None` for
    /// single-seed runs (a half-width needs ≥2 seeds).
    pub analyze_s_per_seed_ci95: Option<f64>,
    /// Probe reports the simulate phase produced.
    pub n_probes: usize,
    /// Simulation throughput: `n_probes / simulate_s`.
    pub reports_per_sec: f64,
    /// Peak resident-set size of the process (VmHWM), in MiB. `None` where
    /// the platform offers no cheap high-water mark (non-Linux).
    pub peak_rss_mb: Option<f64>,
    /// `"in-memory"` or `"chunked"` — how the probe table was stored.
    pub data_mode: String,
    /// Bytes written to the chunk spill file (0 when fully resident).
    pub spilled_bytes: u64,
    /// The downlink client-probe pass (sharded per client), run eagerly
    /// alongside simulation and cached for `ext-client`.
    pub client_probe_s: f64,
    /// Clients the client-probe pass simulated — the work-item count of
    /// its per-client scheduler, giving `client_probe_s` a denominator.
    pub clients_simulated: usize,
    /// All figure building, wall-clock. Figures run concurrently, so this
    /// is smaller than the sum of the per-figure entries. For streaming
    /// runs this also carries the overlap consumer's analysis seconds
    /// (`stream_analyze_s`), so `total_s < simulate_s + analyze_s` is the
    /// machine-checkable signature of phase overlap.
    pub analyze_s: f64,
    /// Analysis throughput: `n_probes / analyze_s` — the analyze-phase
    /// counterpart of `reports_per_sec`.
    pub analyze_probes_per_sec: f64,
    /// Analysis seconds the streaming build spent folding parts inside the
    /// simulate wall (plus the fused finish). `None` for two-phase runs.
    pub stream_analyze_s: Option<f64>,
    /// Chunk fetches served from a resident chunk. The chunk-store
    /// counters are `None` (JSON `null`) for in-memory runs, where a zero
    /// would be misleading rather than measured.
    pub chunk_hits: Option<u64>,
    /// Chunk fetches that decoded from the spill file.
    pub chunk_decodes: Option<u64>,
    /// Chunks evicted from the resident set.
    pub chunk_evictions: Option<u64>,
    /// High-water mark of bytes pinned live by chunk handles.
    pub peak_pinned_bytes: Option<u64>,
    /// Window requests served from the materialized-window memo.
    pub window_hits: Option<u64>,
    /// Windows materialized (chunk-span decode + index build). Equals
    /// `n_windows` for a window-major chunked run — the fused pass's
    /// headline invariant.
    pub window_builds: Option<u64>,
    /// Materialized windows dropped from the memo.
    pub window_evictions: Option<u64>,
    /// Windows the chunk store partitions the ensemble into.
    pub n_windows: Option<u64>,
    /// Consumer chunk fetches that found the chunk already warm from the
    /// window-ahead prefetch thread.
    pub prefetch_hits: Option<u64>,
    /// Chunks prefetched but never consumed (wasted read-ahead I/O).
    pub prefetch_wasted: Option<u64>,
    /// Times eviction ran over budget with every chunk pinned or
    /// contended (sustained growth = budget too small).
    pub over_budget_events: Option<u64>,
    /// Seconds spent decoding spill frames, summed across all threads.
    pub decode_s: Option<f64>,
    /// Uncompressed (v1-equivalent) bytes of every chunk ever spilled.
    pub spill_raw_bytes: Option<u64>,
    /// Bytes actually written to the spill file;
    /// `spill_encoded_bytes / spill_raw_bytes` is the codec-v2 ratio.
    pub spill_encoded_bytes: Option<u64>,
    /// End-to-end wall-clock, including table rendering and JSON output.
    pub total_s: f64,
    /// Per-experiment analyze seconds, keyed by experiment id. Each entry
    /// is that builder's own clock; entries overlap under parallelism.
    pub figures: BTreeMap<String, f64>,
}

/// The process's peak resident-set size in MiB, read from `VmHWM` in
/// `/proc/self/status`. `None` on platforms without procfs.
pub fn peak_rss_mb() -> Option<f64> {
    #[cfg(target_os = "linux")]
    {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
        let kb: f64 = line
            .trim_start_matches("VmHWM:")
            .trim()
            .trim_end_matches("kB")
            .trim()
            .parse()
            .ok()?;
        Some(kb / 1024.0)
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

impl PhaseTimings {
    /// Pretty JSON for `bench_timings.json`.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("PhaseTimings serializes")
    }

    /// The human-readable breakdown `repro` prints on stderr.
    pub fn render(&self) -> String {
        let mut s = format!(
            "# timings ({} threads): generate {:.2}s, simulate {:.2}s ({} pairs, {:.0} reports/s), client probes {:.2}s ({} clients), analyze {:.2}s (wall), total {:.2}s",
            self.effective_threads,
            self.generate_s,
            self.simulate_s,
            self.pairs_simulated,
            self.reports_per_sec,
            self.client_probe_s,
            self.clients_simulated,
            self.analyze_s,
            self.total_s
        );
        if self.seeds > 1 {
            s.push_str(&format!(
                "\n# multi-seed: {} seeds fused, simulate {:.2}s/seed amortized, analyze {:.2}s/seed{}",
                self.seeds,
                self.simulate_s_per_seed,
                self.analyze_s_per_seed,
                self.analyze_s_per_seed_ci95
                    .map(|h| format!(" (±{h:.2}s)"))
                    .unwrap_or_default()
            ));
        }
        if let Some(overlap) = self.stream_analyze_s {
            s.push_str(&format!(
                "\n# streaming: {overlap:.2}s of analysis overlapped with simulation"
            ));
        }
        if let Some(rss) = self.peak_rss_mb {
            s.push_str(&format!(
                "\n# memory: peak RSS {rss:.0} MiB ({}, {} spilled bytes)",
                self.data_mode, self.spilled_bytes
            ));
        }
        if self.data_mode == "chunked" {
            s.push_str(&format!(
                "\n# chunk store: {} hits / {} decodes / {} evictions, {} peak pinned bytes, windows {} hits / {} builds / {} evictions ({} windows)",
                self.chunk_hits.unwrap_or(0),
                self.chunk_decodes.unwrap_or(0),
                self.chunk_evictions.unwrap_or(0),
                self.peak_pinned_bytes.unwrap_or(0),
                self.window_hits.unwrap_or(0),
                self.window_builds.unwrap_or(0),
                self.window_evictions.unwrap_or(0),
                self.n_windows.unwrap_or(0)
            ));
            if self.spill_raw_bytes.unwrap_or(0) > 0 {
                let raw = self.spill_raw_bytes.unwrap_or(0);
                let enc = self.spill_encoded_bytes.unwrap_or(0);
                s.push_str(&format!(
                    "\n# spill codec: {enc} / {raw} bytes ({:.2}x), decode {:.2}s, prefetch {} hits / {} wasted, {} over-budget events",
                    enc as f64 / raw as f64,
                    self.decode_s.unwrap_or(0.0),
                    self.prefetch_hits.unwrap_or(0),
                    self.prefetch_wasted.unwrap_or(0),
                    self.over_budget_events.unwrap_or(0)
                ));
            }
        }
        let mut slowest: Vec<(&String, &f64)> = self.figures.iter().collect();
        slowest.sort_by(|a, b| b.1.partial_cmp(a.1).expect("finite timings"));
        for (id, t) in slowest.iter().take(5) {
            s.push_str(&format!("\n#   slowest: {id} {t:.2}s"));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_has_all_phases() {
        let t = PhaseTimings {
            scale: "Quick".into(),
            seed: 42,
            seeds: 2,
            threads: 0,
            effective_threads: 8,
            generate_s: 0.1,
            simulate_s: 2.0,
            pairs_simulated: 1234,
            simulate_s_per_seed: 1.0,
            per_seed_pairs: vec![617, 617],
            per_seed_analyze_s: vec![0.7, 0.8],
            analyze_s_per_seed: 0.75,
            analyze_s_per_seed_ci95: Some(0.12),
            n_probes: 50_000,
            reports_per_sec: 25_000.0,
            peak_rss_mb: Some(256.0),
            data_mode: "chunked".into(),
            spilled_bytes: 4096,
            client_probe_s: 0.4,
            clients_simulated: 321,
            analyze_s: 1.5,
            analyze_probes_per_sec: 33_333.3,
            stream_analyze_s: Some(0.9),
            chunk_hits: Some(120),
            chunk_decodes: Some(40),
            chunk_evictions: Some(30),
            peak_pinned_bytes: Some(1 << 20),
            window_hits: Some(9),
            window_builds: Some(7),
            window_evictions: Some(2),
            n_windows: Some(7),
            prefetch_hits: Some(25),
            prefetch_wasted: Some(3),
            over_budget_events: Some(1),
            decode_s: Some(0.08),
            spill_raw_bytes: Some(10_000),
            spill_encoded_bytes: Some(5_500),
            total_s: 3.7,
            figures: BTreeMap::from([("fig4-1".to_string(), 0.25)]),
        };
        let json = t.to_json();
        for key in [
            "scale",
            "seed",
            "threads",
            "effective_threads",
            "generate_s",
            "simulate_s",
            "pairs_simulated",
            "seeds",
            "simulate_s_per_seed",
            "per_seed_pairs",
            "per_seed_analyze_s",
            "n_probes",
            "reports_per_sec",
            "peak_rss_mb",
            "data_mode",
            "spilled_bytes",
            "client_probe_s",
            "clients_simulated",
            "analyze_s",
            "analyze_probes_per_sec",
            "chunk_hits",
            "chunk_decodes",
            "chunk_evictions",
            "peak_pinned_bytes",
            "window_hits",
            "window_builds",
            "window_evictions",
            "n_windows",
            "prefetch_hits",
            "prefetch_wasted",
            "over_budget_events",
            "decode_s",
            "spill_raw_bytes",
            "spill_encoded_bytes",
            "analyze_s_per_seed",
            "analyze_s_per_seed_ci95",
            "stream_analyze_s",
            "total_s",
            "figures",
            "fig4-1",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(t.render().contains("8 threads"));
        assert!(t.render().contains("2 seeds fused"));
        assert!(t.render().contains("1.00s/seed"));
        assert!(t.render().contains("analyze 0.75s/seed (±0.12s)"));
        assert!(t.render().contains("1234 pairs"));
        assert!(t.render().contains("321 clients"));
        assert!(t.render().contains("peak RSS 256 MiB"));
        assert!(t.render().contains("120 hits / 40 decodes / 30 evictions"));
        assert!(t.render().contains("5500 / 10000 bytes (0.55x)"));
        assert!(t.render().contains("prefetch 25 hits / 3 wasted"));
        assert!(t.render().contains("0.90s of analysis overlapped"));
    }

    #[test]
    fn in_memory_counters_serialize_as_null() {
        let t = PhaseTimings {
            scale: "quick".into(),
            seed: 1,
            seeds: 1,
            threads: 0,
            effective_threads: 1,
            generate_s: 0.0,
            simulate_s: 1.0,
            pairs_simulated: 1,
            simulate_s_per_seed: 1.0,
            per_seed_pairs: vec![1],
            per_seed_analyze_s: vec![0.5],
            analyze_s_per_seed: 0.5,
            analyze_s_per_seed_ci95: None,
            n_probes: 1,
            reports_per_sec: 1.0,
            peak_rss_mb: None,
            data_mode: "in-memory".into(),
            spilled_bytes: 0,
            client_probe_s: 0.0,
            clients_simulated: 0,
            analyze_s: 0.5,
            analyze_probes_per_sec: 2.0,
            stream_analyze_s: None,
            chunk_hits: None,
            chunk_decodes: None,
            chunk_evictions: None,
            peak_pinned_bytes: None,
            window_hits: None,
            window_builds: None,
            window_evictions: None,
            n_windows: None,
            prefetch_hits: None,
            prefetch_wasted: None,
            over_budget_events: None,
            decode_s: None,
            spill_raw_bytes: None,
            spill_encoded_bytes: None,
            total_s: 1.5,
            figures: BTreeMap::new(),
        };
        let json = t.to_json();
        // No fabricated zeros: the chunk counters must be null in-memory.
        assert!(
            json.contains("\"chunk_hits\": null") || json.contains("\"chunk_hits\":null"),
            "chunk_hits should be null, got {json}"
        );
        assert!(
            json.contains("\"window_builds\": null") || json.contains("\"window_builds\":null"),
            "window_builds should be null, got {json}"
        );
        assert!(!t.render().contains("chunk store"));
    }

    #[test]
    fn peak_rss_is_reported_on_linux() {
        // Touch some memory so the high-water mark is nonzero, then read it.
        let v = vec![0u8; 1 << 20];
        std::hint::black_box(&v);
        if cfg!(target_os = "linux") {
            let rss = peak_rss_mb().expect("procfs available on linux");
            assert!(rss > 1.0, "peak RSS {rss} MiB should exceed 1 MiB");
        }
    }
}
