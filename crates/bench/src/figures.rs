//! One builder per paper table/figure.
//!
//! Each builder returns the figure's series with the paper's expected
//! values recorded as notes, so a run can be compared shape-by-shape
//! against the original. Absolute values are not expected to match (our
//! substrate is a calibrated simulator, not the Meraki testbed); the
//! *orderings, medians, and crossovers* are.

use mesh11_core::bitrate::Scope;
use mesh11_core::report::{FigureData, Series};
use mesh11_core::routing::improvement::{improvement_by_network_size, improvement_by_path_length};
use mesh11_core::routing::EtxVariant;
use mesh11_core::triples::{range::normalized_range_by_env, range_change_by_rate};
use mesh11_phy::{BitRate, Phy};
use mesh11_stats::Cdf;
use mesh11_trace::{EnvLabel, NetworkId};

use crate::setup::ReproContext;

/// Every experiment id, in paper order, followed by the extension
/// experiments (DESIGN.md §8).
pub const ALL_IDS: &[&str] = &[
    "fig1-1",
    "fig3-1",
    "fig4-1",
    "fig4-2",
    "fig4-3",
    "fig4-4",
    "fig4-5",
    "fig4-6",
    "tab4-1",
    "fig5-1",
    "fig5-2",
    "fig5-3",
    "fig5-4",
    "fig5-5",
    "fig6-1",
    "fig6-2",
    "sec6-3",
    "fig7-1",
    "fig7-2",
    "fig7-3",
    "fig7-4",
    "fig7-5",
    "ext-adapt",
    "ext-cap",
    "ext-sweep",
    "ext-stability",
    "ext-diversity",
    "ext-ett",
    "ext-client",
];

/// Builds one experiment's figure(s); `None` for an unknown id.
pub fn build(ctx: &ReproContext, id: &str) -> Option<Vec<FigureData>> {
    Some(match id {
        "fig1-1" => vec![fig1_1(ctx)],
        "fig3-1" => vec![fig3_1(ctx)],
        "fig4-1" => fig4_1(ctx),
        "fig4-2" => fig4_2_or_3(ctx, Phy::Bg),
        "fig4-3" => fig4_2_or_3(ctx, Phy::Ht),
        "fig4-4" => fig4_4(ctx),
        "fig4-5" => fig4_5(ctx),
        "fig4-6" => vec![fig4_6(ctx)],
        "tab4-1" => vec![tab4_1(ctx)],
        "fig5-1" => fig5_1(ctx),
        "fig5-2" => vec![fig5_2(ctx)],
        "fig5-3" => vec![fig5_3(ctx)],
        "fig5-4" => vec![fig5_4(ctx)],
        "fig5-5" => vec![fig5_5(ctx)],
        "fig6-1" => vec![fig6_1(ctx)],
        "fig6-2" => vec![fig6_2(ctx)],
        "sec6-3" => vec![sec6_3(ctx)],
        "fig7-1" => vec![fig7_1(ctx)],
        "fig7-2" => vec![fig7_2(ctx)],
        "fig7-3" => vec![fig7_3(ctx)],
        "fig7-4" => vec![fig7_4(ctx)],
        "fig7-5" => vec![fig7_5(ctx)],
        "ext-adapt" => vec![ext_adapt(ctx)],
        "ext-cap" => vec![ext_cap(ctx)],
        "ext-sweep" => vec![ext_sweep(ctx)],
        "ext-stability" => vec![ext_stability(ctx)],
        "ext-diversity" => vec![ext_diversity(ctx)],
        "ext-ett" => vec![ext_ett(ctx)],
        "ext-client" => vec![ext_client(ctx)],
        _ => return None,
    })
}

const CDF_POINTS: usize = 41;

fn cdf_series(label: &str, values: &[f64]) -> Option<Series> {
    Cdf::from_samples(values.iter().copied()).map(|c| Series::from_cdf(label, &c, CDF_POINTS))
}

/// Fig 3.1 — CDFs of SNR standard deviation within probe sets, per link,
/// and per network.
pub fn fig3_1(ctx: &ReproContext) -> FigureData {
    let sigmas = ctx.snr_sigmas();
    let (sets, links, nets) = (&sigmas.sets, &sigmas.links, &sigmas.nets);
    let under5 = sets.iter().filter(|&&s| s < 5.0).count() as f64 / sets.len().max(1) as f64;
    let mut fig = FigureData::new(
        "fig3-1",
        "Standard deviation of SNR values",
        "stddev (dB)",
        "CDF",
    )
    .with_note("paper: probe-set sigma < 5 dB ~97.5% of the time; network sigma much larger")
    .with_note(format!(
        "measured: probe-set sigma < 5 dB {:.1}% of the time",
        100.0 * under5
    ));
    // The paper's unpictured robustness note: σ of the k most recent SNRs
    // on a link is comparable to the within-set σ for small k.
    let recent3 = &sigmas.recent;
    if let (Some(set_med), Some(recent_med)) =
        (mesh11_stats::median(sets), mesh11_stats::median(recent3))
    {
        fig.notes.push(format!(
            "measured: median sigma of 3 most recent link SNRs {recent_med:.2} dB vs within-set {set_med:.2} dB (paper: comparable)"
        ));
    }
    for (label, vals) in [("Probe Sets", sets), ("Links", links), ("Networks", nets)] {
        if let Some(s) = cdf_series(label, vals) {
            fig = fig.with_series(s);
        }
    }
    fig
}

/// Fig 4.1 — every rate that was ever optimal at each SNR. Panel (a) is the
/// paper's b/g scatter; panel (b) is the 802.11n result the paper describes
/// but does not show ("a similar result holds for 802.11n").
pub fn fig4_1(ctx: &ReproContext) -> Vec<FigureData> {
    [(Phy::Bg, "a", "802.11b/g"), (Phy::Ht, "b", "802.11n")]
        .into_iter()
        .map(|(phy, suffix, name)| {
            let table = ctx.lookup_tables(Scope::Global, phy);
            let per_snr = table.optimal_rates_per_snr();
            let points: Vec<(f64, f64)> = per_snr
                .iter()
                .flat_map(|(&snr, rates)| rates.iter().map(move |r| (snr as f64, r.mbps())))
                .collect();
            let multi = per_snr.values().filter(|r| r.len() >= 2).count();
            FigureData::new(
                format!("fig4-1{suffix}"),
                format!("Optimal bit rates for different SNRs ({name})"),
                "SNR (dB)",
                "bit rate (Mbit/s)",
            )
            .with_note(
                "paper: most SNRs see >=2 different optimal rates; top rate pins at high SNR",
            )
            .with_note(format!(
                "measured: {multi}/{} SNR values saw >=2 distinct optimal rates",
                per_snr.len()
            ))
            .with_series(Series::new("ever-optimal", points))
        })
        .collect()
}

/// Figs 4.2/4.3 — number of unique rates needed per accuracy percentile,
/// one panel per scope.
pub fn fig4_2_or_3(ctx: &ReproContext, phy: Phy) -> Vec<FigureData> {
    let (figid, name) = match phy {
        Phy::Bg => ("fig4-2", "802.11b/g"),
        Phy::Ht => ("fig4-3", "802.11n"),
    };
    Scope::ALL
        .iter()
        .map(|&scope| {
            let table = ctx.lookup_tables(scope, phy);
            let mut fig = FigureData::new(
                format!("{figid}{}", panel_suffix(scope)),
                format!(
                    "Rates needed per percentile, {name}, {} scope",
                    scope.name()
                ),
                "SNR (dB)",
                "unique bit rates needed (mean over tables)",
            )
            .with_note("paper: needed rates shrink as scope specializes; n needs more than b/g");
            for pct in [0.5, 0.8, 0.95] {
                let curve = table.rates_needed_curve(pct);
                let pts: Vec<(f64, f64)> = curve
                    .rows()
                    .into_iter()
                    .map(|(snr, s)| (snr as f64, s.mean))
                    .collect();
                fig = fig.with_series(Series::new(format!("{:.0}%", pct * 100.0), pts));
            }
            fig
        })
        .collect()
}

fn panel_suffix(scope: Scope) -> &'static str {
    match scope {
        Scope::Global => "a",
        Scope::Network => "b",
        Scope::Ap => "c",
        Scope::Link => "d",
    }
}

/// Fig 4.4 — CDF of throughput lost to table-driven selection, per scope,
/// both PHYs.
pub fn fig4_4(ctx: &ReproContext) -> Vec<FigureData> {
    [(Phy::Bg, "a", "802.11b/g"), (Phy::Ht, "b", "802.11n")]
        .into_iter()
        .map(|(phy, suffix, name)| {
            let mut fig = FigureData::new(
                format!("fig4-4{suffix}"),
                format!("Throughput loss of SNR look-up selection, {name}"),
                "throughput difference (Mbit/s)",
                "CDF",
            )
            .with_note("paper: Link ~ AP >> Network ~ Global (b/g); exact-pick ~90% b/g, ~75% n");
            for scope in Scope::ALL {
                let p = ctx.penalty(scope, phy);
                fig.notes.push(format!(
                    "measured {}: exact pick {:.1}%, mean loss {:.2} Mbit/s",
                    scope.name(),
                    100.0 * p.frac_exact(),
                    p.mean_loss_mbps()
                ));
                if let Some(s) = cdf_series(scope.name(), &p.diffs_mbps) {
                    fig = fig.with_series(s);
                }
            }
            fig
        })
        .collect()
}

/// Fig 4.5 — median throughput vs SNR per rate. Panel (a) is the paper's
/// b/g figure; panel (b) is the 802.11n result the paper describes but does
/// not plot ("levels off around 15 dB instead of 30 dB").
pub fn fig4_5(ctx: &ReproContext) -> Vec<FigureData> {
    [
        (Phy::Bg, "a", "802.11b/g", "levels off near 30 dB"),
        (
            Phy::Ht,
            "b",
            "802.11n",
            "levels off around 15 dB, higher peak",
        ),
    ]
    .into_iter()
    .map(|(phy, suffix, name, expect)| {
        let curves = ctx.snr_curves(phy);
        let mut fig = FigureData::new(
            format!("fig4-5{suffix}"),
            format!("Correlation between SNR and throughput ({name} medians)"),
            "SNR (dB)",
            "median throughput (Mbit/s)",
        )
        .with_note(format!(
            "paper: envelope rises then {expect}; spread largest on the slopes"
        ));
        if let Some(sat) = curves.saturation_snr_db(0.95) {
            fig.notes.push(format!(
                "measured: envelope reaches 95% of peak at {sat} dB"
            ));
        }
        if let (Some(p), Some(s)) = (curves.pearson(), curves.spearman()) {
            fig.notes
                .push(format!("measured: pearson {p:.3}, spearman {s:.3}"));
        }
        // 802.11n has 32 configurations; plot the single-stream long-GI
        // ladder plus the top rate to keep the panel legible (JSON export
        // still carries only the plotted series — the full grid is
        // reconstructible from the dataset).
        for (rate, stats) in &curves.per_rate {
            let keep = match phy {
                Phy::Bg => true,
                Phy::Ht => {
                    (!rate.short_gi() && rate.mcs().is_some_and(|m| m < 8))
                        || rate.kbps() == 144_400
                }
            };
            if !keep {
                continue;
            }
            let pts: Vec<(f64, f64)> = stats
                .rows()
                .into_iter()
                .map(|(snr, s)| (snr as f64, s.median))
                .collect();
            fig = fig.with_series(Series::new(rate.to_string(), pts));
        }
        fig
    })
    .collect()
}

/// Fig 4.6 — accuracy of online table strategies vs probe sets seen (b/g).
pub fn fig4_6(ctx: &ReproContext) -> FigureData {
    let evals = ctx.strategy_evals_bg();
    let mut fig = FigureData::new(
        "fig4-6",
        "Accuracy of look-up table strategies (802.11b/g)",
        "probe sets seen",
        "accuracy (%)",
    )
    .with_note("paper: all strategies comparable, 80-90% accuracy");
    for e in evals {
        fig.notes.push(format!(
            "measured {}: overall {:.1}% over {} predictions",
            e.kind.name(),
            100.0 * e.overall_accuracy(),
            e.predictions
        ));
        let pts: Vec<(f64, f64)> = e
            .accuracy_by_history
            .rows()
            .into_iter()
            .filter(|(x, _)| *x <= 40)
            .map(|(x, s)| (x as f64, s.mean))
            .collect();
        fig = fig.with_series(Series::new(e.kind.name(), pts));
    }
    fig
}

/// Table 4.1 — measured update counts and memory per strategy.
pub fn tab4_1(ctx: &ReproContext) -> FigureData {
    let evals = ctx.strategy_evals_bg();
    let mut fig = FigureData::new(
        "tab4-1",
        "Costs of look-up table strategies (measured)",
        "strategy index",
        "count",
    )
    .with_note("paper (qualitative): First low/small, MostRecent high/small, Subsampled moderate/moderate, All high/large");
    let mut updates = Vec::new();
    let mut stored = Vec::new();
    for (i, e) in evals.iter().enumerate() {
        fig.notes.push(format!(
            "[{i}] {}: {} updates, {} stored points",
            e.kind.name(),
            e.updates,
            e.stored_points
        ));
        updates.push((i as f64, e.updates as f64));
        stored.push((i as f64, e.stored_points as f64));
    }
    fig.with_series(Series::new("updates", updates))
        .with_series(Series::new("stored points", stored))
}

/// Fig 5.1 — CDFs of opportunistic improvement over ETX1 and ETX2, per
/// rate.
pub fn fig5_1(ctx: &ReproContext) -> Vec<FigureData> {
    let analyses = ctx.routing_bg();
    [(EtxVariant::Etx1, "a"), (EtxVariant::Etx2, "b")]
        .into_iter()
        .map(|(variant, suffix)| {
            let mut fig = FigureData::new(
                format!("fig5-1{suffix}"),
                format!("Opportunistic improvement over {}", variant.name()),
                "fraction improvement",
                "CDF",
            )
            .with_note(match variant {
                EtxVariant::Etx1 => "paper: mean .09-.11, median .05-.08, 13-20% of pairs see none",
                EtxVariant::Etx2 => "paper: much larger (mean .39-9.25, median .30-.86)",
            });
            for &rate in Phy::Bg.probed_rates() {
                let vals: Vec<f64> = analyses
                    .iter()
                    .filter(|a| a.rate == rate)
                    .flat_map(|a| a.improvements(variant))
                    .collect();
                if vals.is_empty() {
                    continue;
                }
                let none = vals.iter().filter(|&&v| v < 1e-9).count() as f64 / vals.len() as f64;
                fig.notes.push(format!(
                    "measured {rate}: mean {:.3}, median {:.3}, none {:.1}%",
                    mesh11_stats::mean(&vals).unwrap_or(0.0),
                    mesh11_stats::median(&vals).unwrap_or(0.0),
                    100.0 * none
                ));
                if let Some(s) = cdf_series(&rate.to_string(), &vals) {
                    fig = fig.with_series(s);
                }
            }
            fig
        })
        .collect()
}

/// Fig 5.2 — CDF of link asymmetry ratios per rate (b/g).
pub fn fig5_2(ctx: &ReproContext) -> FigureData {
    let by_rate = ctx.asymmetry_bg();
    let mut fig = FigureData::new(
        "fig5-2",
        "Link asymmetry (forward/reverse delivery ratio)",
        "asymmetry ratio",
        "CDF",
    )
    .with_note("paper: real but modest spread, stable across rates");
    for (rate, vals) in by_rate {
        if let Some(s) = cdf_series(&rate.to_string(), vals) {
            fig = fig.with_series(s);
        }
    }
    fig
}

/// Fig 5.3 — CDF of ETX1 path lengths per rate.
pub fn fig5_3(ctx: &ReproContext) -> FigureData {
    let analyses = ctx.routing_bg();
    let mut fig = FigureData::new(
        "fig5-3",
        "Path lengths (ETX1 shortest paths)",
        "path length (hops)",
        "CDF",
    )
    .with_note("paper: 30-40% one hop at low rates, >=80% under three; high rates stretch");
    for &rate in Phy::Bg.probed_rates() {
        let hops: Vec<f64> = analyses
            .iter()
            .filter(|a| a.rate == rate)
            .flat_map(|a| a.path_lengths())
            .map(f64::from)
            .collect();
        if let Some(s) = cdf_series(&rate.to_string(), &hops) {
            fig = fig.with_series(s);
        }
    }
    fig
}

/// Fig 5.4 — median and max improvement vs path length (pooled rates).
pub fn fig5_4(ctx: &ReproContext) -> FigureData {
    let rows = improvement_by_path_length(ctx.routing_bg(), EtxVariant::Etx1);
    FigureData::new(
        "fig5-4",
        "Effect of path length on opportunistic routing (ETX1)",
        "path length (hops)",
        "fraction improvement",
    )
    .with_note("paper: median improvement rises with hops; maximum falls")
    .with_series(Series::new(
        "median",
        rows.iter().map(|&(h, med, _)| (f64::from(h), med)),
    ))
    .with_series(Series::new(
        "maximum",
        rows.iter().map(|&(h, _, max)| (f64::from(h), max)),
    ))
}

/// Fig 5.5 — mean improvement vs network size at 1 Mbit/s.
pub fn fig5_5(ctx: &ReproContext) -> FigureData {
    let one = BitRate::bg_mbps(1.0).expect("1 Mbit/s exists");
    let rows = improvement_by_network_size(ctx.routing_bg(), one, EtxVariant::Etx1);
    FigureData::new(
        "fig5-5",
        "Effect of network size on opportunistic routing (1 Mbit/s, ETX1)",
        "network size (APs)",
        "mean fraction improvement",
    )
    .with_note("paper: mean and spread stay flat as size grows")
    .with_series(Series::new(
        "mean",
        rows.iter().map(|&(n, mean, _)| (n as f64, mean)),
    ))
    .with_series(Series::new(
        "stddev",
        rows.iter().map(|&(n, _, sd)| (n as f64, sd)),
    ))
}

/// The §6 hearing threshold (10%).
pub use crate::setup::TRIPLE_THRESHOLD;

/// Fig 6.1 — CDF over networks of the hidden/relevant triple fraction, per
/// rate, at the 10% threshold.
pub fn fig6_1(ctx: &ReproContext) -> FigureData {
    let analysis = ctx.triples_bg();
    let mut fig = FigureData::new(
        "fig6-1",
        "Frequency of hidden triples (threshold 10%)",
        "fraction of hidden triples",
        "CDF over networks",
    )
    .with_note("paper: median ~15% at 1 Mbit/s, rising with rate; 11 Mbit/s below 6 Mbit/s");
    for &rate in Phy::Bg.probed_rates() {
        let vals = analysis.fractions(rate, None);
        if let Some(med) = mesh11_stats::median(&vals) {
            fig.notes.push(format!(
                "measured {rate}: median {:.1}% over {} networks",
                100.0 * med,
                vals.len()
            ));
        }
        if let Some(s) = cdf_series(&rate.to_string(), &vals) {
            fig = fig.with_series(s);
        }
    }
    fig
}

/// Fig 6.2 — mean ± σ of range(rate)/range(1 Mbit/s).
pub fn fig6_2(ctx: &ReproContext) -> FigureData {
    let change = range_change_by_rate(ctx.ranges_bg(), Phy::Bg);
    let mut mean_pts = Vec::new();
    let mut sd_pts = Vec::new();
    for (rate, vals) in &change {
        if let Some(m) = mesh11_stats::mean(vals) {
            mean_pts.push((rate.mbps(), m));
            sd_pts.push((rate.mbps(), mesh11_stats::stddev(vals).unwrap_or(0.0)));
        }
    }
    FigureData::new(
        "fig6-2",
        "Change in range vs bit rate (relative to 1 Mbit/s)",
        "bit rate (Mbit/s)",
        "range ratio",
    )
    .with_note("paper: mean falls steadily with rate, with strikingly large variance")
    .with_series(Series::new("mean", mean_pts))
    .with_series(Series::new("stddev", sd_pts))
}

/// §6.3 — environment effects: hidden-triple medians and normalized range,
/// indoor vs outdoor.
pub fn sec6_3(ctx: &ReproContext) -> FigureData {
    let analysis = ctx.triples_bg();
    let one = BitRate::bg_mbps(1.0).expect("1 Mbit/s exists");
    let norm = normalized_range_by_env(ctx.meta_dataset(), ctx.ranges_bg(), one);

    let mut fig = FigureData::new(
        "sec6-3",
        "Impact of environment on hidden triples and range (1 Mbit/s)",
        "env (0=indoor, 1=outdoor)",
        "value",
    )
    .with_note(
        "paper: indoor median ~15% hidden triples, outdoor ~5%; outdoor larger range/size^2",
    );
    let mut med_pts = Vec::new();
    let mut range_pts = Vec::new();
    for (i, env) in [EnvLabel::Indoor, EnvLabel::Outdoor]
        .into_iter()
        .enumerate()
    {
        if let Some(med) = analysis.median_fraction(one, Some(env)) {
            fig.notes.push(format!(
                "measured {}: median hidden fraction {:.1}%",
                env.name(),
                100.0 * med
            ));
            med_pts.push((i as f64, med));
        }
        if let Some(vals) = norm.get(&env) {
            if let Some(m) = mesh11_stats::mean(vals) {
                fig.notes.push(format!(
                    "measured {}: mean range/size^2 = {:.3}",
                    env.name(),
                    m
                ));
                range_pts.push((i as f64, m));
            }
        }
    }
    fig.with_series(Series::new("median hidden fraction", med_pts))
        .with_series(Series::new("mean range/size^2", range_pts))
}

/// Fig 7.1 — histogram of APs visited per client.
pub fn fig7_1(ctx: &ReproContext) -> FigureData {
    let report = ctx.mobility();
    let mut hist = mesh11_stats::histogram::IntHistogram::new(21);
    for &n in &report.aps_visited {
        hist.push(n);
    }
    let pts: Vec<(f64, f64)> = hist
        .counts()
        .iter()
        .enumerate()
        .skip(1)
        .map(|(i, &c)| (i as f64, c as f64))
        .collect();
    FigureData::new(
        "fig7-1",
        "Number of APs visited by clients",
        "APs visited",
        "number of clients",
    )
    .with_note("paper: mode at 1 AP, tail past 50 APs for a few clients")
    .with_note(format!(
        "measured: {:.1}% single-AP; tail bucket (>20 APs): {} clients, max {}",
        100.0 * report.frac_single_ap(),
        hist.tail(),
        hist.tail_max()
    ))
    .with_series(Series::new("clients", pts))
}

/// Fig 7.2 — CDF of client connection lengths.
pub fn fig7_2(ctx: &ReproContext) -> FigureData {
    let report = ctx.mobility();
    let full = report.frac_full_duration(ctx.client_horizon_s());
    let mut fig = FigureData::new(
        "fig7-2",
        "Length of client connections",
        "connection length (hours)",
        "CDF",
    )
    .with_note("paper: ~23% under two hours; ~60% connected the full 11 h")
    .with_note(format!(
        "measured: {:.1}% of sessions span the full horizon",
        100.0 * full
    ));
    if let Some(s) = cdf_series("all clients", &report.connection_hours) {
        fig = fig.with_series(s);
    }
    fig
}

/// Fig 7.3 — CDF of prevalence, indoor vs outdoor.
pub fn fig7_3(ctx: &ReproContext) -> FigureData {
    let report = ctx.mobility();
    let mut fig = FigureData::new("fig7-3", "Prevalence", "prevalence", "CDF")
        .with_note("paper: indoor mean/median .07/.02; outdoor .15/.08");
    for env in [EnvLabel::Indoor, EnvLabel::Outdoor] {
        if let Some((mean, med)) = report.prevalence_stats(env) {
            fig.notes.push(format!(
                "measured {}: mean {mean:.3}, median {med:.3}",
                env.name()
            ));
        }
        if let Some(vals) = report.prevalence.get(&env) {
            if let Some(s) = cdf_series(env.name(), vals) {
                fig = fig.with_series(s);
            }
        }
    }
    fig
}

/// Fig 7.4 — CDF of persistence, indoor vs outdoor.
pub fn fig7_4(ctx: &ReproContext) -> FigureData {
    let report = ctx.mobility();
    let mut fig = FigureData::new("fig7-4", "Persistence", "persistence (minutes)", "CDF")
        .with_note(
            "paper: indoor mean/median 19.44/6.25; outdoor 38.6/25.0 (indoor switches faster)",
        );
    for env in [EnvLabel::Indoor, EnvLabel::Outdoor] {
        if let Some((mean, med)) = report.persistence_stats(env) {
            fig.notes.push(format!(
                "measured {}: mean {mean:.1} min, median {med:.1} min",
                env.name()
            ));
        }
        if let Some(vals) = report.persistence_min.get(&env) {
            if let Some(s) = cdf_series(env.name(), vals) {
                fig = fig.with_series(s);
            }
        }
    }
    fig
}

/// Fig 7.5 — median persistence vs max prevalence scatter.
pub fn fig7_5(ctx: &ReproContext) -> FigureData {
    let report = ctx.mobility();
    FigureData::new(
        "fig7-5",
        "Prevalence versus persistence",
        "median persistence (min)",
        "max prevalence",
    )
    .with_note("paper: mass in the low/low and high/high quadrants; off-diagonal quadrants empty")
    .with_series(Series::new(
        "clients",
        report.prevalence_vs_persistence.clone(),
    ))
}

/// Fig 1.1 — network locations (flavor; no analysis depends on it).
pub fn fig1_1(ctx: &ReproContext) -> FigureData {
    let mut per_loc: std::collections::BTreeMap<&str, usize> = std::collections::BTreeMap::new();
    for m in ctx.networks() {
        *per_loc.entry(m.location.as_str()).or_default() += 1;
    }
    let mut fig = FigureData::new("fig1-1", "Network locations", "location index", "networks")
        .with_note("paper: networks on every inhabited continent, some co-located");
    let pts: Vec<(f64, f64)> = per_loc
        .values()
        .enumerate()
        .map(|(i, &n)| (i as f64, n as f64))
        .collect();
    for (i, (loc, n)) in per_loc.iter().enumerate() {
        if i < 8 || *n > 1 {
            fig.notes.push(format!("[{i}] {loc}: {n}"));
        }
    }
    fig.with_series(Series::new("networks per location", pts))
}

/// ext-adapt — rate-adaptation replay (DESIGN.md §8): achieved throughput
/// per adapter with a 10% full-probing airtime charge.
pub fn ext_adapt(ctx: &ReproContext) -> FigureData {
    let out = ctx.adapters_ext();
    let mut fig = FigureData::new(
        "ext-adapt",
        "Rate-adaptation replay (b/g, 10% probing overhead)",
        "adapter index",
        "net throughput (Mbit/s)",
    )
    .with_note("extension: §4.5's table-guided probing vs a SampleRate-style prober");
    let mut raw = Vec::new();
    let mut net = Vec::new();
    for (i, o) in out.iter().enumerate() {
        fig.notes.push(format!(
            "[{i}] {}: raw {:.2}, net {:.2} Mbit/s ({:.1}% of oracle)",
            o.kind.name(),
            o.mean_throughput_mbps,
            o.net_throughput_mbps,
            100.0 * o.fraction_of_oracle
        ));
        raw.push((i as f64, o.mean_throughput_mbps));
        net.push((i as f64, o.net_throughput_mbps));
    }
    fig.with_series(Series::new("raw", raw))
        .with_series(Series::new("net of overhead", net))
}

/// ext-cap — opportunistic gain vs ExOR candidate cap on the largest b/g
/// network.
pub fn ext_cap(ctx: &ReproContext) -> FigureData {
    use mesh11_core::routing::ablation::improvement_vs_cap;
    let cap = ctx
        .cap_ext()
        .expect("campaigns include a ≥5-AP b/g network");
    let rows = improvement_vs_cap(&cap.matrix, &[1, 2, 3, 4, 8, usize::MAX]);
    let pts: Vec<(f64, f64)> = rows
        .iter()
        .map(|&(cap, v)| ((cap.min(16)) as f64, v))
        .collect();
    FigureData::new(
        "ext-cap",
        format!(
            "Opportunistic gain vs forwarder cap ({} APs, 1 Mbit/s)",
            cap.n_aps
        ),
        "candidate cap (∞ plotted at 16)",
        "mean improvement over ETX1",
    )
    .with_note("extension: the gain saturates within a handful of forwarders")
    .with_series(Series::new("mean improvement", pts))
}

/// ext-sweep — hidden-triple threshold sweep at 1 Mbit/s.
pub fn ext_sweep(ctx: &ReproContext) -> FigureData {
    let rows = ctx.sweep_ext();
    let pts: Vec<(f64, f64)> = rows
        .iter()
        .filter_map(|&(t, med)| med.map(|m| (t, m)))
        .collect();
    FigureData::new(
        "ext-sweep",
        "Hidden-triple fraction vs hearing threshold (1 Mbit/s)",
        "threshold",
        "median hidden fraction",
    )
    .with_note("extension: substantiates the paper's threshold-insensitivity claim")
    .with_series(Series::new("median", pts))
}

/// ext-stability — per-link optimal-rate churn and SNR drift (§4.6
/// diagnostics).
pub fn ext_stability(ctx: &ReproContext) -> FigureData {
    let s = ctx.stability_bg();
    let mut fig = FigureData::new(
        "ext-stability",
        "Temporal stability of the per-link optimum (802.11b/g)",
        "per-link churn (fraction of consecutive flips)",
        "CDF over links",
    )
    .with_note("extension: same-SNR churn is the error floor of ANY SNR-keyed table")
    .with_note(format!(
        "measured: {} links; median churn {:.3}; median SNR drift {:.2} dB",
        s.links,
        s.median_churn().unwrap_or(0.0),
        s.median_drift_db().unwrap_or(0.0)
    ))
    .with_note(format!(
        "measured: churn at same SNR key {:.1}% (over {} pairs), at different key {:.1}% ({} pairs)",
        100.0 * s.churn_same_snr,
        s.pairs.0,
        100.0 * s.churn_diff_snr,
        s.pairs.1
    ));
    if let Some(series) = cdf_series("churn", &s.churn_per_link) {
        fig = fig.with_series(series);
    }
    if let Some(series) = cdf_series("SNR drift (dB)", &s.snr_drift_per_link) {
        fig = fig.with_series(series);
    }
    fig
}

/// ext-diversity — §5.2.2's unpictured result: improvement vs the source's
/// forwarding-candidate count.
pub fn ext_diversity(ctx: &ReproContext) -> FigureData {
    let rows = ctx.diversity_ext();
    FigureData::new(
        "ext-diversity",
        "Improvement vs path diversity (1 Mbit/s, ETX1)",
        "forwarding candidates at the source",
        "fraction improvement",
    )
    .with_note("paper §5.2.2 (not pictured): median rises with diversity, maximum falls")
    .with_series(Series::new(
        "median",
        rows.iter().map(|&(d, med, _, _)| (d as f64, med)),
    ))
    .with_series(Series::new(
        "maximum",
        rows.iter().map(|&(d, _, max, _)| (d as f64, max)),
    ))
}

/// ext-ett — multi-rate ETT vs best single-rate ETX1 path speedups.
pub fn ext_ett(ctx: &ReproContext) -> FigureData {
    let analyses = ctx.ett_bg();
    let speedups: Vec<f64> = analyses.iter().flat_map(|a| a.speedups()).collect();
    let mut fig = FigureData::new(
        "ext-ett",
        "Multi-rate ETT vs best single-rate path (time speedup)",
        "speedup (×)",
        "CDF over pairs",
    )
    .with_note("extension: the ETT metric the paper's question 2 names but never evaluates");
    if let Some(med) = mesh11_stats::median(&speedups) {
        fig.notes.push(format!(
            "measured: median speedup {med:.2}x over {} pairs; {:.0}% gain >10%",
            speedups.len(),
            100.0 * speedups.iter().filter(|&&s| s > 1.1).count() as f64 / speedups.len() as f64
        ));
    }
    if let Some(series) = cdf_series("speedup", &speedups) {
        fig = fig.with_series(series);
    }
    fig
}

/// ext-client — §4.6's caveat, tested: does per-link SNR training survive
/// on client links? Static clients should look like AP links; mobile
/// clients should break the table.
pub fn ext_client(ctx: &ReproContext) -> FigureData {
    // Downlink probes over a few representative b/g networks, pulled from
    // the context's cached client-probe pass (run once, in the simulate
    // phase). The campaign itself is not re-simulated — client probing is
    // an extra measurement pass the real networks never ran.
    let pass = match ctx.client_probes() {
        Some(p) => p,
        None => return FigureData::new("ext-client", "unavailable", "", ""),
    };
    let mut probes: Vec<&mesh11_trace::ProbeSet> = Vec::new();
    let mut static_rx = std::collections::BTreeSet::new();
    let mut fast_rx = std::collections::BTreeSet::new();
    for (net, trace) in &pass.traces {
        for &rx in &trace.static_receivers {
            static_rx.insert((net.0, rx));
        }
        for &rx in &trace.fast_receivers {
            fast_rx.insert((net.0, rx));
        }
        probes.extend(trace.probes.iter());
    }
    // Online (predict-before-train) evaluation per link, as a real adapter
    // would run — in-sample scoring would let a mobile link "memorize" its
    // one-visit SNR cells and look spuriously accurate.
    let mut per_link: std::collections::BTreeMap<(u32, u32, u32), Vec<&mesh11_trace::ProbeSet>> =
        Default::default();
    for p in probes {
        per_link
            .entry((p.network.0, p.sender.0, p.receiver.0))
            .or_default()
            .push(p);
    }
    let mut stat = (0u64, 0u64); // (hits, total)
    let mut walk = (0u64, 0u64);
    let mut fast = (0u64, 0u64);
    for ((net, _, rx), sets) in per_link.iter_mut() {
        sets.sort_by(|a, b| a.time_s.partial_cmp(&b.time_s).expect("finite times"));
        let bucket = if static_rx.contains(&(*net, *rx)) {
            &mut stat
        } else if fast_rx.contains(&(*net, *rx)) {
            &mut fast
        } else {
            &mut walk
        };
        let mut table: std::collections::HashMap<i64, std::collections::BTreeMap<_, u32>> =
            Default::default();
        for p in sets.iter() {
            let snr = p.snr_key();
            let opt = p.optimal().rate;
            if let Some(counts) = table.get(&snr) {
                let pick = counts.iter().max_by(|a, b| a.1.cmp(b.1)).map(|(&r, _)| r);
                bucket.1 += 1;
                bucket.0 += u64::from(pick == Some(opt));
            }
            *table.entry(snr).or_default().entry(opt).or_insert(0) += 1;
        }
    }
    let acc = |b: (u64, u64)| {
        if b.1 > 0 {
            b.0 as f64 / b.1 as f64
        } else {
            0.0
        }
    };
    let (s_acc, w_acc, f_acc) = (acc(stat), acc(walk), acc(fast));
    FigureData::new(
        "ext-client",
        "Per-link SNR-table accuracy on client links (802.11b/g downlink)",
        "class (0 = static, 1 = pedestrian, 2 = fast mover)",
        "online exact-pick accuracy",
    )
    .with_note("paper §4.6 (untestable with its data) feared mobile degradation; we find none ON THE SETS MOBILE LINKS PRODUCE — lossy transition windows mostly never become probe sets (survivorship)")
    .with_note(format!(
        "measured: static {:.1}% ({} sets); pedestrian {:.1}% ({}); fast {:.1}% ({})",
        100.0 * s_acc, stat.1, 100.0 * w_acc, walk.1, 100.0 * f_acc, fast.1
    ))
    .with_series(Series::new(
        "accuracy",
        [(0.0, s_acc), (1.0, w_acc), (2.0, f_acc)],
    ))
}

/// Convenience for tests: the number of b/g networks with ≥5 APs in a
/// context (the §5 population).
pub fn routing_population(ctx: &ReproContext) -> usize {
    ctx.routing_bg()
        .iter()
        .map(|a| a.network)
        .collect::<std::collections::BTreeSet<NetworkId>>()
        .len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::Scale;
    use std::sync::OnceLock;

    fn ctx() -> &'static ReproContext {
        static CTX: OnceLock<ReproContext> = OnceLock::new();
        CTX.get_or_init(|| ReproContext::build(Scale::Quick, 7))
    }

    #[test]
    fn every_id_builds() {
        for id in ALL_IDS {
            let figs = build(ctx(), id).unwrap_or_else(|| panic!("unknown id {id}"));
            assert!(!figs.is_empty(), "{id} produced nothing");
            for f in &figs {
                assert!(!f.series.is_empty(), "{id}/{} has no series", f.id);
                let rendered = f.render_table(12);
                assert!(rendered.contains(&f.id));
            }
        }
        assert!(build(ctx(), "fig9-9").is_none());
    }

    #[test]
    fn routing_population_nonzero() {
        assert!(routing_population(ctx()) > 0);
    }

    #[test]
    fn fig3_1_reports_probe_set_tail() {
        let fig = fig3_1(ctx());
        assert_eq!(fig.series.len(), 3, "probe-set / link / network curves");
        // The probe-set series must be the leftmost (tightest) curve: its
        // 90th-percentile x is below the network curve's.
        let x90 = |s: &mesh11_core::report::Series| {
            s.points
                .iter()
                .find(|p| p.1 >= 0.9)
                .map(|p| p.0)
                .expect("CDF reaches 0.9")
        };
        assert!(x90(&fig.series[0]) < x90(&fig.series[2]));
    }

    #[test]
    fn fig6_2_mean_declines_overall() {
        let fig = fig6_2(ctx());
        let mean = &fig.series[0].points;
        let first = mean.first().unwrap().1;
        let last = mean.last().unwrap().1;
        assert!((first - 1.0).abs() < 1e-9, "base rate normalizes to 1");
        assert!(last < first, "range must shrink by 48 Mbit/s: {mean:?}");
    }

    #[test]
    fn fig5_4_median_and_max_cross() {
        let fig = fig5_4(ctx());
        let median = &fig.series[0].points;
        let maximum = &fig.series[1].points;
        assert!(!median.is_empty());
        // Median at depth >=3 hops is at least the 1-hop median.
        let med_at =
            |pts: &[(f64, f64)], h: f64| pts.iter().find(|p| p.0 >= h).map(|p| p.1).unwrap_or(0.0);
        assert!(med_at(median, 3.0) >= med_at(median, 1.0));
        // Maximum at the deepest observed hop is below its peak.
        let peak = maximum.iter().map(|p| p.1).fold(0.0, f64::max);
        assert!(maximum.last().unwrap().1 <= peak);
    }

    #[test]
    fn tab4_1_orderings() {
        let fig = tab4_1(ctx());
        // Series: updates then stored points, indexed First, MostRecent,
        // Subsampled, All.
        let updates: Vec<f64> = fig.series[0].points.iter().map(|p| p.1).collect();
        let stored: Vec<f64> = fig.series[1].points.iter().map(|p| p.1).collect();
        assert!(updates[0] < updates[3], "First updates < All updates");
        assert!(stored[0] <= stored[2], "First memory <= Subsampled");
        assert!(stored[2] < stored[3], "Subsampled memory < All");
    }

    #[test]
    fn ext_client_reports_three_classes() {
        let fig = ext_client(ctx());
        assert_eq!(fig.series[0].points.len(), 3);
        for (_, acc) in &fig.series[0].points {
            assert!((0.0..=1.0).contains(acc));
        }
    }
}
