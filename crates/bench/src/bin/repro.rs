//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro [--scale quick|standard|paper] [--seed N] [--out DIR] [--rows N] [--plot] <id>... | --all
//! ```
//!
//! Prints each figure as an aligned text table (with the paper-expected
//! values as `#` notes; add `--plot` for ASCII curve renderings) and writes
//! the full series as JSON under `--out` (default `out/`). Experiment ids:
//! fig1-1, fig3-1, fig4-1 … fig7-5, tab4-1, sec6-3, and the ext-* extension
//! studies; see `DESIGN.md` §3 for the index.

use mesh11_bench::figures::{build, ALL_IDS};
use mesh11_bench::{ReproContext, Scale};
use std::path::PathBuf;
use std::time::Instant;

struct Args {
    scale: Scale,
    seed: u64,
    out: PathBuf,
    rows: usize,
    plot: bool,
    ids: Vec<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        scale: Scale::Standard,
        seed: 42,
        out: PathBuf::from("out"),
        rows: 16,
        plot: false,
        ids: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                let v = it.next().ok_or("--scale needs a value")?;
                args.scale = Scale::parse(&v).ok_or(format!("unknown scale '{v}'"))?;
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                args.seed = v.parse().map_err(|e| format!("bad seed: {e}"))?;
            }
            "--out" => {
                args.out = PathBuf::from(it.next().ok_or("--out needs a value")?);
            }
            "--rows" => {
                let v = it.next().ok_or("--rows needs a value")?;
                args.rows = v.parse().map_err(|e| format!("bad rows: {e}"))?;
            }
            "--plot" => args.plot = true,
            "--all" => args.ids = ALL_IDS.iter().map(|s| s.to_string()).collect(),
            "--help" | "-h" => {
                println!(
                    "usage: repro [--scale quick|standard|paper] [--seed N] [--out DIR] [--rows N] [--plot] <id>... | --all\nids: {}",
                    ALL_IDS.join(" ")
                );
                std::process::exit(0);
            }
            id if !id.starts_with('-') => args.ids.push(id.to_string()),
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if args.ids.is_empty() {
        return Err("no experiment ids given (try --all or --help)".into());
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("repro: {e}");
            std::process::exit(2);
        }
    };

    eprintln!(
        "# building {:?}-scale campaign (seed {}) …",
        args.scale, args.seed
    );
    let t0 = Instant::now();
    let ctx = ReproContext::build(args.scale, args.seed);
    eprintln!(
        "# simulated {} networks / {} APs: {} probe sets, {} client samples in {:.1}s",
        ctx.dataset.networks.len(),
        ctx.dataset.total_aps(),
        ctx.dataset.probes.len(),
        ctx.dataset.clients.len(),
        t0.elapsed().as_secs_f64()
    );

    std::fs::create_dir_all(&args.out).expect("create output dir");
    let mut failures = 0;
    for id in &args.ids {
        let Some(figs) = build(&ctx, id) else {
            eprintln!("repro: unknown experiment id '{id}'");
            failures += 1;
            continue;
        };
        for fig in figs {
            if args.plot {
                println!("{}", fig.render_plot(72, 18));
            }
            println!("{}", fig.render_table(args.rows));
            let path = args.out.join(format!("{}.json", fig.id));
            std::fs::write(&path, fig.to_json()).expect("write figure json");
            eprintln!("# wrote {}", path.display());
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }
}
