//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro [--scale quick|standard|paper|metro] [--seed N] [--seeds N] [--threads N]
//!       [--faults] [--metro-factor N] [--chunked] [--chunk-capacity N]
//!       [--chunk-budget N] [--spill-codec v1|v2] [--prefetch-depth N]
//!       [--spill-dir DIR] [--streaming]
//!       [--window-major] [--kernel-major] [--out DIR] [--bench-json FILE]
//!       [--rows N] [--plot] <id>... | --all
//! ```
//!
//! `--seeds N` runs seeds `--seed .. --seed+N` as **one** fused batched
//! campaign (the pair scheduler sees every seed's work list at once), writes
//! each seed's figures under `out/seed-<s>/`, and aggregates every curve
//! point across seeds into mean ± 95% t-interval figures under
//! `out/figures_ci/`. Per-seed and amortized timings land in the timing
//! JSONs. In-memory scales only.
//!
//! `--streaming` (implies `--chunked`) overlaps analysis with simulation:
//! sealed dataset parts feed a bounded channel whose consumer folds every
//! registered kernel over each part while later networks still simulate.
//! `--window-major` / `--kernel-major` force the analysis schedule
//! (default: window-major when chunked, kernel-major in-memory); figures
//! are byte-identical either way.
//!
//! Prints each figure as an aligned text table (with the paper-expected
//! values as `#` notes; add `--plot` for ASCII curve renderings) and writes
//! the full series as JSON under `--out` (default `out/`), plus a
//! `bench_timings.json` with the per-phase wall-clock breakdown. The same
//! breakdown also lands at `--bench-json` (default `BENCH_repro.json` in
//! the working directory) so CI can track the perf trajectory. Experiment
//! ids: fig1-1, fig3-1, fig4-1 … fig7-5, tab4-1, sec6-3, and the ext-*
//! extension studies; see `DESIGN.md` §3 for the index.
//!
//! Output is bit-for-bit identical at any `--threads` value (including 1):
//! parallelism only reorders who computes what, never what is computed.

use mesh11_bench::figures::{build, ALL_IDS};
use mesh11_bench::{
    aggregate_ci, group_by_figure, max_relative_halfwidth, peak_rss_mb, AnalysisMode, DataMode,
    PhaseTimings, ReproContext, Scale,
};
use mesh11_core::report::FigureData;
use mesh11_trace::{ChunkConfig, SpillCodec};
use rayon::prelude::*;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::time::Instant;

struct Args {
    scale: Scale,
    seed: u64,
    seeds: usize,
    threads: Option<usize>,
    faults: bool,
    chunked: bool,
    chunk_capacity: Option<usize>,
    chunk_budget: Option<usize>,
    spill_codec: Option<SpillCodec>,
    prefetch_depth: Option<usize>,
    spill_dir: Option<PathBuf>,
    streaming: bool,
    analysis_mode: Option<AnalysisMode>,
    out: PathBuf,
    bench_json: PathBuf,
    rows: usize,
    plot: bool,
    ids: Vec<String>,
}

impl Args {
    /// The data mode this invocation runs under: the scale's default,
    /// overridden to chunked when any chunk flag is given.
    fn data_mode(&self) -> DataMode {
        let chunk_flags = self.chunked
            || self.streaming
            || self.chunk_capacity.is_some()
            || self.chunk_budget.is_some()
            || self.spill_codec.is_some()
            || self.prefetch_depth.is_some()
            || self.spill_dir.is_some();
        match (self.scale.data_mode(), chunk_flags) {
            (DataMode::InMemory, false) => DataMode::InMemory,
            (mode, _) => {
                let mut cfg = match mode {
                    DataMode::Chunked(cfg) => cfg,
                    DataMode::InMemory => ChunkConfig::default(),
                };
                if let Some(cap) = self.chunk_capacity {
                    cfg.chunk_capacity = cap.max(1);
                }
                if let Some(budget) = self.chunk_budget {
                    cfg.resident_chunks = budget;
                }
                if let Some(codec) = self.spill_codec {
                    cfg.spill_codec = codec;
                }
                if let Some(depth) = self.prefetch_depth {
                    cfg.prefetch_depth = depth;
                }
                cfg.spill_dir.clone_from(&self.spill_dir);
                DataMode::Chunked(cfg)
            }
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        scale: Scale::Standard,
        seed: 42,
        seeds: 1,
        threads: None,
        faults: false,
        chunked: false,
        chunk_capacity: None,
        chunk_budget: None,
        spill_codec: None,
        prefetch_depth: None,
        spill_dir: None,
        streaming: false,
        analysis_mode: None,
        out: PathBuf::from("out"),
        bench_json: PathBuf::from("BENCH_repro.json"),
        rows: 16,
        plot: false,
        ids: Vec::new(),
    };
    let mut metro_factor: Option<usize> = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                let v = it.next().ok_or("--scale needs a value")?;
                args.scale = Scale::parse(&v).ok_or(format!("unknown scale '{v}'"))?;
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                args.seed = v.parse().map_err(|e| format!("bad seed: {e}"))?;
            }
            "--seeds" => {
                let v = it.next().ok_or("--seeds needs a value")?;
                let n: usize = v.parse().map_err(|e| format!("bad seed count: {e}"))?;
                if n == 0 {
                    return Err("--seeds must be >= 1".into());
                }
                args.seeds = n;
            }
            "--metro-factor" => {
                let v = it.next().ok_or("--metro-factor needs a value")?;
                let n: usize = v.parse().map_err(|e| format!("bad metro factor: {e}"))?;
                if n == 0 {
                    return Err("--metro-factor must be >= 1".into());
                }
                metro_factor = Some(n);
            }
            "--chunked" => args.chunked = true,
            "--streaming" => args.streaming = true,
            "--window-major" => {
                if args.analysis_mode == Some(AnalysisMode::KernelMajor) {
                    return Err("--window-major conflicts with --kernel-major".into());
                }
                args.analysis_mode = Some(AnalysisMode::WindowMajor);
            }
            "--kernel-major" => {
                if args.analysis_mode == Some(AnalysisMode::WindowMajor) {
                    return Err("--kernel-major conflicts with --window-major".into());
                }
                args.analysis_mode = Some(AnalysisMode::KernelMajor);
            }
            "--chunk-capacity" => {
                let v = it.next().ok_or("--chunk-capacity needs a value")?;
                args.chunk_capacity =
                    Some(v.parse().map_err(|e| format!("bad chunk capacity: {e}"))?);
            }
            "--chunk-budget" => {
                let v = it.next().ok_or("--chunk-budget needs a value")?;
                args.chunk_budget = Some(v.parse().map_err(|e| format!("bad chunk budget: {e}"))?);
            }
            "--spill-codec" => {
                let v = it.next().ok_or("--spill-codec needs a value")?;
                args.spill_codec =
                    Some(SpillCodec::parse(&v).ok_or(format!("bad spill codec '{v}' (v1|v2)"))?);
            }
            "--prefetch-depth" => {
                let v = it.next().ok_or("--prefetch-depth needs a value")?;
                args.prefetch_depth =
                    Some(v.parse().map_err(|e| format!("bad prefetch depth: {e}"))?);
            }
            "--spill-dir" => {
                args.spill_dir = Some(PathBuf::from(it.next().ok_or("--spill-dir needs a value")?));
            }
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value")?;
                let n: usize = v.parse().map_err(|e| format!("bad thread count: {e}"))?;
                if n == 0 {
                    return Err("--threads must be >= 1".into());
                }
                args.threads = Some(n);
            }
            "--out" => {
                args.out = PathBuf::from(it.next().ok_or("--out needs a value")?);
            }
            "--bench-json" => {
                args.bench_json = PathBuf::from(it.next().ok_or("--bench-json needs a value")?);
            }
            "--rows" => {
                let v = it.next().ok_or("--rows needs a value")?;
                args.rows = v.parse().map_err(|e| format!("bad rows: {e}"))?;
            }
            "--faults" => args.faults = true,
            "--plot" => args.plot = true,
            "--all" => args.ids = ALL_IDS.iter().map(|s| s.to_string()).collect(),
            "--help" | "-h" => {
                println!(
                    "usage: repro [--scale quick|standard|paper|metro] [--seed N] [--seeds N] [--threads N] [--faults]\n\
                     \x20            [--metro-factor N] [--chunked] [--chunk-capacity N] [--chunk-budget N]\n\
                     \x20            [--spill-codec v1|v2] [--prefetch-depth N]\n\
                     \x20            [--spill-dir DIR] [--streaming] [--window-major] [--kernel-major]\n\
                     \x20            [--out DIR] [--bench-json FILE] [--rows N] [--plot] <id>... | --all\n\
                     --threads N  cap the worker pool (default: all cores); results are\n\
                     identical at any value, only wall-clock changes\n\
                     --seeds N    run N consecutive seeds as one fused batched campaign:\n\
                     per-seed figures under out/seed-<s>/, cross-seed mean ± 95% CI\n\
                     figures under out/figures_ci/ (in-memory scales only)\n\
                     --faults     simulate under the built-in demo fault plan (overlapping\n\
                     AP outages + stacked interference bursts), still thread-invariant\n\
                     --metro-factor N  ensemble multiplier for --scale metro (default {})\n\
                     --chunked    stream probes through the spill-able chunk store at any scale\n\
                     --streaming  overlap analysis with simulation: fold kernels over sealed\n\
                     parts while later networks still simulate (implies --chunked)\n\
                     --window-major  materialize each window once, fold every kernel over it\n\
                     (default when chunked); byte-identical to kernel-major\n\
                     --kernel-major  one probe-source walk per kernel (default in-memory)\n\
                     --chunk-capacity N  probe sets per chunk (default {})\n\
                     --chunk-budget N    resident chunks before spilling (default {})\n\
                     --spill-codec v1|v2  spill frame encoding: raw columns (v1) or\n\
                     per-column compression + checksum (v2, default)\n\
                     --prefetch-depth N  windows of read-ahead by the background\n\
                     prefetch thread (default {}; 0 disables it)\n\
                     --spill-dir DIR     where cold chunks spill (default: system temp dir)\n\
                     --bench-json FILE  where to write the per-phase timing JSON\n\
                     (default: BENCH_repro.json in the working directory)\nids: {}",
                    mesh11_bench::DEFAULT_METRO_FACTOR,
                    ChunkConfig::default().chunk_capacity,
                    ChunkConfig::default().resident_chunks,
                    ChunkConfig::default().prefetch_depth,
                    ALL_IDS.join(" ")
                );
                std::process::exit(0);
            }
            id if !id.starts_with('-') => args.ids.push(id.to_string()),
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if let Some(factor) = metro_factor {
        match &mut args.scale {
            Scale::Metro { factor: f } => *f = factor,
            _ => return Err("--metro-factor requires --scale metro".into()),
        }
    }
    if args.ids.is_empty() {
        return Err("no experiment ids given (try --all or --help)".into());
    }
    if args.seeds > 1 && !matches!(args.data_mode(), DataMode::InMemory) {
        return Err(
            "--seeds runs the ensemble in-memory; drop the chunk flags (or --scale metro)".into(),
        );
    }
    if args.streaming && args.analysis_mode.is_some() {
        return Err(
            "--streaming already folds window-major during simulation; drop the schedule flag"
                .into(),
        );
    }
    Ok(args)
}

/// One seed's figure pass: builds every requested figure in parallel,
/// renders (when `print_tables`) and writes them under `out_dir`.
struct SeedAnalysis {
    /// Per-experiment analyze seconds, keyed by experiment id.
    fig_times: BTreeMap<String, f64>,
    /// Every figure built, in request order (feeds the CI aggregation).
    figs: Vec<FigureData>,
    /// Unknown-id failures.
    failures: i32,
    /// Wall-clock of the parallel figure pass.
    analyze_s: f64,
}

/// One experiment's build outcome: the figures plus the build seconds,
/// `None` for an unknown id.
type BuildOutcome = Option<(Vec<FigureData>, f64)>;

fn analyze_and_emit(
    ctx: &ReproContext,
    args: &Args,
    out_dir: &Path,
    print_tables: bool,
) -> SeedAnalysis {
    // Build every requested figure in parallel. The shared heavy analyses
    // (lookup tables, triple analysis, mobility report, …) live in
    // OnceLocks on the context, so concurrent builders compute each one
    // exactly once and the results carry no thread-count dependence.
    let t_analyze = Instant::now();
    let built: Vec<(&String, BuildOutcome)> = args
        .ids
        .par_iter()
        .map(|id| {
            let t = Instant::now();
            let figs = build(ctx, id);
            (id, figs.map(|f| (f, t.elapsed().as_secs_f64())))
        })
        .collect();
    let analyze_s = t_analyze.elapsed().as_secs_f64();

    // Render and write strictly in request order, on one thread.
    std::fs::create_dir_all(out_dir).expect("create output dir");
    let mut failures = 0;
    let mut fig_times = BTreeMap::new();
    let mut all_figs = Vec::new();
    for (id, outcome) in built {
        let Some((figs, secs)) = outcome else {
            eprintln!("repro: unknown experiment id '{id}'");
            failures += 1;
            continue;
        };
        fig_times.insert(id.clone(), secs);
        for fig in figs {
            if print_tables {
                if args.plot {
                    println!("{}", fig.render_plot(72, 18));
                }
                println!("{}", fig.render_table(args.rows));
            }
            let path = out_dir.join(format!("{}.json", fig.id));
            std::fs::write(&path, fig.to_json()).expect("write figure json");
            eprintln!("# wrote {}", path.display());
            all_figs.push(fig);
        }
    }
    SeedAnalysis {
        fig_times,
        figs: all_figs,
        failures,
        analyze_s,
    }
}

fn run(args: &Args) -> i32 {
    eprintln!(
        "# building {:?}-scale campaign (seed {}, {} threads) …",
        args.scale,
        args.seed,
        rayon::current_num_threads()
    );
    let t_total = Instant::now();
    let faults = if args.faults {
        eprintln!("# fault injection: demo plan (overlapping outages + stacked bursts)");
        mesh11_sim::FaultPlan::demo(args.scale.config().probe_horizon_s)
    } else {
        mesh11_sim::FaultPlan::none()
    };
    if args.seeds > 1 {
        return run_multi(args, faults, t_total);
    }
    let mode = args.data_mode();
    if let DataMode::Chunked(cfg) = &mode {
        eprintln!(
            "# chunked store: {} probe sets/chunk, {} resident chunks",
            cfg.chunk_capacity, cfg.resident_chunks
        );
    }
    let (mut ctx, build_t) = if args.streaming {
        let DataMode::Chunked(cfg) = mode else {
            unreachable!("--streaming implies a chunked data mode")
        };
        eprintln!("# streaming: analysis consumer folds sealed parts while simulation continues");
        ReproContext::build_timed_streaming(args.scale, args.seed, faults, cfg)
    } else {
        ReproContext::build_timed_with_mode(args.scale, args.seed, faults, mode)
    };
    if let Some(schedule) = args.analysis_mode {
        ctx.set_analysis_mode(schedule);
    }
    eprintln!(
        "# simulated {} networks / {} APs ({} pairs): {} probe sets, {} client samples in {:.1}s",
        ctx.networks().len(),
        ctx.total_aps(),
        build_t.pairs_simulated,
        ctx.n_probes(),
        ctx.clients().len(),
        build_t.generate_s + build_t.simulate_s
    );
    if let Some(c) = ctx.chunked() {
        eprintln!(
            "# chunk store: {} resident chunks, {} bytes spilled, {} stitched links",
            c.resident_chunks(),
            c.spilled_bytes(),
            c.stitched_index().n_links()
        );
    }

    let analysis = analyze_and_emit(&ctx, args, &args.out, true);
    let SeedAnalysis {
        fig_times,
        failures,
        analyze_s: figure_s,
        ..
    } = analysis;
    // For streaming runs the figure pass is only the tail of analysis: the
    // fold work already ran inside the simulate wall.
    let analyze_s = figure_s + build_t.stream_analyze_s;

    let n_probes = ctx.n_probes();
    // Snapshot after analysis so the counters cover the kernels' traffic.
    // In-memory runs have no chunk store; their counters are null, not 0.
    let chunk = ctx.chunked().map(|_| ctx.chunk_stats());
    let timings = PhaseTimings {
        scale: args.scale.label(),
        seed: args.seed,
        seeds: 1,
        threads: args.threads.unwrap_or(0),
        effective_threads: rayon::current_num_threads(),
        generate_s: build_t.generate_s,
        simulate_s: build_t.simulate_s,
        pairs_simulated: build_t.pairs_simulated,
        simulate_s_per_seed: build_t.simulate_s,
        per_seed_pairs: vec![build_t.pairs_simulated],
        per_seed_analyze_s: vec![analyze_s],
        analyze_s_per_seed: analyze_s,
        analyze_s_per_seed_ci95: None,
        n_probes,
        reports_per_sec: if build_t.simulate_s > 0.0 {
            n_probes as f64 / build_t.simulate_s
        } else {
            0.0
        },
        peak_rss_mb: peak_rss_mb(),
        data_mode: match ctx.chunked() {
            Some(_) => "chunked".to_string(),
            None => "in-memory".to_string(),
        },
        spilled_bytes: ctx.chunked().map_or(0, |c| c.spilled_bytes()),
        client_probe_s: build_t.client_probe_s,
        clients_simulated: build_t.clients_simulated,
        analyze_s,
        analyze_probes_per_sec: if analyze_s > 0.0 {
            n_probes as f64 / analyze_s
        } else {
            0.0
        },
        stream_analyze_s: args.streaming.then_some(build_t.stream_analyze_s),
        chunk_hits: chunk.as_ref().map(|c| c.chunk_hits),
        chunk_decodes: chunk.as_ref().map(|c| c.chunk_decodes),
        chunk_evictions: chunk.as_ref().map(|c| c.chunk_evictions),
        peak_pinned_bytes: chunk.as_ref().map(|c| c.peak_pinned_bytes),
        window_hits: chunk.as_ref().map(|c| c.window_hits),
        window_builds: chunk.as_ref().map(|c| c.window_builds),
        window_evictions: chunk.as_ref().map(|c| c.window_evictions),
        n_windows: ctx.chunked().map(|c| c.n_windows() as u64),
        prefetch_hits: chunk.as_ref().map(|c| c.prefetch_hits),
        prefetch_wasted: chunk.as_ref().map(|c| c.prefetch_wasted),
        over_budget_events: chunk.as_ref().map(|c| c.over_budget_events),
        decode_s: chunk.as_ref().map(|c| c.decode_ns as f64 / 1e9),
        spill_raw_bytes: chunk.as_ref().map(|c| c.spill_raw_bytes),
        spill_encoded_bytes: chunk.as_ref().map(|c| c.spill_encoded_bytes),
        total_s: t_total.elapsed().as_secs_f64(),
        figures: fig_times,
    };
    let path = args.out.join("bench_timings.json");
    std::fs::write(&path, timings.to_json()).expect("write bench_timings.json");
    eprintln!("{}", timings.render());
    eprintln!("# wrote {}", path.display());
    // Also drop the breakdown at a stable top-level path so successive PRs
    // can track the perf trajectory without digging through --out dirs.
    std::fs::write(&args.bench_json, timings.to_json()).expect("write bench json");
    eprintln!("# wrote {}", args.bench_json.display());

    failures
}

/// The multi-seed campaign path (`--seeds N`, in-memory only): one fused
/// batched simulate pass over every seed's pair work list, a per-seed
/// figure pass into `out/seed-<s>/`, and a cross-seed mean ± 95% CI
/// aggregation into `out/figures_ci/`.
fn run_multi(args: &Args, faults: mesh11_sim::FaultPlan, t_total: Instant) -> i32 {
    let (ctxs, build_t) = ReproContext::build_many_timed(args.scale, args.seed, args.seeds, faults);
    let n_probes: usize = ctxs.iter().map(|c| c.n_probes()).sum();
    eprintln!(
        "# simulated {} seeds × {} networks ({} pairs fused): {} probe sets in {:.1}s ({:.2}s/seed amortized)",
        args.seeds,
        ctxs[0].networks().len(),
        build_t.pairs_simulated,
        n_probes,
        build_t.generate_s + build_t.simulate_s,
        build_t.simulate_s / args.seeds as f64
    );

    // Per-seed figure passes: tables print once (base seed), JSONs land in
    // per-seed directories.
    let mut per_seed_figs = Vec::with_capacity(args.seeds);
    let mut per_seed_analyze_s = Vec::with_capacity(args.seeds);
    let mut base_fig_times = BTreeMap::new();
    let mut failures = 0;
    for (k, ctx) in ctxs.iter().enumerate() {
        let seed = args.seed + k as u64;
        let dir = args.out.join(format!("seed-{seed}"));
        let a = analyze_and_emit(ctx, args, &dir, k == 0);
        if k == 0 {
            base_fig_times = a.fig_times;
        }
        failures += a.failures;
        per_seed_analyze_s.push(a.analyze_s);
        per_seed_figs.push(a.figs);
    }
    let analyze_s: f64 = per_seed_analyze_s.iter().sum();

    // Cross-seed aggregation: every figure id present in ≥ 2 seeds gets a
    // mean ± 95% t-interval replica under figures_ci/.
    let ci_dir = args.out.join("figures_ci");
    std::fs::create_dir_all(&ci_dir).expect("create figures_ci dir");
    let mut ci_widths: Vec<(String, f64)> = Vec::new();
    for (id, replicas) in group_by_figure(&per_seed_figs) {
        let Some(agg) = aggregate_ci(&replicas) else {
            continue;
        };
        let path = ci_dir.join(format!("{id}.json"));
        std::fs::write(&path, agg.to_json()).expect("write CI figure json");
        eprintln!("# wrote {}", path.display());
        if let Some(rel) = max_relative_halfwidth(&agg) {
            ci_widths.push((id.to_string(), rel));
        }
    }
    ci_widths.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite widths"));
    for (id, rel) in ci_widths.iter().take(8) {
        eprintln!("#   widest CI: {id} ±{:.1}% of mean", 100.0 * rel);
    }

    // Per-seed analyze spread, mirroring `simulate_s_per_seed`: a mean plus
    // a 95% Student-t half-width once ≥ 2 seeds ran (the n=1 half-width is
    // infinite, which JSON cannot carry — map it to `None`).
    let (analyze_s_per_seed, analyze_s_per_seed_ci95) =
        match mesh11_stats::mean_ci95(&per_seed_analyze_s) {
            Some((mean, half)) => (mean, half.is_finite().then_some(half)),
            None => (0.0, None),
        };
    let timings = PhaseTimings {
        scale: args.scale.label(),
        seed: args.seed,
        seeds: args.seeds,
        threads: args.threads.unwrap_or(0),
        effective_threads: rayon::current_num_threads(),
        generate_s: build_t.generate_s,
        simulate_s: build_t.simulate_s,
        pairs_simulated: build_t.pairs_simulated,
        simulate_s_per_seed: build_t.simulate_s / args.seeds as f64,
        per_seed_pairs: build_t.per_seed_pairs.clone(),
        per_seed_analyze_s,
        analyze_s_per_seed,
        analyze_s_per_seed_ci95,
        n_probes,
        reports_per_sec: if build_t.simulate_s > 0.0 {
            n_probes as f64 / build_t.simulate_s
        } else {
            0.0
        },
        peak_rss_mb: peak_rss_mb(),
        data_mode: "in-memory".to_string(),
        spilled_bytes: 0,
        client_probe_s: build_t.client_probe_s,
        clients_simulated: build_t.clients_simulated,
        analyze_s,
        analyze_probes_per_sec: if analyze_s > 0.0 {
            n_probes as f64 / analyze_s
        } else {
            0.0
        },
        stream_analyze_s: None,
        chunk_hits: None,
        chunk_decodes: None,
        chunk_evictions: None,
        peak_pinned_bytes: None,
        window_hits: None,
        window_builds: None,
        window_evictions: None,
        n_windows: None,
        prefetch_hits: None,
        prefetch_wasted: None,
        over_budget_events: None,
        decode_s: None,
        spill_raw_bytes: None,
        spill_encoded_bytes: None,
        total_s: t_total.elapsed().as_secs_f64(),
        figures: base_fig_times,
    };
    let path = args.out.join("bench_timings.json");
    std::fs::write(&path, timings.to_json()).expect("write bench_timings.json");
    eprintln!("{}", timings.render());
    eprintln!("# wrote {}", path.display());
    std::fs::write(&args.bench_json, timings.to_json()).expect("write bench json");
    eprintln!("# wrote {}", args.bench_json.display());
    failures
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("repro: {e}");
            std::process::exit(2);
        }
    };

    // A scoped pool (not a global override) so the cap applies to the whole
    // run — simulation and figure analysis alike — and nothing else.
    let failures = match args.threads {
        Some(n) => rayon::ThreadPoolBuilder::new()
            .num_threads(n)
            .build()
            .expect("build thread pool")
            .install(|| run(&args)),
        None => run(&args),
    };
    if failures > 0 {
        std::process::exit(1);
    }
}
