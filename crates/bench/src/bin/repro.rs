//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro [--scale quick|standard|paper|metro] [--seed N] [--threads N] [--faults]
//!       [--metro-factor N] [--chunked] [--chunk-capacity N] [--chunk-budget N]
//!       [--spill-dir DIR] [--out DIR] [--bench-json FILE] [--rows N] [--plot]
//!       <id>... | --all
//! ```
//!
//! Prints each figure as an aligned text table (with the paper-expected
//! values as `#` notes; add `--plot` for ASCII curve renderings) and writes
//! the full series as JSON under `--out` (default `out/`), plus a
//! `bench_timings.json` with the per-phase wall-clock breakdown. The same
//! breakdown also lands at `--bench-json` (default `BENCH_repro.json` in
//! the working directory) so CI can track the perf trajectory. Experiment
//! ids: fig1-1, fig3-1, fig4-1 … fig7-5, tab4-1, sec6-3, and the ext-*
//! extension studies; see `DESIGN.md` §3 for the index.
//!
//! Output is bit-for-bit identical at any `--threads` value (including 1):
//! parallelism only reorders who computes what, never what is computed.

use mesh11_bench::figures::{build, ALL_IDS};
use mesh11_bench::{peak_rss_mb, DataMode, PhaseTimings, ReproContext, Scale};
use mesh11_trace::ChunkConfig;
use rayon::prelude::*;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::Instant;

struct Args {
    scale: Scale,
    seed: u64,
    threads: Option<usize>,
    faults: bool,
    chunked: bool,
    chunk_capacity: Option<usize>,
    chunk_budget: Option<usize>,
    spill_dir: Option<PathBuf>,
    out: PathBuf,
    bench_json: PathBuf,
    rows: usize,
    plot: bool,
    ids: Vec<String>,
}

impl Args {
    /// The data mode this invocation runs under: the scale's default,
    /// overridden to chunked when any chunk flag is given.
    fn data_mode(&self) -> DataMode {
        let chunk_flags = self.chunked
            || self.chunk_capacity.is_some()
            || self.chunk_budget.is_some()
            || self.spill_dir.is_some();
        match (self.scale.data_mode(), chunk_flags) {
            (DataMode::InMemory, false) => DataMode::InMemory,
            (mode, _) => {
                let mut cfg = match mode {
                    DataMode::Chunked(cfg) => cfg,
                    DataMode::InMemory => ChunkConfig::default(),
                };
                if let Some(cap) = self.chunk_capacity {
                    cfg.chunk_capacity = cap.max(1);
                }
                if let Some(budget) = self.chunk_budget {
                    cfg.resident_chunks = budget;
                }
                cfg.spill_dir.clone_from(&self.spill_dir);
                DataMode::Chunked(cfg)
            }
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        scale: Scale::Standard,
        seed: 42,
        threads: None,
        faults: false,
        chunked: false,
        chunk_capacity: None,
        chunk_budget: None,
        spill_dir: None,
        out: PathBuf::from("out"),
        bench_json: PathBuf::from("BENCH_repro.json"),
        rows: 16,
        plot: false,
        ids: Vec::new(),
    };
    let mut metro_factor: Option<usize> = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                let v = it.next().ok_or("--scale needs a value")?;
                args.scale = Scale::parse(&v).ok_or(format!("unknown scale '{v}'"))?;
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                args.seed = v.parse().map_err(|e| format!("bad seed: {e}"))?;
            }
            "--metro-factor" => {
                let v = it.next().ok_or("--metro-factor needs a value")?;
                let n: usize = v.parse().map_err(|e| format!("bad metro factor: {e}"))?;
                if n == 0 {
                    return Err("--metro-factor must be >= 1".into());
                }
                metro_factor = Some(n);
            }
            "--chunked" => args.chunked = true,
            "--chunk-capacity" => {
                let v = it.next().ok_or("--chunk-capacity needs a value")?;
                args.chunk_capacity =
                    Some(v.parse().map_err(|e| format!("bad chunk capacity: {e}"))?);
            }
            "--chunk-budget" => {
                let v = it.next().ok_or("--chunk-budget needs a value")?;
                args.chunk_budget = Some(v.parse().map_err(|e| format!("bad chunk budget: {e}"))?);
            }
            "--spill-dir" => {
                args.spill_dir = Some(PathBuf::from(it.next().ok_or("--spill-dir needs a value")?));
            }
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value")?;
                let n: usize = v.parse().map_err(|e| format!("bad thread count: {e}"))?;
                if n == 0 {
                    return Err("--threads must be >= 1".into());
                }
                args.threads = Some(n);
            }
            "--out" => {
                args.out = PathBuf::from(it.next().ok_or("--out needs a value")?);
            }
            "--bench-json" => {
                args.bench_json = PathBuf::from(it.next().ok_or("--bench-json needs a value")?);
            }
            "--rows" => {
                let v = it.next().ok_or("--rows needs a value")?;
                args.rows = v.parse().map_err(|e| format!("bad rows: {e}"))?;
            }
            "--faults" => args.faults = true,
            "--plot" => args.plot = true,
            "--all" => args.ids = ALL_IDS.iter().map(|s| s.to_string()).collect(),
            "--help" | "-h" => {
                println!(
                    "usage: repro [--scale quick|standard|paper|metro] [--seed N] [--threads N] [--faults]\n\
                     \x20            [--metro-factor N] [--chunked] [--chunk-capacity N] [--chunk-budget N]\n\
                     \x20            [--spill-dir DIR] [--out DIR] [--bench-json FILE] [--rows N] [--plot] <id>... | --all\n\
                     --threads N  cap the worker pool (default: all cores); results are\n\
                     identical at any value, only wall-clock changes\n\
                     --faults     simulate under the built-in demo fault plan (overlapping\n\
                     AP outages + stacked interference bursts), still thread-invariant\n\
                     --metro-factor N  ensemble multiplier for --scale metro (default {})\n\
                     --chunked    stream probes through the spill-able chunk store at any scale\n\
                     --chunk-capacity N  probe sets per chunk (default {})\n\
                     --chunk-budget N    resident chunks before spilling (default {})\n\
                     --spill-dir DIR     where cold chunks spill (default: system temp dir)\n\
                     --bench-json FILE  where to write the per-phase timing JSON\n\
                     (default: BENCH_repro.json in the working directory)\nids: {}",
                    mesh11_bench::DEFAULT_METRO_FACTOR,
                    ChunkConfig::default().chunk_capacity,
                    ChunkConfig::default().resident_chunks,
                    ALL_IDS.join(" ")
                );
                std::process::exit(0);
            }
            id if !id.starts_with('-') => args.ids.push(id.to_string()),
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if let Some(factor) = metro_factor {
        match &mut args.scale {
            Scale::Metro { factor: f } => *f = factor,
            _ => return Err("--metro-factor requires --scale metro".into()),
        }
    }
    if args.ids.is_empty() {
        return Err("no experiment ids given (try --all or --help)".into());
    }
    Ok(args)
}

fn run(args: &Args) -> i32 {
    eprintln!(
        "# building {:?}-scale campaign (seed {}, {} threads) …",
        args.scale,
        args.seed,
        rayon::current_num_threads()
    );
    let t_total = Instant::now();
    let faults = if args.faults {
        eprintln!("# fault injection: demo plan (overlapping outages + stacked bursts)");
        mesh11_sim::FaultPlan::demo(args.scale.config().probe_horizon_s)
    } else {
        mesh11_sim::FaultPlan::none()
    };
    let mode = args.data_mode();
    if let DataMode::Chunked(cfg) = &mode {
        eprintln!(
            "# chunked store: {} probe sets/chunk, {} resident chunks",
            cfg.chunk_capacity, cfg.resident_chunks
        );
    }
    let (ctx, build_t) = ReproContext::build_timed_with_mode(args.scale, args.seed, faults, mode);
    eprintln!(
        "# simulated {} networks / {} APs ({} pairs): {} probe sets, {} client samples in {:.1}s",
        ctx.networks().len(),
        ctx.total_aps(),
        build_t.pairs_simulated,
        ctx.n_probes(),
        ctx.clients().len(),
        build_t.generate_s + build_t.simulate_s
    );
    if let Some(c) = ctx.chunked() {
        eprintln!(
            "# chunk store: {} resident chunks, {} bytes spilled, {} stitched links",
            c.resident_chunks(),
            c.spilled_bytes(),
            c.stitched_index().n_links()
        );
    }

    // Build every requested figure in parallel. The shared heavy analyses
    // (lookup tables, triple analysis, mobility report, …) live in
    // OnceLocks on the context, so concurrent builders compute each one
    // exactly once and the results carry no thread-count dependence.
    let t_analyze = Instant::now();
    let built: Vec<(&String, Option<(Vec<_>, f64)>)> = args
        .ids
        .par_iter()
        .map(|id| {
            let t = Instant::now();
            let figs = build(&ctx, id);
            (id, figs.map(|f| (f, t.elapsed().as_secs_f64())))
        })
        .collect();
    let analyze_s = t_analyze.elapsed().as_secs_f64();

    // Render and write strictly in request order, on one thread.
    std::fs::create_dir_all(&args.out).expect("create output dir");
    let mut failures = 0;
    let mut fig_times = BTreeMap::new();
    for (id, outcome) in built {
        let Some((figs, secs)) = outcome else {
            eprintln!("repro: unknown experiment id '{id}'");
            failures += 1;
            continue;
        };
        fig_times.insert(id.clone(), secs);
        for fig in figs {
            if args.plot {
                println!("{}", fig.render_plot(72, 18));
            }
            println!("{}", fig.render_table(args.rows));
            let path = args.out.join(format!("{}.json", fig.id));
            std::fs::write(&path, fig.to_json()).expect("write figure json");
            eprintln!("# wrote {}", path.display());
        }
    }

    let n_probes = ctx.n_probes();
    // Snapshot after analysis so the counters cover the kernels' traffic.
    let chunk = ctx.chunk_stats();
    let timings = PhaseTimings {
        scale: args.scale.label(),
        seed: args.seed,
        threads: args.threads.unwrap_or(0),
        effective_threads: rayon::current_num_threads(),
        generate_s: build_t.generate_s,
        simulate_s: build_t.simulate_s,
        pairs_simulated: build_t.pairs_simulated,
        n_probes,
        reports_per_sec: if build_t.simulate_s > 0.0 {
            n_probes as f64 / build_t.simulate_s
        } else {
            0.0
        },
        peak_rss_mb: peak_rss_mb(),
        data_mode: match ctx.chunked() {
            Some(_) => "chunked".to_string(),
            None => "in-memory".to_string(),
        },
        spilled_bytes: ctx.chunked().map_or(0, |c| c.spilled_bytes()),
        client_probe_s: build_t.client_probe_s,
        clients_simulated: build_t.clients_simulated,
        analyze_s,
        analyze_probes_per_sec: if analyze_s > 0.0 {
            n_probes as f64 / analyze_s
        } else {
            0.0
        },
        chunk_hits: chunk.chunk_hits,
        chunk_decodes: chunk.chunk_decodes,
        chunk_evictions: chunk.chunk_evictions,
        peak_pinned_bytes: chunk.peak_pinned_bytes,
        window_hits: chunk.window_hits,
        window_builds: chunk.window_builds,
        total_s: t_total.elapsed().as_secs_f64(),
        figures: fig_times,
    };
    let path = args.out.join("bench_timings.json");
    std::fs::write(&path, timings.to_json()).expect("write bench_timings.json");
    eprintln!("{}", timings.render());
    eprintln!("# wrote {}", path.display());
    // Also drop the breakdown at a stable top-level path so successive PRs
    // can track the perf trajectory without digging through --out dirs.
    std::fs::write(&args.bench_json, timings.to_json()).expect("write bench json");
    eprintln!("# wrote {}", args.bench_json.display());

    failures
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("repro: {e}");
            std::process::exit(2);
        }
    };

    // A scoped pool (not a global override) so the cap applies to the whole
    // run — simulation and figure analysis alike — and nothing else.
    let failures = match args.threads {
        Some(n) => rayon::ThreadPoolBuilder::new()
            .num_threads(n)
            .build()
            .expect("build thread pool")
            .install(|| run(&args)),
        None => run(&args),
    };
    if failures > 0 {
        std::process::exit(1);
    }
}
