//! The window-major fused analysis pass.
//!
//! Kernel-major analysis walks the probe source once *per kernel*: a
//! chunked run re-materializes every window once per heavy analysis
//! (~14× at metro scale). This module inverts the loop. **Pass A** drives
//! every table-independent fold kernel — and the eight lookup-table
//! builds — through a single [`fold_windows`] walk, so each window is
//! decoded exactly once (`window_builds == n_windows`). **Pass B** then
//! scores the finished tables: penalties need completed tables, so they
//! cannot ride in pass A; on a chunked store they share one raw-chunk walk
//! ([`ThroughputPenalty::evaluate_batch_chunked`]) that never builds a
//! window at all.
//!
//! Byte identity with the kernel-major oracle follows from the fold
//! contract (`crates/trace/src/fold.rs`): each kernel's single partial is
//! threaded sequentially through the windows in network order, which is
//! exactly the accumulation sequence of its solo `run_fold` walk.
//!
//! [`FusedRunner`] exposes the in-flight form of the same pass for the
//! streaming build: the simulate/analyze overlap consumer folds each
//! sealed part as it arrives, then finishes against the completed chunk
//! store.

use std::collections::BTreeMap;

use mesh11_core::bitrate::adaptation::AdaptationKernel;
use mesh11_core::bitrate::correlation::CurvesKernel;
use mesh11_core::bitrate::lookup::TableBuildKernel;
use mesh11_core::bitrate::stability::StabilityKernel;
use mesh11_core::bitrate::strategy::StrategyKernel;
use mesh11_core::bitrate::{
    AdaptationOutcome, AdapterKind, LinkStability, LookupTableSet, Scope, SnrThroughputCurves,
    StrategyEval, StrategyKind, ThroughputPenalty,
};
use mesh11_core::routing::asymmetry::AsymmetryKernel;
use mesh11_core::routing::diversity::DiversityKernel;
use mesh11_core::routing::ett::{EttAnalysis, EttKernel};
use mesh11_core::routing::improvement::{OpportunisticAnalysis, RoutingKernel};
use mesh11_core::routing::EtxVariant;
use mesh11_core::triples::hidden::TripleKernel;
use mesh11_core::triples::range::RangeKernel;
use mesh11_core::triples::sweep::SweepKernel;
use mesh11_core::triples::{HearRule, TripleAnalysis};
use mesh11_phy::{BitRate, Phy};
use mesh11_trace::snrstats::{SigmaKernel, SigmaKind};
use mesh11_trace::{
    fold_windows, DatasetView, DeliveryMatrix, FoldKernel, NetworkId, ProbeSource, Running,
    WindowFold,
};

use crate::setup::{lookup_slot, TRIPLE_THRESHOLD};

/// Minimum APs for a network to join the §5 routing population.
pub(crate) const ROUTING_MIN_APS: usize = 5;
/// Probing-airtime charge of the `ext-adapt` replay.
pub(crate) const EXT_ADAPT_OVERHEAD: f64 = 0.10;
/// Hearing thresholds swept by `ext-sweep`.
pub(crate) const EXT_SWEEP_THRESHOLDS: [f64; 5] = [0.05, 0.10, 0.20, 0.30, 0.50];
/// The recent-SNR run length of Fig 3.1's robustness note.
pub(crate) const SIGMA_RECENT_K: usize = 3;

/// The 1 Mbit/s b/g rate shared by the §5/§6 extension figures.
pub(crate) fn one_mbps() -> BitRate {
    BitRate::bg_mbps(1.0).expect("1 Mbit/s exists")
}

/// The adapter roster of the `ext-adapt` replay, in output order.
pub(crate) fn ext_adapt_kinds() -> Vec<AdapterKind> {
    vec![
        AdapterKind::Oracle,
        AdapterKind::SnrTable { top_k: 1 },
        AdapterKind::SnrTable { top_k: 2 },
        AdapterKind::EwmaProbing { alpha: 0.3 },
        AdapterKind::Fixed(BitRate::bg_mbps(11.0).expect("11 Mbit/s exists")),
    ]
}

/// The Fig 3.1 sigma populations, bundled so one accessor serves all four.
#[derive(Debug, Clone, Default)]
pub struct SnrSigmas {
    /// σ within each probe set.
    pub sets: Vec<f64>,
    /// σ of each link's probe-set SNRs over time.
    pub links: Vec<f64>,
    /// σ of each length-`SIGMA_RECENT_K` run of a link's recent SNRs.
    pub recent: Vec<f64>,
    /// σ over every probe-set SNR of a network.
    pub nets: Vec<f64>,
}

/// The `ext-cap` input: the delivery matrix of the largest ≥5-AP b/g
/// network at 1 Mbit/s, tagged with the network it came from.
#[derive(Debug, Clone)]
pub struct CapMatrix {
    /// The chosen network.
    pub network: NetworkId,
    /// Its AP count.
    pub n_aps: usize,
    /// Its delivery matrix at 1 Mbit/s.
    pub matrix: DeliveryMatrix,
}

/// Tracks the largest qualifying b/g network across the window walk and
/// keeps its delivery matrix. Replacing on `n_aps >= best` replicates
/// `Iterator::max_by_key`'s last-max-wins over the id-ordered metas, and
/// computing the matrix from the resident window view avoids the extra
/// window build `ProbeSource::delivery_matrix` would cost on a chunked
/// store.
#[derive(Debug, Clone, Copy)]
struct CapKernel;

impl FoldKernel for CapKernel {
    type Partial = Option<CapMatrix>;
    type Output = Option<CapMatrix>;

    fn init(&self) -> Self::Partial {
        None
    }

    fn fold(&self, view: DatasetView<'_>, partial: &mut Self::Partial) {
        // `max_by_key` keeps the *last* maximum, so the window's winner is
        // its last network with the maximal qualifying AP count; only that
        // one needs a delivery matrix (the matrix depends only on the
        // winner's own window, so skipping the losers changes no bytes).
        let mut winner: Option<&mesh11_trace::NetworkMeta> = None;
        for m in &view.dataset().networks {
            if m.n_aps < ROUTING_MIN_APS || !m.radios.contains(&Phy::Bg) {
                continue;
            }
            if partial.as_ref().is_some_and(|best| m.n_aps < best.n_aps)
                || winner.is_some_and(|w| m.n_aps < w.n_aps)
            {
                continue;
            }
            winner = Some(m);
        }
        if let Some(m) = winner {
            *partial = Some(CapMatrix {
                network: m.id,
                n_aps: m.n_aps,
                matrix: view.delivery_matrix(Phy::Bg, m.id, one_mbps(), m.n_aps),
            });
        }
    }

    fn merge(&self, into: &mut Self::Partial, from: Self::Partial) {
        // Later windows hold later network ids: `from` wins ties.
        if let Some(b) = from {
            if into.as_ref().is_none_or(|a| b.n_aps >= a.n_aps) {
                *into = Some(b);
            }
        }
    }

    fn finish(&self, partial: Self::Partial) -> Self::Output {
        partial
    }
}

/// Every shared heavy analysis, produced by one fused pass.
pub struct FusedOutputs {
    /// Fig 3.1 sigma populations.
    pub sigmas: SnrSigmas,
    /// §4 lookup tables, indexed by `lookup_slot(scope, phy)`.
    pub tables: [LookupTableSet; 8],
    /// Fig 4.4 penalties, indexed by `lookup_slot(scope, phy)`.
    pub penalties: [ThroughputPenalty; 8],
    /// Fig 4.5 SNR↔throughput curves, `[Bg, Ht]`.
    pub curves: [SnrThroughputCurves; 2],
    /// Fig 4.6 / Table 4.1 online-strategy evaluations (b/g).
    pub strategy_bg: Vec<StrategyEval>,
    /// §5 routing analyses (b/g, ≥5 APs).
    pub routing_bg: Vec<OpportunisticAnalysis>,
    /// Fig 5.2 asymmetry pools per rate (b/g).
    pub asymmetry_bg: BTreeMap<BitRate, Vec<f64>>,
    /// §6 hidden-triple analysis (b/g, 10% threshold).
    pub triples_bg: TripleAnalysis,
    /// §6 per-(network, rate) ranges (b/g).
    pub ranges_bg: BTreeMap<(NetworkId, BitRate), usize>,
    /// `ext-adapt` outcomes.
    pub adapters_ext: Vec<AdaptationOutcome>,
    /// `ext-sweep` rows.
    pub sweep_ext: Vec<(f64, Option<f64>)>,
    /// `ext-stability` churn/drift report (b/g).
    pub stability_bg: LinkStability,
    /// `ext-diversity` rows.
    pub diversity_ext: Vec<(usize, f64, f64, usize)>,
    /// `ext-ett` analyses (b/g, ≥5 APs).
    pub ett_bg: Vec<EttAnalysis>,
    /// `ext-cap` delivery matrix, when a qualifying network exists.
    pub cap_ext: Option<CapMatrix>,
}

/// The in-flight state of the fused pass: every pass-A kernel paired with
/// its partial, ready to fold window views as they become resident.
pub struct FusedRunner {
    sig_sets: Running<SigmaKernel>,
    sig_links: Running<SigmaKernel>,
    sig_recent: Running<SigmaKernel>,
    sig_nets: Running<SigmaKernel>,
    tables: Vec<Running<TableBuildKernel>>,
    curves_bg: Running<CurvesKernel>,
    curves_ht: Running<CurvesKernel>,
    strategy_bg: Running<StrategyKernel>,
    routing_bg: Running<RoutingKernel>,
    asymmetry_bg: Running<AsymmetryKernel>,
    triples_bg: Running<TripleKernel>,
    ranges_bg: Running<RangeKernel>,
    adapters: Running<AdaptationKernel>,
    sweep: Running<SweepKernel>,
    stability_bg: Running<StabilityKernel>,
    diversity: Running<DiversityKernel>,
    ett_bg: Running<EttKernel>,
    cap: Running<CapKernel>,
}

impl Default for FusedRunner {
    fn default() -> Self {
        Self::new()
    }
}

impl FusedRunner {
    /// Starts every pass-A kernel with a fresh partial.
    pub fn new() -> Self {
        // Table slots in lookup_slot order: (Global..Link) × (Bg, Ht).
        let mut tables = Vec::with_capacity(8);
        for scope in Scope::ALL {
            for phy in [Phy::Bg, Phy::Ht] {
                debug_assert_eq!(tables.len(), lookup_slot(scope, phy));
                tables.push(Running::new(TableBuildKernel { scope, phy }));
            }
        }
        Self {
            sig_sets: Running::new(SigmaKernel(SigmaKind::ProbeSet)),
            sig_links: Running::new(SigmaKernel(SigmaKind::Link)),
            sig_recent: Running::new(SigmaKernel(SigmaKind::RecentK(SIGMA_RECENT_K))),
            sig_nets: Running::new(SigmaKernel(SigmaKind::Network)),
            tables,
            curves_bg: Running::new(CurvesKernel { phy: Phy::Bg }),
            curves_ht: Running::new(CurvesKernel { phy: Phy::Ht }),
            strategy_bg: Running::new(StrategyKernel {
                phy: Phy::Bg,
                kinds: StrategyKind::ALL.to_vec(),
            }),
            routing_bg: Running::new(RoutingKernel {
                phy: Phy::Bg,
                min_aps: ROUTING_MIN_APS,
            }),
            asymmetry_bg: Running::new(AsymmetryKernel { phy: Phy::Bg }),
            triples_bg: Running::new(TripleKernel {
                phy: Phy::Bg,
                threshold: TRIPLE_THRESHOLD,
                rule: HearRule::Mean,
            }),
            ranges_bg: Running::new(RangeKernel {
                phy: Phy::Bg,
                threshold: TRIPLE_THRESHOLD,
                rule: HearRule::Mean,
            }),
            adapters: Running::new(AdaptationKernel {
                phy: Phy::Bg,
                kinds: ext_adapt_kinds(),
                overhead: EXT_ADAPT_OVERHEAD,
            }),
            sweep: Running::new(SweepKernel {
                phy: Phy::Bg,
                rate: one_mbps(),
                thresholds: EXT_SWEEP_THRESHOLDS.to_vec(),
                rule: HearRule::Mean,
            }),
            stability_bg: Running::new(StabilityKernel { phy: Phy::Bg }),
            diversity: Running::new(DiversityKernel {
                phy: Phy::Bg,
                rate: one_mbps(),
                min_aps: ROUTING_MIN_APS,
                variant: EtxVariant::Etx1,
            }),
            ett_bg: Running::new(EttKernel {
                phy: Phy::Bg,
                min_aps: ROUTING_MIN_APS,
            }),
            cap: Running::new(CapKernel),
        }
    }

    /// Every kernel as an object-safe running fold. The window-major
    /// schedule drives them all through one window walk
    /// ([`mesh11_trace::fold_windows`]); a kernel-major harness (see
    /// `benches/window_major.rs`) can instead walk the source once per
    /// kernel to measure what the shared walk saves.
    pub fn kernels(&mut self) -> Vec<&mut dyn WindowFold> {
        let mut ks: Vec<&mut dyn WindowFold> = vec![
            &mut self.sig_sets,
            &mut self.sig_links,
            &mut self.sig_recent,
            &mut self.sig_nets,
            &mut self.curves_bg,
            &mut self.curves_ht,
            &mut self.strategy_bg,
            &mut self.routing_bg,
            &mut self.asymmetry_bg,
            &mut self.triples_bg,
            &mut self.ranges_bg,
            &mut self.adapters,
            &mut self.sweep,
            &mut self.stability_bg,
            &mut self.diversity,
            &mut self.ett_bg,
            &mut self.cap,
        ];
        ks.extend(self.tables.iter_mut().map(|t| t as &mut dyn WindowFold));
        ks
    }

    /// Folds one network-aligned view (a resident chunk window, or one
    /// sealed streaming part) into every kernel. Views must arrive in
    /// network-id order — that is the byte-identity contract.
    pub fn fold_view(&mut self, view: DatasetView<'_>) {
        use rayon::prelude::*;
        let mut kernels = self.kernels();
        kernels.par_iter_mut().for_each(|k| k.fold_window(view));
    }

    /// Finishes pass A and runs pass B (penalties) against `src`, which
    /// must cover exactly the probes this runner folded.
    pub fn finish(self, src: &ProbeSource<'_>) -> FusedOutputs {
        let sigmas = SnrSigmas {
            sets: self.sig_sets.finish(),
            links: self.sig_links.finish(),
            recent: self.sig_recent.finish(),
            nets: self.sig_nets.finish(),
        };
        let tables: [LookupTableSet; 8] = self
            .tables
            .into_iter()
            .map(Running::finish)
            .collect::<Vec<_>>()
            .try_into()
            .unwrap_or_else(|_| unreachable!("eight table slots"));
        let penalties = evaluate_penalties(src, &tables);
        FusedOutputs {
            sigmas,
            tables,
            penalties,
            curves: [self.curves_bg.finish(), self.curves_ht.finish()],
            strategy_bg: self.strategy_bg.finish(),
            routing_bg: self.routing_bg.finish(),
            asymmetry_bg: self.asymmetry_bg.finish(),
            triples_bg: self.triples_bg.finish(),
            ranges_bg: self.ranges_bg.finish(),
            adapters_ext: self.adapters.finish(),
            sweep_ext: self.sweep.finish(),
            stability_bg: self.stability_bg.finish(),
            diversity_ext: self.diversity.finish(),
            ett_bg: self.ett_bg.finish(),
            cap_ext: self.cap.finish(),
        }
    }
}

/// Pass B: one penalty per table, in `lookup_slot` order. On a chunked
/// store all eight share a single raw-chunk walk (zero window builds); on
/// a resident view each table scores the whole view directly.
fn evaluate_penalties(
    src: &ProbeSource<'_>,
    tables: &[LookupTableSet; 8],
) -> [ThroughputPenalty; 8] {
    let out: Vec<ThroughputPenalty> = match src {
        ProbeSource::Chunked(c) => {
            let refs: Vec<&LookupTableSet> = tables.iter().collect();
            ThroughputPenalty::evaluate_batch_chunked(c, &refs)
        }
        ProbeSource::Whole(_) => tables
            .iter()
            .map(|t| ThroughputPenalty::evaluate_from(src, t))
            .collect(),
    };
    out.try_into()
        .unwrap_or_else(|_| unreachable!("eight penalty slots"))
}

/// Runs the fused pass to completion over a probe source: one window walk
/// for pass A, then pass B against the finished tables.
pub fn run_fused(src: &ProbeSource<'_>) -> FusedOutputs {
    let mut runner = FusedRunner::new();
    {
        let mut kernels = runner.kernels();
        fold_windows(src, &mut kernels);
    }
    runner.finish(src)
}
