//! Reproduction-run setup: campaign, simulation, shared heavy analyses.

use std::collections::BTreeMap;
use std::sync::OnceLock;

use mesh11_core::bitrate::strategy::evaluate_strategies_from;
use mesh11_core::bitrate::{
    link_stability_from, simulate_adapters_from, AdaptationOutcome, LinkStability, LookupTableSet,
    Scope, SnrThroughputCurves, StrategyEval, StrategyKind, ThroughputPenalty,
};
use mesh11_core::mobility::MobilityReport;
use mesh11_core::routing::diversity::analyze_diversity_from;
use mesh11_core::routing::ett::{analyze_ett_from, EttAnalysis};
use mesh11_core::routing::improvement::{analyze_dataset_from, OpportunisticAnalysis};
use mesh11_core::routing::{asymmetry::asymmetry_by_rate_from, EtxVariant};
use mesh11_core::triples::{
    hidden::TripleAnalysis, range::range_by_rate_from, sweep::threshold_sweep_from, HearRule,
};
use mesh11_phy::{shared_success_table, BitRate, PerModel, Phy, SuccessTable};
use mesh11_sim::{ClientProbeTrace, SimConfig};
use mesh11_topo::{Campaign, CampaignSpec, NetworkSpec};
use mesh11_trace::{
    ChunkConfig, ChunkStoreStats, ChunkedDataset, ChunkedDatasetBuilder, ClientSample, Dataset,
    DatasetIndex, DatasetView, NetworkId, NetworkMeta, ProbeSource,
};

use crate::fused::{self, CapMatrix, FusedOutputs, FusedRunner, SnrSigmas};

/// The §6 hearing threshold (10%) used by every cached triple analysis.
pub const TRIPLE_THRESHOLD: f64 = 0.10;

/// How many b/g networks the downlink client-probe pass covers.
pub const CLIENT_PROBE_NETWORKS: usize = 6;
/// Minimum AP count for a network to enter the client-probe pass.
pub const CLIENT_PROBE_MIN_APS: usize = 5;
/// Cap on the client-probe horizon (seconds), so paper-scale runs stay
/// bounded.
pub const CLIENT_PROBE_MAX_HORIZON_S: f64 = 14_400.0;

/// Wall-clock seconds of the two pre-analysis phases of a reproduction
/// run; see [`ReproContext::build_timed`].
#[derive(Debug, Clone, Copy)]
pub struct BuildTimings {
    /// Campaign generation (topology, populations, specs).
    pub generate_s: f64,
    /// Probe + client simulation across all networks.
    pub simulate_s: f64,
    /// Candidate AP pairs the simulate phase ran (across networks and
    /// radios) — the unit of the global pair scheduler's work list.
    pub pairs_simulated: usize,
    /// The downlink client-probe pass (the sharded per-client scheduler
    /// feeding `ext-client`), run eagerly in the simulate phase.
    pub client_probe_s: f64,
    /// Clients the client-probe pass simulated — the unit of its work
    /// list, giving `client_probe_s` a denominator.
    pub clients_simulated: usize,
    /// Analysis seconds already spent *inside* the simulate wall by the
    /// streaming build's overlap consumer (part folds + pass finish).
    /// Zero for the two-phase builds.
    pub stream_analyze_s: f64,
}

/// Wall-clock phases of a batched multi-seed build; see
/// [`ReproContext::build_many_timed`]. Generation and simulation are fused
/// across seeds (that is the point of batching), so only their ensemble
/// totals are observable — per-seed work is reported as pair counts.
#[derive(Debug, Clone)]
pub struct MultiBuildTimings {
    /// Campaign generation across all seeds.
    pub generate_s: f64,
    /// The one fused simulate pass over every seed's pair work list.
    pub simulate_s: f64,
    /// The eager client-probe passes, summed over seeds.
    pub client_probe_s: f64,
    /// Pairs simulated across the whole ensemble.
    pub pairs_simulated: usize,
    /// Clients simulated across the whole ensemble.
    pub clients_simulated: usize,
    /// Pairs simulated per seed, in seed order.
    pub per_seed_pairs: Vec<usize>,
}

/// The cached downlink client-probe pass: one trace per covered network.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientProbePass {
    /// `(network, trace)` for the first [`CLIENT_PROBE_NETWORKS`] b/g
    /// networks with ≥ [`CLIENT_PROBE_MIN_APS`] APs, in campaign order.
    pub traces: Vec<(NetworkId, ClientProbeTrace)>,
    /// Clients simulated across all covered networks.
    pub clients_simulated: usize,
}

fn build_client_probe_pass(
    campaign: &Campaign,
    config: &SimConfig,
    table: &SuccessTable,
) -> ClientProbePass {
    let mut cfg = config.clone();
    cfg.client_horizon_s = cfg.client_horizon_s.min(CLIENT_PROBE_MAX_HORIZON_S);
    let specs: Vec<&NetworkSpec> = campaign
        .networks
        .iter()
        .filter(|n| n.has_bg() && n.size() >= CLIENT_PROBE_MIN_APS)
        .take(CLIENT_PROBE_NETWORKS)
        .collect();
    let traces = mesh11_sim::simulate_client_probes_batch(&specs, &cfg, table);
    let clients_simulated = traces.iter().map(|t| t.clients).sum();
    ClientProbePass {
        traces: specs.iter().map(|s| s.id).zip(traces).collect(),
        clients_simulated,
    }
}

/// Default ensemble multiplier for [`Scale::Metro`]: 10× the paper's
/// 110-network campaign (1 100 networks, 14 070 APs). `--metro-factor`
/// scales it up to the 10⁵-AP tier (factor 71) when wall clock allows.
pub const DEFAULT_METRO_FACTOR: usize = 10;

/// Networks simulated per streaming batch in chunked builds: large enough
/// to keep the pair scheduler busy, small enough that at most a handful of
/// network datasets are resident before they drain into the chunk store.
const METRO_BATCH_NETWORKS: usize = 8;

/// How big a reproduction run to perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// 12 networks, 1 h probes — seconds; for tests and smoke runs.
    Quick,
    /// The full 110-network ensemble with 4 h probes / 6 h clients —
    /// minutes; the default for `repro`.
    Standard,
    /// The paper's 24 h probes / 11 h clients over all 110 networks.
    Paper,
    /// The paper ensemble tiled `factor` times at quick horizons, streamed
    /// through the spill-able chunk store so memory stays bounded.
    Metro {
        /// Ensemble multiplier (110·factor networks, 1407·factor APs).
        factor: usize,
    },
}

impl Scale {
    /// Parses the CLI spelling.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "quick" => Some(Scale::Quick),
            "standard" => Some(Scale::Standard),
            "paper" | "full" => Some(Scale::Paper),
            "metro" => Some(Scale::Metro {
                factor: DEFAULT_METRO_FACTOR,
            }),
            _ => None,
        }
    }

    /// The campaign spec this scale simulates.
    pub fn campaign_spec(self, seed: u64) -> CampaignSpec {
        match self {
            Scale::Quick => CampaignSpec::small(seed),
            Scale::Standard | Scale::Paper => CampaignSpec::paper(seed),
            Scale::Metro { factor } => CampaignSpec::metro(seed, factor),
        }
    }

    /// The simulation configuration this scale runs under (no faults).
    /// Metro keeps the quick horizons: its cost axis is ensemble width,
    /// not trace length.
    pub fn config(self) -> SimConfig {
        match self {
            Scale::Quick | Scale::Metro { .. } => SimConfig::quick(),
            Scale::Standard => SimConfig::standard(),
            Scale::Paper => SimConfig::paper(),
        }
    }

    /// The default data-store mode: metro streams through the chunk store,
    /// everything else stays fully resident.
    pub fn data_mode(self) -> DataMode {
        match self {
            Scale::Metro { .. } => DataMode::Chunked(ChunkConfig::default()),
            _ => DataMode::InMemory,
        }
    }

    /// The stable spelling recorded in `bench_timings.json` /
    /// `BENCH_repro.json` (`"quick"`, `"standard"`, `"paper"`,
    /// `"metro-<factor>"`).
    pub fn label(self) -> String {
        match self {
            Scale::Quick => "quick".into(),
            Scale::Standard => "standard".into(),
            Scale::Paper => "paper".into(),
            Scale::Metro { factor } => format!("metro-{factor}"),
        }
    }
}

/// How the simulated probe reports are stored.
#[derive(Debug, Clone, PartialEq)]
pub enum DataMode {
    /// One resident [`Dataset`] (the Quick/Standard/Paper default).
    InMemory,
    /// Streamed into the spill-able columnar chunk store.
    Chunked(ChunkConfig),
}

/// Where a context's probe reports actually live.
pub enum DataStore {
    /// Everything resident.
    InMemory(Dataset),
    /// Chunked, with cold chunks spilled to disk. Boxed: the chunk-store
    /// handle is much larger than the resident variant's `Dataset` header.
    Chunked(Box<ChunkedDataset>),
}

/// How the shared heavy analyses are scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnalysisMode {
    /// One walk of the probe source per kernel — the legacy oracle path.
    /// Each analysis stays lazy: only what a figure touches is computed.
    KernelMajor,
    /// One fused walk for every kernel: each window is materialized
    /// exactly once, every kernel folds it while resident. The first
    /// analysis accessor triggers the whole pass.
    WindowMajor,
}

impl AnalysisMode {
    /// The default for a data mode: chunked stores are window-major (the
    /// whole point is to not rebuild windows per kernel), resident stores
    /// stay kernel-major (windows are free and laziness wins).
    pub fn default_for(mode: &DataStore) -> Self {
        match mode {
            DataStore::InMemory(_) => AnalysisMode::KernelMajor,
            DataStore::Chunked(_) => AnalysisMode::WindowMajor,
        }
    }
}

/// A materialized reproduction run: the dataset plus lazily computed heavy
/// analyses shared across figures.
pub struct ReproContext {
    /// The simulated probe reports — resident or chunked.
    store: DataStore,
    /// The simulation configuration used.
    pub config: SimConfig,
    /// Campaign seed.
    pub seed: u64,
    /// The generated campaign, when this context was built by simulation
    /// (absent for contexts wrapping a loaded dataset). Extension
    /// experiments that need topology ground truth (e.g. client probing)
    /// use it; the paper figures never do.
    campaign: Option<Campaign>,
    /// How the heavy analyses below are scheduled; see [`AnalysisMode`].
    analysis_mode: AnalysisMode,
    /// The fused pass's outputs: filled by the first accessor in
    /// window-major mode, pre-seeded by the streaming build, and left
    /// empty in kernel-major mode (the per-field caches below serve).
    fused: OnceLock<FusedOutputs>,
    client_probes: OnceLock<Option<ClientProbePass>>,
    index: OnceLock<DatasetIndex>,
    routing_bg: OnceLock<Vec<OpportunisticAnalysis>>,
    // One slot per (scope, phy): Figs 4.1–4.4 all key off the same tables.
    lookup_tables: [OnceLock<LookupTableSet>; 8],
    strategy_evals_bg: OnceLock<Vec<StrategyEval>>,
    triples_bg: OnceLock<TripleAnalysis>,
    ranges_bg: OnceLock<BTreeMap<(NetworkId, BitRate), usize>>,
    mobility: OnceLock<MobilityReport>,
    // Kernel-major lazy caches for the analyses the fused pass also
    // produces (fig 3.1, 4.4, 4.5, 5.2, and the ext figures).
    snr_sigmas: OnceLock<SnrSigmas>,
    curves: [OnceLock<SnrThroughputCurves>; 2],
    penalties: [OnceLock<ThroughputPenalty>; 8],
    asymmetry_bg: OnceLock<BTreeMap<BitRate, Vec<f64>>>,
    adapters_ext: OnceLock<Vec<AdaptationOutcome>>,
    sweep_ext: OnceLock<Vec<(f64, Option<f64>)>>,
    stability_bg: OnceLock<LinkStability>,
    diversity_ext: OnceLock<Vec<(usize, f64, f64, usize)>>,
    ett_bg: OnceLock<Vec<EttAnalysis>>,
    cap_ext: OnceLock<Option<CapMatrix>>,
}

pub(crate) fn lookup_slot(scope: Scope, phy: Phy) -> usize {
    let s = match scope {
        Scope::Global => 0,
        Scope::Network => 1,
        Scope::Ap => 2,
        Scope::Link => 3,
    };
    let p = match phy {
        Phy::Bg => 0,
        Phy::Ht => 1,
    };
    s * 2 + p
}

impl ReproContext {
    /// Generates and simulates a campaign.
    pub fn build(scale: Scale, seed: u64) -> Self {
        Self::build_timed(scale, seed).0
    }

    /// As [`ReproContext::build`], also reporting how long the generate and
    /// simulate phases took (wall-clock seconds).
    pub fn build_timed(scale: Scale, seed: u64) -> (Self, BuildTimings) {
        Self::build_timed_with_faults(scale, seed, mesh11_sim::FaultPlan::none())
    }

    /// As [`ReproContext::build_timed`], simulating under a fault plan
    /// (`repro --faults` and the fault-injected CI invariance run). Uses
    /// the scale's default data mode.
    pub fn build_timed_with_faults(
        scale: Scale,
        seed: u64,
        faults: mesh11_sim::FaultPlan,
    ) -> (Self, BuildTimings) {
        Self::build_timed_with_mode(scale, seed, faults, scale.data_mode())
    }

    /// The fully-general build: scale, faults, and an explicit data mode.
    /// `DataMode::Chunked` streams the simulation network-by-network into
    /// the chunk store, so at no point is the whole probe table resident.
    pub fn build_timed_with_mode(
        scale: Scale,
        seed: u64,
        faults: mesh11_sim::FaultPlan,
        mode: DataMode,
    ) -> (Self, BuildTimings) {
        let spec = scale.campaign_spec(seed);
        let mut config = scale.config();
        config.faults = faults;
        let t0 = std::time::Instant::now();
        let campaign = spec.generate();
        let generate_s = t0.elapsed().as_secs_f64();
        let t1 = std::time::Instant::now();
        // One success table serves the whole process: the shared registry
        // builds it on first use (that first build lands in simulate-phase
        // cost, exactly as the per-run build used to) and every later run —
        // and every other seed of a multi-seed campaign — reuses it.
        let table = shared_success_table(PerModel::default());
        let (store, stats) = match mode {
            DataMode::InMemory => {
                let (dataset, stats) = config.run_campaign_counted_with_table(&campaign, table);
                (DataStore::InMemory(dataset), stats)
            }
            DataMode::Chunked(cfg) => {
                let mut builder = ChunkedDatasetBuilder::new(cfg);
                let mut io_err: Option<std::io::Error> = None;
                let stats = config.stream_campaign_with_table(
                    &campaign,
                    table,
                    METRO_BATCH_NETWORKS,
                    |part| {
                        if io_err.is_none() {
                            if let Err(e) = builder.add(part) {
                                io_err = Some(e);
                            }
                        }
                    },
                );
                if let Some(e) = io_err {
                    panic!("chunk store spill failed during simulation: {e}");
                }
                let chunked = builder
                    .finish()
                    .unwrap_or_else(|e| panic!("chunk store finish failed: {e}"));
                (DataStore::Chunked(Box::new(chunked)), stats)
            }
        };
        let simulate_s = t1.elapsed().as_secs_f64();
        let this = Self::assemble(store, config, seed, Some(campaign));
        // Run the client-probe pass eagerly so its cost lands in the
        // simulate phase (it is simulation), not in whichever figure
        // happens to touch the cache first.
        let t2 = std::time::Instant::now();
        let clients_simulated = this.client_probes().map_or(0, |p| p.clients_simulated);
        let client_probe_s = t2.elapsed().as_secs_f64();
        (
            this,
            BuildTimings {
                generate_s,
                simulate_s,
                pairs_simulated: stats.pairs_simulated,
                client_probe_s,
                clients_simulated,
                stream_analyze_s: 0.0,
            },
        )
    }

    /// The overlapped build (`repro --streaming`): the simulator streams
    /// sealed parts through a bounded channel into a consumer thread that
    /// folds every pass-A kernel over each part *while later networks are
    /// still simulating*, then seals the chunk store. After the channel
    /// drains, the main thread finishes the fused pass (pass B scores the
    /// completed tables against the raw chunks).
    ///
    /// Parts arrive as consecutive network runs in id order — exactly the
    /// network-aligned partition the fold contract requires — so the
    /// resulting figures are byte-identical to both two-phase paths. The
    /// returned context is kernel-major with the fused outputs pre-seeded:
    /// every analysis accessor serves from the overlap pass, and nothing
    /// re-walks the store (beyond pass B's raw-chunk walk, zero window
    /// builds happen at all).
    pub fn build_timed_streaming(
        scale: Scale,
        seed: u64,
        faults: mesh11_sim::FaultPlan,
        cfg: ChunkConfig,
    ) -> (Self, BuildTimings) {
        let spec = scale.campaign_spec(seed);
        let mut config = scale.config();
        config.faults = faults;
        let t0 = std::time::Instant::now();
        let campaign = spec.generate();
        let generate_s = t0.elapsed().as_secs_f64();
        let table = shared_success_table(PerModel::default());
        // The consumer runs on a plain thread: it must make progress while
        // the producer occupies this one (a shared work-stealing scope
        // would deadlock at --threads 1). Thread-count overrides are
        // thread-local, so re-install the producer's budget explicitly.
        let threads = rayon::current_num_threads();
        let t1 = std::time::Instant::now();
        let (tx, rx) = std::sync::mpsc::sync_channel::<Dataset>(2);
        let ((chunked, runner, fold_s), stats, simulate_s) = std::thread::scope(|s| {
            let consumer = s.spawn(move || {
                let pool = rayon::ThreadPoolBuilder::new()
                    .num_threads(threads)
                    .build()
                    .expect("build analysis pool");
                pool.install(move || {
                    let mut builder = ChunkedDatasetBuilder::new(cfg);
                    let mut runner = FusedRunner::new();
                    let mut fold_s = 0.0f64;
                    let mut io_err: Option<std::io::Error> = None;
                    while let Ok(part) = rx.recv() {
                        let tb = std::time::Instant::now();
                        let ix = DatasetIndex::build(&part);
                        runner.fold_view(DatasetView::new(&part, &ix));
                        drop(ix);
                        if io_err.is_none() {
                            if let Err(e) = builder.add(part) {
                                io_err = Some(e);
                            }
                        }
                        fold_s += tb.elapsed().as_secs_f64();
                    }
                    if let Some(e) = io_err {
                        panic!("chunk store spill failed during streaming: {e}");
                    }
                    let chunked = builder
                        .finish()
                        .unwrap_or_else(|e| panic!("chunk store finish failed: {e}"));
                    (chunked, runner, fold_s)
                })
            });
            let stats =
                config.stream_campaign_with_table(&campaign, table, METRO_BATCH_NETWORKS, |part| {
                    tx.send(part).expect("analysis consumer hung up")
                });
            let simulate_s = t1.elapsed().as_secs_f64();
            drop(tx);
            (
                consumer.join().expect("analysis consumer panicked"),
                stats,
                simulate_s,
            )
        });
        // Finish the fused pass: pass-A finish plus pass B (penalties over
        // the raw chunks). This is the only analysis left outside the
        // simulate wall.
        let t2 = std::time::Instant::now();
        let fused = runner.finish(&ProbeSource::Chunked(&chunked));
        let finish_s = t2.elapsed().as_secs_f64();
        let mut this = Self::assemble(
            DataStore::Chunked(Box::new(chunked)),
            config,
            seed,
            Some(campaign),
        );
        // The overlap pass IS the fused pass: serve accessors from it and
        // keep the mode kernel-major so nothing re-runs it.
        this.analysis_mode = AnalysisMode::KernelMajor;
        let _ = this.fused.set(fused);
        let t3 = std::time::Instant::now();
        let clients_simulated = this.client_probes().map_or(0, |p| p.clients_simulated);
        let client_probe_s = t3.elapsed().as_secs_f64();
        (
            this,
            BuildTimings {
                generate_s,
                simulate_s,
                pairs_simulated: stats.pairs_simulated,
                client_probe_s,
                clients_simulated,
                stream_analyze_s: fold_s + finish_s,
            },
        )
    }

    /// Builds one context per seed `base_seed .. base_seed + n_seeds` by
    /// running all the campaigns as **one** flat batched work list through
    /// [`mesh11_sim::SimConfig::run_campaigns_counted_with_table`], so the
    /// pair scheduler's tail and all per-run setup amortize across the
    /// ensemble. Each returned context is byte-identical to
    /// [`ReproContext::build_timed_with_faults`] at its seed (the runner's
    /// batching tests pin this). In-memory only: multi-seed campaigns are
    /// run at quick/standard scales where the ensemble fits residently.
    pub fn build_many_timed(
        scale: Scale,
        base_seed: u64,
        n_seeds: usize,
        faults: mesh11_sim::FaultPlan,
    ) -> (Vec<Self>, MultiBuildTimings) {
        assert!(n_seeds >= 1, "need at least one seed");
        let mut config = scale.config();
        config.faults = faults;
        let t0 = std::time::Instant::now();
        let campaigns: Vec<Campaign> = (0..n_seeds)
            .map(|k| scale.campaign_spec(base_seed + k as u64).generate())
            .collect();
        let generate_s = t0.elapsed().as_secs_f64();
        let t1 = std::time::Instant::now();
        let table = shared_success_table(PerModel::default());
        let refs: Vec<&Campaign> = campaigns.iter().collect();
        let results = config.run_campaigns_counted_with_table(&refs, table);
        let simulate_s = t1.elapsed().as_secs_f64();
        let per_seed_pairs: Vec<usize> = results.iter().map(|(_, s)| s.pairs_simulated).collect();
        // One eager client-probe pass per seed, as in the single-seed build
        // (each pass's per-client scheduler is already parallel inside).
        let t2 = std::time::Instant::now();
        let mut contexts = Vec::with_capacity(n_seeds);
        let mut clients_simulated = 0;
        for (k, ((dataset, _), campaign)) in results.into_iter().zip(campaigns).enumerate() {
            let ctx = Self::assemble(
                DataStore::InMemory(dataset),
                config.clone(),
                base_seed + k as u64,
                Some(campaign),
            );
            clients_simulated += ctx.client_probes().map_or(0, |p| p.clients_simulated);
            contexts.push(ctx);
        }
        let client_probe_s = t2.elapsed().as_secs_f64();
        let timings = MultiBuildTimings {
            generate_s,
            simulate_s,
            client_probe_s,
            pairs_simulated: per_seed_pairs.iter().sum(),
            clients_simulated,
            per_seed_pairs,
        };
        (contexts, timings)
    }

    /// Wraps an existing dataset (e.g. loaded from disk).
    pub fn from_dataset(dataset: Dataset, config: SimConfig, seed: u64) -> Self {
        Self::assemble(DataStore::InMemory(dataset), config, seed, None)
    }

    fn assemble(
        store: DataStore,
        config: SimConfig,
        seed: u64,
        campaign: Option<Campaign>,
    ) -> Self {
        Self {
            analysis_mode: AnalysisMode::default_for(&store),
            store,
            config,
            seed,
            campaign,
            fused: OnceLock::new(),
            client_probes: OnceLock::new(),
            index: OnceLock::new(),
            routing_bg: OnceLock::new(),
            lookup_tables: Default::default(),
            strategy_evals_bg: OnceLock::new(),
            triples_bg: OnceLock::new(),
            ranges_bg: OnceLock::new(),
            mobility: OnceLock::new(),
            snr_sigmas: OnceLock::new(),
            curves: Default::default(),
            penalties: Default::default(),
            asymmetry_bg: OnceLock::new(),
            adapters_ext: OnceLock::new(),
            sweep_ext: OnceLock::new(),
            stability_bg: OnceLock::new(),
            diversity_ext: OnceLock::new(),
            ett_bg: OnceLock::new(),
            cap_ext: OnceLock::new(),
        }
    }

    /// The analysis scheduling mode in effect.
    pub fn analysis_mode(&self) -> AnalysisMode {
        self.analysis_mode
    }

    /// Overrides the analysis scheduling mode (`repro --window-major` /
    /// `--kernel-major`). Call before touching any analysis accessor.
    pub fn set_analysis_mode(&mut self, mode: AnalysisMode) {
        assert!(
            self.fused.get().is_none(),
            "analysis mode must be set before any analysis runs"
        );
        self.analysis_mode = mode;
    }

    /// The fused outputs, when this context runs (or ran) the fused pass:
    /// window-major contexts compute it on first touch; kernel-major
    /// contexts only return one pre-seeded by the streaming build.
    fn fused_outputs(&self) -> Option<&FusedOutputs> {
        match self.analysis_mode {
            AnalysisMode::WindowMajor => Some(
                self.fused
                    .get_or_init(|| fused::run_fused(&self.probe_source())),
            ),
            AnalysisMode::KernelMajor => self.fused.get(),
        }
    }

    /// The campaign this context simulated, when known.
    pub fn scale_campaign(&self) -> Option<&Campaign> {
        self.campaign.as_ref()
    }

    /// The resident dataset. Panics for chunked contexts — consumers that
    /// can fold over windows should use [`ReproContext::probe_source`];
    /// consumers that only read metadata or client traces should use
    /// [`ReproContext::meta_dataset`].
    pub fn dataset(&self) -> &Dataset {
        match &self.store {
            DataStore::InMemory(ds) => ds,
            DataStore::Chunked(_) => {
                panic!("chunked context has no resident dataset; use probe_source()")
            }
        }
    }

    /// The dataset carrying network metadata, client traces, and horizons —
    /// the full dataset in memory mode, the probe-free shell in chunked
    /// mode. Never touches the chunk store.
    pub fn meta_dataset(&self) -> &Dataset {
        match &self.store {
            DataStore::InMemory(ds) => ds,
            DataStore::Chunked(c) => c.shell(),
        }
    }

    /// The chunk store, when this context is chunked.
    pub fn chunked(&self) -> Option<&ChunkedDataset> {
        match &self.store {
            DataStore::InMemory(_) => None,
            DataStore::Chunked(c) => Some(c),
        }
    }

    /// A snapshot of the chunk store's observability counters (decode,
    /// hit, eviction, pinned high-water mark, window memo traffic). All
    /// zeros for fully resident contexts.
    pub fn chunk_stats(&self) -> ChunkStoreStats {
        self.chunked().map(|c| c.stats()).unwrap_or_default()
    }

    /// Network metadata, id order.
    pub fn networks(&self) -> &[NetworkMeta] {
        &self.meta_dataset().networks
    }

    /// Client trace samples (always resident; only probes chunk).
    pub fn clients(&self) -> &[ClientSample] {
        &self.meta_dataset().clients
    }

    /// Total probe reports across the run.
    pub fn n_probes(&self) -> usize {
        match &self.store {
            DataStore::InMemory(ds) => ds.probes.len(),
            DataStore::Chunked(c) => c.n_probes() as usize,
        }
    }

    /// Total APs across the ensemble.
    pub fn total_aps(&self) -> usize {
        self.meta_dataset().total_aps()
    }

    /// The probe horizon (seconds).
    pub fn probe_horizon_s(&self) -> f64 {
        self.meta_dataset().probe_horizon_s
    }

    /// The client horizon (seconds).
    pub fn client_horizon_s(&self) -> f64 {
        self.meta_dataset().client_horizon_s
    }

    /// The probe source every analysis kernel folds over: the whole indexed
    /// view in memory mode, ordered chunk windows in chunked mode. The two
    /// produce byte-identical figures (see `crates/trace/src/chunk.rs`).
    pub fn probe_source(&self) -> ProbeSource<'_> {
        match &self.store {
            DataStore::InMemory(_) => ProbeSource::Whole(self.view()),
            DataStore::Chunked(c) => ProbeSource::Chunked(c),
        }
    }

    /// The downlink client-probe pass — computed once (eagerly by
    /// [`ReproContext::build_timed_with_faults`], so simulation cost is
    /// attributed to the simulate phase) and shared by `ext-client` and
    /// anything else reading client traces. `None` for contexts wrapping a
    /// loaded dataset: client probing needs topology ground truth.
    pub fn client_probes(&self) -> Option<&ClientProbePass> {
        let table = self.success_table();
        self.client_probes
            .get_or_init(|| {
                self.campaign
                    .as_ref()
                    .map(|c| build_client_probe_pass(c, &self.config, table))
            })
            .as_ref()
    }

    /// The run-wide frame-success tabulation — the process-wide shared
    /// table (see [`mesh11_phy::shared_success_table`]), built once on
    /// first use and reused by every context and every seed.
    pub fn success_table(&self) -> &SuccessTable {
        shared_success_table(PerModel::default())
    }

    /// The dataset index — built once on first use and shared by every
    /// analysis below (and by figures reading the columnar views directly).
    /// Panics for chunked contexts: there is no monolithic probe table to
    /// index (each window carries its own).
    pub fn index(&self) -> &DatasetIndex {
        self.index
            .get_or_init(|| DatasetIndex::build(self.dataset()))
    }

    /// An indexed view of the dataset, pairing [`ReproContext::dataset`]
    /// with [`ReproContext::index`]. Panics for chunked contexts; use
    /// [`ReproContext::probe_source`] there.
    pub fn view(&self) -> DatasetView<'_> {
        DatasetView::new(self.dataset(), self.index())
    }

    /// The §5 per-(network, rate) routing analyses over b/g networks with
    /// ≥5 APs — computed once, shared by Figs 5.1 and 5.3–5.5.
    pub fn routing_bg(&self) -> &[OpportunisticAnalysis] {
        if let Some(f) = self.fused_outputs() {
            return &f.routing_bg;
        }
        self.routing_bg.get_or_init(|| {
            analyze_dataset_from(&self.probe_source(), Phy::Bg, fused::ROUTING_MIN_APS)
        })
    }

    /// The §4 SNR→rate look-up tables for one (scope, phy) — built once
    /// and shared by Figs 4.1–4.4 (and anything else keying off them).
    pub fn lookup_tables(&self, scope: Scope, phy: Phy) -> &LookupTableSet {
        if let Some(f) = self.fused_outputs() {
            return &f.tables[lookup_slot(scope, phy)];
        }
        self.lookup_tables[lookup_slot(scope, phy)]
            .get_or_init(|| LookupTableSet::build_from(&self.probe_source(), scope, phy))
    }

    /// The §4.5 online-strategy evaluations over b/g — shared by Fig 4.6
    /// and Table 4.1.
    pub fn strategy_evals_bg(&self) -> &[StrategyEval] {
        if let Some(f) = self.fused_outputs() {
            return &f.strategy_bg;
        }
        self.strategy_evals_bg.get_or_init(|| {
            evaluate_strategies_from(&self.probe_source(), Phy::Bg, &StrategyKind::ALL)
        })
    }

    /// The §6 hidden-triple analysis over b/g at the paper's 10%
    /// threshold — shared by Fig 6.1 and §6.3.
    pub fn triples_bg(&self) -> &TripleAnalysis {
        if let Some(f) = self.fused_outputs() {
            return &f.triples_bg;
        }
        self.triples_bg.get_or_init(|| {
            TripleAnalysis::run_from(
                &self.probe_source(),
                Phy::Bg,
                TRIPLE_THRESHOLD,
                HearRule::Mean,
            )
        })
    }

    /// The §6 per-(network, rate) interference ranges over b/g — shared by
    /// Fig 6.2 and §6.3.
    pub fn ranges_bg(&self) -> &BTreeMap<(NetworkId, BitRate), usize> {
        if let Some(f) = self.fused_outputs() {
            return &f.ranges_bg;
        }
        self.ranges_bg.get_or_init(|| {
            range_by_rate_from(
                &self.probe_source(),
                Phy::Bg,
                TRIPLE_THRESHOLD,
                HearRule::Mean,
            )
        })
    }

    /// The Fig 3.1 sigma populations (within-set, per-link, recent-k,
    /// per-network).
    pub fn snr_sigmas(&self) -> &SnrSigmas {
        if let Some(f) = self.fused_outputs() {
            return &f.sigmas;
        }
        self.snr_sigmas.get_or_init(|| {
            let src = self.probe_source();
            SnrSigmas {
                sets: mesh11_trace::snrstats::probe_set_sigmas_from(&src),
                links: mesh11_trace::snrstats::link_sigmas_from(&src),
                recent: mesh11_trace::snrstats::recent_k_sigmas_from(&src, fused::SIGMA_RECENT_K),
                nets: mesh11_trace::snrstats::network_sigmas_from(&src),
            }
        })
    }

    /// The Fig 4.5 SNR↔throughput curves for one PHY.
    pub fn snr_curves(&self, phy: Phy) -> &SnrThroughputCurves {
        let slot = match phy {
            Phy::Bg => 0,
            Phy::Ht => 1,
        };
        if let Some(f) = self.fused_outputs() {
            return &f.curves[slot];
        }
        self.curves[slot].get_or_init(|| SnrThroughputCurves::build_from(&self.probe_source(), phy))
    }

    /// The Fig 4.4 penalty of one (scope, phy) table against the dataset.
    pub fn penalty(&self, scope: Scope, phy: Phy) -> &ThroughputPenalty {
        if let Some(f) = self.fused_outputs() {
            return &f.penalties[lookup_slot(scope, phy)];
        }
        self.penalties[lookup_slot(scope, phy)].get_or_init(|| {
            ThroughputPenalty::evaluate_from(&self.probe_source(), self.lookup_tables(scope, phy))
        })
    }

    /// The Fig 5.2 asymmetry pools per rate (b/g).
    pub fn asymmetry_bg(&self) -> &BTreeMap<BitRate, Vec<f64>> {
        if let Some(f) = self.fused_outputs() {
            return &f.asymmetry_bg;
        }
        self.asymmetry_bg
            .get_or_init(|| asymmetry_by_rate_from(&self.probe_source(), Phy::Bg))
    }

    /// The `ext-adapt` replay outcomes.
    pub fn adapters_ext(&self) -> &[AdaptationOutcome] {
        if let Some(f) = self.fused_outputs() {
            return &f.adapters_ext;
        }
        self.adapters_ext.get_or_init(|| {
            simulate_adapters_from(
                &self.probe_source(),
                Phy::Bg,
                &fused::ext_adapt_kinds(),
                fused::EXT_ADAPT_OVERHEAD,
            )
        })
    }

    /// The `ext-sweep` threshold-sweep rows.
    pub fn sweep_ext(&self) -> &[(f64, Option<f64>)] {
        if let Some(f) = self.fused_outputs() {
            return &f.sweep_ext;
        }
        self.sweep_ext.get_or_init(|| {
            threshold_sweep_from(
                &self.probe_source(),
                Phy::Bg,
                fused::one_mbps(),
                &fused::EXT_SWEEP_THRESHOLDS,
                HearRule::Mean,
            )
        })
    }

    /// The `ext-stability` churn/drift report (b/g).
    pub fn stability_bg(&self) -> &LinkStability {
        if let Some(f) = self.fused_outputs() {
            return &f.stability_bg;
        }
        self.stability_bg
            .get_or_init(|| link_stability_from(&self.probe_source(), Phy::Bg))
    }

    /// The `ext-diversity` rows.
    pub fn diversity_ext(&self) -> &[(usize, f64, f64, usize)] {
        if let Some(f) = self.fused_outputs() {
            return &f.diversity_ext;
        }
        self.diversity_ext.get_or_init(|| {
            analyze_diversity_from(
                &self.probe_source(),
                Phy::Bg,
                fused::one_mbps(),
                fused::ROUTING_MIN_APS,
                EtxVariant::Etx1,
            )
        })
    }

    /// The `ext-ett` analyses (b/g, ≥5 APs).
    pub fn ett_bg(&self) -> &[EttAnalysis] {
        if let Some(f) = self.fused_outputs() {
            return &f.ett_bg;
        }
        self.ett_bg
            .get_or_init(|| analyze_ett_from(&self.probe_source(), Phy::Bg, fused::ROUTING_MIN_APS))
    }

    /// The `ext-cap` delivery matrix: the largest ≥5-AP b/g network at
    /// 1 Mbit/s. `None` when no network qualifies.
    pub fn cap_ext(&self) -> Option<&CapMatrix> {
        if let Some(f) = self.fused_outputs() {
            return f.cap_ext.as_ref();
        }
        self.cap_ext
            .get_or_init(|| {
                let meta = self
                    .meta_dataset()
                    .networks_with_at_least(fused::ROUTING_MIN_APS)
                    .filter(|m| m.radios.contains(&Phy::Bg))
                    .max_by_key(|m| m.n_aps)?;
                Some(CapMatrix {
                    network: meta.id,
                    n_aps: meta.n_aps,
                    matrix: self.probe_source().delivery_matrix(
                        Phy::Bg,
                        meta.id,
                        fused::one_mbps(),
                        meta.n_aps,
                    ),
                })
            })
            .as_ref()
    }

    /// The §7 client mobility report — shared by Figs 7.1–7.5. Client
    /// traces are always resident, so this works in either mode.
    pub fn mobility(&self) -> &MobilityReport {
        self.mobility
            .get_or_init(|| MobilityReport::build(self.meta_dataset()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("quick"), Some(Scale::Quick));
        assert_eq!(Scale::parse("standard"), Some(Scale::Standard));
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("full"), Some(Scale::Paper));
        assert_eq!(
            Scale::parse("metro"),
            Some(Scale::Metro {
                factor: DEFAULT_METRO_FACTOR
            })
        );
        assert_eq!(Scale::parse("bogus"), None);
    }

    #[test]
    fn metro_defaults_to_chunked_quick_horizons() {
        let m = Scale::Metro { factor: 2 };
        assert_eq!(m.config(), SimConfig::quick());
        assert!(matches!(m.data_mode(), DataMode::Chunked(_)));
        assert_eq!(m.campaign_spec(1).len(), 220);
        assert_eq!(Scale::Quick.data_mode(), DataMode::InMemory);
    }

    #[test]
    fn chunked_context_matches_in_memory_counts() {
        let (mem, _) = ReproContext::build_timed(Scale::Quick, 11);
        let (chk, timings) = ReproContext::build_timed_with_mode(
            Scale::Quick,
            11,
            mesh11_sim::FaultPlan::none(),
            DataMode::Chunked(ChunkConfig::tiny()),
        );
        assert!(timings.pairs_simulated > 0);
        assert_eq!(chk.n_probes(), mem.n_probes());
        assert_eq!(chk.networks(), mem.networks());
        assert_eq!(chk.clients(), mem.clients());
        assert_eq!(chk.total_aps(), mem.total_aps());
        let c = chk.chunked().expect("chunked store");
        assert!(c.spilled_bytes() > 0, "tiny budget must force spilling");
        assert!(mem.chunked().is_none());
        // The chunked kernels agree with the resident ones.
        assert_eq!(chk.routing_bg().len(), mem.routing_bg().len());
        assert_eq!(
            chk.triples_bg().per_network.len(),
            mem.triples_bg().per_network.len()
        );
    }

    #[test]
    fn caches_are_shared_under_concurrency() {
        use rayon::prelude::*;
        let ctx = ReproContext::build(Scale::Quick, 3);
        // Hammer every cached accessor from parallel workers; each must
        // resolve to one shared instance (computed exactly once).
        let addrs: Vec<[usize; 4]> = (0..16u32)
            .collect::<Vec<_>>()
            .par_iter()
            .map(|_| {
                [
                    ctx.lookup_tables(Scope::Global, Phy::Bg) as *const _ as usize,
                    ctx.triples_bg() as *const _ as usize,
                    ctx.ranges_bg() as *const _ as usize,
                    ctx.mobility() as *const _ as usize,
                ]
            })
            .collect();
        for pair in addrs.windows(2) {
            assert_eq!(pair[0], pair[1], "every caller must see the same cache");
        }
        assert_eq!(
            ctx.strategy_evals_bg().as_ptr(),
            ctx.strategy_evals_bg().as_ptr()
        );
    }

    #[test]
    fn multi_seed_build_matches_single_builds() {
        let (ctxs, t) =
            ReproContext::build_many_timed(Scale::Quick, 42, 2, mesh11_sim::FaultPlan::none());
        assert_eq!(ctxs.len(), 2);
        assert_eq!(t.per_seed_pairs.len(), 2);
        assert_eq!(t.pairs_simulated, t.per_seed_pairs.iter().sum::<usize>());
        for (k, ctx) in ctxs.iter().enumerate() {
            let seed = 42 + k as u64;
            let (solo, st) = ReproContext::build_timed(Scale::Quick, seed);
            assert_eq!(ctx.seed, seed);
            assert_eq!(ctx.dataset(), solo.dataset(), "seed {seed}");
            assert_eq!(t.per_seed_pairs[k], st.pairs_simulated);
            assert_eq!(ctx.client_probes(), solo.client_probes(), "seed {seed}");
        }
    }

    #[test]
    fn quick_context_builds() {
        let ctx = ReproContext::build(Scale::Quick, 1);
        assert_eq!(ctx.networks().len(), 12);
        assert!(ctx.n_probes() > 0);
        assert!(!ctx.clients().is_empty());
        // Routing bundle is lazy and cached.
        let a = ctx.routing_bg().len();
        let b = ctx.routing_bg().len();
        assert_eq!(a, b);
        assert!(a > 0, "quick campaign has ≥5-AP b/g networks");
    }
}
