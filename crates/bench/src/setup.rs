//! Reproduction-run setup: campaign, simulation, shared heavy analyses.

use mesh11_core::routing::improvement::{analyze_dataset, OpportunisticAnalysis};
use mesh11_phy::Phy;
use mesh11_sim::SimConfig;
use mesh11_topo::{Campaign, CampaignSpec};
use mesh11_trace::Dataset;
use std::sync::OnceLock;

/// How big a reproduction run to perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// 12 networks, 1 h probes — seconds; for tests and smoke runs.
    Quick,
    /// The full 110-network ensemble with 4 h probes / 6 h clients —
    /// minutes; the default for `repro`.
    Standard,
    /// The paper's 24 h probes / 11 h clients over all 110 networks.
    Paper,
}

impl Scale {
    /// Parses the CLI spelling.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "quick" => Some(Scale::Quick),
            "standard" => Some(Scale::Standard),
            "paper" | "full" => Some(Scale::Paper),
            _ => None,
        }
    }
}

/// A materialized reproduction run: the dataset plus lazily computed heavy
/// analyses shared across figures.
pub struct ReproContext {
    /// The simulated dataset.
    pub dataset: Dataset,
    /// The simulation configuration used.
    pub config: SimConfig,
    /// Campaign seed.
    pub seed: u64,
    /// The generated campaign, when this context was built by simulation
    /// (absent for contexts wrapping a loaded dataset). Extension
    /// experiments that need topology ground truth (e.g. client probing)
    /// use it; the paper figures never do.
    campaign: Option<Campaign>,
    routing_bg: OnceLock<Vec<OpportunisticAnalysis>>,
}

impl ReproContext {
    /// Generates and simulates a campaign.
    pub fn build(scale: Scale, seed: u64) -> Self {
        let (spec, config) = match scale {
            Scale::Quick => (CampaignSpec::small(seed), SimConfig::quick()),
            Scale::Standard => (CampaignSpec::paper(seed), SimConfig::standard()),
            Scale::Paper => (CampaignSpec::paper(seed), SimConfig::paper()),
        };
        let campaign = spec.generate();
        let dataset = config.run_campaign(&campaign);
        Self {
            dataset,
            config,
            seed,
            campaign: Some(campaign),
            routing_bg: OnceLock::new(),
        }
    }

    /// Wraps an existing dataset (e.g. loaded from disk).
    pub fn from_dataset(dataset: Dataset, config: SimConfig, seed: u64) -> Self {
        Self {
            dataset,
            config,
            seed,
            campaign: None,
            routing_bg: OnceLock::new(),
        }
    }

    /// The campaign this context simulated, when known.
    pub fn scale_campaign(&self) -> Option<&Campaign> {
        self.campaign.as_ref()
    }

    /// The §5 per-(network, rate) routing analyses over b/g networks with
    /// ≥5 APs — computed once, shared by Figs 5.1 and 5.3–5.5.
    pub fn routing_bg(&self) -> &[OpportunisticAnalysis] {
        self.routing_bg
            .get_or_init(|| analyze_dataset(&self.dataset, Phy::Bg, 5))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("quick"), Some(Scale::Quick));
        assert_eq!(Scale::parse("standard"), Some(Scale::Standard));
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("full"), Some(Scale::Paper));
        assert_eq!(Scale::parse("bogus"), None);
    }

    #[test]
    fn quick_context_builds() {
        let ctx = ReproContext::build(Scale::Quick, 1);
        assert_eq!(ctx.dataset.networks.len(), 12);
        assert!(!ctx.dataset.probes.is_empty());
        assert!(!ctx.dataset.clients.is_empty());
        // Routing bundle is lazy and cached.
        let a = ctx.routing_bg().len();
        let b = ctx.routing_bg().len();
        assert_eq!(a, b);
        assert!(a > 0, "quick campaign has ≥5-AP b/g networks");
    }
}
