//! Reproduction-run setup: campaign, simulation, shared heavy analyses.

use std::collections::BTreeMap;
use std::sync::OnceLock;

use mesh11_core::bitrate::strategy::evaluate_strategies;
use mesh11_core::bitrate::{LookupTableSet, Scope, StrategyEval, StrategyKind};
use mesh11_core::mobility::MobilityReport;
use mesh11_core::routing::improvement::{analyze_dataset, OpportunisticAnalysis};
use mesh11_core::triples::{hidden::TripleAnalysis, range_by_rate, HearRule};
use mesh11_phy::{BitRate, CalibratedPhy, Phy, SuccessTable};
use mesh11_sim::{ClientProbeTrace, SimConfig};
use mesh11_topo::{Campaign, CampaignSpec, NetworkSpec};
use mesh11_trace::{Dataset, DatasetIndex, DatasetView, NetworkId};

/// The §6 hearing threshold (10%) used by every cached triple analysis.
pub const TRIPLE_THRESHOLD: f64 = 0.10;

/// How many b/g networks the downlink client-probe pass covers.
pub const CLIENT_PROBE_NETWORKS: usize = 6;
/// Minimum AP count for a network to enter the client-probe pass.
pub const CLIENT_PROBE_MIN_APS: usize = 5;
/// Cap on the client-probe horizon (seconds), so paper-scale runs stay
/// bounded.
pub const CLIENT_PROBE_MAX_HORIZON_S: f64 = 14_400.0;

/// Wall-clock seconds of the two pre-analysis phases of a reproduction
/// run; see [`ReproContext::build_timed`].
#[derive(Debug, Clone, Copy)]
pub struct BuildTimings {
    /// Campaign generation (topology, populations, specs).
    pub generate_s: f64,
    /// Probe + client simulation across all networks.
    pub simulate_s: f64,
    /// Candidate AP pairs the simulate phase ran (across networks and
    /// radios) — the unit of the global pair scheduler's work list.
    pub pairs_simulated: usize,
    /// The downlink client-probe pass (the sharded per-client scheduler
    /// feeding `ext-client`), run eagerly in the simulate phase.
    pub client_probe_s: f64,
    /// Clients the client-probe pass simulated — the unit of its work
    /// list, giving `client_probe_s` a denominator.
    pub clients_simulated: usize,
}

/// The cached downlink client-probe pass: one trace per covered network.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientProbePass {
    /// `(network, trace)` for the first [`CLIENT_PROBE_NETWORKS`] b/g
    /// networks with ≥ [`CLIENT_PROBE_MIN_APS`] APs, in campaign order.
    pub traces: Vec<(NetworkId, ClientProbeTrace)>,
    /// Clients simulated across all covered networks.
    pub clients_simulated: usize,
}

fn build_client_probe_pass(
    campaign: &Campaign,
    config: &SimConfig,
    table: &SuccessTable,
) -> ClientProbePass {
    let mut cfg = config.clone();
    cfg.client_horizon_s = cfg.client_horizon_s.min(CLIENT_PROBE_MAX_HORIZON_S);
    let specs: Vec<&NetworkSpec> = campaign
        .networks
        .iter()
        .filter(|n| n.has_bg() && n.size() >= CLIENT_PROBE_MIN_APS)
        .take(CLIENT_PROBE_NETWORKS)
        .collect();
    let traces = mesh11_sim::simulate_client_probes_batch(&specs, &cfg, table);
    let clients_simulated = traces.iter().map(|t| t.clients).sum();
    ClientProbePass {
        traces: specs.iter().map(|s| s.id).zip(traces).collect(),
        clients_simulated,
    }
}

/// How big a reproduction run to perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// 12 networks, 1 h probes — seconds; for tests and smoke runs.
    Quick,
    /// The full 110-network ensemble with 4 h probes / 6 h clients —
    /// minutes; the default for `repro`.
    Standard,
    /// The paper's 24 h probes / 11 h clients over all 110 networks.
    Paper,
}

impl Scale {
    /// Parses the CLI spelling.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "quick" => Some(Scale::Quick),
            "standard" => Some(Scale::Standard),
            "paper" | "full" => Some(Scale::Paper),
            _ => None,
        }
    }

    /// The campaign spec this scale simulates.
    pub fn campaign_spec(self, seed: u64) -> CampaignSpec {
        match self {
            Scale::Quick => CampaignSpec::small(seed),
            Scale::Standard | Scale::Paper => CampaignSpec::paper(seed),
        }
    }

    /// The simulation configuration this scale runs under (no faults).
    pub fn config(self) -> SimConfig {
        match self {
            Scale::Quick => SimConfig::quick(),
            Scale::Standard => SimConfig::standard(),
            Scale::Paper => SimConfig::paper(),
        }
    }
}

/// A materialized reproduction run: the dataset plus lazily computed heavy
/// analyses shared across figures.
pub struct ReproContext {
    /// The simulated dataset.
    pub dataset: Dataset,
    /// The simulation configuration used.
    pub config: SimConfig,
    /// Campaign seed.
    pub seed: u64,
    /// The generated campaign, when this context was built by simulation
    /// (absent for contexts wrapping a loaded dataset). Extension
    /// experiments that need topology ground truth (e.g. client probing)
    /// use it; the paper figures never do.
    campaign: Option<Campaign>,
    /// One frame-success tabulation for the whole run: the simulate phase
    /// primes it and the client-probe pass reuses it.
    success_table: OnceLock<SuccessTable>,
    client_probes: OnceLock<Option<ClientProbePass>>,
    index: OnceLock<DatasetIndex>,
    routing_bg: OnceLock<Vec<OpportunisticAnalysis>>,
    // One slot per (scope, phy): Figs 4.1–4.4 all key off the same tables.
    lookup_tables: [OnceLock<LookupTableSet>; 8],
    strategy_evals_bg: OnceLock<Vec<StrategyEval>>,
    triples_bg: OnceLock<TripleAnalysis>,
    ranges_bg: OnceLock<BTreeMap<(NetworkId, BitRate), usize>>,
    mobility: OnceLock<MobilityReport>,
}

fn lookup_slot(scope: Scope, phy: Phy) -> usize {
    let s = match scope {
        Scope::Global => 0,
        Scope::Network => 1,
        Scope::Ap => 2,
        Scope::Link => 3,
    };
    let p = match phy {
        Phy::Bg => 0,
        Phy::Ht => 1,
    };
    s * 2 + p
}

impl ReproContext {
    /// Generates and simulates a campaign.
    pub fn build(scale: Scale, seed: u64) -> Self {
        Self::build_timed(scale, seed).0
    }

    /// As [`ReproContext::build`], also reporting how long the generate and
    /// simulate phases took (wall-clock seconds).
    pub fn build_timed(scale: Scale, seed: u64) -> (Self, BuildTimings) {
        Self::build_timed_with_faults(scale, seed, mesh11_sim::FaultPlan::none())
    }

    /// As [`ReproContext::build_timed`], simulating under a fault plan
    /// (`repro --faults` and the fault-injected CI invariance run).
    pub fn build_timed_with_faults(
        scale: Scale,
        seed: u64,
        faults: mesh11_sim::FaultPlan,
    ) -> (Self, BuildTimings) {
        let spec = scale.campaign_spec(seed);
        let mut config = scale.config();
        config.faults = faults;
        let t0 = std::time::Instant::now();
        let campaign = spec.generate();
        let generate_s = t0.elapsed().as_secs_f64();
        let t1 = std::time::Instant::now();
        // One success table serves the whole run: the campaign simulation
        // here and the client-probe pass below (its build is simulate-phase
        // cost, exactly as it was when `run_campaign_counted` built it).
        let table = SuccessTable::new(&CalibratedPhy::new());
        let (dataset, stats) = config.run_campaign_counted_with_table(&campaign, &table);
        let simulate_s = t1.elapsed().as_secs_f64();
        let this = Self::assemble(dataset, config, seed, Some(campaign));
        let _ = this.success_table.set(table);
        // Run the client-probe pass eagerly so its cost lands in the
        // simulate phase (it is simulation), not in whichever figure
        // happens to touch the cache first.
        let t2 = std::time::Instant::now();
        let clients_simulated = this.client_probes().map_or(0, |p| p.clients_simulated);
        let client_probe_s = t2.elapsed().as_secs_f64();
        (
            this,
            BuildTimings {
                generate_s,
                simulate_s,
                pairs_simulated: stats.pairs_simulated,
                client_probe_s,
                clients_simulated,
            },
        )
    }

    /// Wraps an existing dataset (e.g. loaded from disk).
    pub fn from_dataset(dataset: Dataset, config: SimConfig, seed: u64) -> Self {
        Self::assemble(dataset, config, seed, None)
    }

    fn assemble(
        dataset: Dataset,
        config: SimConfig,
        seed: u64,
        campaign: Option<Campaign>,
    ) -> Self {
        Self {
            dataset,
            config,
            seed,
            campaign,
            success_table: OnceLock::new(),
            client_probes: OnceLock::new(),
            index: OnceLock::new(),
            routing_bg: OnceLock::new(),
            lookup_tables: Default::default(),
            strategy_evals_bg: OnceLock::new(),
            triples_bg: OnceLock::new(),
            ranges_bg: OnceLock::new(),
            mobility: OnceLock::new(),
        }
    }

    /// The campaign this context simulated, when known.
    pub fn scale_campaign(&self) -> Option<&Campaign> {
        self.campaign.as_ref()
    }

    /// The downlink client-probe pass — computed once (eagerly by
    /// [`ReproContext::build_timed_with_faults`], so simulation cost is
    /// attributed to the simulate phase) and shared by `ext-client` and
    /// anything else reading client traces. `None` for contexts wrapping a
    /// loaded dataset: client probing needs topology ground truth.
    pub fn client_probes(&self) -> Option<&ClientProbePass> {
        let table = self.success_table();
        self.client_probes
            .get_or_init(|| {
                self.campaign
                    .as_ref()
                    .map(|c| build_client_probe_pass(c, &self.config, table))
            })
            .as_ref()
    }

    /// The run-wide frame-success tabulation. Contexts built by simulation
    /// inherit the simulate phase's table; dataset-wrapping contexts build
    /// one on first use.
    pub fn success_table(&self) -> &SuccessTable {
        self.success_table
            .get_or_init(|| SuccessTable::new(&CalibratedPhy::new()))
    }

    /// The dataset index — built once on first use and shared by every
    /// analysis below (and by figures reading the columnar views directly).
    pub fn index(&self) -> &DatasetIndex {
        self.index
            .get_or_init(|| DatasetIndex::build(&self.dataset))
    }

    /// An indexed view of the dataset, pairing [`ReproContext::dataset`]
    /// with [`ReproContext::index`].
    pub fn view(&self) -> DatasetView<'_> {
        DatasetView::new(&self.dataset, self.index())
    }

    /// The §5 per-(network, rate) routing analyses over b/g networks with
    /// ≥5 APs — computed once, shared by Figs 5.1 and 5.3–5.5.
    pub fn routing_bg(&self) -> &[OpportunisticAnalysis] {
        self.routing_bg
            .get_or_init(|| analyze_dataset(self.view(), Phy::Bg, 5))
    }

    /// The §4 SNR→rate look-up tables for one (scope, phy) — built once
    /// and shared by Figs 4.1–4.4 (and anything else keying off them).
    pub fn lookup_tables(&self, scope: Scope, phy: Phy) -> &LookupTableSet {
        self.lookup_tables[lookup_slot(scope, phy)]
            .get_or_init(|| LookupTableSet::build(self.view(), scope, phy))
    }

    /// The §4.5 online-strategy evaluations over b/g — shared by Fig 4.6
    /// and Table 4.1.
    pub fn strategy_evals_bg(&self) -> &[StrategyEval] {
        self.strategy_evals_bg
            .get_or_init(|| evaluate_strategies(self.view(), Phy::Bg, &StrategyKind::ALL))
    }

    /// The §6 hidden-triple analysis over b/g at the paper's 10%
    /// threshold — shared by Fig 6.1 and §6.3.
    pub fn triples_bg(&self) -> &TripleAnalysis {
        self.triples_bg.get_or_init(|| {
            TripleAnalysis::run(self.view(), Phy::Bg, TRIPLE_THRESHOLD, HearRule::Mean)
        })
    }

    /// The §6 per-(network, rate) interference ranges over b/g — shared by
    /// Fig 6.2 and §6.3.
    pub fn ranges_bg(&self) -> &BTreeMap<(NetworkId, BitRate), usize> {
        self.ranges_bg
            .get_or_init(|| range_by_rate(self.view(), Phy::Bg, TRIPLE_THRESHOLD, HearRule::Mean))
    }

    /// The §7 client mobility report — shared by Figs 7.1–7.5.
    pub fn mobility(&self) -> &MobilityReport {
        self.mobility
            .get_or_init(|| MobilityReport::build(&self.dataset))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("quick"), Some(Scale::Quick));
        assert_eq!(Scale::parse("standard"), Some(Scale::Standard));
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("full"), Some(Scale::Paper));
        assert_eq!(Scale::parse("bogus"), None);
    }

    #[test]
    fn caches_are_shared_under_concurrency() {
        use rayon::prelude::*;
        let ctx = ReproContext::build(Scale::Quick, 3);
        // Hammer every cached accessor from parallel workers; each must
        // resolve to one shared instance (computed exactly once).
        let addrs: Vec<[usize; 4]> = (0..16u32)
            .collect::<Vec<_>>()
            .par_iter()
            .map(|_| {
                [
                    ctx.lookup_tables(Scope::Global, Phy::Bg) as *const _ as usize,
                    ctx.triples_bg() as *const _ as usize,
                    ctx.ranges_bg() as *const _ as usize,
                    ctx.mobility() as *const _ as usize,
                ]
            })
            .collect();
        for pair in addrs.windows(2) {
            assert_eq!(pair[0], pair[1], "every caller must see the same cache");
        }
        assert_eq!(
            ctx.strategy_evals_bg().as_ptr(),
            ctx.strategy_evals_bg().as_ptr()
        );
    }

    #[test]
    fn quick_context_builds() {
        let ctx = ReproContext::build(Scale::Quick, 1);
        assert_eq!(ctx.dataset.networks.len(), 12);
        assert!(!ctx.dataset.probes.is_empty());
        assert!(!ctx.dataset.clients.is_empty());
        // Routing bundle is lazy and cached.
        let a = ctx.routing_bg().len();
        let b = ctx.routing_bg().len();
        assert_eq!(a, b);
        assert!(a > 0, "quick campaign has ≥5-AP b/g networks");
    }
}
