//! Correlation coefficients.
//!
//! §4.4 of the paper studies the correlation between SNR and throughput;
//! Pearson captures the linear relationship on the rising part of the curve
//! and Spearman the monotone relationship across the full (saturating) range.

/// Pearson product-moment correlation of two equal-length samples.
///
/// Returns `None` when the slices are empty, differ in length, or either has
/// zero variance (the coefficient is undefined there).
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.is_empty() || xs.len() != ys.len() {
        return None;
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    let mut sxy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        let dx = x - mx;
        let dy = y - my;
        sxx += dx * dx;
        syy += dy * dy;
        sxy += dx * dy;
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return None;
    }
    Some(sxy / (sxx.sqrt() * syy.sqrt()))
}

/// Spearman rank correlation: Pearson correlation of the mid-ranks.
///
/// Ties receive the average of the ranks they span (mid-rank method), so the
/// coefficient is exact in the presence of the heavily quantized values our
/// datasets contain (integer SNRs, discrete bit rates).
pub fn spearman(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.is_empty() || xs.len() != ys.len() {
        return None;
    }
    let rx = midranks(xs);
    let ry = midranks(ys);
    pearson(&rx, &ry)
}

/// Mid-ranks of a sample (1-based; ties averaged).
fn midranks(xs: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).expect("finite values"));
    let mut ranks = vec![0.0; xs.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        // positions i..=j share the same value; assign the average rank
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            ranks[k] = avg;
        }
        i = j + 1;
    }
    ranks
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pearson_perfect_linear() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = ys.iter().map(|y| -y).collect();
        assert!((pearson(&xs, &neg).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_undefined_cases() {
        assert_eq!(pearson(&[], &[]), None);
        assert_eq!(pearson(&[1.0], &[1.0, 2.0]), None);
        assert_eq!(pearson(&[1.0, 1.0], &[1.0, 2.0]), None); // zero variance
    }

    #[test]
    fn spearman_monotone_nonlinear() {
        // y = x^3 is nonlinear but perfectly monotone.
        let xs: [f64; 5] = [-2.0, -1.0, 0.0, 1.0, 2.0];
        let ys: Vec<f64> = xs.iter().map(|x| x.powi(3)).collect();
        assert!((spearman(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        let p = pearson(&xs, &ys).unwrap();
        assert!(p < 1.0);
    }

    #[test]
    fn spearman_handles_ties() {
        let xs = [1.0, 1.0, 2.0, 3.0];
        let ys = [5.0, 5.0, 6.0, 7.0];
        assert!((spearman(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn midranks_average_ties() {
        assert_eq!(
            midranks(&[10.0, 20.0, 20.0, 30.0]),
            vec![1.0, 2.5, 2.5, 4.0]
        );
        assert_eq!(midranks(&[5.0]), vec![1.0]);
    }

    proptest! {
        #[test]
        fn pearson_in_unit_interval(pairs in proptest::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 3..100)) {
            let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
            if let Some(r) = pearson(&xs, &ys) {
                prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
            }
        }

        #[test]
        fn pearson_symmetric(pairs in proptest::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 3..100)) {
            let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
            match (pearson(&xs, &ys), pearson(&ys, &xs)) {
                (Some(a), Some(b)) => prop_assert!((a - b).abs() < 1e-9),
                (a, b) => prop_assert_eq!(a.is_none(), b.is_none()),
            }
        }

        #[test]
        fn spearman_invariant_to_monotone_transform(
            pairs in proptest::collection::vec((-10.0f64..10.0, -10.0f64..10.0), 3..60)
        ) {
            let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
            let xs_t: Vec<f64> = xs.iter().map(|x| x.exp()).collect(); // strictly increasing
            match (spearman(&xs, &ys), spearman(&xs_t, &ys)) {
                (Some(a), Some(b)) => prop_assert!((a - b).abs() < 1e-9),
                (a, b) => prop_assert_eq!(a.is_none(), b.is_none()),
            }
        }
    }
}
