//! Seeded random distributions and hierarchical seed derivation.
//!
//! The simulator must be exactly reproducible from a single `u64` master
//! seed: the paper's dataset is fixed, so ours must be too. This module
//! provides:
//!
//! * [`derive_seed`] — SplitMix64-style mixing so each (network, AP, client,
//!   subsystem) gets an independent, stable stream;
//! * [`Dist`] — the continuous distributions the channel and mobility models
//!   draw from, implemented directly (Box–Muller et al.) so we do not pull in
//!   `rand_distr`;
//! * [`DrawExt`] — an extension trait adding `draw(dist)` to every
//!   [`rand::Rng`].

use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

/// Derives a child seed from a parent seed and a stream label.
///
/// Uses the SplitMix64 finalizer (Stafford variant 13) on
/// `parent ⊕ golden·label`, which is the standard construction for splitting
/// one seed into many statistically independent ones.
///
/// ```
/// use mesh11_stats::dist::derive_seed;
/// let a = derive_seed(42, 1);
/// let b = derive_seed(42, 2);
/// assert_ne!(a, b);
/// assert_eq!(a, derive_seed(42, 1)); // stable
/// ```
pub fn derive_seed(parent: u64, label: u64) -> u64 {
    let mut z = parent ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives a seed from a parent and a string label (FNV-1a over the bytes,
/// then [`derive_seed`]). Used to key subsystem streams by name
/// (`"probes"`, `"mobility"`, …) without a central registry of integers.
pub fn derive_seed_str(parent: u64, label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    derive_seed(parent, h)
}

/// A continuous scalar distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Dist {
    /// Every draw returns the same value. Useful for ablations that freeze a
    /// randomness source.
    Constant(f64),
    /// Uniform over `[lo, hi)`.
    Uniform {
        /// Inclusive lower bound.
        lo: f64,
        /// Exclusive upper bound.
        hi: f64,
    },
    /// Gaussian with the given mean and standard deviation (Box–Muller).
    Normal {
        /// Mean.
        mean: f64,
        /// Standard deviation (≥ 0).
        sd: f64,
    },
    /// `exp(N(mu, sigma))` — lognormal in natural-log parameters.
    LogNormal {
        /// Mean of the underlying normal.
        mu: f64,
        /// Standard deviation of the underlying normal (≥ 0).
        sigma: f64,
    },
    /// Exponential with the given mean (i.e. rate `1/mean`).
    Exp {
        /// Mean of the distribution (> 0).
        mean: f64,
    },
    /// Pareto with scale `xm` and shape `alpha`, truncated at `cap` by
    /// rejection (resampling). Heavy-tailed session/size draws.
    BoundedPareto {
        /// Scale (minimum value, > 0).
        xm: f64,
        /// Shape (> 0); smaller means heavier tail.
        alpha: f64,
        /// Upper truncation bound (> xm).
        cap: f64,
    },
}

impl Dist {
    /// Samples one value using the supplied RNG.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            Dist::Constant(v) => v,
            Dist::Uniform { lo, hi } => {
                debug_assert!(lo <= hi);
                lo + (hi - lo) * rng.random::<f64>()
            }
            Dist::Normal { mean, sd } => {
                debug_assert!(sd >= 0.0);
                mean + sd * standard_normal(rng)
            }
            Dist::LogNormal { mu, sigma } => (mu + sigma * standard_normal(rng)).exp(),
            Dist::Exp { mean } => {
                debug_assert!(mean > 0.0);
                // Inverse CDF; guard the log against u == 0.
                let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
                -mean * u.ln()
            }
            Dist::BoundedPareto { xm, alpha, cap } => {
                debug_assert!(xm > 0.0 && alpha > 0.0 && cap > xm);
                loop {
                    let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
                    let v = xm / u.powf(1.0 / alpha);
                    if v <= cap {
                        return v;
                    }
                }
            }
        }
    }

    /// The distribution's mean (exact, not sampled). For `BoundedPareto` this
    /// is the *untruncated* Pareto mean when `alpha > 1`, `NaN` otherwise;
    /// callers needing the truncated mean should estimate it empirically.
    pub fn mean(&self) -> f64 {
        match *self {
            Dist::Constant(v) => v,
            Dist::Uniform { lo, hi } => (lo + hi) / 2.0,
            Dist::Normal { mean, .. } => mean,
            Dist::LogNormal { mu, sigma } => (mu + sigma * sigma / 2.0).exp(),
            Dist::Exp { mean } => mean,
            Dist::BoundedPareto { xm, alpha, .. } => {
                if alpha > 1.0 {
                    alpha * xm / (alpha - 1.0)
                } else {
                    f64::NAN
                }
            }
        }
    }
}

/// One standard-normal draw via the Box–Muller transform.
///
/// Uses the polar coordinates form directly; only one of the pair is kept —
/// the simulator draws rarely enough that caching the spare is not worth the
/// statefulness.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.random::<f64>();
    // The expression below is fully f64 thanks to the annotations above.
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// One Poisson draw with mean `lambda`.
///
/// Knuth's product method below λ = 30 (exact), normal approximation with
/// half-integer correction above (error negligible at that scale). Used for
/// per-bin client packet counts.
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    debug_assert!(lambda >= 0.0);
    if lambda <= 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= rng.random::<f64>();
            if p <= l {
                return k;
            }
            k += 1;
        }
    } else {
        let v = lambda + lambda.sqrt() * standard_normal(rng);
        v.round().max(0.0) as u64
    }
}

/// Extension trait: `rng.draw(dist)`.
pub trait DrawExt: Rng {
    /// Samples `dist` with `self`.
    fn draw(&mut self, dist: Dist) -> f64 {
        dist.sample(self)
    }
}

impl<R: Rng + ?Sized> DrawExt for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    #[test]
    fn derive_seed_is_stable_and_distinct() {
        let s1 = derive_seed(7, 0);
        let s2 = derive_seed(7, 1);
        let s3 = derive_seed(8, 0);
        assert_ne!(s1, s2);
        assert_ne!(s1, s3);
        assert_eq!(derive_seed(7, 0), s1);
        assert_eq!(derive_seed_str(7, "probes"), derive_seed_str(7, "probes"));
        assert_ne!(derive_seed_str(7, "probes"), derive_seed_str(7, "mobility"));
    }

    #[test]
    fn derive_seed_is_injective_in_label() {
        // `parent ⊕ label·golden` is injective in `label` (golden is odd)
        // and the SplitMix64 finalizer is a bijection, so for a fixed base
        // two distinct stream ids can NEVER share a seed. The engines lean
        // on this: per-pair coin streams key `(a << 32) | b`, per-client
        // streams key the client id, and a collision would correlate two
        // "independent" timelines.
        use proptest::prelude::*;
        proptest!(|(
            base in 0u64..u64::MAX,
            l1 in 0u64..u64::MAX,
            l2 in 0u64..u64::MAX,
        )| {
            if l1 != l2 {
                let (a, b) = (derive_seed(base, l1), derive_seed(base, l2));
                prop_assert!(a != b, "collision: base {} labels {} {}", base, l1, l2);
            }
        });
    }

    #[test]
    fn derive_seed_has_no_collisions_across_engine_ranges() {
        // Across the (base, stream-id) pairs one run actually touches —
        // campaign seeds 42..58, the engines' string-keyed sub-bases, and
        // pair-packed `(a << 32) | b` ids plus small client/network ids —
        // every derived seed must be unique. (Across different bases this
        // is statistical rather than structural; 64-bit SplitMix64 makes a
        // collision in ~10⁵ draws a ~10⁻¹⁰ event, so a hit means the mixer
        // is broken.)
        let mut seen = std::collections::HashSet::new();
        let mut total = 0usize;
        for seed in 42u64..58 {
            for sub in ["probe-coins-bg", "probe-coins-ht"] {
                let base = derive_seed_str(seed, sub);
                for a in 0u64..24 {
                    for b in (a + 1)..24 {
                        assert!(seen.insert(derive_seed(base, (a << 32) | b)));
                        total += 1;
                    }
                }
            }
            let base = derive_seed_str(seed, "client-probe-coins");
            for id in 0u64..256 {
                assert!(seen.insert(derive_seed(base, id)), "base {base} id {id}");
                total += 1;
            }
        }
        assert!(total > 10_000, "range under-covered: {total}");
    }

    #[test]
    fn constant_and_uniform() {
        let mut r = rng(1);
        assert_eq!(Dist::Constant(3.5).sample(&mut r), 3.5);
        for _ in 0..1000 {
            let v = Dist::Uniform { lo: 2.0, hi: 5.0 }.sample(&mut r);
            assert!((2.0..5.0).contains(&v));
        }
    }

    #[test]
    fn normal_moments() {
        let mut r = rng(2);
        let d = Dist::Normal {
            mean: 10.0,
            sd: 3.0,
        };
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut r)).collect();
        let m = crate::mean(&samples).unwrap();
        let s = crate::stddev(&samples).unwrap();
        assert!((m - 10.0).abs() < 0.05, "mean {m}");
        assert!((s - 3.0).abs() < 0.05, "sd {s}");
    }

    #[test]
    fn lognormal_mean_matches_formula() {
        let mut r = rng(3);
        let d = Dist::LogNormal {
            mu: 0.5,
            sigma: 0.4,
        };
        let n = 200_000;
        let m: f64 = (0..n).map(|_| d.sample(&mut r)).sum::<f64>() / n as f64;
        assert!(
            (m - d.mean()).abs() / d.mean() < 0.02,
            "mean {m} vs {}",
            d.mean()
        );
    }

    #[test]
    fn exp_mean_and_positivity() {
        let mut r = rng(4);
        let d = Dist::Exp { mean: 7.0 };
        let n = 200_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v = d.sample(&mut r);
            assert!(v >= 0.0);
            sum += v;
        }
        assert!((sum / n as f64 - 7.0).abs() < 0.1);
    }

    #[test]
    fn bounded_pareto_respects_bounds() {
        let mut r = rng(5);
        let d = Dist::BoundedPareto {
            xm: 2.0,
            alpha: 1.2,
            cap: 50.0,
        };
        for _ in 0..10_000 {
            let v = d.sample(&mut r);
            assert!((2.0..=50.0).contains(&v), "out of bounds: {v}");
        }
    }

    #[test]
    fn pareto_mean_formula() {
        let d = Dist::BoundedPareto {
            xm: 1.0,
            alpha: 2.0,
            cap: 1e9,
        };
        assert_eq!(d.mean(), 2.0);
        let heavy = Dist::BoundedPareto {
            xm: 1.0,
            alpha: 0.5,
            cap: 1e9,
        };
        assert!(heavy.mean().is_nan());
    }

    #[test]
    fn standard_normal_symmetric() {
        let mut r = rng(6);
        let n = 100_000;
        let frac_pos = (0..n).filter(|_| standard_normal(&mut r) > 0.0).count() as f64 / n as f64;
        assert!((frac_pos - 0.5).abs() < 0.01);
    }

    #[test]
    fn draw_ext_matches_sample() {
        let d = Dist::Uniform { lo: 0.0, hi: 1.0 };
        let mut r1 = rng(9);
        let mut r2 = rng(9);
        assert_eq!(r1.draw(d), d.sample(&mut r2));
    }

    #[test]
    fn poisson_moments_small_lambda() {
        let mut r = rng(21);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| poisson(&mut r, 3.5) as f64).collect();
        let m = crate::mean(&xs).unwrap();
        let v = crate::stddev(&xs).unwrap().powi(2);
        assert!((m - 3.5).abs() < 0.05, "mean {m}");
        assert!((v - 3.5).abs() < 0.15, "var {v}");
    }

    #[test]
    fn poisson_moments_large_lambda() {
        let mut r = rng(22);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| poisson(&mut r, 120.0) as f64).collect();
        let m = crate::mean(&xs).unwrap();
        assert!((m - 120.0).abs() < 0.5, "mean {m}");
    }

    #[test]
    fn poisson_degenerate() {
        let mut r = rng(23);
        assert_eq!(poisson(&mut r, 0.0), 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let d = Dist::Normal { mean: 0.0, sd: 1.0 };
        let a: Vec<f64> = {
            let mut r = rng(99);
            (0..10).map(|_| d.sample(&mut r)).collect()
        };
        let b: Vec<f64> = {
            let mut r = rng(99);
            (0..10).map(|_| d.sample(&mut r)).collect()
        };
        assert_eq!(a, b);
    }
}
