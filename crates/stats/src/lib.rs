//! # mesh11-stats
//!
//! Statistics substrate for the `mesh11` toolkit.
//!
//! Every analysis in the paper — CDFs of SNR standard deviations (Fig 3.1),
//! throughput-penalty CDFs (Fig 4.4), improvement CDFs (Fig 5.1), binned
//! median/quartile curves (Fig 4.5), mean ± σ bar series (Figs 5.5, 6.2) —
//! reduces to a handful of empirical-statistics primitives. This crate
//! provides those primitives with well-defined semantics, plus the seeded
//! random distributions the simulator substrate draws from.
//!
//! ## Modules
//!
//! * [`cdf`] — empirical cumulative distribution functions with exact
//!   inverse-quantile queries.
//! * [`summary`] — streaming (Welford) and batch summary statistics.
//! * [`histogram`] — fixed-width binned counts.
//! * [`binned`] — binned statistics of `y` grouped by `x` bins (median /
//!   quartiles / mean ± σ per bin), the engine behind the paper's
//!   "curve with error bars" figures.
//! * [`correlation`] — Pearson and Spearman correlation coefficients.
//! * [`dist`] — deterministic distributions (normal via Box–Muller,
//!   lognormal, exponential, bounded Pareto, discrete lognormal) layered on
//!   any [`rand::Rng`], so the simulator does not need `rand_distr`.
//!
//! ## Quantile convention
//!
//! All quantile computations use linear interpolation between order
//! statistics (type-7 in Hyndman–Fan terminology, the R/NumPy default), so
//! medians and quartiles agree with what the paper's plotting scripts
//! (gnuplot/NumPy-era) would have produced.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binned;
pub mod cdf;
pub mod ci;
pub mod correlation;
pub mod dist;
pub mod histogram;
pub mod summary;

pub use binned::BinnedStats;
pub use cdf::Cdf;
pub use ci::{mean_ci95, t_crit_975};
pub use correlation::{pearson, spearman};
pub use dist::{Dist, DrawExt};
pub use histogram::Histogram;
pub use summary::{OnlineSummary, Summary};

/// Linear-interpolation quantile (Hyndman–Fan type 7) of a **sorted** slice.
///
/// `q` is clamped to `[0, 1]`. Returns `None` on an empty slice.
///
/// ```
/// let xs = [1.0, 2.0, 3.0, 4.0];
/// assert_eq!(mesh11_stats::quantile_sorted(&xs, 0.5), Some(2.5));
/// assert_eq!(mesh11_stats::quantile_sorted(&xs, 0.0), Some(1.0));
/// assert_eq!(mesh11_stats::quantile_sorted(&xs, 1.0), Some(4.0));
/// ```
pub fn quantile_sorted(sorted: &[f64], q: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        return Some(sorted[lo]);
    }
    let frac = pos - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Quantile of an unsorted slice; sorts a copy internally.
///
/// Non-finite values are rejected by debug assertion; callers are expected to
/// filter NaNs at ingestion.
pub fn quantile(values: &[f64], q: f64) -> Option<f64> {
    debug_assert!(values.iter().all(|v| v.is_finite()));
    let mut v = values.to_vec();
    v.sort_by(|a, b| {
        a.partial_cmp(b)
            .expect("non-finite value in quantile input")
    });
    quantile_sorted(&v, q)
}

/// Median shorthand over an unsorted slice.
pub fn median(values: &[f64]) -> Option<f64> {
    quantile(values, 0.5)
}

/// Arithmetic mean; `None` on an empty slice.
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

/// Sample standard deviation (n−1 denominator); `None` for fewer than two
/// samples.
pub fn stddev(values: &[f64]) -> Option<f64> {
    if values.len() < 2 {
        return None;
    }
    let m = mean(values)?;
    let ss: f64 = values.iter().map(|v| (v - m) * (v - m)).sum();
    Some((ss / (values.len() - 1) as f64).sqrt())
}

/// Population standard deviation (n denominator); `None` on an empty slice.
///
/// Fig 3.1 reports the spread of a *complete* probe set (all rates observed),
/// for which the population form is the faithful statistic.
pub fn stddev_pop(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let m = mean(values)?;
    let ss: f64 = values.iter().map(|v| (v - m) * (v - m)).sum();
    Some((ss / values.len() as f64).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_singleton() {
        assert_eq!(quantile(&[7.0], 0.0), Some(7.0));
        assert_eq!(quantile(&[7.0], 0.5), Some(7.0));
        assert_eq!(quantile(&[7.0], 1.0), Some(7.0));
    }

    #[test]
    fn quantile_empty_is_none() {
        assert_eq!(quantile(&[], 0.5), None);
        assert_eq!(median(&[]), None);
        assert_eq!(mean(&[]), None);
        assert_eq!(stddev_pop(&[]), None);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [10.0, 20.0];
        assert_eq!(quantile(&xs, 0.25), Some(12.5));
        assert_eq!(quantile(&xs, 0.75), Some(17.5));
    }

    #[test]
    fn quantile_unsorted_input() {
        let xs = [3.0, 1.0, 2.0];
        assert_eq!(median(&xs), Some(2.0));
    }

    #[test]
    fn quantile_clamps_out_of_range_q() {
        let xs = [1.0, 2.0, 3.0];
        assert_eq!(quantile(&xs, -0.5), Some(1.0));
        assert_eq!(quantile(&xs, 1.5), Some(3.0));
    }

    #[test]
    fn mean_and_stddev_basic() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), Some(5.0));
        // Known population sigma of this classic example is 2.0.
        assert!((stddev_pop(&xs).unwrap() - 2.0).abs() < 1e-12);
        // Sample sigma is sqrt(32/7).
        assert!((stddev(&xs).unwrap() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn stddev_needs_two_samples() {
        assert_eq!(stddev(&[1.0]), None);
        assert_eq!(stddev_pop(&[1.0]), Some(0.0));
    }
}
