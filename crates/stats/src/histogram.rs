//! Fixed-width histograms.
//!
//! Used directly by Fig 7.1 (number of APs visited by clients) and as the
//! bucketing substrate for the SNR-keyed lookup tables in `mesh11-core`
//! (which bucket by integer dB).

use serde::{Deserialize, Serialize};

/// A histogram with uniform bin width over `[lo, hi)`.
///
/// Samples below `lo` land in an underflow counter, samples at or above `hi`
/// in an overflow counter, so no input is silently dropped.
///
/// ```
/// use mesh11_stats::Histogram;
/// let mut h = Histogram::new(0.0, 10.0, 5).unwrap();
/// h.push(1.0);
/// h.push(3.0);
/// h.push(42.0);
/// assert_eq!(h.counts(), &[1, 1, 0, 0, 0]);
/// assert_eq!(h.overflow(), 1);
/// assert_eq!(h.total(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` uniform bins.
    ///
    /// Returns `None` when `bins == 0`, `lo >= hi`, or either bound is
    /// non-finite.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Option<Self> {
        if bins == 0 || lo >= hi || !lo.is_finite() || !hi.is_finite() {
            return None;
        }
        Some(Self {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        })
    }

    /// Adds one sample.
    pub fn push(&mut self, x: f64) {
        debug_assert!(x.is_finite());
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.counts.len() as f64;
            let idx = (((x - self.lo) / width) as usize).min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Per-bin counts (in-range samples only).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Count of samples below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Count of samples at or above the range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total samples pushed, including out-of-range ones.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Center of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + (i as f64 + 0.5) * width
    }

    /// Iterator over `(bin_center, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.bin_center(i), c))
    }

    /// The in-range bin with the largest count, as `(bin_center, count)`.
    /// Ties break toward the lower bin. `None` if every bin is empty.
    pub fn mode(&self) -> Option<(f64, u64)> {
        let (idx, &best) = self
            .counts
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))?;
        (best > 0).then(|| (self.bin_center(idx), best))
    }
}

/// A histogram over non-negative integer values (e.g. "number of APs
/// visited"), with exact per-value counts and a capped tail.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IntHistogram {
    counts: Vec<u64>,
    /// Values ≥ `counts.len()` are accumulated here (the "50+ APs" tail of
    /// Fig 7.1).
    tail: u64,
    tail_max: u64,
}

impl IntHistogram {
    /// Creates a histogram with exact counts for values `0..cap` and a
    /// single tail bucket for values `>= cap`.
    pub fn new(cap: usize) -> Self {
        Self {
            counts: vec![0; cap.max(1)],
            tail: 0,
            tail_max: 0,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, v: u64) {
        if (v as usize) < self.counts.len() {
            self.counts[v as usize] += 1;
        } else {
            self.tail += 1;
            self.tail_max = self.tail_max.max(v);
        }
    }

    /// Exact per-value counts for values below the cap.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Count of observations at or beyond the cap.
    pub fn tail(&self) -> u64 {
        self.tail
    }

    /// Largest value ever pushed into the tail (0 if none).
    pub fn tail_max(&self) -> u64 {
        self.tail_max
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.tail
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rejects_degenerate_ranges() {
        assert!(Histogram::new(0.0, 0.0, 4).is_none());
        assert!(Histogram::new(1.0, 0.0, 4).is_none());
        assert!(Histogram::new(0.0, 1.0, 0).is_none());
        assert!(Histogram::new(f64::NAN, 1.0, 4).is_none());
    }

    #[test]
    fn boundary_samples() {
        let mut h = Histogram::new(0.0, 10.0, 10).unwrap();
        h.push(0.0); // first bin
        h.push(10.0); // overflow (hi is exclusive)
        h.push(9.9999); // last bin
        h.push(-0.0001); // underflow
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[9], 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn bin_centers() {
        let h = Histogram::new(0.0, 10.0, 5).unwrap();
        assert_eq!(h.bin_center(0), 1.0);
        assert_eq!(h.bin_center(4), 9.0);
    }

    #[test]
    fn mode_and_ties() {
        let mut h = Histogram::new(0.0, 4.0, 4).unwrap();
        assert_eq!(h.mode(), None);
        h.push(0.5);
        h.push(2.5);
        h.push(2.5);
        assert_eq!(h.mode(), Some((2.5, 2)));
    }

    #[test]
    fn int_histogram_tail() {
        let mut h = IntHistogram::new(4);
        for v in [0, 1, 1, 3, 4, 99] {
            h.push(v);
        }
        assert_eq!(h.counts(), &[1, 2, 0, 1]);
        assert_eq!(h.tail(), 2);
        assert_eq!(h.tail_max(), 99);
        assert_eq!(h.total(), 6);
    }

    proptest! {
        #[test]
        fn no_sample_lost(xs in proptest::collection::vec(-100.0f64..200.0, 0..300)) {
            let mut h = Histogram::new(0.0, 100.0, 17).unwrap();
            for &x in &xs { h.push(x); }
            prop_assert_eq!(h.total(), xs.len() as u64);
        }

        #[test]
        fn int_histogram_total(xs in proptest::collection::vec(0u64..500, 0..200)) {
            let mut h = IntHistogram::new(50);
            for &x in &xs { h.push(x); }
            prop_assert_eq!(h.total(), xs.len() as u64);
        }
    }
}
