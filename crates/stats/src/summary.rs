//! Batch and streaming summary statistics.
//!
//! [`Summary`] is the batch form (computed once from a slice);
//! [`OnlineSummary`] is the Welford streaming form, used by the simulator's
//! sliding-window estimators and by long campaign reductions where storing
//! every sample would be wasteful.

use serde::{Deserialize, Serialize};

use crate::{quantile_sorted, stddev, stddev_pop};

/// Five-number-plus summary of a batch of samples.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1); 0 for a single sample.
    pub stddev: f64,
    /// Population standard deviation (n).
    pub stddev_pop: f64,
    /// Minimum.
    pub min: f64,
    /// Lower quartile (type-7).
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Upper quartile (type-7).
    pub q3: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Computes a summary; `None` on an empty slice or any non-finite value.
    pub fn of(values: &[f64]) -> Option<Self> {
        if values.is_empty() || values.iter().any(|v| !v.is_finite()) {
            return None;
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        Some(Self {
            count: values.len(),
            mean: values.iter().sum::<f64>() / values.len() as f64,
            stddev: stddev(values).unwrap_or(0.0),
            stddev_pop: stddev_pop(values).expect("non-empty"),
            min: sorted[0],
            q1: quantile_sorted(&sorted, 0.25).expect("non-empty"),
            median: quantile_sorted(&sorted, 0.5).expect("non-empty"),
            q3: quantile_sorted(&sorted, 0.75).expect("non-empty"),
            max: *sorted.last().expect("non-empty"),
        })
    }

    /// Interquartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

/// Streaming mean/variance/extrema via Welford's algorithm.
///
/// Numerically stable for long streams; merging two summaries
/// ([`OnlineSummary::merge`]) uses the parallel-variance formula, which lets
/// per-network reductions combine across threads.
///
/// ```
/// use mesh11_stats::OnlineSummary;
/// let mut s = OnlineSummary::new();
/// for x in [1.0, 2.0, 3.0] { s.push(x); }
/// assert_eq!(s.mean(), 2.0);
/// assert_eq!(s.count(), 3);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct OnlineSummary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineSummary {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    pub fn push(&mut self, x: f64) {
        debug_assert!(x.is_finite());
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples seen.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Running mean; 0 before any sample.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample variance (n−1); `None` for fewer than two samples.
    pub fn variance(&self) -> Option<f64> {
        if self.count < 2 {
            None
        } else {
            Some(self.m2 / (self.count - 1) as f64)
        }
    }

    /// Population variance (n); `None` before any sample.
    pub fn variance_pop(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.m2 / self.count as f64)
        }
    }

    /// Sample standard deviation; `None` for fewer than two samples.
    pub fn stddev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Population standard deviation; `None` before any sample.
    pub fn stddev_pop(&self) -> Option<f64> {
        self.variance_pop().map(f64::sqrt)
    }

    /// Minimum seen; `None` before any sample.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum seen; `None` before any sample.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one (parallel variance
    /// combination, Chan et al.).
    pub fn merge(&mut self, other: &OnlineSummary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl FromIterator<f64> for OnlineSummary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Self::new();
        for x in iter {
            s.push(x);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn summary_basic() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.count, 5);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.q3, 4.0);
        assert_eq!(s.iqr(), 2.0);
    }

    #[test]
    fn summary_rejects_bad_input() {
        assert!(Summary::of(&[]).is_none());
        assert!(Summary::of(&[f64::NAN]).is_none());
    }

    #[test]
    fn summary_single_sample() {
        let s = Summary::of(&[42.0]).unwrap();
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.stddev_pop, 0.0);
        assert_eq!(s.min, 42.0);
        assert_eq!(s.max, 42.0);
    }

    #[test]
    fn online_empty_behaviour() {
        let s = OnlineSummary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn online_matches_batch() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let s: OnlineSummary = xs.iter().copied().collect();
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.stddev_pop().unwrap() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn merge_identity() {
        let mut a: OnlineSummary = [1.0, 2.0].into_iter().collect();
        let empty = OnlineSummary::new();
        let before = a;
        a.merge(&empty);
        assert_eq!(a, before);

        let mut e = OnlineSummary::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    proptest! {
        #[test]
        fn merge_equals_concat(xs in proptest::collection::vec(-1e3f64..1e3, 0..50),
                               ys in proptest::collection::vec(-1e3f64..1e3, 0..50)) {
            let mut merged: OnlineSummary = xs.iter().copied().collect();
            let right: OnlineSummary = ys.iter().copied().collect();
            merged.merge(&right);

            let concat: OnlineSummary = xs.iter().chain(ys.iter()).copied().collect();
            prop_assert_eq!(merged.count(), concat.count());
            prop_assert!((merged.mean() - concat.mean()).abs() < 1e-6);
            match (merged.variance(), concat.variance()) {
                (Some(a), Some(b)) => prop_assert!((a - b).abs() < 1e-6),
                (a, b) => prop_assert_eq!(a, b),
            }
        }

        #[test]
        fn online_tracks_batch_mean(xs in proptest::collection::vec(-1e4f64..1e4, 1..200)) {
            let s: OnlineSummary = xs.iter().copied().collect();
            let batch = crate::mean(&xs).unwrap();
            prop_assert!((s.mean() - batch).abs() < 1e-6);
            prop_assert_eq!(s.min().unwrap(), xs.iter().copied().fold(f64::INFINITY, f64::min));
            prop_assert_eq!(s.max().unwrap(), xs.iter().copied().fold(f64::NEG_INFINITY, f64::max));
        }
    }
}
