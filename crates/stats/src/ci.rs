//! Small-sample confidence intervals for multi-seed ensembles.
//!
//! The repro harness runs N seeds of every figure and reports each curve
//! point as `mean ± t·s/√N` across seeds. N is small (4–16 in practice),
//! so the normal 1.96 would understate the interval badly — at N = 4 the
//! correct multiplier is 3.18. The two-sided 95% Student-t critical values
//! are tabulated exactly for the df range an ensemble can reach; beyond the
//! table the t distribution is within half a percent of normal and the
//! asymptotic value is used.

/// Two-sided 95% Student-t critical value (the 0.975 quantile) for `df`
/// degrees of freedom. `df = 0` (a single seed: no spread estimate) returns
/// infinity — a one-point "interval" is unbounded, and callers treat it as
/// "no interval".
pub fn t_crit_975(df: usize) -> f64 {
    /// 0.975 quantiles for df 1..=30 (standard table, 3 decimals).
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    match df {
        0 => f64::INFINITY,
        1..=30 => TABLE[df - 1],
        _ => 1.960,
    }
}

/// Mean and 95% t-interval half-width of a sample: `(mean, t·s/√n)`.
/// `None` for an empty sample; a single observation yields an infinite
/// half-width (see [`t_crit_975`]).
pub fn mean_ci95(values: &[f64]) -> Option<(f64, f64)> {
    let mean = crate::mean(values)?;
    if values.len() < 2 {
        return Some((mean, f64::INFINITY));
    }
    let sd = crate::stddev(values)?;
    let half = t_crit_975(values.len() - 1) * sd / (values.len() as f64).sqrt();
    Some((mean, half))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t_table_edges() {
        assert!(t_crit_975(0).is_infinite());
        assert_eq!(t_crit_975(1), 12.706);
        assert_eq!(t_crit_975(3), 3.182);
        assert_eq!(t_crit_975(30), 2.042);
        assert_eq!(t_crit_975(31), 1.960);
        assert_eq!(t_crit_975(10_000), 1.960);
        // Monotone non-increasing in df.
        for df in 1..40 {
            assert!(t_crit_975(df + 1) <= t_crit_975(df), "df {df}");
        }
    }

    #[test]
    fn mean_ci_matches_hand_computation() {
        assert_eq!(mean_ci95(&[]), None);
        let (m, h) = mean_ci95(&[3.0]).unwrap();
        assert_eq!(m, 3.0);
        assert!(h.is_infinite());
        // n = 4: mean 2.5, s = √(5/3), half = 3.182·s/2.
        let (m, h) = mean_ci95(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert!((m - 2.5).abs() < 1e-12);
        let s = (5.0f64 / 3.0).sqrt();
        assert!((h - 3.182 * s / 2.0).abs() < 1e-12, "half {h}");
        // Identical values → zero-width interval.
        let (_, h) = mean_ci95(&[7.0; 8]).unwrap();
        assert_eq!(h, 0.0);
    }

    #[test]
    fn coverage_is_roughly_95_percent() {
        // Draw many n=6 N(0,1) samples; the t-interval should cover the
        // true mean (0) ~95% of the time.
        use crate::dist::derive_seed;
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let mut covered = 0;
        let trials = 2_000;
        for i in 0..trials {
            let mut rng = SmallRng::seed_from_u64(derive_seed(777, i));
            let xs: Vec<f64> = (0..6)
                .map(|_| crate::dist::standard_normal(&mut rng))
                .collect();
            let (m, h) = mean_ci95(&xs).unwrap();
            if (m - 0.0).abs() <= h {
                covered += 1;
            }
        }
        let frac = covered as f64 / trials as f64;
        assert!((0.93..=0.97).contains(&frac), "coverage {frac}");
    }
}
