//! Empirical cumulative distribution functions.
//!
//! Nearly every figure in the paper is a CDF. [`Cdf`] stores the sorted
//! sample and answers both directions of query exactly:
//!
//! * `F(x)` — fraction of samples ≤ x ([`Cdf::eval`]), the y-value a plotted
//!   CDF would show at x;
//! * `F⁻¹(q)` — the q-quantile ([`Cdf::quantile`]).

use serde::{Deserialize, Serialize};

use crate::quantile_sorted;

/// An empirical CDF over a finite sample.
///
/// Construction sorts once (`O(n log n)`); queries are `O(log n)`.
///
/// ```
/// use mesh11_stats::Cdf;
/// let cdf = Cdf::from_samples([3.0, 1.0, 2.0, 4.0]).unwrap();
/// assert_eq!(cdf.eval(2.5), 0.5);
/// assert_eq!(cdf.quantile(0.5), 2.5);
/// assert_eq!(cdf.min(), 1.0);
/// assert_eq!(cdf.max(), 4.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from any iterable of samples.
    ///
    /// Returns `None` if the sample is empty or contains a non-finite value
    /// (NaN/±∞ have no place on a CDF axis; filter them upstream).
    pub fn from_samples<I: IntoIterator<Item = f64>>(samples: I) -> Option<Self> {
        let mut sorted: Vec<f64> = samples.into_iter().collect();
        if sorted.is_empty() || sorted.iter().any(|v| !v.is_finite()) {
            return None;
        }
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare totally"));
        Some(Self { sorted })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always `false`: an empty CDF cannot be constructed.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Smallest sample.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Largest sample.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("non-empty by construction")
    }

    /// `F(x)`: fraction of samples `≤ x`, in `[0, 1]`.
    pub fn eval(&self, x: f64) -> f64 {
        // partition_point gives the index of the first element > x,
        // i.e. the count of elements <= x.
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// `F⁻¹(q)`: the q-quantile with linear interpolation (type 7).
    pub fn quantile(&self, q: f64) -> f64 {
        quantile_sorted(&self.sorted, q).expect("non-empty by construction")
    }

    /// Median shorthand.
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Mean of the sample.
    pub fn mean(&self) -> f64 {
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }

    /// Fraction of samples strictly below `x`.
    pub fn frac_below(&self, x: f64) -> f64 {
        let count = self.sorted.partition_point(|&v| v < x);
        count as f64 / self.sorted.len() as f64
    }

    /// Fraction of samples `≥ x`.
    pub fn frac_at_least(&self, x: f64) -> f64 {
        1.0 - self.frac_below(x)
    }

    /// The sorted sample, for direct plotting as `(x, i/n)` steps.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }

    /// Two-sample Kolmogorov–Smirnov distance: `sup_x |F(x) − G(x)|`.
    ///
    /// Used by the seed-stability checks: two reproduction runs with
    /// different seeds should produce figure CDFs within a small KS
    /// distance of each other, or the "reproduced shape" claim is fragile.
    ///
    /// ```
    /// use mesh11_stats::Cdf;
    /// let a = Cdf::from_samples([1.0, 2.0, 3.0, 4.0]).unwrap();
    /// let b = Cdf::from_samples([1.0, 2.0, 3.0, 4.0]).unwrap();
    /// assert_eq!(a.ks_distance(&b), 0.0);
    /// ```
    pub fn ks_distance(&self, other: &Cdf) -> f64 {
        // The supremum is attained at a sample point of either CDF; walk
        // both sorted samples once.
        let mut max = 0.0f64;
        for &x in self.samples().iter().chain(other.samples()) {
            max = max.max((self.eval(x) - other.eval(x)).abs());
            // Also just below x (the left limit of the step).
            max = max.max((self.frac_below(x) - other.frac_below(x)).abs());
        }
        max
    }

    /// Downsamples the CDF to `n` evenly spaced quantile points
    /// `(F⁻¹(q), q)`, suitable for compact figure-series export.
    ///
    /// Always includes the endpoints `(min, ~0)` and `(max, 1)`.
    pub fn points(&self, n: usize) -> Vec<(f64, f64)> {
        let n = n.max(2);
        (0..n)
            .map(|i| {
                let q = i as f64 / (n - 1) as f64;
                (self.quantile(q), q)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rejects_empty_and_nan() {
        assert!(Cdf::from_samples([]).is_none());
        assert!(Cdf::from_samples([1.0, f64::NAN]).is_none());
        assert!(Cdf::from_samples([f64::INFINITY]).is_none());
    }

    #[test]
    fn eval_step_semantics() {
        let cdf = Cdf::from_samples([1.0, 2.0, 2.0, 3.0]).unwrap();
        assert_eq!(cdf.eval(0.5), 0.0);
        assert_eq!(cdf.eval(1.0), 0.25);
        assert_eq!(cdf.eval(2.0), 0.75); // ties counted inclusively
        assert_eq!(cdf.eval(3.0), 1.0);
        assert_eq!(cdf.eval(99.0), 1.0);
    }

    #[test]
    fn frac_below_vs_eval() {
        let cdf = Cdf::from_samples([1.0, 2.0, 2.0, 3.0]).unwrap();
        assert_eq!(cdf.frac_below(2.0), 0.25);
        assert_eq!(cdf.eval(2.0), 0.75);
        assert_eq!(cdf.frac_at_least(2.0), 0.75);
    }

    #[test]
    fn quantile_endpoints() {
        let cdf = Cdf::from_samples([5.0, 1.0, 3.0]).unwrap();
        assert_eq!(cdf.quantile(0.0), 1.0);
        assert_eq!(cdf.quantile(1.0), 5.0);
        assert_eq!(cdf.median(), 3.0);
    }

    #[test]
    fn points_cover_endpoints() {
        let cdf = Cdf::from_samples([1.0, 2.0, 3.0, 4.0]).unwrap();
        let pts = cdf.points(5);
        assert_eq!(pts.len(), 5);
        assert_eq!(pts[0], (1.0, 0.0));
        assert_eq!(pts[4], (4.0, 1.0));
    }

    #[test]
    fn ks_distance_basics() {
        let a = Cdf::from_samples([1.0, 2.0, 3.0]).unwrap();
        assert_eq!(a.ks_distance(&a), 0.0);
        // Disjoint supports: distance 1.
        let far = Cdf::from_samples([10.0, 11.0]).unwrap();
        assert_eq!(a.ks_distance(&far), 1.0);
        // Symmetric.
        let b = Cdf::from_samples([1.5, 2.5, 3.5]).unwrap();
        assert_eq!(a.ks_distance(&b), b.ks_distance(&a));
        // A shifted copy of a 3-sample CDF differs by exactly one step.
        assert!((a.ks_distance(&b) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn serde_round_trip() {
        let cdf = Cdf::from_samples([2.0, 1.0]).unwrap();
        let json = serde_json::to_string(&cdf).unwrap();
        let back: Cdf = serde_json::from_str(&json).unwrap();
        assert_eq!(cdf, back);
    }

    proptest! {
        #[test]
        fn eval_is_monotone(mut xs in proptest::collection::vec(-1e6f64..1e6, 1..200),
                            a in -1e6f64..1e6, b in -1e6f64..1e6) {
            xs.iter_mut().for_each(|x| *x = x.trunc());
            let cdf = Cdf::from_samples(xs).unwrap();
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(cdf.eval(lo) <= cdf.eval(hi));
        }

        #[test]
        fn eval_bounded(xs in proptest::collection::vec(-1e6f64..1e6, 1..200), x in -2e6f64..2e6) {
            let cdf = Cdf::from_samples(xs).unwrap();
            let y = cdf.eval(x);
            prop_assert!((0.0..=1.0).contains(&y));
        }

        #[test]
        fn quantile_is_monotone(xs in proptest::collection::vec(-1e6f64..1e6, 1..200),
                                q1 in 0.0f64..1.0, q2 in 0.0f64..1.0) {
            let cdf = Cdf::from_samples(xs).unwrap();
            let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
            prop_assert!(cdf.quantile(lo) <= cdf.quantile(hi) + 1e-9);
        }

        #[test]
        fn quantile_within_range(xs in proptest::collection::vec(-1e6f64..1e6, 1..200),
                                 q in 0.0f64..1.0) {
            let cdf = Cdf::from_samples(xs).unwrap();
            let v = cdf.quantile(q);
            prop_assert!(v >= cdf.min() - 1e-9 && v <= cdf.max() + 1e-9);
        }

        #[test]
        fn eval_of_quantile_at_least_q(xs in proptest::collection::vec(-1e3f64..1e3, 1..100),
                                       q in 0.0f64..1.0) {
            // F(F^-1(q)) >= q up to interpolation slack at sample boundaries.
            let cdf = Cdf::from_samples(xs).unwrap();
            let v = cdf.quantile(q);
            prop_assert!(cdf.eval(v + 1e-6) >= q - 1.0 / cdf.len() as f64 - 1e-9);
        }
    }
}
