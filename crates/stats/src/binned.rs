//! Binned statistics: summaries of `y` values grouped by `x` bins.
//!
//! This is the engine behind the paper's "curve with error bars" figures:
//!
//! * Fig 4.5 — median throughput vs SNR with quartile bars (x = SNR dB,
//!   y = throughput);
//! * Fig 5.4 — median/maximum improvement vs path length;
//! * Fig 5.5 — mean improvement ± σ vs network size;
//! * Fig 6.2 — mean range ratio ± σ vs bit rate.

use serde::{Deserialize, Serialize};

use crate::summary::Summary;

/// Accumulates `(x, y)` pairs into integer-keyed x-bins and summarizes the
/// `y` population of each bin.
///
/// The caller supplies the binning function at push time (commonly
/// `x.round() as i64` for SNR dB, or an identity for already-discrete
/// x-values like hop counts).
///
/// ```
/// use mesh11_stats::BinnedStats;
/// let mut b = BinnedStats::new();
/// b.push(1, 10.0);
/// b.push(1, 20.0);
/// b.push(2, 5.0);
/// let rows = b.rows();
/// assert_eq!(rows.len(), 2);
/// assert_eq!(rows[0].0, 1);
/// assert_eq!(rows[0].1.median, 15.0);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct BinnedStats {
    bins: std::collections::BTreeMap<i64, Vec<f64>>,
}

impl BinnedStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a sample `y` to bin `x`.
    pub fn push(&mut self, x: i64, y: f64) {
        debug_assert!(y.is_finite());
        self.bins.entry(x).or_default().push(y);
    }

    /// Number of non-empty bins.
    pub fn len(&self) -> usize {
        self.bins.len()
    }

    /// True when no sample has been pushed.
    pub fn is_empty(&self) -> bool {
        self.bins.is_empty()
    }

    /// Raw samples of a bin, if present.
    pub fn bin(&self, x: i64) -> Option<&[f64]> {
        self.bins.get(&x).map(Vec::as_slice)
    }

    /// Summary rows `(x, Summary)` in ascending x order.
    pub fn rows(&self) -> Vec<(i64, Summary)> {
        self.bins
            .iter()
            .map(|(&x, ys)| (x, Summary::of(ys).expect("bins are non-empty and finite")))
            .collect()
    }

    /// Iterator over `(x, &samples)` in ascending x order.
    pub fn iter(&self) -> impl Iterator<Item = (i64, &[f64])> + '_ {
        self.bins.iter().map(|(&x, ys)| (x, ys.as_slice()))
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: BinnedStats) {
        for (x, mut ys) in other.bins {
            self.bins.entry(x).or_default().append(&mut ys);
        }
    }
}

impl FromIterator<(i64, f64)> for BinnedStats {
    fn from_iter<I: IntoIterator<Item = (i64, f64)>>(iter: I) -> Self {
        let mut b = Self::new();
        for (x, y) in iter {
            b.push(x, y);
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rows_sorted_by_x() {
        let b: BinnedStats = [(5, 1.0), (-2, 2.0), (3, 3.0)].into_iter().collect();
        let xs: Vec<i64> = b.rows().iter().map(|r| r.0).collect();
        assert_eq!(xs, vec![-2, 3, 5]);
    }

    #[test]
    fn bin_lookup() {
        let b: BinnedStats = [(1, 1.0), (1, 3.0)].into_iter().collect();
        assert_eq!(b.bin(1), Some(&[1.0, 3.0][..]));
        assert_eq!(b.bin(2), None);
        assert_eq!(b.len(), 1);
        assert!(!b.is_empty());
    }

    #[test]
    fn summaries_per_bin() {
        let b: BinnedStats = [(0, 1.0), (0, 2.0), (0, 3.0), (1, 10.0)]
            .into_iter()
            .collect();
        let rows = b.rows();
        assert_eq!(rows[0].1.median, 2.0);
        assert_eq!(rows[0].1.count, 3);
        assert_eq!(rows[1].1.count, 1);
    }

    #[test]
    fn merge_combines_bins() {
        let mut a: BinnedStats = [(0, 1.0)].into_iter().collect();
        let b: BinnedStats = [(0, 3.0), (1, 5.0)].into_iter().collect();
        a.merge(b);
        assert_eq!(a.bin(0), Some(&[1.0, 3.0][..]));
        assert_eq!(a.bin(1), Some(&[5.0][..]));
    }

    proptest! {
        #[test]
        fn total_count_preserved(pairs in proptest::collection::vec((-50i64..50, -1e3f64..1e3), 0..300)) {
            let b: BinnedStats = pairs.iter().copied().collect();
            let total: usize = b.rows().iter().map(|r| r.1.count).sum();
            prop_assert_eq!(total, pairs.len());
        }
    }
}
