//! Per-network specification.

use mesh11_channel::{ChannelParams, Environment};
use mesh11_phy::Phy;
use serde::{Deserialize, Serialize};

use crate::geo::GeoTag;

pub use mesh11_trace::ids::NetworkId;
use mesh11_trace::EnvLabel;

/// Environment classification of a network.
///
/// The paper: 72 indoor, 17 outdoor, 21 mixed; mixed networks are *ignored*
/// when classifying by environment (§3 footnote), which our analyses mirror
/// via [`EnvClass::pure`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum EnvClass {
    /// All nodes indoors.
    Indoor,
    /// All nodes outdoors.
    Outdoor,
    /// A mix of indoor and outdoor nodes.
    Mixed,
}

impl EnvClass {
    /// The pure environment, if this class has one.
    pub fn pure(self) -> Option<Environment> {
        match self {
            EnvClass::Indoor => Some(Environment::Indoor),
            EnvClass::Outdoor => Some(Environment::Outdoor),
            EnvClass::Mixed => None,
        }
    }

    /// Channel parameters for this class. Mixed networks blend the two pure
    /// parameter sets (they are excluded from env-keyed analyses, so only
    /// plausibility matters).
    pub fn channel_params(self) -> ChannelParams {
        match self {
            EnvClass::Indoor => ChannelParams::indoor(),
            EnvClass::Outdoor => ChannelParams::outdoor(),
            EnvClass::Mixed => {
                let i = ChannelParams::indoor();
                let o = ChannelParams::outdoor();
                ChannelParams {
                    pathloss_exponent: (i.pathloss_exponent + o.pathloss_exponent) / 2.0,
                    tx_power_dbm: (i.tx_power_dbm + o.tx_power_dbm) / 2.0,
                    shadow_sigma_db: (i.shadow_sigma_db + o.shadow_sigma_db) / 2.0,
                    interference_prob: (i.interference_prob + o.interference_prob) / 2.0,
                    wall_db: (i.wall_db + o.wall_db) / 2.0,
                    wall_cap_db: (i.wall_cap_db + o.wall_cap_db) / 2.0,
                    ..i
                }
            }
        }
    }

    /// Display-friendly name.
    pub fn name(self) -> &'static str {
        match self {
            EnvClass::Indoor => "indoor",
            EnvClass::Outdoor => "outdoor",
            EnvClass::Mixed => "mixed",
        }
    }

    /// The trace-layer label this class exports to dataset metadata.
    pub fn label(self) -> EnvLabel {
        match self {
            EnvClass::Indoor => EnvLabel::Indoor,
            EnvClass::Outdoor => EnvLabel::Outdoor,
            EnvClass::Mixed => EnvLabel::Mixed,
        }
    }
}

/// Everything needed to instantiate and simulate one network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkSpec {
    /// Campaign-unique id.
    pub id: NetworkId,
    /// Environment class.
    pub env: EnvClass,
    /// The radios this network runs: `[Bg]`, `[Ht]`, or both (the paper has
    /// two dual-radio networks).
    pub radios: Vec<Phy>,
    /// Master seed for every random draw concerning this network.
    pub seed: u64,
    /// AP positions (metres, local planar coordinates).
    pub positions: Vec<(f64, f64)>,
    /// Channel parameters (derived from `env`, stored for transparency).
    pub params: ChannelParams,
    /// Where in the world this network nominally lives.
    pub geo: GeoTag,
}

impl NetworkSpec {
    /// Number of APs.
    pub fn size(&self) -> usize {
        self.positions.len()
    }

    /// Whether the network runs an 802.11b/g radio.
    pub fn has_bg(&self) -> bool {
        self.radios.contains(&Phy::Bg)
    }

    /// Whether the network runs an 802.11n radio.
    pub fn has_ht(&self) -> bool {
        self.radios.contains(&Phy::Ht)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_id() {
        assert_eq!(NetworkId(7).to_string(), "net007");
    }

    #[test]
    fn pure_mapping() {
        assert_eq!(EnvClass::Indoor.pure(), Some(Environment::Indoor));
        assert_eq!(EnvClass::Outdoor.pure(), Some(Environment::Outdoor));
        assert_eq!(EnvClass::Mixed.pure(), None);
    }

    #[test]
    fn mixed_params_between_pure_ones() {
        let m = EnvClass::Mixed.channel_params();
        let i = ChannelParams::indoor();
        let o = ChannelParams::outdoor();
        assert!(m.pathloss_exponent < i.pathloss_exponent);
        assert!(m.pathloss_exponent > o.pathloss_exponent);
        assert!(m.tx_power_dbm > i.tx_power_dbm && m.tx_power_dbm < o.tx_power_dbm);
    }

    #[test]
    fn spec_accessors() {
        let spec = NetworkSpec {
            id: NetworkId(1),
            env: EnvClass::Indoor,
            radios: vec![Phy::Bg, Phy::Ht],
            seed: 1,
            positions: vec![(0.0, 0.0), (10.0, 0.0), (0.0, 10.0)],
            params: ChannelParams::indoor(),
            geo: crate::geo::GeoTag::for_network(0),
        };
        assert_eq!(spec.size(), 3);
        assert!(spec.has_bg() && spec.has_ht());
    }
}
