//! Geographic flavor for the campaign (Fig 1.1).
//!
//! The paper's Fig 1.1 shows networks spread across the world. Nothing in
//! the analysis depends on location, but carrying a plausible tag per
//! network keeps reports and exports honest about what the original data
//! looked like, and gives examples something human-readable to print.

use serde::{Deserialize, Serialize};

/// A city tag attached to a network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeoTag {
    /// City, country.
    pub label: String,
    /// Degrees north.
    pub lat: f64,
    /// Degrees east.
    pub lon: f64,
}

/// World cities with a commercial-mesh-deployment feel, spanning the
/// continents Fig 1.1 covers.
pub const CITIES: &[(&str, f64, f64)] = &[
    ("San Francisco, USA", 37.77, -122.42),
    ("Mountain View, USA", 37.39, -122.08),
    ("New York, USA", 40.71, -74.01),
    ("Boston, USA", 42.36, -71.06),
    ("Austin, USA", 30.27, -97.74),
    ("Portland, USA", 45.52, -122.68),
    ("Toronto, Canada", 43.65, -79.38),
    ("Mexico City, Mexico", 19.43, -99.13),
    ("São Paulo, Brazil", -23.55, -46.63),
    ("Buenos Aires, Argentina", -34.60, -58.38),
    ("London, UK", 51.51, -0.13),
    ("Cambridge, UK", 52.21, 0.12),
    ("Paris, France", 48.86, 2.35),
    ("Berlin, Germany", 52.52, 13.41),
    ("Amsterdam, Netherlands", 52.37, 4.90),
    ("Barcelona, Spain", 41.39, 2.17),
    ("Rome, Italy", 41.90, 12.50),
    ("Athens, Greece", 37.98, 23.73),
    ("Cape Town, South Africa", -33.92, 18.42),
    ("Nairobi, Kenya", -1.29, 36.82),
    ("Dubai, UAE", 25.20, 55.27),
    ("Mumbai, India", 19.08, 72.88),
    ("Bangalore, India", 12.97, 77.59),
    ("Singapore", 1.35, 103.82),
    ("Hong Kong", 22.32, 114.17),
    ("Tokyo, Japan", 35.68, 139.69),
    ("Seoul, South Korea", 37.57, 126.98),
    ("Sydney, Australia", -33.87, 151.21),
    ("Auckland, New Zealand", -36.85, 174.76),
    ("Wellington, New Zealand", -41.29, 174.78),
];

impl GeoTag {
    /// The `i`-th network's tag: cities are cycled, with a small
    /// deterministic coordinate jitter so co-located networks (which the
    /// paper notes exist) do not collapse onto one point.
    pub fn for_network(i: usize) -> Self {
        let (label, lat, lon) = CITIES[i % CITIES.len()];
        let round = (i / CITIES.len()) as f64;
        Self {
            label: label.to_string(),
            lat: lat + 0.01 * round,
            lon: lon + 0.01 * round,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(GeoTag::for_network(5), GeoTag::for_network(5));
    }

    #[test]
    fn cycles_with_jitter() {
        let a = GeoTag::for_network(0);
        let b = GeoTag::for_network(CITIES.len());
        assert_eq!(a.label, b.label);
        assert_ne!((a.lat, a.lon), (b.lat, b.lon));
    }

    #[test]
    fn covers_multiple_continents() {
        // Sanity: latitude spread spans both hemispheres, longitudes both
        // sides of the meridian.
        assert!(CITIES.iter().any(|c| c.1 < 0.0));
        assert!(CITIES.iter().any(|c| c.1 > 0.0));
        assert!(CITIES.iter().any(|c| c.2 < 0.0));
        assert!(CITIES.iter().any(|c| c.2 > 0.0));
        assert!(CITIES.len() >= 25);
    }
}
