//! # mesh11-topo
//!
//! Topology and campaign generation: the synthetic stand-in for the paper's
//! 110 commercially deployed Meraki networks (1407 APs total).
//!
//! The paper publishes the ensemble marginals; we match them exactly:
//!
//! * sizes: min 3, max 203, median 7, mean ≈12.8 (Σ = 1407) — encoded as an
//!   explicit sorted size list in [`sizes`];
//! * PHY: 77 × 802.11b/g, 31 × 802.11n, 2 × both;
//! * environment: 72 indoor, 17 outdoor, 21 mixed (mixed networks are
//!   excluded from environment-keyed analyses, as in the paper);
//! * geographic diversity: each network carries a [`geo::GeoTag`] drawn from
//!   a world-city list (Fig 1.1 flavor; no analysis depends on it).
//!
//! AP placement ([`placement`]) targets realistic neighbour SNRs: jittered
//! grids indoors (15–28 m spacing), sparse near-uniform layouts outdoors
//! (90–180 m), so multi-hop topologies emerge naturally at the band edges.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod geo;
pub mod network;
pub mod placement;
pub mod sizes;

pub use campaign::{Campaign, CampaignSpec};
pub use network::{EnvClass, NetworkId, NetworkSpec};
