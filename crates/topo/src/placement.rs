//! AP placement.
//!
//! Placement aims for the SNR regimes the paper's figures live in: most
//! direct neighbours in the 10–45 dB band, edge pairs falling off the cliff
//! (where hidden triples and multi-hop paths come from).
//!
//! * **Indoor** — jittered grid over a building footprint, 18–32 m spacing:
//!   dense, strongly connected cores with lossy diagonals.
//! * **Outdoor** — sequential random placement with a minimum-separation
//!   rule over a larger field, 130–260 m spacing: sparse, chainy topologies.

use mesh11_channel::{ChannelParams, Environment};
use mesh11_stats::dist::derive_seed_str;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

use crate::network::EnvClass;

/// Places `n` APs for an environment class; deterministic in `seed`.
pub fn place(env: EnvClass, n: usize, seed: u64) -> Vec<(f64, f64)> {
    let mut rng = SmallRng::seed_from_u64(derive_seed_str(seed, "placement"));
    match env {
        EnvClass::Indoor => jittered_grid(n, 18.0, 32.0, &mut rng),
        EnvClass::Outdoor => spread_field(n, 130.0, 260.0, &mut rng),
        // Mixed: an indoor-spaced core with an outdoor-spaced fringe.
        EnvClass::Mixed => {
            let core = n - n / 3;
            let mut pts = jittered_grid(core, 18.0, 32.0, &mut rng);
            let fringe = spread_field(n - core, 80.0, 150.0, &mut rng);
            // Offset the fringe so it surrounds rather than overlaps.
            let max_x = pts.iter().map(|p| p.0).fold(0.0, f64::max);
            pts.extend(fringe.into_iter().map(|(x, y)| (x + max_x + 40.0, y)));
            pts
        }
    }
}

/// Grid with per-network spacing and per-AP jitter.
fn jittered_grid(
    n: usize,
    min_spacing: f64,
    max_spacing: f64,
    rng: &mut SmallRng,
) -> Vec<(f64, f64)> {
    let spacing = rng.random_range(min_spacing..max_spacing);
    let cols = (n as f64).sqrt().ceil() as usize;
    let jitter = 0.35 * spacing;
    (0..n)
        .map(|i| {
            let (row, col) = (i / cols, i % cols);
            (
                col as f64 * spacing + rng.random_range(-jitter..jitter),
                row as f64 * spacing + rng.random_range(-jitter..jitter),
            )
        })
        .collect()
}

/// Random placement over a field sized for the target spacing, with a
/// minimum-separation rule (half the target spacing) enforced by retry.
fn spread_field(
    n: usize,
    min_spacing: f64,
    max_spacing: f64,
    rng: &mut SmallRng,
) -> Vec<(f64, f64)> {
    if n == 0 {
        return Vec::new();
    }
    let spacing = rng.random_range(min_spacing..max_spacing);
    let side = spacing * (n as f64).sqrt() * 1.1;
    let min_sep = spacing * 0.5;
    let mut pts: Vec<(f64, f64)> = Vec::with_capacity(n);
    for _ in 0..n {
        let mut attempts = 0;
        loop {
            let cand = (rng.random_range(0.0..side), rng.random_range(0.0..side));
            let ok = pts
                .iter()
                .all(|p| mesh11_channel::pathloss::distance(*p, cand) >= min_sep);
            if ok || attempts > 200 {
                pts.push(cand);
                break;
            }
            attempts += 1;
        }
    }
    pts
}

/// Diagnostic: fraction of unordered AP pairs whose deterministic mean SNR
/// (no shadowing/hardware) falls in the "hearable" band `[lo, hi]` dB.
/// Used by tests to check that placements produce usable meshes.
pub fn hearable_fraction(
    positions: &[(f64, f64)],
    params: &ChannelParams,
    lo_db: f64,
    hi_db: f64,
) -> f64 {
    let n = positions.len();
    if n < 2 {
        return 0.0;
    }
    let mut hits = 0usize;
    let mut total = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            let d = mesh11_channel::pathloss::distance(positions[i], positions[j]);
            let snr = params.mean_snr_at(d);
            if (lo_db..=hi_db).contains(&snr) {
                hits += 1;
            }
            total += 1;
        }
    }
    hits as f64 / total as f64
}

/// Convenience: the pure environment params used by placement sanity checks.
pub fn params_for(env: EnvClass) -> ChannelParams {
    match env.pure() {
        Some(Environment::Indoor) => ChannelParams::indoor(),
        Some(Environment::Outdoor) => ChannelParams::outdoor(),
        None => EnvClass::Mixed.channel_params(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(place(EnvClass::Indoor, 9, 7), place(EnvClass::Indoor, 9, 7));
        assert_ne!(place(EnvClass::Indoor, 9, 7), place(EnvClass::Indoor, 9, 8));
    }

    #[test]
    fn correct_counts() {
        for env in [EnvClass::Indoor, EnvClass::Outdoor, EnvClass::Mixed] {
            for n in [1, 3, 7, 20, 60] {
                assert_eq!(place(env, n, 1).len(), n, "{env:?} n={n}");
            }
        }
    }

    #[test]
    fn no_coincident_aps() {
        for env in [EnvClass::Indoor, EnvClass::Outdoor] {
            let pts = place(env, 30, 3);
            for i in 0..pts.len() {
                for j in (i + 1)..pts.len() {
                    let d = mesh11_channel::pathloss::distance(pts[i], pts[j]);
                    assert!(d > 1.0, "{env:?}: APs {i},{j} only {d} m apart");
                }
            }
        }
    }

    #[test]
    fn indoor_meshes_are_usable() {
        // Direct-neighbour pairs should commonly land in the hearable band.
        let mut fracs = Vec::new();
        for seed in 0..20 {
            let pts = place(EnvClass::Indoor, 9, seed);
            fracs.push(hearable_fraction(&pts, &ChannelParams::indoor(), 5.0, 55.0));
        }
        let avg = mesh11_stats::mean(&fracs).unwrap();
        assert!(avg > 0.4, "indoor hearable fraction too low: {avg}");
    }

    #[test]
    fn outdoor_sparser_than_indoor() {
        let mut ratios = Vec::new();
        for seed in 0..10 {
            let ind = hearable_fraction(
                &place(EnvClass::Indoor, 16, seed),
                &ChannelParams::indoor(),
                10.0,
                90.0,
            );
            let out = hearable_fraction(
                &place(EnvClass::Outdoor, 16, seed),
                &ChannelParams::outdoor(),
                10.0,
                90.0,
            );
            ratios.push(ind - out);
        }
        // On average the indoor placements are better-connected.
        assert!(mesh11_stats::mean(&ratios).unwrap() > 0.0);
    }

    #[test]
    fn large_networks_multihop() {
        // In a 60-AP indoor network, far-corner pairs must be out of direct
        // range (mean SNR < 5 dB) so routing has work to do.
        let pts = place(EnvClass::Indoor, 60, 5);
        let p = ChannelParams::indoor();
        let max_d = pts
            .iter()
            .flat_map(|a| {
                pts.iter()
                    .map(move |b| mesh11_channel::pathloss::distance(*a, *b))
            })
            .fold(0.0, f64::max);
        assert!(
            p.mean_snr_at(max_d) < 5.0,
            "60-AP net should not be a clique"
        );
    }

    #[test]
    fn hearable_fraction_edge_cases() {
        assert_eq!(
            hearable_fraction(&[], &ChannelParams::indoor(), 0.0, 99.0),
            0.0
        );
        assert_eq!(
            hearable_fraction(&[(0.0, 0.0)], &ChannelParams::indoor(), 0.0, 99.0),
            0.0
        );
    }
}
