//! Campaign generation: the full network ensemble.

use mesh11_phy::Phy;
use mesh11_stats::dist::{derive_seed, derive_seed_str};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::geo::GeoTag;
use crate::network::{EnvClass, NetworkId, NetworkSpec};
use crate::placement::place;
use crate::sizes::{metro_sizes, paper_sizes, scaled_sizes};

/// Specification of a campaign: how many networks, their sizes, and the
/// PHY/environment composition. [`CampaignSpec::paper`] reproduces the
/// dataset marginals; [`CampaignSpec::small`]/[`CampaignSpec::scaled`] give
/// fast, shape-preserving subsets for tests and examples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignSpec {
    /// Master seed; every draw in the campaign derives from it.
    pub seed: u64,
    /// Network sizes (AP counts), one entry per network.
    pub sizes: Vec<u32>,
    /// How many networks run only 802.11b/g.
    pub bg_only: usize,
    /// How many networks run only 802.11n.
    pub ht_only: usize,
    /// How many networks run both radios.
    pub dual: usize,
    /// Environment composition: (indoor, outdoor, mixed). Must sum to the
    /// number of networks.
    pub env_counts: (usize, usize, usize),
}

impl CampaignSpec {
    /// The paper's ensemble: 110 networks, 1407 APs, 77 b/g + 31 n + 2 dual,
    /// 72 indoor + 17 outdoor + 21 mixed.
    pub fn paper(seed: u64) -> Self {
        Self {
            seed,
            sizes: paper_sizes(),
            bg_only: 77,
            ht_only: 31,
            dual: 2,
            env_counts: (72, 17, 21),
        }
    }

    /// Metro-scale ensemble: the paper composition tiled `factor` times —
    /// `110·factor` networks, `1407·factor` APs, with the PHY/environment
    /// marginals scaled exactly. Factor 71 lands just under 10⁵ APs.
    pub fn metro(seed: u64, factor: usize) -> Self {
        let factor = factor.max(1);
        Self {
            seed,
            sizes: metro_sizes(factor),
            bg_only: 77 * factor,
            ht_only: 31 * factor,
            dual: 2 * factor,
            env_counts: (72 * factor, 17 * factor, 21 * factor),
        }
    }

    /// A scaled campaign of `n` networks with proportional composition.
    pub fn scaled(seed: u64, n: usize) -> Self {
        let sizes = scaled_sizes(n);
        let n = sizes.len();
        // Proportional allocation, largest-remainder style, keeping ≥1 of
        // each PHY/env category whenever the campaign is big enough.
        let ht_only = ((n as f64 * 31.0 / 110.0).round() as usize).clamp(usize::from(n >= 4), n);
        let dual = usize::from(n >= 10);
        let bg_only = n - ht_only - dual;
        let outdoor = ((n as f64 * 17.0 / 110.0).round() as usize).clamp(usize::from(n >= 5), n);
        let mixed = ((n as f64 * 21.0 / 110.0).round() as usize).min(n - outdoor);
        let indoor = n - outdoor - mixed;
        Self {
            seed,
            sizes,
            bg_only,
            ht_only,
            dual,
            env_counts: (indoor, outdoor, mixed),
        }
    }

    /// A 12-network campaign — large enough for every analysis to have
    /// data, small enough for unit tests and examples.
    pub fn small(seed: u64) -> Self {
        Self::scaled(seed, 12)
    }

    /// Number of networks.
    pub fn len(&self) -> usize {
        self.sizes.len()
    }

    /// True when the spec holds no networks.
    pub fn is_empty(&self) -> bool {
        self.sizes.is_empty()
    }

    /// Instantiates every network: assigns PHY radios, environments, and AP
    /// positions, all deterministically from the seed.
    pub fn generate(&self) -> Campaign {
        let n = self.len();
        assert_eq!(
            self.bg_only + self.ht_only + self.dual,
            n,
            "PHY composition must cover every network"
        );
        assert_eq!(
            self.env_counts.0 + self.env_counts.1 + self.env_counts.2,
            n,
            "environment composition must cover every network"
        );

        // Build label vectors and shuffle them with independent streams so
        // size, PHY, and environment are independently assigned.
        let mut radios: Vec<Vec<Phy>> = Vec::with_capacity(n);
        radios.extend(std::iter::repeat_with(|| vec![Phy::Bg]).take(self.bg_only));
        radios.extend(std::iter::repeat_with(|| vec![Phy::Ht]).take(self.ht_only));
        radios.extend(std::iter::repeat_with(|| vec![Phy::Bg, Phy::Ht]).take(self.dual));
        shuffle(&mut radios, derive_seed_str(self.seed, "phy-assign"));

        let mut envs: Vec<EnvClass> = Vec::with_capacity(n);
        envs.extend(std::iter::repeat_n(EnvClass::Indoor, self.env_counts.0));
        envs.extend(std::iter::repeat_n(EnvClass::Outdoor, self.env_counts.1));
        envs.extend(std::iter::repeat_n(EnvClass::Mixed, self.env_counts.2));
        shuffle(&mut envs, derive_seed_str(self.seed, "env-assign"));

        let mut sizes = self.sizes.clone();
        shuffle(&mut sizes, derive_seed_str(self.seed, "size-assign"));

        let networks = (0..n)
            .map(|i| {
                let env = envs[i];
                let net_seed = derive_seed(self.seed, i as u64);
                NetworkSpec {
                    id: NetworkId(i as u32),
                    env,
                    radios: radios[i].clone(),
                    seed: net_seed,
                    positions: place(env, sizes[i] as usize, net_seed),
                    params: env.channel_params(),
                    geo: GeoTag::for_network(i),
                }
            })
            .collect();
        Campaign { networks }
    }
}

/// Fisher–Yates with a derived seed (kept local so campaign layout is
/// independent of `rand`'s `seq` implementation details).
fn shuffle<T>(v: &mut [T], seed: u64) {
    let mut rng = SmallRng::seed_from_u64(seed);
    for i in (1..v.len()).rev() {
        let j = rng.random_range(0..=i);
        v.swap(i, j);
    }
}

/// A fully instantiated ensemble of networks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Campaign {
    /// The networks, ids `0..n`.
    pub networks: Vec<NetworkSpec>,
}

impl Campaign {
    /// Total AP count across the ensemble.
    pub fn total_aps(&self) -> usize {
        self.networks.iter().map(NetworkSpec::size).sum()
    }

    /// Networks running a b/g radio (includes dual-radio networks).
    pub fn bg_networks(&self) -> impl Iterator<Item = &NetworkSpec> {
        self.networks.iter().filter(|n| n.has_bg())
    }

    /// Networks running an 802.11n radio (includes dual-radio networks).
    pub fn ht_networks(&self) -> impl Iterator<Item = &NetworkSpec> {
        self.networks.iter().filter(|n| n.has_ht())
    }

    /// Networks of a pure environment class.
    pub fn by_env(&self, env: EnvClass) -> impl Iterator<Item = &NetworkSpec> {
        self.networks.iter().filter(move |n| n.env == env)
    }

    /// Network by id.
    pub fn network(&self, id: NetworkId) -> Option<&NetworkSpec> {
        self.networks.get(id.0 as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_campaign_marginals() {
        let c = CampaignSpec::paper(42).generate();
        assert_eq!(c.networks.len(), 110);
        assert_eq!(c.total_aps(), 1407);
        assert_eq!(c.bg_networks().count(), 79); // 77 bg-only + 2 dual
        assert_eq!(c.ht_networks().count(), 33); // 31 ht-only + 2 dual
        assert_eq!(c.by_env(EnvClass::Indoor).count(), 72);
        assert_eq!(c.by_env(EnvClass::Outdoor).count(), 17);
        assert_eq!(c.by_env(EnvClass::Mixed).count(), 21);
        let sizes: Vec<usize> = c.networks.iter().map(NetworkSpec::size).collect();
        assert_eq!(*sizes.iter().min().unwrap(), 3);
        assert_eq!(*sizes.iter().max().unwrap(), 203);
    }

    #[test]
    fn metro_campaign_scales_the_marginals() {
        let s = CampaignSpec::metro(42, 3);
        assert_eq!(s.len(), 330);
        assert_eq!(s.bg_only + s.ht_only + s.dual, 330);
        let (i, o, m) = s.env_counts;
        assert_eq!((i, o, m), (216, 51, 63));
        let c = s.generate();
        assert_eq!(c.total_aps(), 3 * 1407);
        // Factor 1 is exactly the paper spec.
        assert_eq!(CampaignSpec::metro(7, 1), CampaignSpec::paper(7));
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(
            CampaignSpec::paper(7).generate(),
            CampaignSpec::paper(7).generate()
        );
        assert_ne!(
            CampaignSpec::paper(7).generate(),
            CampaignSpec::paper(8).generate()
        );
    }

    #[test]
    fn seeds_differ_per_network() {
        let c = CampaignSpec::small(1).generate();
        let mut seeds: Vec<u64> = c.networks.iter().map(|n| n.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), c.networks.len());
    }

    #[test]
    fn small_campaign_has_everything() {
        let c = CampaignSpec::small(3).generate();
        assert_eq!(c.networks.len(), 12);
        assert!(c.bg_networks().count() >= 6);
        assert!(c.ht_networks().count() >= 1);
        assert!(c.by_env(EnvClass::Indoor).count() >= 1);
        assert!(c.by_env(EnvClass::Outdoor).count() >= 1);
        // Needs ≥5-AP networks for the §5 analyses.
        assert!(c.networks.iter().any(|n| n.size() >= 5));
    }

    #[test]
    fn scaled_composition_sums() {
        for n in [2, 5, 11, 30, 110] {
            let s = CampaignSpec::scaled(1, n);
            assert_eq!(s.bg_only + s.ht_only + s.dual, s.len(), "phy @ n={n}");
            let (i, o, m) = s.env_counts;
            assert_eq!(i + o + m, s.len(), "env @ n={n}");
            // Must generate without panicking.
            let c = s.generate();
            assert_eq!(c.networks.len(), s.len());
        }
    }

    #[test]
    fn positions_match_sizes() {
        let c = CampaignSpec::small(5).generate();
        for n in &c.networks {
            assert_eq!(n.positions.len(), n.size());
            assert!(n.size() >= 3, "paper minimum is 3 APs");
        }
    }

    #[test]
    fn network_lookup() {
        let c = CampaignSpec::small(5).generate();
        assert_eq!(c.network(NetworkId(0)).unwrap().id, NetworkId(0));
        assert!(c.network(NetworkId(999)).is_none());
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut v: Vec<u32> = (0..50).collect();
        shuffle(&mut v, 9);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "seeded shuffle should actually move things");
    }
}
