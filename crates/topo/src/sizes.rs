//! The campaign's network-size distribution.
//!
//! §3 of the paper: "Our networks range in size from 3 APs to 203 APs, with
//! a median size of 7 and a mean size of 13", over 110 networks and 1407 APs
//! total. Rather than sampling a parametric distribution and repairing it to
//! the constraints, the exact sorted size list is written down once here and
//! asserted in tests — the marginals *are* the specification.

/// `(size, how many networks have it)`, ascending by size.
///
/// Totals: 110 networks, 1407 APs; median 7 (sorted positions 55/56);
/// min 3; max 203.
pub const SIZE_COUNTS: &[(u32, u32)] = &[
    (3, 14),
    (4, 14),
    (5, 13),
    (6, 13),
    (7, 8),
    (8, 8),
    (9, 7),
    (10, 6),
    (11, 5),
    (12, 4),
    (13, 4),
    (14, 3),
    (16, 3),
    (19, 2),
    (45, 1),
    (71, 1),
    (75, 1),
    (96, 1),
    (150, 1),
    (203, 1),
];

/// The full sorted size list (length 110).
pub fn paper_sizes() -> Vec<u32> {
    let mut v = Vec::with_capacity(110);
    for &(size, count) in SIZE_COUNTS {
        v.extend(std::iter::repeat_n(size, count as usize));
    }
    v
}

/// A scaled-down size list for fast tests/examples: keeps the *shape*
/// (mostly-small with a heavy tail) at roughly `n` networks.
///
/// Picks every `110/n`-th entry of the sorted paper list, always including
/// the minimum and one large network, so opportunistic-routing and
/// hidden-triple analyses still have multi-hop topologies to chew on.
pub fn scaled_sizes(n: usize) -> Vec<u32> {
    let full = paper_sizes();
    let n = n.clamp(2, full.len());
    let mut out: Vec<u32> = (0..n)
        .map(|i| full[i * (full.len() - 1) / (n - 1)])
        .collect();
    // Keep the tail interesting but tractable for small campaigns: cap the
    // largest at 30 when n is small.
    if n < 40 {
        for s in &mut out {
            *s = (*s).min(30);
        }
    }
    out
}

/// Metro-scale size list: the paper distribution tiled `factor` times,
/// still sorted ascending — `110·factor` networks, `1407·factor` APs.
pub fn metro_sizes(factor: usize) -> Vec<u32> {
    let factor = factor.max(1);
    let mut v = Vec::with_capacity(110 * factor);
    for &(size, count) in SIZE_COUNTS {
        v.extend(std::iter::repeat_n(size, count as usize * factor));
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_marginals_exactly() {
        let sizes = paper_sizes();
        assert_eq!(sizes.len(), 110, "110 networks");
        assert_eq!(sizes.iter().sum::<u32>(), 1407, "1407 APs");
        assert_eq!(*sizes.first().unwrap(), 3, "min 3");
        assert_eq!(*sizes.last().unwrap(), 203, "max 203");
        // Median over an even count: average of sorted positions 55, 56
        // (1-indexed) = indices 54, 55.
        assert_eq!((sizes[54] + sizes[55]) / 2, 7, "median 7");
        let mean = sizes.iter().sum::<u32>() as f64 / sizes.len() as f64;
        assert!(
            (mean - 12.79).abs() < 0.01,
            "mean ≈ 12.8 (paper rounds to 13)"
        );
    }

    #[test]
    fn sorted_ascending() {
        let sizes = paper_sizes();
        assert!(sizes.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn networks_with_at_least_five_aps() {
        // §5 analyzes networks with ≥5 APs; make sure a healthy majority
        // qualify (the paper's routing results cover most of the ensemble).
        let n = paper_sizes().iter().filter(|&&s| s >= 5).count();
        assert_eq!(n, 82);
    }

    #[test]
    fn scaled_keeps_shape() {
        let s = scaled_sizes(10);
        assert_eq!(s.len(), 10);
        assert_eq!(s[0], 3);
        assert!(*s.last().unwrap() >= 20, "tail survives scaling: {s:?}");
        assert!(s.iter().all(|&x| x <= 30), "capped for small campaigns");
        assert!(s.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn metro_tiles_the_paper_distribution() {
        assert_eq!(metro_sizes(1), paper_sizes());
        assert_eq!(metro_sizes(0), paper_sizes()); // clamped up
        let m = metro_sizes(10);
        assert_eq!(m.len(), 1_100);
        assert_eq!(m.iter().sum::<u32>(), 14_070);
        assert!(m.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn scaled_extremes() {
        assert_eq!(scaled_sizes(2).len(), 2);
        assert_eq!(scaled_sizes(0).len(), 2); // clamped up
        let full = scaled_sizes(110);
        assert_eq!(full, paper_sizes()); // identity at full scale
    }
}
