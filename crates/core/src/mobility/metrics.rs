//! §7 metrics over reconstructed sessions (Figs 7.1–7.5).

use std::collections::BTreeMap;

use mesh11_trace::{Dataset, EnvLabel};
use serde::{Deserialize, Serialize};

use crate::mobility::sessions::ClientSessions;

/// Everything §7 reports, computed in one pass over the sessions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MobilityReport {
    /// Bin width (seconds).
    pub bin_s: f64,
    /// Fig 7.1: number of distinct APs visited, one value per session.
    pub aps_visited: Vec<u64>,
    /// Fig 7.2: connection length (hours), one value per session.
    pub connection_hours: Vec<f64>,
    /// Fig 7.3: non-zero prevalence values by environment (pure envs only).
    pub prevalence: BTreeMap<EnvLabel, Vec<f64>>,
    /// Fig 7.4: persistence values (minutes) by environment.
    pub persistence_min: BTreeMap<EnvLabel, Vec<f64>>,
    /// Fig 7.5: `(median persistence [min], max prevalence)` per session.
    pub prevalence_vs_persistence: Vec<(f64, f64)>,
}

impl MobilityReport {
    /// Builds the report from a dataset's client samples.
    pub fn build(ds: &Dataset) -> Self {
        Self::from_sessions(&ClientSessions::build(ds))
    }

    /// Builds the report from already-reconstructed sessions.
    pub fn from_sessions(cs: &ClientSessions) -> Self {
        let bin_s = cs.bin_s;
        let mut aps_visited = Vec::with_capacity(cs.sessions.len());
        let mut connection_hours = Vec::with_capacity(cs.sessions.len());
        let mut prevalence: BTreeMap<EnvLabel, Vec<f64>> = BTreeMap::new();
        let mut persistence_min: BTreeMap<EnvLabel, Vec<f64>> = BTreeMap::new();
        let mut scatter = Vec::with_capacity(cs.sessions.len());

        for s in &cs.sessions {
            aps_visited.push(s.aps_visited() as u64);
            connection_hours.push(s.duration_s(bin_s) / 3_600.0);

            let prev: Vec<f64> = s.prevalence().into_iter().map(|p| p.1).collect();
            let pers: Vec<f64> = s
                .persistence_runs()
                .into_iter()
                .map(|(_, bins)| bins as f64 * bin_s / 60.0)
                .collect();

            if s.env.is_pure() {
                prevalence
                    .entry(s.env)
                    .or_default()
                    .extend(prev.iter().copied());
                persistence_min
                    .entry(s.env)
                    .or_default()
                    .extend(pers.iter().copied());
            }

            let max_prev = prev.iter().copied().fold(0.0, f64::max);
            if let Some(med_pers) = mesh11_stats::median(&pers) {
                scatter.push((med_pers, max_prev));
            }
        }

        Self {
            bin_s,
            aps_visited,
            connection_hours,
            prevalence,
            persistence_min,
            prevalence_vs_persistence: scatter,
        }
    }

    /// Fraction of sessions spanning the full client horizon (Fig 7.2's
    /// right edge: ≈60% in the paper).
    pub fn frac_full_duration(&self, horizon_s: f64) -> f64 {
        if self.connection_hours.is_empty() {
            return 0.0;
        }
        let full = horizon_s / 3_600.0 - self.bin_s / 3_600.0; // tolerance of one bin
        self.connection_hours.iter().filter(|&&h| h >= full).count() as f64
            / self.connection_hours.len() as f64
    }

    /// Fraction of sessions visiting exactly one AP (Fig 7.1's mode).
    pub fn frac_single_ap(&self) -> f64 {
        if self.aps_visited.is_empty() {
            return 0.0;
        }
        self.aps_visited.iter().filter(|&&n| n == 1).count() as f64 / self.aps_visited.len() as f64
    }

    /// Mean and median of an environment's prevalence values.
    pub fn prevalence_stats(&self, env: EnvLabel) -> Option<(f64, f64)> {
        let v = self.prevalence.get(&env)?;
        Some((mesh11_stats::mean(v)?, mesh11_stats::median(v)?))
    }

    /// Mean and median of an environment's persistence values (minutes).
    pub fn persistence_stats(&self, env: EnvLabel) -> Option<(f64, f64)> {
        let v = self.persistence_min.get(&env)?;
        Some((mesh11_stats::mean(v)?, mesh11_stats::median(v)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh11_trace::{ApId, ClientId, ClientSample, NetworkId, NetworkMeta};

    fn sample(net: u32, client: u32, ap: u32, bin: u64) -> ClientSample {
        ClientSample {
            network: NetworkId(net),
            ap: ApId(ap),
            client: ClientId(client),
            bin_start_s: bin as f64 * 300.0,
            assoc_requests: 0,
            data_pkts: 10,
        }
    }

    fn meta(net: u32, env: EnvLabel) -> NetworkMeta {
        NetworkMeta {
            id: NetworkId(net),
            env,
            n_aps: 4,
            radios: vec![mesh11_phy::Phy::Bg],
            location: String::new(),
        }
    }

    fn ds(networks: Vec<NetworkMeta>, clients: Vec<ClientSample>) -> Dataset {
        Dataset {
            networks,
            clients,
            client_horizon_s: 3_000.0,
            ..Dataset::default()
        }
    }

    #[test]
    fn basic_report() {
        // One indoor client at AP1 for 10 bins (the full 3000 s horizon).
        let d = ds(
            vec![meta(0, EnvLabel::Indoor)],
            (0..10).map(|b| sample(0, 0, 1, b)).collect(),
        );
        let r = MobilityReport::build(&d);
        assert_eq!(r.aps_visited, vec![1]);
        assert_eq!(r.frac_single_ap(), 1.0);
        assert!((r.connection_hours[0] - 3000.0 / 3600.0).abs() < 1e-12);
        assert_eq!(r.frac_full_duration(3_000.0), 1.0);
        // One AP the whole time: prevalence 1, persistence = 50 min.
        assert_eq!(r.prevalence[&EnvLabel::Indoor], vec![1.0]);
        assert_eq!(r.persistence_min[&EnvLabel::Indoor], vec![50.0]);
        assert_eq!(r.prevalence_vs_persistence, vec![(50.0, 1.0)]);
    }

    #[test]
    fn switching_client_metrics() {
        // Alternates AP1/AP2 each bin for 4 bins.
        let d = ds(
            vec![meta(0, EnvLabel::Indoor)],
            (0..4)
                .map(|b| sample(0, 0, 1 + (b % 2) as u32, b))
                .collect(),
        );
        let r = MobilityReport::build(&d);
        assert_eq!(r.aps_visited, vec![2]);
        // Four runs of one bin each → persistence 5 min each.
        assert_eq!(r.persistence_min[&EnvLabel::Indoor], vec![5.0; 4]);
        // Prevalence 0.5 at each AP.
        assert_eq!(r.prevalence[&EnvLabel::Indoor], vec![0.5, 0.5]);
        // Scatter: low persistence, low max prevalence — Fig 7.5's lower
        // left quadrant.
        assert_eq!(r.prevalence_vs_persistence, vec![(5.0, 0.5)]);
    }

    #[test]
    fn mixed_env_excluded_from_env_splits() {
        let d = ds(vec![meta(0, EnvLabel::Mixed)], vec![sample(0, 0, 1, 0)]);
        let r = MobilityReport::build(&d);
        assert_eq!(r.aps_visited.len(), 1, "still counted overall");
        assert!(r.prevalence.is_empty(), "but not in the env split");
        assert!(r.persistence_min.is_empty());
    }

    #[test]
    fn env_stats() {
        let d = ds(
            vec![meta(0, EnvLabel::Indoor), meta(1, EnvLabel::Outdoor)],
            vec![
                sample(0, 0, 1, 0),
                sample(0, 0, 2, 1),
                sample(1, 0, 1, 0),
                sample(1, 0, 1, 1),
            ],
        );
        let r = MobilityReport::build(&d);
        let (in_mean, _) = r.prevalence_stats(EnvLabel::Indoor).unwrap();
        let (out_mean, _) = r.prevalence_stats(EnvLabel::Outdoor).unwrap();
        assert!((in_mean - 0.5).abs() < 1e-12);
        assert!((out_mean - 1.0).abs() < 1e-12);
        let (_, out_med_pers) = r.persistence_stats(EnvLabel::Outdoor).unwrap();
        assert_eq!(out_med_pers, 10.0);
        assert!(r.prevalence_stats(EnvLabel::Mixed).is_none());
    }

    #[test]
    fn empty_dataset() {
        let r = MobilityReport::build(&ds(vec![], vec![]));
        assert_eq!(r.frac_single_ap(), 0.0);
        assert_eq!(r.frac_full_duration(1_000.0), 0.0);
    }
}
