//! §7 — Client mobility: prevalence and persistence.
//!
//! The input is the 5-minute aggregate client data; nothing finer exists
//! (the paper: "we cannot perceive a client disconnecting and reconnecting
//! within a five-minute period"). [`sessions`] reconstructs per-client AP
//! timelines and applies the paper's client-splitting rule; [`metrics`]
//! computes the number of APs visited (Fig 7.1), connection lengths
//! (Fig 7.2), prevalence (Fig 7.3), persistence (Fig 7.4), and the
//! prevalence-vs-persistence scatter (Fig 7.5).

pub mod metrics;
pub mod sessions;

pub use metrics::MobilityReport;
pub use sessions::{ClientSessions, Session};
