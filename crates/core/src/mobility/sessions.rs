//! Session reconstruction from 5-minute aggregate client data.
//!
//! Rules, mirroring §7:
//!
//! * A client's AP in a bin is the AP where it moved the most data packets
//!   (ties: more association requests, then the lower AP id) — the data
//!   gives per-(AP, client, bin) counters, and a client that switched
//!   mid-bin appears at several APs.
//! * A client absent for **more than five minutes** becomes a new client.
//!   At 5-minute granularity, one missing bin bounds the disconnect in
//!   (0, 10) minutes — unobservable either way — so a single missing bin is
//!   bridged (the previous AP carries over) and two or more missing bins
//!   split the session.

use std::collections::BTreeMap;

use mesh11_trace::{ApId, ClientId, Dataset, EnvLabel, NetworkId};

/// One reconstructed client session: a maximal run of (near-)consecutive
/// bins for one underlying client.
#[derive(Debug, Clone, PartialEq)]
pub struct Session {
    /// The network.
    pub network: NetworkId,
    /// The environment of the network (for §7's indoor/outdoor split).
    pub env: EnvLabel,
    /// The underlying client this session was cut from.
    pub original_client: ClientId,
    /// `(bin_index, ap)` — strictly increasing consecutive bins.
    pub bins: Vec<(u64, ApId)>,
}

impl Session {
    /// Connection length in seconds.
    pub fn duration_s(&self, bin_s: f64) -> f64 {
        self.bins.len() as f64 * bin_s
    }

    /// Number of distinct APs visited.
    pub fn aps_visited(&self) -> usize {
        let mut aps: Vec<ApId> = self.bins.iter().map(|b| b.1).collect();
        aps.sort_unstable();
        aps.dedup();
        aps.len()
    }

    /// Prevalence values: for each visited AP, the fraction of the
    /// session's bins spent there. Sums to 1 across APs.
    pub fn prevalence(&self) -> Vec<(ApId, f64)> {
        let mut counts: BTreeMap<ApId, usize> = BTreeMap::new();
        for &(_, ap) in &self.bins {
            *counts.entry(ap).or_insert(0) += 1;
        }
        let total = self.bins.len() as f64;
        counts
            .into_iter()
            .map(|(ap, c)| (ap, c as f64 / total))
            .collect()
    }

    /// Persistence runs: each maximal run of consecutive bins at the same
    /// AP, as `(ap, run_length_bins)`.
    pub fn persistence_runs(&self) -> Vec<(ApId, usize)> {
        let mut out = Vec::new();
        let mut iter = self.bins.iter();
        let Some(&(_, mut cur_ap)) = iter.next() else {
            return out;
        };
        let mut len = 1usize;
        for &(_, ap) in iter {
            if ap == cur_ap {
                len += 1;
            } else {
                out.push((cur_ap, len));
                cur_ap = ap;
                len = 1;
            }
        }
        out.push((cur_ap, len));
        out
    }
}

/// All sessions of a dataset.
#[derive(Debug, Clone)]
pub struct ClientSessions {
    /// Every reconstructed session.
    pub sessions: Vec<Session>,
    /// Bin width (seconds).
    pub bin_s: f64,
}

impl ClientSessions {
    /// Reconstructs sessions from the dataset's client samples.
    pub fn build(ds: &Dataset) -> Self {
        let bin_s = mesh11_trace::client::CLIENT_BIN_S;
        // (network, client) → bin → best (pkts, assoc, ap)
        type BinWinners = BTreeMap<u64, (u32, u32, ApId)>;
        let mut per_client: BTreeMap<(NetworkId, ClientId), BinWinners> = BTreeMap::new();
        for s in &ds.clients {
            if !s.is_active() {
                continue;
            }
            let bin = s.bin_index();
            let entry = per_client.entry((s.network, s.client)).or_default();
            let cand = (s.data_pkts, s.assoc_requests, s.ap);
            entry
                .entry(bin)
                .and_modify(|best| {
                    // More packets wins; then more association requests;
                    // then the lower AP id (note: inverted compare on id).
                    if (cand.0, cand.1, std::cmp::Reverse(cand.2))
                        > (best.0, best.1, std::cmp::Reverse(best.2))
                    {
                        *best = cand;
                    }
                })
                .or_insert(cand);
        }

        let mut sessions = Vec::new();
        for ((network, client), bins) in per_client {
            let env = ds.meta(network).map(|m| m.env).unwrap_or(EnvLabel::Mixed);
            let mut cur: Vec<(u64, ApId)> = Vec::new();
            let mut prev_bin: Option<u64> = None;
            for (bin, (_, _, ap)) in bins {
                match prev_bin {
                    Some(p) if bin == p + 2 => {
                        // Single missing bin: bridge it with the previous AP.
                        let carry = cur.last().expect("cur non-empty when prev set").1;
                        cur.push((p + 1, carry));
                        cur.push((bin, ap));
                    }
                    Some(p) if bin > p + 2 => {
                        // ≥2 missing bins: definitely >5 min away — split.
                        sessions.push(Session {
                            network,
                            env,
                            original_client: client,
                            bins: std::mem::take(&mut cur),
                        });
                        cur.push((bin, ap));
                    }
                    _ => cur.push((bin, ap)),
                }
                prev_bin = Some(bin);
            }
            if !cur.is_empty() {
                sessions.push(Session {
                    network,
                    env,
                    original_client: client,
                    bins: cur,
                });
            }
        }
        Self { sessions, bin_s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh11_trace::{ClientSample, NetworkMeta};

    fn sample(client: u32, ap: u32, bin: u64, pkts: u32, assoc: u32) -> ClientSample {
        ClientSample {
            network: NetworkId(0),
            ap: ApId(ap),
            client: ClientId(client),
            bin_start_s: bin as f64 * 300.0,
            assoc_requests: assoc,
            data_pkts: pkts,
        }
    }

    fn ds(clients: Vec<ClientSample>) -> Dataset {
        Dataset {
            networks: vec![NetworkMeta {
                id: NetworkId(0),
                env: EnvLabel::Indoor,
                n_aps: 4,
                radios: vec![mesh11_phy::Phy::Bg],
                location: String::new(),
            }],
            clients,
            ..Dataset::default()
        }
    }

    #[test]
    fn contiguous_bins_one_session() {
        let d = ds(vec![
            sample(0, 1, 0, 10, 1),
            sample(0, 1, 1, 10, 0),
            sample(0, 2, 2, 10, 1),
        ]);
        let cs = ClientSessions::build(&d);
        assert_eq!(cs.sessions.len(), 1);
        let s = &cs.sessions[0];
        assert_eq!(s.bins, vec![(0, ApId(1)), (1, ApId(1)), (2, ApId(2))]);
        assert_eq!(s.duration_s(300.0), 900.0);
        assert_eq!(s.aps_visited(), 2);
    }

    #[test]
    fn per_bin_ap_choice_by_traffic() {
        // In bin 0 the client shows at two APs; AP2 carried more packets.
        let d = ds(vec![sample(0, 1, 0, 5, 1), sample(0, 2, 0, 50, 0)]);
        let cs = ClientSessions::build(&d);
        assert_eq!(cs.sessions[0].bins, vec![(0, ApId(2))]);
    }

    #[test]
    fn tie_breaks_to_assoc_then_low_id() {
        let d = ds(vec![sample(0, 3, 0, 5, 0), sample(0, 1, 0, 5, 0)]);
        let cs = ClientSessions::build(&d);
        assert_eq!(cs.sessions[0].bins, vec![(0, ApId(1))], "low id wins ties");
        let d2 = ds(vec![sample(0, 3, 0, 5, 2), sample(0, 1, 0, 5, 0)]);
        let cs2 = ClientSessions::build(&d2);
        assert_eq!(cs2.sessions[0].bins, vec![(0, ApId(3))], "assoc beats id");
    }

    #[test]
    fn single_missing_bin_bridged() {
        let d = ds(vec![sample(0, 1, 0, 10, 0), sample(0, 2, 2, 10, 0)]);
        let cs = ClientSessions::build(&d);
        assert_eq!(cs.sessions.len(), 1);
        assert_eq!(
            cs.sessions[0].bins,
            vec![(0, ApId(1)), (1, ApId(1)), (2, ApId(2))],
            "hole carries the previous AP"
        );
    }

    #[test]
    fn long_gap_splits_client() {
        let d = ds(vec![sample(0, 1, 0, 10, 0), sample(0, 1, 5, 10, 0)]);
        let cs = ClientSessions::build(&d);
        assert_eq!(cs.sessions.len(), 2, "paper: >5 min away ⇒ new client");
        assert_eq!(cs.sessions[0].bins, vec![(0, ApId(1))]);
        assert_eq!(cs.sessions[1].bins, vec![(5, ApId(1))]);
    }

    #[test]
    fn prevalence_sums_to_one() {
        let d = ds(vec![
            sample(0, 1, 0, 10, 0),
            sample(0, 1, 1, 10, 0),
            sample(0, 2, 2, 10, 0),
            sample(0, 2, 3, 10, 0),
        ]);
        let s = &ClientSessions::build(&d).sessions[0];
        let prev = s.prevalence();
        let total: f64 = prev.iter().map(|p| p.1).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(prev, vec![(ApId(1), 0.5), (ApId(2), 0.5)]);
    }

    #[test]
    fn persistence_runs_split_on_switch() {
        let d = ds(vec![
            sample(0, 1, 0, 10, 0),
            sample(0, 1, 1, 10, 0),
            sample(0, 2, 2, 10, 0),
            sample(0, 1, 3, 10, 0),
        ]);
        let s = &ClientSessions::build(&d).sessions[0];
        assert_eq!(
            s.persistence_runs(),
            vec![(ApId(1), 2), (ApId(2), 1), (ApId(1), 1)]
        );
    }

    #[test]
    fn inactive_samples_ignored() {
        let mut inert = sample(0, 1, 0, 0, 0);
        inert.data_pkts = 0;
        inert.assoc_requests = 0;
        let d = ds(vec![inert]);
        assert!(ClientSessions::build(&d).sessions.is_empty());
    }

    #[test]
    fn clients_are_independent() {
        let d = ds(vec![sample(0, 1, 0, 10, 0), sample(1, 2, 0, 10, 0)]);
        let cs = ClientSessions::build(&d);
        assert_eq!(cs.sessions.len(), 2);
    }
}
