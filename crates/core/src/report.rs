//! Figure-series containers and renderers.
//!
//! Every analysis exports its figure as a [`FigureData`]: labelled series of
//! `(x, y)` points plus axis metadata. The `repro` harness prints them as
//! aligned text tables (and optionally quick ASCII plots) and dumps JSON for
//! external plotting.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One labelled series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Legend label (e.g. `"1 Mbit/s"`, `"Link"`).
    pub label: String,
    /// `(x, y)` points in plot order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Builds a series from an iterator of points.
    pub fn new(label: impl Into<String>, points: impl IntoIterator<Item = (f64, f64)>) -> Self {
        Self {
            label: label.into(),
            points: points.into_iter().collect(),
        }
    }

    /// Downsamples a CDF to `n` quantile points and wraps it as a series.
    pub fn from_cdf(label: impl Into<String>, cdf: &mesh11_stats::Cdf, n: usize) -> Self {
        Self::new(label, cdf.points(n))
    }
}

/// A complete figure: id, axes, series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FigureData {
    /// Paper artifact id, e.g. `"fig5-1a"`.
    pub id: String,
    /// Human title.
    pub title: String,
    /// X-axis label.
    pub xlabel: String,
    /// Y-axis label.
    pub ylabel: String,
    /// The series.
    pub series: Vec<Series>,
    /// Free-form notes (paper-expected values, caveats).
    pub notes: Vec<String>,
}

impl FigureData {
    /// An empty figure shell.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        xlabel: impl Into<String>,
        ylabel: impl Into<String>,
    ) -> Self {
        Self {
            id: id.into(),
            title: title.into(),
            xlabel: xlabel.into(),
            ylabel: ylabel.into(),
            series: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Adds a series (builder style).
    pub fn with_series(mut self, s: Series) -> Self {
        self.series.push(s);
        self
    }

    /// Adds a note (builder style).
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }

    /// Pretty JSON for external plotting.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("FigureData serializes")
    }

    /// Renders the figure as an aligned text table: one x column, one y
    /// column per series (blank where a series has no point at that x).
    pub fn render_table(&self, max_rows: usize) -> String {
        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|p| p.0))
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite x"));
        xs.dedup();
        // Thin to at most max_rows evenly spaced x values.
        let rows: Vec<f64> = if xs.len() <= max_rows || max_rows == 0 {
            xs
        } else {
            (0..max_rows)
                .map(|i| xs[i * (xs.len() - 1) / (max_rows - 1)])
                .collect()
        };

        let mut out = String::new();
        let _ = writeln!(out, "# {} — {}", self.id, self.title);
        for note in &self.notes {
            let _ = writeln!(out, "#   {note}");
        }
        let _ = write!(out, "{:>12}", self.xlabel);
        for s in &self.series {
            let _ = write!(out, " {:>14}", truncate(&s.label, 14));
        }
        let _ = writeln!(out, "   ({})", self.ylabel);
        for x in rows {
            let _ = write!(out, "{x:>12.3}");
            for s in &self.series {
                match lookup(&s.points, x) {
                    Some(y) => {
                        let _ = write!(out, " {y:>14.4}");
                    }
                    None => {
                        let _ = write!(out, " {:>14}", "-");
                    }
                }
            }
            let _ = writeln!(out);
        }
        out
    }
}

/// Glyphs assigned to series in order.
const GLYPHS: &[char] = &['*', '+', 'o', 'x', '#', '@', '%', '&', '~', '^'];

impl FigureData {
    /// Renders a quick character plot: all series scattered on one grid,
    /// one glyph per series, with numeric axis extents. Meant for terminal
    /// eyeballing (`repro --plot`), not publication.
    pub fn render_plot(&self, width: usize, height: usize) -> String {
        let width = width.clamp(16, 240);
        let height = height.clamp(6, 80);
        let all: Vec<(f64, f64)> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().copied())
            .filter(|p| p.0.is_finite() && p.1.is_finite())
            .collect();
        let Some(((min_x, max_x), (min_y, max_y))) = extents(&all) else {
            return format!("# {} — (no finite points)\n", self.id);
        };

        let mut grid = vec![vec![' '; width]; height];
        for (si, s) in self.series.iter().enumerate() {
            let glyph = GLYPHS[si % GLYPHS.len()];
            for &(x, y) in &s.points {
                if !x.is_finite() || !y.is_finite() {
                    continue;
                }
                let cx = scale(x, min_x, max_x, width - 1);
                let cy = height - 1 - scale(y, min_y, max_y, height - 1);
                grid[cy][cx] = glyph;
            }
        }

        let mut out = String::new();
        let _ = writeln!(out, "# {} — {}", self.id, self.title);
        let legend: Vec<String> = self
            .series
            .iter()
            .enumerate()
            .map(|(i, s)| format!("{} {}", GLYPHS[i % GLYPHS.len()], s.label))
            .collect();
        let _ = writeln!(out, "#   {}", legend.join("   "));
        let _ = writeln!(out, "{max_y:>10.3} ┐");
        for row in grid {
            let _ = writeln!(out, "{:>10} │{}", "", row.iter().collect::<String>());
        }
        let _ = writeln!(out, "{min_y:>10.3} ┘");
        let _ = writeln!(
            out,
            "{:>11}{min_x:<12.3}{:>width$.3}",
            "",
            max_x,
            width = width.saturating_sub(12)
        );
        let _ = writeln!(out, "{:>11}({} → {})", "", self.xlabel, self.ylabel);
        out
    }
}

fn extents(points: &[(f64, f64)]) -> Option<((f64, f64), (f64, f64))> {
    if points.is_empty() {
        return None;
    }
    let min_x = points.iter().map(|p| p.0).fold(f64::INFINITY, f64::min);
    let max_x = points.iter().map(|p| p.0).fold(f64::NEG_INFINITY, f64::max);
    let min_y = points.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
    let max_y = points.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max);
    Some(((min_x, max_x), (min_y, max_y)))
}

/// Maps `v ∈ [lo, hi]` onto `0..=cells`; degenerate ranges land at 0.
fn scale(v: f64, lo: f64, hi: f64, cells: usize) -> usize {
    if hi <= lo {
        return 0;
    }
    (((v - lo) / (hi - lo)) * cells as f64)
        .round()
        .clamp(0.0, cells as f64) as usize
}

fn truncate(s: &str, n: usize) -> &str {
    match s.char_indices().nth(n) {
        Some((idx, _)) => &s[..idx],
        None => s,
    }
}

fn lookup(points: &[(f64, f64)], x: f64) -> Option<f64> {
    points.iter().find(|p| (p.0 - x).abs() < 1e-9).map(|p| p.1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig() -> FigureData {
        FigureData::new("fig0-0", "Test figure", "x", "y")
            .with_series(Series::new("a", [(1.0, 10.0), (2.0, 20.0)]))
            .with_series(Series::new("b", [(2.0, 5.0)]))
            .with_note("paper expects monotone growth")
    }

    #[test]
    fn table_includes_all_series() {
        let t = fig().render_table(10);
        assert!(t.contains("fig0-0"));
        assert!(t.contains("paper expects"));
        assert!(t.contains("10.0000"));
        assert!(t.contains("5.0000"));
        // Missing cell rendered as '-'.
        assert!(t.lines().any(|l| l.contains('-') && l.contains("10.0000")));
    }

    #[test]
    fn table_thins_rows() {
        let many = FigureData::new("f", "t", "x", "y")
            .with_series(Series::new("s", (0..1000).map(|i| (i as f64, i as f64))));
        let t = many.render_table(10);
        // Header + note lines + ≤10 data rows.
        assert!(t.lines().count() <= 13, "{t}");
    }

    #[test]
    fn json_round_trip() {
        let f = fig();
        let back: FigureData = serde_json::from_str(&f.to_json()).unwrap();
        assert_eq!(f, back);
    }

    #[test]
    fn cdf_series() {
        let cdf = mesh11_stats::Cdf::from_samples([1.0, 2.0, 3.0]).unwrap();
        let s = Series::from_cdf("cdf", &cdf, 3);
        assert_eq!(s.points, vec![(1.0, 0.0), (2.0, 0.5), (3.0, 1.0)]);
    }

    #[test]
    fn truncate_utf8_safe() {
        assert_eq!(truncate("héllo wörld", 5), "héllo");
        assert_eq!(truncate("ab", 5), "ab");
    }

    #[test]
    fn plot_renders_every_series() {
        let p = fig().render_plot(40, 10);
        assert!(p.contains("fig0-0"));
        assert!(p.contains("* a"));
        assert!(p.contains("+ b"));
        // Extents appear on the axes.
        assert!(p.contains("20.000"));
        assert!(p.contains("5.000"));
        // Grid rows have the expected width-ish shape.
        assert!(p.lines().count() >= 12);
    }

    #[test]
    fn plot_handles_degenerate_inputs() {
        let flat = FigureData::new("f", "t", "x", "y").with_series(Series::new("s", [(1.0, 2.0)]));
        let p = flat.render_plot(40, 8);
        assert!(p.contains('*'), "single point still plots: {p}");

        let empty = FigureData::new("f", "t", "x", "y").with_series(Series::new("s", []));
        assert!(empty.render_plot(40, 8).contains("no finite points"));

        let nan =
            FigureData::new("f", "t", "x", "y").with_series(Series::new("s", [(f64::NAN, 1.0)]));
        assert!(nan.render_plot(40, 8).contains("no finite points"));
    }

    #[test]
    fn scale_maps_endpoints() {
        assert_eq!(scale(0.0, 0.0, 1.0, 10), 0);
        assert_eq!(scale(1.0, 0.0, 1.0, 10), 10);
        assert_eq!(scale(0.5, 0.0, 1.0, 10), 5);
        assert_eq!(scale(7.0, 7.0, 7.0, 10), 0, "degenerate range");
        assert_eq!(scale(-5.0, 0.0, 1.0, 10), 0, "clamped below");
        assert_eq!(scale(5.0, 0.0, 1.0, 10), 10, "clamped above");
    }
}
