//! Routing ablations (DESIGN.md §8).
//!
//! Two design knobs the idealized §5 analysis abstracts away, restored here
//! so their cost can be measured:
//!
//! * **Candidate-set cap** — real ExOR schedules only a handful of
//!   forwarders (coordination cost grows with the set). Capping the
//!   candidate set at the `k` ETX-closest nodes shows how quickly the
//!   opportunistic gain saturates — the classic result that ~4 forwarders
//!   capture nearly everything.
//! * **Delivery floor** — the §5 pipeline drops links below a delivery
//!   floor before routing. Sweeping the floor shows how much of the gain
//!   rides on barely-alive links that a real protocol could not use.

use mesh11_trace::{ApId, DeliveryMatrix};

use crate::routing::etx::{EtxVariant, MIN_DELIVERY};
use crate::routing::shortest::PathTable;

/// Idealized opportunistic cost with the candidate set capped at the `cap`
/// ETX-closest usable neighbours (`None` = uncapped, the §5 analysis).
pub fn exor_capped(m: &DeliveryMatrix, ordering: &PathTable, cap: Option<usize>) -> Vec<f64> {
    let n = m.n_aps();
    let mut cost = vec![f64::INFINITY; n * n];
    for d in 0..n {
        let dist = |s: usize| ordering.cost(ApId(s as u32), ApId(d as u32));
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| dist(a).partial_cmp(&dist(b)).expect("no NaN costs"));
        cost[d * n + d] = 0.0;
        for &s in &order {
            if s == d || !dist(s).is_finite() {
                continue;
            }
            let mut cands: Vec<(usize, f64)> = (0..n)
                .filter(|&v| v != s)
                .filter_map(|v| {
                    let p = m.get(ApId(s as u32), ApId(v as u32));
                    (p >= MIN_DELIVERY && dist(v) < dist(s)).then_some((v, p))
                })
                .collect();
            cands.sort_by(|a, b| dist(a.0).partial_cmp(&dist(b.0)).expect("no NaN costs"));
            if let Some(cap) = cap {
                cands.truncate(cap);
            }
            if cands.is_empty() {
                cost[s * n + d] = dist(s);
                continue;
            }
            let mut numer = 0.0;
            let mut none_heard = 1.0;
            for &(v, p) in &cands {
                numer += p * none_heard * cost[v * n + d];
                none_heard *= 1.0 - p;
            }
            cost[s * n + d] = (1.0 + numer) / (1.0 - none_heard);
        }
    }
    cost
}

/// Mean ETX1 improvement as a function of the candidate cap: the ablation's
/// headline curve, `(cap, mean_improvement)` with `cap = usize::MAX` for
/// uncapped.
pub fn improvement_vs_cap(m: &DeliveryMatrix, caps: &[usize]) -> Vec<(usize, f64)> {
    let etx1 = PathTable::compute(m, EtxVariant::Etx1);
    let n = m.n_aps();
    caps.iter()
        .map(|&cap| {
            let cap_opt = (cap != usize::MAX).then_some(cap);
            let exor = exor_capped(m, &etx1, cap_opt);
            let mut imps = Vec::new();
            for (s, d) in etx1.reachable_pairs() {
                let e = etx1.cost(s, d);
                let x = exor[s.idx() * n + d.idx()];
                if x.is_finite() && x > 0.0 {
                    imps.push((e / x - 1.0).max(0.0));
                }
            }
            (cap, mesh11_stats::mean(&imps).unwrap_or(0.0))
        })
        .collect()
}

/// Sweeps the ETX delivery floor: `(floor, mean ETX1 path cost over pairs
/// reachable at every floor, reachable-pair count)`.
///
/// Raising the floor prunes barely-alive links: costs over the *common*
/// reachable set rise (good detours vanish) while coverage shrinks.
pub fn delivery_floor_sweep(m: &DeliveryMatrix, floors: &[f64]) -> Vec<(f64, f64, usize)> {
    // Build a censored copy of the matrix per floor.
    let censor = |floor: f64| {
        let mut c = DeliveryMatrix::new_zero(m.network, m.rate, m.n_aps());
        for (from, to, p) in m.directed_pairs() {
            if p >= floor {
                c.set(from, to, p);
            }
        }
        c
    };
    // Common reachable set = reachable at the strictest floor.
    let strictest = floors.iter().copied().fold(0.0, f64::max);
    let strict_paths = PathTable::compute(&censor(strictest), EtxVariant::Etx1);
    let common: Vec<(ApId, ApId)> = strict_paths.reachable_pairs().collect();

    floors
        .iter()
        .map(|&floor| {
            let paths = PathTable::compute(&censor(floor), EtxVariant::Etx1);
            let costs: Vec<f64> = common
                .iter()
                .map(|&(s, d)| paths.cost(s, d))
                .filter(|c| c.is_finite())
                .collect();
            let reachable = paths.reachable_pairs().count();
            (
                floor,
                mesh11_stats::mean(&costs).unwrap_or(f64::NAN),
                reachable,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::exor::ExorTable;
    use mesh11_phy::BitRate;
    use mesh11_trace::NetworkId;

    /// Source with three parallel relays of decreasing quality.
    fn fan() -> DeliveryMatrix {
        let mut m = DeliveryMatrix::new_zero(NetworkId(0), BitRate::bg_mbps(1.0).unwrap(), 5);
        for (relay, p) in [(1u32, 0.9), (2, 0.6), (3, 0.3)] {
            m.set(ApId(0), ApId(relay), p);
            m.set(ApId(relay), ApId(0), p);
            m.set(ApId(relay), ApId(4), 0.9);
            m.set(ApId(4), ApId(relay), 0.9);
        }
        m
    }

    #[test]
    fn uncapped_matches_exor_table() {
        let m = fan();
        let etx1 = PathTable::compute(&m, EtxVariant::Etx1);
        let reference = ExorTable::compute(&m, &etx1, EtxVariant::Etx1);
        let capped = exor_capped(&m, &etx1, None);
        let n = m.n_aps();
        for s in 0..n {
            for d in 0..n {
                let a = reference.cost(ApId(s as u32), ApId(d as u32));
                let b = capped[s * n + d];
                assert!(
                    (a.is_infinite() && b.is_infinite()) || (a - b).abs() < 1e-12,
                    "{s}→{d}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn improvement_grows_then_saturates_with_cap() {
        let m = fan();
        let rows = improvement_vs_cap(&m, &[1, 2, 3, usize::MAX]);
        // Monotone non-decreasing in the cap…
        for w in rows.windows(2) {
            assert!(w[1].1 >= w[0].1 - 1e-12, "{rows:?}");
        }
        // …and the full gain is achieved within the available relays.
        assert!((rows[2].1 - rows[3].1).abs() < 1e-12, "{rows:?}");
        // cap=1 strictly reduces cost vs cap=3 on this diversity-rich fan.
        assert!(rows[0].1 < rows[2].1, "{rows:?}");
    }

    #[test]
    fn cap_one_still_beats_nothing() {
        // With one candidate, ExOR degenerates to the ETX path: improvement
        // can exist only when the single candidate differs from the
        // shortest-path next hop in ETX... in a fan it does not.
        let m = fan();
        let rows = improvement_vs_cap(&m, &[1]);
        assert!(rows[0].1 >= 0.0);
    }

    #[test]
    fn floor_sweep_costs_rise_with_floor() {
        let m = fan();
        let rows = delivery_floor_sweep(&m, &[0.05, 0.35, 0.65]);
        // Coverage never grows and common-set costs never fall as the
        // floor rises (pruned links can only remove options).
        for w in rows.windows(2) {
            assert!(w[1].2 <= w[0].2, "{rows:?}");
            assert!(w[1].1 >= w[0].1 - 1e-12, "{rows:?}");
        }
        // Killing the 0.6 relay at floor 0.65 forces worse paths.
        assert!(rows[2].1 > rows[0].1, "{rows:?}");
    }

    #[test]
    fn floor_sweep_can_disconnect() {
        // 0 —(0.2)— 1 —(0.9)— 2: at floor 0.35 node 0 is cut off.
        let mut m = DeliveryMatrix::new_zero(NetworkId(0), BitRate::bg_mbps(1.0).unwrap(), 3);
        m.set(ApId(0), ApId(1), 0.2);
        m.set(ApId(1), ApId(0), 0.2);
        m.set(ApId(1), ApId(2), 0.9);
        m.set(ApId(2), ApId(1), 0.9);
        let rows = delivery_floor_sweep(&m, &[0.05, 0.35]);
        assert_eq!(rows[0].2, 6, "{rows:?}");
        assert_eq!(rows[1].2, 2, "{rows:?}");
    }
}
