//! §5.1–5.3 — quantifying the opportunistic gain.
//!
//! For every ordered reachable pair the improvement is
//! `ETX_cost / ExOR_cost − 1` (the paper's definition: "an improvement of x
//! means ETX1 requires (x·100)% more transmissions"). Diversity-free pairs
//! come out at exactly zero — the 13–20% "no improvement" mass of Fig 5.1.

use mesh11_phy::{BitRate, Phy};
use mesh11_stats::BinnedStats;
use mesh11_trace::{ApId, DatasetView, DeliveryMatrix, FoldKernel, NetworkId, ProbeSource};
use rayon::prelude::*;

use crate::routing::etx::EtxVariant;
use crate::routing::exor::ExorTable;
use crate::routing::shortest::PathTable;

/// One source–destination pair's routing costs.
#[derive(Debug, Clone, Copy)]
pub struct PairCosts {
    /// Source.
    pub s: ApId,
    /// Destination.
    pub d: ApId,
    /// ETX1 shortest-path cost.
    pub etx1: f64,
    /// ETX2 shortest-path cost (∞ if no symmetric path).
    pub etx2: f64,
    /// Idealized opportunistic cost.
    pub exor: f64,
    /// Hop count of the ETX1 path.
    pub hops: u32,
}

impl PairCosts {
    /// The paper's fraction improvement versus a variant; `None` when the
    /// variant's path does not exist.
    pub fn improvement(&self, variant: EtxVariant) -> Option<f64> {
        let etx = match variant {
            EtxVariant::Etx1 => self.etx1,
            EtxVariant::Etx2 => self.etx2,
        };
        (etx.is_finite() && self.exor.is_finite() && self.exor > 0.0)
            .then(|| (etx / self.exor - 1.0).max(0.0))
    }
}

/// The full opportunistic-routing analysis of one (network, rate).
#[derive(Debug, Clone)]
pub struct OpportunisticAnalysis {
    /// Network analyzed.
    pub network: NetworkId,
    /// Rate the delivery matrix was measured at.
    pub rate: BitRate,
    /// Network size (APs).
    pub n_aps: usize,
    /// Every ordered pair reachable under ETX1.
    pub pairs: Vec<PairCosts>,
}

impl OpportunisticAnalysis {
    /// Runs the §5 pipeline on one delivery matrix.
    pub fn compute(m: &DeliveryMatrix) -> Self {
        let etx1 = PathTable::compute(m, EtxVariant::Etx1);
        let etx2 = PathTable::compute(m, EtxVariant::Etx2);
        let exor = ExorTable::compute(m, &etx1, EtxVariant::Etx1);
        let pairs = etx1
            .reachable_pairs()
            .map(|(s, d)| PairCosts {
                s,
                d,
                etx1: etx1.cost(s, d),
                etx2: etx2.cost(s, d),
                exor: exor.cost(s, d),
                hops: etx1.hops(s, d).expect("reachable pairs have hop counts"),
            })
            .collect();
        Self {
            network: m.network,
            rate: m.rate,
            n_aps: m.n_aps(),
            pairs,
        }
    }

    /// All defined improvements versus a variant (Fig 5.1's sample).
    pub fn improvements(&self, variant: EtxVariant) -> Vec<f64> {
        self.pairs
            .iter()
            .filter_map(|p| p.improvement(variant))
            .collect()
    }

    /// Fraction of pairs with (numerically) zero improvement.
    pub fn frac_no_improvement(&self, variant: EtxVariant) -> f64 {
        let imps = self.improvements(variant);
        if imps.is_empty() {
            return 0.0;
        }
        imps.iter().filter(|&&x| x < 1e-9).count() as f64 / imps.len() as f64
    }

    /// ETX1 path lengths in hops (Fig 5.3's sample).
    pub fn path_lengths(&self) -> Vec<u32> {
        self.pairs.iter().map(|p| p.hops).collect()
    }

    /// Mean improvement over all pairs (Fig 5.5's per-network y value).
    pub fn mean_improvement(&self, variant: EtxVariant) -> Option<f64> {
        mesh11_stats::mean(&self.improvements(variant))
    }
}

/// Runs the analysis for every rate of every network with at least
/// `min_aps` APs (the paper uses 5), returning one entry per
/// (network, rate).
pub fn analyze_dataset(
    view: DatasetView<'_>,
    phy: Phy,
    min_aps: usize,
) -> Vec<OpportunisticAnalysis> {
    analyze_dataset_from(&ProbeSource::Whole(view), phy, min_aps)
}

/// The fold-style form of [`analyze_dataset_from`]: one entry per
/// (network, rate) in network-id order, identical either way. Networks
/// are analyzed in parallel; the order-preserving collect plus in-order
/// flatten keeps the (network, rate) output order.
#[derive(Debug, Clone, Copy)]
pub struct RoutingKernel {
    /// PHY analyzed.
    pub phy: Phy,
    /// Minimum APs for a network to join the population (§5 uses 5).
    pub min_aps: usize,
}

impl FoldKernel for RoutingKernel {
    type Partial = Vec<OpportunisticAnalysis>;
    type Output = Vec<OpportunisticAnalysis>;

    fn init(&self) -> Self::Partial {
        Vec::new()
    }

    fn fold(&self, view: DatasetView<'_>, out: &mut Self::Partial) {
        let metas: Vec<_> = view
            .networks_with_at_least(self.min_aps)
            .filter(|meta| meta.radios.contains(&self.phy))
            .collect();
        let per_net: Vec<Vec<OpportunisticAnalysis>> = metas
            .par_iter()
            .map(|meta| {
                // One pass over this network's indexed probes for all rates
                // at once.
                view.delivery_stack(self.phy, meta.id, self.phy.probed_rates(), meta.n_aps)
                    .iter()
                    .map(OpportunisticAnalysis::compute)
                    .collect()
            })
            .collect();
        out.extend(per_net.into_iter().flatten());
    }

    fn merge(&self, into: &mut Self::Partial, from: Self::Partial) {
        into.extend(from);
    }

    fn finish(&self, out: Self::Partial) -> Self::Output {
        out
    }
}

/// [`analyze_dataset`] over a whole or chunked source; see
/// [`RoutingKernel`] for the ordering argument.
pub fn analyze_dataset_from(
    src: &ProbeSource<'_>,
    phy: Phy,
    min_aps: usize,
) -> Vec<OpportunisticAnalysis> {
    mesh11_trace::run_fold(src, &RoutingKernel { phy, min_aps })
}

/// Fig 5.4: median and maximum improvement by ETX1 path length, pooled over
/// every analysis handed in. Returns `(hops, median, max)` rows.
pub fn improvement_by_path_length(
    analyses: &[OpportunisticAnalysis],
    variant: EtxVariant,
) -> Vec<(u32, f64, f64)> {
    let mut by_hops = BinnedStats::new();
    for a in analyses {
        for p in &a.pairs {
            if let Some(imp) = p.improvement(variant) {
                by_hops.push(i64::from(p.hops), imp);
            }
        }
    }
    by_hops
        .rows()
        .into_iter()
        .filter(|(h, _)| *h >= 1)
        .map(|(h, s)| (h as u32, s.median, s.max))
        .collect()
}

/// Fig 5.5: per-network mean improvement versus network size, at one rate.
/// Returns `(size, mean, stddev)` rows.
pub fn improvement_by_network_size(
    analyses: &[OpportunisticAnalysis],
    rate: BitRate,
    variant: EtxVariant,
) -> Vec<(usize, f64, f64)> {
    analyses
        .iter()
        .filter(|a| a.rate == rate)
        .filter_map(|a| {
            let imps = a.improvements(variant);
            let mean = mesh11_stats::mean(&imps)?;
            let sd = mesh11_stats::stddev(&imps).unwrap_or(0.0);
            Some((a.n_aps, mean, sd))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix(n: usize) -> DeliveryMatrix {
        DeliveryMatrix::new_zero(NetworkId(0), BitRate::bg_mbps(1.0).unwrap(), n)
    }

    /// A diamond: 0 → {1, 2} → 3 with a weak direct 0→3. Rich diversity.
    fn diamond() -> DeliveryMatrix {
        let mut m = matrix(4);
        for (a, b) in [(0u32, 1u32), (0, 2), (1, 3), (2, 3)] {
            m.set(ApId(a), ApId(b), 0.8);
            m.set(ApId(b), ApId(a), 0.6);
        }
        m.set(ApId(0), ApId(3), 0.2);
        m.set(ApId(3), ApId(0), 0.2);
        m
    }

    #[test]
    fn diamond_shows_improvement() {
        let a = OpportunisticAnalysis::compute(&diamond());
        let pair = a
            .pairs
            .iter()
            .find(|p| p.s == ApId(0) && p.d == ApId(3))
            .unwrap();
        let imp1 = pair.improvement(EtxVariant::Etx1).unwrap();
        assert!(imp1 > 0.0, "diversity must show improvement: {imp1}");
        // ETX2 improvement dominates ETX1 improvement (asymmetric links).
        let imp2 = pair.improvement(EtxVariant::Etx2).unwrap();
        assert!(imp2 > imp1);
    }

    #[test]
    fn chain_shows_none() {
        let mut m = matrix(3);
        for (a, b) in [(0u32, 1u32), (1, 2)] {
            m.set(ApId(a), ApId(b), 0.8);
            m.set(ApId(b), ApId(a), 0.8);
        }
        let a = OpportunisticAnalysis::compute(&m);
        assert_eq!(a.frac_no_improvement(EtxVariant::Etx1), 1.0);
        // Symmetric chain: ETX2 improvement exists (ETX2 path costs more
        // than the broadcast ExOR cost) even without diversity.
        assert!(a.improvements(EtxVariant::Etx2).iter().all(|&x| x > 0.0));
    }

    #[test]
    fn improvements_nonnegative_and_finite() {
        let a = OpportunisticAnalysis::compute(&diamond());
        for v in EtxVariant::ALL {
            for imp in a.improvements(v) {
                assert!(imp.is_finite() && imp >= 0.0);
            }
        }
    }

    #[test]
    fn path_length_rows() {
        let a = OpportunisticAnalysis::compute(&diamond());
        let rows = improvement_by_path_length(&[a], EtxVariant::Etx1);
        assert!(!rows.is_empty());
        for (h, med, max) in rows {
            assert!(h >= 1);
            assert!(med <= max + 1e-12);
        }
    }

    #[test]
    fn network_size_rows() {
        let a = OpportunisticAnalysis::compute(&diamond());
        let rate = BitRate::bg_mbps(1.0).unwrap();
        let rows = improvement_by_network_size(&[a], rate, EtxVariant::Etx1);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].0, 4);
        assert!(rows[0].1 >= 0.0);
        // Wrong rate filters everything out.
        let none = improvement_by_network_size(
            &[OpportunisticAnalysis::compute(&diamond())],
            BitRate::bg_mbps(48.0).unwrap(),
            EtxVariant::Etx1,
        );
        assert!(none.is_empty());
    }

    #[test]
    fn hops_match_paths() {
        let a = OpportunisticAnalysis::compute(&diamond());
        let p03 = a
            .pairs
            .iter()
            .find(|p| p.s == ApId(0) && p.d == ApId(3))
            .unwrap();
        // 0.8·0.8 two-hop (ETX 2.5) beats the 0.2 direct (ETX 5).
        assert_eq!(p03.hops, 2);
    }
}
