//! §5.2.2's unpictured result: path diversity vs opportunistic improvement.
//!
//! The paper: "We also see a similar result regarding path diversity (not
//! pictured): the median improvement increases as the number of diverse
//! paths from the source to the destination increases, but the maximum
//! improvement tends to decrease."
//!
//! Diversity here is measured the way opportunism consumes it: the number
//! of usable first hops that make progress toward the destination (the
//! source's ExOR candidate-set size). A pair with one candidate is a
//! corridor; a pair with five is a mesh.

use mesh11_trace::{ApId, DeliveryMatrix};
use rayon::prelude::*;

use crate::routing::etx::{EtxVariant, MIN_DELIVERY};
use crate::routing::improvement::OpportunisticAnalysis;
use crate::routing::shortest::PathTable;

/// Number of usable neighbours of `s` strictly closer (by ETX1) to `d` —
/// the source's forwarding-candidate count.
pub fn candidate_count(m: &DeliveryMatrix, paths: &PathTable, s: ApId, d: ApId) -> usize {
    let n = m.n_aps();
    let ds = paths.cost(s, d);
    if !ds.is_finite() {
        return 0;
    }
    (0..n)
        .filter(|&v| {
            let v_id = ApId(v as u32);
            v_id != s && m.get(s, v_id) >= MIN_DELIVERY && paths.cost(v_id, d) < ds
        })
        .count()
}

/// Pools `(diversity, improvement)` pairs across analyses and reduces them
/// to `(diversity, median, max, count)` rows — the §5.2.2 result.
pub fn improvement_by_diversity(
    matrices: &[(DeliveryMatrix, OpportunisticAnalysis)],
    variant: EtxVariant,
) -> Vec<(usize, f64, f64, usize)> {
    // One partial per matrix in parallel; merging in matrix order rebuilds
    // the sequential per-bin push order exactly.
    let partials: Vec<mesh11_stats::BinnedStats> = matrices
        .par_iter()
        .map(|(m, analysis)| {
            let paths = PathTable::compute(m, EtxVariant::Etx1);
            let mut by = mesh11_stats::BinnedStats::new();
            for p in &analysis.pairs {
                let Some(imp) = p.improvement(variant) else {
                    continue;
                };
                let div = candidate_count(m, &paths, p.s, p.d);
                by.push(div as i64, imp);
            }
            by
        })
        .collect();
    let mut by_div = mesh11_stats::BinnedStats::new();
    for b in partials {
        by_div.merge(b);
    }
    by_div
        .rows()
        .into_iter()
        .map(|(d, s)| (d as usize, s.median, s.max, s.count))
        .collect()
}

/// Convenience: builds matrices + analyses for one rate over a dataset and
/// reduces them. `min_aps` mirrors the §5 population (5).
pub fn analyze_diversity(
    view: mesh11_trace::DatasetView<'_>,
    phy: mesh11_phy::Phy,
    rate: mesh11_phy::BitRate,
    min_aps: usize,
    variant: EtxVariant,
) -> Vec<(usize, f64, f64, usize)> {
    analyze_diversity_from(
        &mesh11_trace::ProbeSource::Whole(view),
        phy,
        rate,
        min_aps,
        variant,
    )
}

/// The fold-style form of [`analyze_diversity_from`]: the pooled
/// `(matrix, analysis)` list builds in network-id order either way before
/// the single reduction in `finish`.
#[derive(Debug, Clone, Copy)]
pub struct DiversityKernel {
    /// PHY analyzed.
    pub phy: mesh11_phy::Phy,
    /// Rate whose delivery matrix is analyzed.
    pub rate: mesh11_phy::BitRate,
    /// Minimum APs for a network to join the population (§5 uses 5).
    pub min_aps: usize,
    /// ETX variant scoring the improvement.
    pub variant: EtxVariant,
}

impl mesh11_trace::FoldKernel for DiversityKernel {
    type Partial = Vec<(DeliveryMatrix, OpportunisticAnalysis)>;
    type Output = Vec<(usize, f64, f64, usize)>;

    fn init(&self) -> Self::Partial {
        Vec::new()
    }

    fn fold(&self, view: mesh11_trace::DatasetView<'_>, pairs: &mut Self::Partial) {
        let metas: Vec<_> = view
            .networks_with_at_least(self.min_aps)
            .filter(|meta| meta.radios.contains(&self.phy))
            .collect();
        let built: Vec<(DeliveryMatrix, OpportunisticAnalysis)> = metas
            .par_iter()
            .map(|meta| {
                let m = view.delivery_matrix(self.phy, meta.id, self.rate, meta.n_aps);
                let a = OpportunisticAnalysis::compute(&m);
                (m, a)
            })
            .collect();
        pairs.extend(built);
    }

    fn merge(&self, into: &mut Self::Partial, from: Self::Partial) {
        into.extend(from);
    }

    fn finish(&self, pairs: Self::Partial) -> Self::Output {
        improvement_by_diversity(&pairs, self.variant)
    }
}

/// [`analyze_diversity`] over a whole or chunked source; see
/// [`DiversityKernel`] for the ordering argument.
pub fn analyze_diversity_from(
    src: &mesh11_trace::ProbeSource<'_>,
    phy: mesh11_phy::Phy,
    rate: mesh11_phy::BitRate,
    min_aps: usize,
    variant: EtxVariant,
) -> Vec<(usize, f64, f64, usize)> {
    mesh11_trace::run_fold(
        src,
        &DiversityKernel {
            phy,
            rate,
            min_aps,
            variant,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh11_phy::BitRate;
    use mesh11_trace::NetworkId;

    fn rate() -> BitRate {
        BitRate::bg_mbps(1.0).unwrap()
    }

    /// Source 0 with `k` parallel relays to destination `k+1`.
    fn fan(k: usize) -> DeliveryMatrix {
        let n = k + 2;
        let dst = (n - 1) as u32;
        let mut m = DeliveryMatrix::new_zero(NetworkId(0), rate(), n);
        for r in 1..=k as u32 {
            m.set(ApId(0), ApId(r), 0.7);
            m.set(ApId(r), ApId(0), 0.7);
            m.set(ApId(r), ApId(dst), 0.9);
            m.set(ApId(dst), ApId(r), 0.9);
        }
        m
    }

    #[test]
    fn candidate_count_matches_fan_width() {
        for k in 1..5 {
            let m = fan(k);
            let paths = PathTable::compute(&m, EtxVariant::Etx1);
            let dst = ApId((k + 1) as u32);
            assert_eq!(candidate_count(&m, &paths, ApId(0), dst), k, "fan {k}");
            // The relays themselves have exactly one candidate (the dst).
            assert_eq!(candidate_count(&m, &paths, ApId(1), dst), 1);
        }
    }

    #[test]
    fn unreachable_pairs_have_zero_candidates() {
        let m = DeliveryMatrix::new_zero(NetworkId(0), rate(), 3);
        let paths = PathTable::compute(&m, EtxVariant::Etx1);
        assert_eq!(candidate_count(&m, &paths, ApId(0), ApId(2)), 0);
    }

    #[test]
    fn median_improvement_grows_with_diversity() {
        // Pool fans of width 1..4: wider fans give opportunism more to eat.
        let pool: Vec<(DeliveryMatrix, OpportunisticAnalysis)> = (1..=4)
            .map(|k| {
                let m = fan(k);
                let a = OpportunisticAnalysis::compute(&m);
                (m, a)
            })
            .collect();
        let rows = improvement_by_diversity(&pool, EtxVariant::Etx1);
        // Extract the rows for diversity 1 and the largest diversity seen.
        let med_at = |d: usize| rows.iter().find(|r| r.0 == d).map(|r| r.1);
        let lo = med_at(1).expect("diversity-1 pairs exist");
        let hi = med_at(4).expect("diversity-4 pairs exist");
        assert!(
            hi > lo,
            "median improvement should grow with diversity: {lo} → {hi}"
        );
        // Diversity-1 pairs see exactly zero (no opportunism possible).
        assert!(lo < 1e-9);
    }
}
