//! ETX link metrics (§5.1).
//!
//! * **ETX1** — `1 / P(s→d)`: the ACK channel is assumed perfect (ACKs ride
//!   the lowest rate and almost always arrive). The paper argues this is
//!   what real networks should deploy.
//! * **ETX2** — `1 / (P(s→d) · P(d→s))`: the original De Couto et al.
//!   metric, charging the reverse direction for the ACK.

use mesh11_trace::{ApId, DeliveryMatrix};
use serde::{Deserialize, Serialize};

/// Which ETX formulation to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EtxVariant {
    /// Perfect-ACK: cost `1/P(s→d)`.
    Etx1,
    /// Lossy-ACK: cost `1/(P(s→d)·P(d→s))`.
    Etx2,
}

impl EtxVariant {
    /// Both variants.
    pub const ALL: [EtxVariant; 2] = [EtxVariant::Etx1, EtxVariant::Etx2];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            EtxVariant::Etx1 => "ETX1",
            EtxVariant::Etx2 => "ETX2",
        }
    }
}

/// Links below this delivery probability are unusable for routing. One
/// reception out of a 20-probe window is 0.05; anything below that is
/// statistical noise around "never heard".
pub const MIN_DELIVERY: f64 = 0.05;

/// ETX cost of the directed link `from → to`; `None` when unusable.
pub fn link_cost(m: &DeliveryMatrix, variant: EtxVariant, from: ApId, to: ApId) -> Option<f64> {
    let fwd = m.get(from, to);
    if fwd < MIN_DELIVERY {
        return None;
    }
    match variant {
        EtxVariant::Etx1 => Some(1.0 / fwd),
        EtxVariant::Etx2 => {
            let rev = m.get(to, from);
            if rev < MIN_DELIVERY {
                None
            } else {
                Some(1.0 / (fwd * rev))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh11_phy::BitRate;
    use mesh11_trace::NetworkId;

    fn matrix() -> DeliveryMatrix {
        let mut m = DeliveryMatrix::new_zero(NetworkId(0), BitRate::bg_mbps(1.0).unwrap(), 3);
        m.set(ApId(0), ApId(1), 0.8);
        m.set(ApId(1), ApId(0), 0.5);
        m.set(ApId(0), ApId(2), 0.02); // below floor
        m
    }

    #[test]
    fn etx1_uses_forward_only() {
        let m = matrix();
        let c = link_cost(&m, EtxVariant::Etx1, ApId(0), ApId(1)).unwrap();
        assert!((c - 1.25).abs() < 1e-12);
        // Asymmetric: the reverse direction costs more.
        let rev = link_cost(&m, EtxVariant::Etx1, ApId(1), ApId(0)).unwrap();
        assert!((rev - 2.0).abs() < 1e-12);
    }

    #[test]
    fn etx2_charges_the_ack() {
        let m = matrix();
        let c = link_cost(&m, EtxVariant::Etx2, ApId(0), ApId(1)).unwrap();
        assert!((c - 1.0 / 0.4).abs() < 1e-12);
        // ETX2 is symmetric by construction.
        let rev = link_cost(&m, EtxVariant::Etx2, ApId(1), ApId(0)).unwrap();
        assert!((c - rev).abs() < 1e-12);
    }

    #[test]
    fn etx2_at_least_etx1() {
        let m = matrix();
        for (a, b) in [(ApId(0), ApId(1)), (ApId(1), ApId(0))] {
            let e1 = link_cost(&m, EtxVariant::Etx1, a, b).unwrap();
            let e2 = link_cost(&m, EtxVariant::Etx2, a, b).unwrap();
            assert!(e2 >= e1);
        }
    }

    #[test]
    fn floor_rejects_dead_links() {
        let m = matrix();
        assert_eq!(link_cost(&m, EtxVariant::Etx1, ApId(0), ApId(2)), None);
        assert_eq!(link_cost(&m, EtxVariant::Etx2, ApId(0), ApId(2)), None);
        // ETX2 also dies when only the reverse is dead.
        let mut m2 = matrix();
        m2.set(ApId(1), ApId(0), 0.01);
        assert!(link_cost(&m2, EtxVariant::Etx1, ApId(0), ApId(1)).is_some());
        assert_eq!(link_cost(&m2, EtxVariant::Etx2, ApId(0), ApId(1)), None);
    }

    #[test]
    fn perfect_link_costs_one() {
        let mut m = DeliveryMatrix::new_zero(NetworkId(0), BitRate::bg_mbps(1.0).unwrap(), 2);
        m.set(ApId(0), ApId(1), 1.0);
        m.set(ApId(1), ApId(0), 1.0);
        assert_eq!(link_cost(&m, EtxVariant::Etx1, ApId(0), ApId(1)), Some(1.0));
        assert_eq!(link_cost(&m, EtxVariant::Etx2, ApId(0), ApId(1)), Some(1.0));
    }
}
