//! The idealized opportunistic routing cost (§5.1).
//!
//! Models MORE-style opportunism with zero coordination overhead. For a
//! source `s` and destination `d`, let `C` be the neighbours of `s` strictly
//! closer to `d` under the ETX metric. When `s` broadcasts:
//!
//! ```text
//! r(n) = P(s→n) · Π_{m ∈ C closer than n} (1 − P(s→m))   (n relays)
//! r(s) = Π_{n ∈ C} (1 − P(s→n))                          (nobody heard)
//! ExOR(s→d) = (1 + Σ_n r(n)·ExOR(n→d)) / (1 − r(s))
//! ```
//!
//! Nodes are processed in ascending ETX-to-destination order, so every
//! `ExOR(n→d)` on the right-hand side is already final. A source with a
//! single usable closer neighbour reduces exactly to the ETX path cost —
//! which is why diversity-free pairs show *precisely* zero improvement in
//! Fig 5.1.

use mesh11_trace::{ApId, DeliveryMatrix};

use crate::routing::etx::{EtxVariant, MIN_DELIVERY};
use crate::routing::shortest::PathTable;

/// All-pairs idealized opportunistic costs for one delivery matrix.
#[derive(Debug, Clone)]
pub struct ExorTable {
    n: usize,
    /// `cost[s * n + d]`; ∞ when `d` is unreachable from `s`.
    cost: Vec<f64>,
}

/// Per-destination scratch buffers, reused across the whole table build.
struct Scratch {
    dist: Vec<f64>,
    order: Vec<usize>,
    rank: Vec<u32>,
    cands: Vec<(usize, f64)>,
}

impl ExorTable {
    /// Computes opportunistic costs, ordering candidates by the given ETX
    /// variant's shortest paths (the paper uses the same metric for routing
    /// and for candidate ordering; broadcast data frames carry no ACKs, so
    /// ETX1 ordering is the physically sensible default).
    pub fn compute(m: &DeliveryMatrix, ordering: &PathTable, _variant: EtxVariant) -> Self {
        let n = m.n_aps();
        // Usable outgoing neighbours of each source, in ascending-id order
        // — shared by every destination so the O(n) delivery scan per
        // (s, d) pair collapses to one scan per source.
        let nbrs: Vec<Vec<(usize, f64)>> = (0..n)
            .map(|s| {
                (0..n)
                    .filter(|&v| v != s)
                    .filter_map(|v| {
                        let p = m.get(ApId(s as u32), ApId(v as u32));
                        (p >= MIN_DELIVERY).then_some((v, p))
                    })
                    .collect()
            })
            .collect();
        let mut cost = vec![f64::INFINITY; n * n];
        // Scratch buffers reused across destinations (and the candidate
        // buffer across sources): the per-(s, d) allocations were the
        // hottest malloc traffic in the §5 pipeline.
        let mut scratch = Scratch {
            dist: vec![0.0; n],
            order: Vec::with_capacity(n),
            rank: vec![0; n],
            cands: Vec::new(),
        };
        for d in 0..n {
            Self::one_destination(&nbrs, ordering, d, n, &mut cost, &mut scratch);
        }
        Self { n, cost }
    }

    fn one_destination(
        nbrs: &[Vec<(usize, f64)>],
        ordering: &PathTable,
        d: usize,
        n: usize,
        cost: &mut [f64],
        scratch: &mut Scratch,
    ) {
        let Scratch {
            dist,
            order,
            rank,
            cands,
        } = scratch;
        // One contiguous copy of the ETX-to-d column: the hot filter below
        // reads it n·deg times, and the path table stores it strided.
        for (s, slot) in dist.iter_mut().enumerate() {
            *slot = ordering.cost(ApId(s as u32), ApId(d as u32));
        }
        // Ascending ETX-to-d; unreachable nodes sort last and stay ∞.
        order.clear();
        order.extend(0..n);
        order.sort_by(|&a, &b| dist[a].partial_cmp(&dist[b]).expect("no NaN costs"));
        // rank[v] = position of v in `order`. Sorting candidates by rank
        // is the same order the dist comparator produced (stable sort put
        // dist ties in ascending id, matching the neighbour lists), with
        // an integer key instead of a float comparator.
        for (r, &v) in order.iter().enumerate() {
            rank[v] = r as u32;
        }

        cost[d * n + d] = 0.0;
        for &s in order.iter() {
            if s == d || !dist[s].is_finite() {
                continue;
            }
            // Candidates: usable neighbours strictly closer to d.
            cands.clear();
            cands.extend(nbrs[s].iter().copied().filter(|&(v, _)| dist[v] < dist[s]));
            if cands.is_empty() {
                // §5.1: no closer node ⇒ ExOR(s→d) = ETX(s→d).
                cost[s * n + d] = dist[s];
                continue;
            }
            cands.sort_by_key(|&(v, _)| rank[v]);
            let mut numer = 0.0;
            let mut none_heard = 1.0;
            for &(v, p) in cands.iter() {
                let r_v = p * none_heard;
                numer += r_v * cost[v * n + d];
                none_heard *= 1.0 - p;
            }
            cost[s * n + d] = (1.0 + numer) / (1.0 - none_heard);
        }
    }

    /// Opportunistic cost `s → d`; ∞ when unreachable.
    pub fn cost(&self, s: ApId, d: ApId) -> f64 {
        self.cost[s.idx() * self.n + d.idx()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh11_phy::BitRate;
    use mesh11_trace::NetworkId;
    use proptest::prelude::*;

    fn matrix(n: usize) -> DeliveryMatrix {
        DeliveryMatrix::new_zero(NetworkId(0), BitRate::bg_mbps(1.0).unwrap(), n)
    }

    fn exor_and_etx(m: &DeliveryMatrix) -> (ExorTable, PathTable) {
        let paths = PathTable::compute(m, EtxVariant::Etx1);
        let exor = ExorTable::compute(m, &paths, EtxVariant::Etx1);
        (exor, paths)
    }

    #[test]
    fn single_link_equals_etx() {
        let mut m = matrix(2);
        m.set(ApId(0), ApId(1), 0.5);
        m.set(ApId(1), ApId(0), 0.5);
        let (exor, etx) = exor_and_etx(&m);
        assert!((exor.cost(ApId(0), ApId(1)) - etx.cost(ApId(0), ApId(1))).abs() < 1e-12);
        assert_eq!(exor.cost(ApId(0), ApId(0)), 0.0);
    }

    #[test]
    fn diversity_free_chain_equals_etx() {
        // 0 — 1 — 2 with no 0↔2 reception: no opportunism possible.
        let mut m = matrix(3);
        for (a, b) in [(0u32, 1u32), (1, 2)] {
            m.set(ApId(a), ApId(b), 0.8);
            m.set(ApId(b), ApId(a), 0.8);
        }
        let (exor, etx) = exor_and_etx(&m);
        assert!(
            (exor.cost(ApId(0), ApId(2)) - etx.cost(ApId(0), ApId(2))).abs() < 1e-12,
            "no diversity ⇒ no improvement"
        );
    }

    #[test]
    fn paper_example_path() {
        // §5.2.2's example: A→B→C at 0.9/0.9 with a 0.3 lucky A→C hop.
        // ETX ≈ 2.22; ExOR should land visibly below.
        let mut m = matrix(3);
        m.set(ApId(0), ApId(1), 0.9);
        m.set(ApId(1), ApId(0), 0.9);
        m.set(ApId(1), ApId(2), 0.9);
        m.set(ApId(2), ApId(1), 0.9);
        m.set(ApId(0), ApId(2), 0.3);
        m.set(ApId(2), ApId(0), 0.3);
        let (exor, etx) = exor_and_etx(&m);
        let e = etx.cost(ApId(0), ApId(2));
        let x = exor.cost(ApId(0), ApId(2));
        assert!((e - 2.0 / 0.9).abs() < 1e-9, "ETX {e}");
        assert!(x < e, "opportunism must help: {x} vs {e}");
        // By hand: candidates of 0 are {2 (dist 0), 1 (dist 1.11)}.
        // r(2)=0.3, r(1)=0.9·0.7=0.63, r(0)=0.7·0.1=0.07.
        // ExOR = (1 + 0.63·(1/0.9)) / 0.93 ≈ 1.828.
        assert!((x - (1.0 + 0.63 / 0.9) / 0.93).abs() < 1e-9);
    }

    #[test]
    fn unreachable_stays_infinite() {
        let mut m = matrix(3);
        m.set(ApId(0), ApId(1), 0.9);
        m.set(ApId(1), ApId(0), 0.9);
        let (exor, _) = exor_and_etx(&m);
        assert!(exor.cost(ApId(0), ApId(2)).is_infinite());
    }

    proptest! {
        /// The central §5 inequality: idealized opportunism never does worse
        /// than ETX1 shortest-path routing, on any topology.
        #[test]
        fn exor_never_exceeds_etx1(
            n in 3usize..7,
            links in proptest::collection::vec((0usize..7, 0usize..7, 0.05f64..1.0), 4..24)
        ) {
            let mut m = matrix(n);
            for (a, b, p) in links {
                let (a, b) = (a % n, b % n);
                if a != b {
                    m.set(ApId(a as u32), ApId(b as u32), p);
                }
            }
            let (exor, etx) = exor_and_etx(&m);
            for s in 0..n {
                for d in 0..n {
                    let (s, d) = (ApId(s as u32), ApId(d as u32));
                    let e = etx.cost(s, d);
                    if e.is_finite() {
                        let x = exor.cost(s, d);
                        prop_assert!(x <= e + 1e-9, "{s}→{d}: exor {x} > etx {e}");
                        prop_assert!(x >= 1.0 - 1e-9 || s == d, "cost below 1 transmission");
                    }
                }
            }
        }
    }
}
