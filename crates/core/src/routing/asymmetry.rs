//! §5.2.1 — link asymmetry (Fig 5.2).
//!
//! For every unordered AP pair where both directions are measurable, the
//! ratio of the two directed packet success rates. Asymmetry is why ETX1
//! (perfect-ACK) and ETX2 (lossy-ACK) disagree; the paper finds the spread
//! real but milder than older small-scale studies, and stable across rates.

use std::collections::BTreeMap;

use mesh11_phy::{BitRate, Phy};
use mesh11_trace::{ApId, DatasetView, DeliveryMatrix, FoldKernel, ProbeSource};
use rayon::prelude::*;

use crate::routing::etx::MIN_DELIVERY;

/// Asymmetry ratios of one delivery matrix: `P(lo→hi) / P(hi→lo)` for every
/// unordered pair with both directions above the delivery floor.
pub fn asymmetry_ratios(m: &DeliveryMatrix) -> Vec<f64> {
    let n = m.n_aps();
    let mut out = Vec::new();
    for a in 0..n {
        for b in (a + 1)..n {
            let (a, b) = (ApId(a as u32), ApId(b as u32));
            let fwd = m.get(a, b);
            let rev = m.get(b, a);
            if fwd >= MIN_DELIVERY && rev >= MIN_DELIVERY {
                out.push(fwd / rev);
            }
        }
    }
    out
}

/// Fig 5.2's per-rate pooled ratios across every network of a PHY.
pub fn asymmetry_by_rate(view: DatasetView<'_>, phy: Phy) -> BTreeMap<BitRate, Vec<f64>> {
    asymmetry_by_rate_from(&ProbeSource::Whole(view), phy)
}

/// The fold-style form of [`asymmetry_by_rate_from`]: each rate's pool
/// extends in network-id order either way. Networks are analyzed in
/// parallel; extending each rate's pool from the per-network partials in
/// network order rebuilds the sequential pools exactly.
#[derive(Debug, Clone, Copy)]
pub struct AsymmetryKernel {
    /// PHY analyzed.
    pub phy: Phy,
}

impl FoldKernel for AsymmetryKernel {
    type Partial = BTreeMap<BitRate, Vec<f64>>;
    type Output = BTreeMap<BitRate, Vec<f64>>;

    fn init(&self) -> Self::Partial {
        BTreeMap::new()
    }

    fn fold(&self, view: DatasetView<'_>, out: &mut Self::Partial) {
        let phy = self.phy;
        let metas: Vec<_> = view
            .networks()
            .iter()
            .filter(|meta| meta.radios.contains(&phy))
            .collect();
        let partials: Vec<Vec<(BitRate, Vec<f64>)>> = metas
            .par_iter()
            .map(|meta| {
                view.delivery_stack(phy, meta.id, phy.probed_rates(), meta.n_aps)
                    .iter()
                    .map(|m| (m.rate, asymmetry_ratios(m)))
                    .collect()
            })
            .collect();
        for per_net in partials {
            for (rate, ratios) in per_net {
                out.entry(rate).or_default().extend(ratios);
            }
        }
    }

    fn merge(&self, into: &mut Self::Partial, from: Self::Partial) {
        for (rate, ratios) in from {
            into.entry(rate).or_default().extend(ratios);
        }
    }

    fn finish(&self, partial: Self::Partial) -> Self::Output {
        partial
    }
}

/// [`asymmetry_by_rate`] over a whole or chunked source; see
/// [`AsymmetryKernel`] for the ordering argument.
pub fn asymmetry_by_rate_from(src: &ProbeSource<'_>, phy: Phy) -> BTreeMap<BitRate, Vec<f64>> {
    mesh11_trace::run_fold(src, &AsymmetryKernel { phy })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh11_trace::NetworkId;

    #[test]
    fn ratio_computation() {
        let mut m = DeliveryMatrix::new_zero(NetworkId(0), BitRate::bg_mbps(1.0).unwrap(), 3);
        m.set(ApId(0), ApId(1), 0.9);
        m.set(ApId(1), ApId(0), 0.45);
        // Pair (0,2): only one direction — excluded.
        m.set(ApId(0), ApId(2), 0.8);
        let r = asymmetry_ratios(&m);
        assert_eq!(r.len(), 1);
        assert!((r[0] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn symmetric_matrix_gives_unit_ratios() {
        let mut m = DeliveryMatrix::new_zero(NetworkId(0), BitRate::bg_mbps(1.0).unwrap(), 3);
        for (a, b) in [(0u32, 1u32), (1, 2), (0, 2)] {
            m.set(ApId(a), ApId(b), 0.7);
            m.set(ApId(b), ApId(a), 0.7);
        }
        let r = asymmetry_ratios(&m);
        assert_eq!(r.len(), 3);
        assert!(r.iter().all(|&x| (x - 1.0).abs() < 1e-12));
    }

    #[test]
    fn floor_excludes_half_dead_pairs() {
        let mut m = DeliveryMatrix::new_zero(NetworkId(0), BitRate::bg_mbps(1.0).unwrap(), 2);
        m.set(ApId(0), ApId(1), 0.9);
        m.set(ApId(1), ApId(0), 0.01);
        assert!(asymmetry_ratios(&m).is_empty());
    }
}
