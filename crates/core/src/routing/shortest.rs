//! All-pairs shortest ETX paths (Dijkstra).
//!
//! Networks top out at 203 APs, so a per-source Dijkstra over the dense
//! delivery matrix (O(n² log n) total per source) is comfortably fast. The
//! table keeps both the path cost (expected transmissions) and the hop
//! count of the min-cost path — Figs 5.3–5.4 need hops, not cost.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use mesh11_trace::{ApId, DeliveryMatrix};

use crate::routing::etx::{link_cost, EtxVariant};

/// All-pairs shortest-path table for one (matrix, ETX variant).
#[derive(Debug, Clone)]
pub struct PathTable {
    n: usize,
    /// `cost[s * n + d]`: expected transmissions along the min-ETX path;
    /// `f64::INFINITY` when unreachable; 0 on the diagonal.
    cost: Vec<f64>,
    /// `hops[s * n + d]`: hop count of that path; `u32::MAX` if unreachable.
    hops: Vec<u32>,
}

/// Min-heap entry.
#[derive(PartialEq)]
struct HeapItem {
    cost: f64,
    node: usize,
}

impl Eq for HeapItem {}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap; costs are finite and non-NaN.
        other
            .cost
            .partial_cmp(&self.cost)
            .expect("costs are never NaN")
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl PathTable {
    /// Computes shortest paths from every source under an ETX variant.
    pub fn compute(m: &DeliveryMatrix, variant: EtxVariant) -> Self {
        Self::compute_with(m.n_aps(), |u, v| {
            link_cost(m, variant, ApId(u as u32), ApId(v as u32))
        })
    }

    /// Computes shortest paths over an arbitrary directed link-cost
    /// function (`None` = no usable link). This is how the ETT metric and
    /// the ablations reuse the machinery.
    ///
    /// Each directed link is evaluated exactly once, into adjacency lists
    /// the per-source Dijkstras then share: mesh delivery matrices are
    /// sparse (most AP pairs can't hear each other, especially at high
    /// rates), so relaxing only usable edges beats re-scanning all `n`
    /// candidates per pop — and re-evaluating `link` `n` times per pair.
    /// Lists are built in ascending-`v` order, the same order the dense
    /// scan relaxed in, so results are bit-identical.
    pub fn compute_with(n: usize, link: impl Fn(usize, usize) -> Option<f64>) -> Self {
        let mut adj: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
        for (u, out) in adj.iter_mut().enumerate() {
            for v in 0..n {
                if v == u {
                    continue;
                }
                if let Some(w) = link(u, v) {
                    debug_assert!(w >= 0.0, "negative link cost");
                    out.push((v as u32, w));
                }
            }
        }
        let mut cost = vec![f64::INFINITY; n * n];
        let mut hops = vec![u32::MAX; n * n];
        let mut heap = BinaryHeap::new(); // one allocation shared by all sources
        for s in 0..n {
            Self::dijkstra(
                &adj,
                s,
                &mut cost[s * n..(s + 1) * n],
                &mut hops[s * n..(s + 1) * n],
                &mut heap,
            );
        }
        Self { n, cost, hops }
    }

    fn dijkstra(
        adj: &[Vec<(u32, f64)>],
        src: usize,
        cost: &mut [f64],
        hops: &mut [u32],
        heap: &mut BinaryHeap<HeapItem>,
    ) {
        cost[src] = 0.0;
        hops[src] = 0;
        heap.clear();
        heap.push(HeapItem {
            cost: 0.0,
            node: src,
        });
        while let Some(HeapItem { cost: c, node: u }) = heap.pop() {
            if c > cost[u] {
                continue; // stale entry
            }
            for &(v, w) in &adj[u] {
                let v = v as usize;
                let next = c + w;
                if next < cost[v] - 1e-15 {
                    cost[v] = next;
                    hops[v] = hops[u] + 1;
                    heap.push(HeapItem {
                        cost: next,
                        node: v,
                    });
                }
            }
        }
    }

    /// Number of nodes.
    pub fn n_aps(&self) -> usize {
        self.n
    }

    /// Path cost `s → d` (expected transmissions); ∞ when unreachable.
    pub fn cost(&self, s: ApId, d: ApId) -> f64 {
        self.cost[s.idx() * self.n + d.idx()]
    }

    /// Hop count of the min-cost path; `None` when unreachable.
    pub fn hops(&self, s: ApId, d: ApId) -> Option<u32> {
        let h = self.hops[s.idx() * self.n + d.idx()];
        (h != u32::MAX).then_some(h)
    }

    /// Whether `d` is reachable from `s`.
    pub fn reachable(&self, s: ApId, d: ApId) -> bool {
        self.cost(s, d).is_finite()
    }

    /// Iterates over every ordered reachable pair `(s, d)`, s ≠ d.
    pub fn reachable_pairs(&self) -> impl Iterator<Item = (ApId, ApId)> + '_ {
        (0..self.n).flat_map(move |s| {
            (0..self.n).filter_map(move |d| {
                let (s, d) = (ApId(s as u32), ApId(d as u32));
                (s != d && self.reachable(s, d)).then_some((s, d))
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh11_phy::BitRate;
    use mesh11_trace::NetworkId;

    fn chain(ps: &[f64]) -> DeliveryMatrix {
        // Line topology 0 — 1 — 2 … with symmetric delivery ps[i] on hop i.
        let n = ps.len() + 1;
        let mut m = DeliveryMatrix::new_zero(NetworkId(0), BitRate::bg_mbps(1.0).unwrap(), n);
        for (i, &p) in ps.iter().enumerate() {
            m.set(ApId(i as u32), ApId(i as u32 + 1), p);
            m.set(ApId(i as u32 + 1), ApId(i as u32), p);
        }
        m
    }

    #[test]
    fn direct_link() {
        let m = chain(&[0.5]);
        let t = PathTable::compute(&m, EtxVariant::Etx1);
        assert!((t.cost(ApId(0), ApId(1)) - 2.0).abs() < 1e-12);
        assert_eq!(t.hops(ApId(0), ApId(1)), Some(1));
        assert_eq!(t.cost(ApId(0), ApId(0)), 0.0);
        assert_eq!(t.hops(ApId(0), ApId(0)), Some(0));
    }

    #[test]
    fn multi_hop_sums_etx() {
        let m = chain(&[0.5, 0.8]);
        let t = PathTable::compute(&m, EtxVariant::Etx1);
        assert!((t.cost(ApId(0), ApId(2)) - (2.0 + 1.25)).abs() < 1e-12);
        assert_eq!(t.hops(ApId(0), ApId(2)), Some(2));
    }

    #[test]
    fn longer_path_can_beat_lossy_shortcut() {
        // 0→2 direct at 0.25 (ETX 4) vs 0→1→2 at 0.9 each (ETX ≈ 2.22).
        let mut m = chain(&[0.9, 0.9]);
        m.set(ApId(0), ApId(2), 0.25);
        m.set(ApId(2), ApId(0), 0.25);
        let t = PathTable::compute(&m, EtxVariant::Etx1);
        assert_eq!(
            t.hops(ApId(0), ApId(2)),
            Some(2),
            "two good hops beat one bad"
        );
        assert!(t.cost(ApId(0), ApId(2)) < 4.0);
    }

    #[test]
    fn unreachable_nodes() {
        let mut m = DeliveryMatrix::new_zero(NetworkId(0), BitRate::bg_mbps(1.0).unwrap(), 3);
        m.set(ApId(0), ApId(1), 0.9);
        m.set(ApId(1), ApId(0), 0.9);
        // Node 2 is isolated.
        let t = PathTable::compute(&m, EtxVariant::Etx1);
        assert!(!t.reachable(ApId(0), ApId(2)));
        assert_eq!(t.hops(ApId(0), ApId(2)), None);
        assert_eq!(t.reachable_pairs().count(), 2);
    }

    #[test]
    fn asymmetric_costs_with_etx1() {
        let mut m = DeliveryMatrix::new_zero(NetworkId(0), BitRate::bg_mbps(1.0).unwrap(), 2);
        m.set(ApId(0), ApId(1), 1.0);
        m.set(ApId(1), ApId(0), 0.5);
        let t = PathTable::compute(&m, EtxVariant::Etx1);
        assert!((t.cost(ApId(0), ApId(1)) - 1.0).abs() < 1e-12);
        assert!((t.cost(ApId(1), ApId(0)) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn etx2_penalizes_asymmetry() {
        let mut m = DeliveryMatrix::new_zero(NetworkId(0), BitRate::bg_mbps(1.0).unwrap(), 2);
        m.set(ApId(0), ApId(1), 1.0);
        m.set(ApId(1), ApId(0), 0.5);
        let t1 = PathTable::compute(&m, EtxVariant::Etx1);
        let t2 = PathTable::compute(&m, EtxVariant::Etx2);
        assert!(t2.cost(ApId(0), ApId(1)) > t1.cost(ApId(0), ApId(1)));
    }
}
