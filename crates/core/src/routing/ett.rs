//! The ETT (expected transmission time) metric — the paper's question 2
//! names it alongside ETX ("the expected number of transmissions \[15\] or
//! expected transmission time \[8\] metrics") but the body evaluates only
//! ETX; this module completes the comparison.
//!
//! ETT weighs each expected transmission by its airtime and lets every link
//! run its own best rate:
//!
//! ```text
//! ETT(link) = min over rates r of  frame_time(r) / P_r(link)
//! ```
//!
//! so a clean 48 Mbit/s hop costs ~48× less than a clean 1 Mbit/s hop,
//! and a relay chain of fast hops can beat one slow direct link — the
//! insight behind Roofnet's multi-rate routing. The analysis compares
//! multi-rate ETT paths against the best *single-rate* ETX1 path expressed
//! in time, per source–destination pair.

use mesh11_phy::{airtime::frame_time_us, BitRate, Phy};
use mesh11_trace::{ApId, DatasetView, DeliveryMatrix, FoldKernel, NetworkId, ProbeSource};
use rayon::prelude::*;

use crate::routing::etx::MIN_DELIVERY;
use crate::routing::shortest::PathTable;

/// Per-link ETT cost (µs) and the rate achieving it, over a stack of
/// per-rate delivery matrices for the same network.
pub fn ett_link_cost_us(
    matrices: &[DeliveryMatrix],
    from: ApId,
    to: ApId,
) -> Option<(f64, BitRate)> {
    matrices
        .iter()
        .filter_map(|m| {
            let p = m.get(from, to);
            (p >= MIN_DELIVERY).then(|| (frame_time_us(m.rate) / p, m.rate))
        })
        .min_by(|a, b| a.0.partial_cmp(&b.0).expect("finite costs"))
}

/// All-pairs multi-rate ETT shortest paths (costs in µs).
pub fn ett_paths(matrices: &[DeliveryMatrix]) -> PathTable {
    let n = matrices.first().map_or(0, |m| m.n_aps());
    debug_assert!(matrices.iter().all(|m| m.n_aps() == n));
    PathTable::compute_with(n, |u, v| {
        ett_link_cost_us(matrices, ApId(u as u32), ApId(v as u32)).map(|(c, _)| c)
    })
}

/// All-pairs single-rate time paths: ETX1 shortest paths on one rate's
/// matrix, with every transmission charged that rate's airtime.
pub fn single_rate_time_paths(m: &DeliveryMatrix) -> PathTable {
    let t = frame_time_us(m.rate);
    PathTable::compute_with(m.n_aps(), |u, v| {
        let p = m.get(ApId(u as u32), ApId(v as u32));
        (p >= MIN_DELIVERY).then(|| t / p)
    })
}

/// One pair's multi-rate vs single-rate comparison.
#[derive(Debug, Clone, Copy)]
pub struct EttPair {
    /// Source.
    pub s: ApId,
    /// Destination.
    pub d: ApId,
    /// Multi-rate ETT path time (µs).
    pub ett_us: f64,
    /// The best single-rate path time (µs), minimized over rates.
    pub best_single_us: f64,
    /// The rate achieving `best_single_us`.
    pub best_single_rate: BitRate,
}

impl EttPair {
    /// `best_single / ett` — how much faster multi-rate routing delivers
    /// (≥ 1 up to floating slack, since ETT can mimic any single rate).
    pub fn speedup(&self) -> f64 {
        self.best_single_us / self.ett_us
    }
}

/// The ETT analysis of one network.
#[derive(Debug, Clone)]
pub struct EttAnalysis {
    /// Network analyzed.
    pub network: NetworkId,
    /// Network size.
    pub n_aps: usize,
    /// Every pair reachable under multi-rate ETT.
    pub pairs: Vec<EttPair>,
}

impl EttAnalysis {
    /// Runs the comparison over a network's per-rate matrices.
    pub fn compute(matrices: &[DeliveryMatrix]) -> Self {
        let network = matrices.first().map(|m| m.network).unwrap_or_default();
        let n = matrices.first().map_or(0, |m| m.n_aps());
        let ett = ett_paths(matrices);
        let singles: Vec<(BitRate, PathTable)> = matrices
            .iter()
            .map(|m| (m.rate, single_rate_time_paths(m)))
            .collect();
        let mut pairs = Vec::new();
        for (s, d) in ett.reachable_pairs() {
            let best = singles
                .iter()
                .filter_map(|(rate, t)| {
                    let c = t.cost(s, d);
                    c.is_finite().then_some((c, *rate))
                })
                .min_by(|a, b| a.0.partial_cmp(&b.0).expect("finite costs"));
            let Some((best_single_us, best_single_rate)) = best else {
                continue;
            };
            pairs.push(EttPair {
                s,
                d,
                ett_us: ett.cost(s, d),
                best_single_us,
                best_single_rate,
            });
        }
        Self {
            network,
            n_aps: n,
            pairs,
        }
    }

    /// Speedups of every pair.
    pub fn speedups(&self) -> Vec<f64> {
        self.pairs.iter().map(EttPair::speedup).collect()
    }
}

/// Runs the ETT analysis on every b/g network with at least `min_aps` APs.
pub fn analyze_ett(view: DatasetView<'_>, phy: Phy, min_aps: usize) -> Vec<EttAnalysis> {
    analyze_ett_from(&ProbeSource::Whole(view), phy, min_aps)
}

/// The fold-style form of [`analyze_ett_from`]: one entry per network in
/// id order, identical either way. Networks are analyzed in parallel; the
/// order-preserving collect keeps the id-ordered output.
#[derive(Debug, Clone, Copy)]
pub struct EttKernel {
    /// PHY analyzed.
    pub phy: Phy,
    /// Minimum APs for a network to join the population.
    pub min_aps: usize,
}

impl FoldKernel for EttKernel {
    type Partial = Vec<EttAnalysis>;
    type Output = Vec<EttAnalysis>;

    fn init(&self) -> Self::Partial {
        Vec::new()
    }

    fn fold(&self, view: DatasetView<'_>, out: &mut Self::Partial) {
        let metas: Vec<_> = view
            .networks_with_at_least(self.min_aps)
            .filter(|meta| meta.radios.contains(&self.phy))
            .collect();
        let analyses: Vec<EttAnalysis> = metas
            .par_iter()
            .map(|meta| {
                let matrices =
                    view.delivery_stack(self.phy, meta.id, self.phy.probed_rates(), meta.n_aps);
                EttAnalysis::compute(&matrices)
            })
            .collect();
        out.extend(analyses);
    }

    fn merge(&self, into: &mut Self::Partial, from: Self::Partial) {
        into.extend(from);
    }

    fn finish(&self, out: Self::Partial) -> Self::Output {
        out
    }
}

/// [`analyze_ett`] over a whole or chunked source; see [`EttKernel`] for
/// the ordering argument.
pub fn analyze_ett_from(src: &ProbeSource<'_>, phy: Phy, min_aps: usize) -> Vec<EttAnalysis> {
    mesh11_trace::run_fold(src, &EttKernel { phy, min_aps })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rate(mbps: f64) -> BitRate {
        BitRate::bg_mbps(mbps).unwrap()
    }

    /// Two rate layers over 3 nodes: at 1 Mbit/s everything connects; at
    /// 48 Mbit/s only the two short hops do.
    fn layered() -> Vec<DeliveryMatrix> {
        let mut slow = DeliveryMatrix::new_zero(NetworkId(0), rate(1.0), 3);
        for (a, b) in [(0u32, 1u32), (1, 2), (0, 2)] {
            slow.set(ApId(a), ApId(b), 0.95);
            slow.set(ApId(b), ApId(a), 0.95);
        }
        let mut fast = DeliveryMatrix::new_zero(NetworkId(0), rate(48.0), 3);
        for (a, b) in [(0u32, 1u32), (1, 2)] {
            fast.set(ApId(a), ApId(b), 0.9);
            fast.set(ApId(b), ApId(a), 0.9);
        }
        vec![slow, fast]
    }

    #[test]
    fn link_cost_picks_fastest_usable_rate() {
        let ms = layered();
        let (cost, best) = ett_link_cost_us(&ms, ApId(0), ApId(1)).unwrap();
        assert_eq!(best, rate(48.0), "fast hop wins despite higher loss");
        assert!((cost - frame_time_us(rate(48.0)) / 0.9).abs() < 1e-9);
        // The long link only exists at 1 Mbit/s.
        let (_, far) = ett_link_cost_us(&ms, ApId(0), ApId(2)).unwrap();
        assert_eq!(far, rate(1.0));
    }

    #[test]
    fn two_fast_hops_beat_one_slow_link() {
        let ms = layered();
        let paths = ett_paths(&ms);
        // 0→2 direct at 1 Mbit/s ≈ 12834 µs; via 1 at 48 Mbit/s ≈ 2×504 µs.
        assert_eq!(paths.hops(ApId(0), ApId(2)), Some(2));
        assert!(paths.cost(ApId(0), ApId(2)) < frame_time_us(rate(1.0)));
    }

    #[test]
    fn speedup_at_least_one() {
        let a = EttAnalysis::compute(&layered());
        assert!(!a.pairs.is_empty());
        for p in &a.pairs {
            assert!(
                p.speedup() >= 1.0 - 1e-9,
                "{}→{}: multi-rate ETT must match or beat any single rate",
                p.s,
                p.d
            );
        }
    }

    #[test]
    fn mixing_rates_beats_any_single_rate() {
        // 0–1 usable at 48 Mbit/s, 1–2 only at 1 Mbit/s: single-rate-48
        // cannot reach 2, single-rate-1 pays two slow hops, ETT mixes.
        let mut slow = DeliveryMatrix::new_zero(NetworkId(0), rate(1.0), 3);
        slow.set(ApId(0), ApId(1), 0.95);
        slow.set(ApId(1), ApId(0), 0.95);
        slow.set(ApId(1), ApId(2), 0.95);
        slow.set(ApId(2), ApId(1), 0.95);
        let mut fast = DeliveryMatrix::new_zero(NetworkId(0), rate(48.0), 3);
        fast.set(ApId(0), ApId(1), 0.9);
        fast.set(ApId(1), ApId(0), 0.9);
        let a = EttAnalysis::compute(&[slow, fast]);
        let p = a
            .pairs
            .iter()
            .find(|p| p.s == ApId(0) && p.d == ApId(2))
            .unwrap();
        assert_eq!(
            p.best_single_rate,
            rate(1.0),
            "only 1 Mbit/s spans the path"
        );
        assert!(p.speedup() > 1.5, "speedup {}", p.speedup());
    }

    #[test]
    fn degenerate_inputs() {
        assert!(ett_link_cost_us(&[], ApId(0), ApId(1)).is_none());
        let empty = EttAnalysis::compute(&[]);
        assert!(empty.pairs.is_empty());
        assert!(empty.speedups().is_empty());
    }

    #[test]
    fn single_rate_paths_charge_airtime() {
        let ms = layered();
        let t = single_rate_time_paths(&ms[0]);
        let direct = t.cost(ApId(0), ApId(2));
        assert!((direct - frame_time_us(rate(1.0)) / 0.95).abs() < 1e-9);
    }
}
