//! §5 — Opportunistic routing vs ETX shortest-path routing.
//!
//! Inputs are per-(network, rate) [`mesh11_trace::DeliveryMatrix`] values.
//! The pipeline: ETX link costs ([`etx`]) → all-pairs shortest paths
//! ([`shortest`]) → idealized opportunistic cost ([`exor`]) → improvement
//! distributions, path-length effects, and network-size effects
//! ([`improvement`]); link asymmetry lives in [`asymmetry`].

pub mod ablation;
pub mod asymmetry;
pub mod diversity;
pub mod ett;
pub mod etx;
pub mod exor;
pub mod improvement;
pub mod shortest;

pub use etx::EtxVariant;
pub use exor::ExorTable;
pub use improvement::OpportunisticAnalysis;
pub use shortest::PathTable;
