//! §4 — Bit rate analysis: can the SNR pick the optimal bit rate?
//!
//! The paper's method: for every probe set, `P_opt` is the rate maximizing
//! `rate × (1 − loss)`. A lookup table keyed by integer SNR maps each SNR to
//! the most frequently optimal rate, trained at one of four scopes. The
//! questions are then (a) how many distinct rates share a given SNR key
//! (Fig 4.1), (b) how many of the most frequent rates are needed to cover
//! p% of the probe sets at that key (Figs 4.2–4.3), (c) how much throughput
//! a table-driven pick loses versus the per-set optimum (Fig 4.4), and
//! (d) whether a table can be maintained online cheaply (Fig 4.6,
//! Table 4.1).

pub mod adaptation;
pub mod correlation;
pub mod lookup;
pub mod penalty;
pub mod stability;
pub mod strategy;

pub use adaptation::{simulate_adapters, simulate_adapters_from, AdaptationOutcome, AdapterKind};
pub use correlation::SnrThroughputCurves;
pub use lookup::{LookupTableSet, Scope};
pub use penalty::ThroughputPenalty;
pub use stability::{link_stability, link_stability_from, LinkStability};
pub use strategy::{StrategyEval, StrategyKind};
