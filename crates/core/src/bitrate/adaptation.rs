//! §4.5 made concrete: rate-adaptation protocols replayed on probe traces.
//!
//! The paper's practical proposal is that an SNR-keyed table can either
//! replace probing outright (b/g) or shrink the probed set to the table's
//! top-k rates (802.11n). This module turns that into a measurable claim:
//! each [`AdapterKind`] walks a link's probe sets in time order, commits to
//! a rate *before* seeing the next set, and is scored by the throughput
//! that set actually offered at the chosen rate.
//!
//! Probing costs airtime. An adapter that must probe all `n` rates loses a
//! fraction of goodput that one probing `k ≪ n` rates does not; the
//! `overhead` parameter charges `overhead · probed/n` of the achieved
//! throughput, making the §4.5 trade-off explicit (the win grows with
//! 802.11n's 32-rate set, exactly as the paper argues).

use std::collections::{BTreeMap, HashMap};

use mesh11_phy::{BitRate, Phy};
use mesh11_trace::{DatasetView, FoldKernel, ProbeEntry, ProbeSource};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// A rate-adaptation policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AdapterKind {
    /// Always transmit at one rate (baseline).
    Fixed(BitRate),
    /// Per-link SNR-keyed table (frequency counts, as the paper's "All"
    /// strategy); transmits the most frequent optimum for the current SNR
    /// and probes only the table's `top_k` rates.
    SnrTable {
        /// Rates probed per interval (the §4.5 "k best" set).
        top_k: usize,
    },
    /// SampleRate-style: EWMA of each rate's observed throughput, pick the
    /// best; must probe every rate to keep the EWMAs fresh.
    EwmaProbing {
        /// EWMA weight of the newest observation, in (0, 1].
        alpha: f64,
    },
    /// Clairvoyant upper bound: picks each set's optimal rate.
    Oracle,
}

impl AdapterKind {
    /// Display name.
    pub fn name(&self) -> String {
        match self {
            AdapterKind::Fixed(r) => format!("Fixed({r})"),
            AdapterKind::SnrTable { top_k } => format!("SnrTable(k={top_k})"),
            AdapterKind::EwmaProbing { .. } => "EwmaProbing".into(),
            AdapterKind::Oracle => "Oracle".into(),
        }
    }

    /// How many rates this adapter must probe per reporting interval.
    fn rates_probed(&self, n_rates: usize) -> usize {
        match self {
            AdapterKind::Fixed(_) => 0,
            AdapterKind::SnrTable { top_k } => (*top_k).min(n_rates),
            AdapterKind::EwmaProbing { .. } => n_rates,
            // The oracle is a bound, not a protocol; charge it nothing.
            AdapterKind::Oracle => 0,
        }
    }
}

/// Per-link mutable state of one adapter.
#[derive(Debug, Default)]
struct AdapterState {
    /// SnrTable: SNR → rate → count.
    table: HashMap<i64, BTreeMap<BitRate, u32>>,
    /// EwmaProbing: rate → smoothed throughput.
    ewma: BTreeMap<BitRate, f64>,
    /// Last probe set's SNR key (the "measured SNR" at decision time).
    last_snr: Option<i64>,
}

impl AdapterState {
    fn decide(&self, kind: &AdapterKind, phy: Phy, current: &ProbeEntry) -> BitRate {
        let fallback = phy.probed_rates()[0];
        match kind {
            AdapterKind::Fixed(r) => *r,
            AdapterKind::Oracle => current.opt.rate,
            AdapterKind::EwmaProbing { .. } => self
                .ewma
                .iter()
                .max_by(|a, b| {
                    a.1.partial_cmp(b.1)
                        .expect("finite ewma")
                        .then(b.0.cmp(a.0))
                })
                .map(|(&r, _)| r)
                .unwrap_or(fallback),
            AdapterKind::SnrTable { .. } => {
                let Some(snr) = self.last_snr else {
                    return fallback;
                };
                let Some(counts) = self.table.get(&snr) else {
                    return fallback;
                };
                counts
                    .iter()
                    .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
                    .map(|(&r, _)| r)
                    .unwrap_or(fallback)
            }
        }
    }

    fn learn(&mut self, kind: &AdapterKind, set: &ProbeEntry) {
        match kind {
            AdapterKind::SnrTable { .. } => {
                *self
                    .table
                    .entry(set.snr_key)
                    .or_default()
                    .entry(set.opt.rate)
                    .or_insert(0) += 1;
            }
            AdapterKind::EwmaProbing { alpha } => {
                for o in &set.probe.obs {
                    let e = self.ewma.entry(o.rate).or_insert(0.0);
                    *e = (1.0 - alpha) * *e + alpha * o.throughput_mbps();
                }
                // Rates that fell silent decay toward zero.
                for (r, e) in self.ewma.iter_mut() {
                    if set.probe.obs_for(*r).is_none() {
                        *e *= 1.0 - alpha;
                    }
                }
            }
            AdapterKind::Fixed(_) | AdapterKind::Oracle => {}
        }
        self.last_snr = Some(set.snr_key);
    }
}

/// Measured outcome of one adapter over a dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdaptationOutcome {
    /// The policy.
    pub kind: AdapterKind,
    /// Decisions scored (probe sets with at least one preceding set on the
    /// link).
    pub decisions: u64,
    /// Mean achieved throughput (Mbit/s), before probing overhead.
    pub mean_throughput_mbps: f64,
    /// Mean achieved throughput after the probing-airtime charge.
    pub net_throughput_mbps: f64,
    /// Achieved / oracle throughput, pooled (0–1], before overhead.
    pub fraction_of_oracle: f64,
}

/// Replays every adapter over every link of `phy`.
///
/// `overhead` is the goodput fraction consumed by probing *all* rates once
/// per interval; an adapter probing `k` of `n` rates is charged
/// `overhead · k/n`.
pub fn simulate_adapters(
    view: DatasetView<'_>,
    phy: Phy,
    kinds: &[AdapterKind],
    overhead: f64,
) -> Vec<AdaptationOutcome> {
    simulate_adapters_from(&ProbeSource::Whole(view), phy, kinds, overhead)
}

/// The fold-style form of [`simulate_adapters_from`]. The per-kind
/// throughput sums are floating-point and order-sensitive; links live whole
/// inside windows and windows preserve the sorted link order, so threading
/// one partial through the windows in order accumulates each sum in exactly
/// the monolithic sequence.
///
/// Within a window, parallelism is per adapter kind: each kind replays the
/// window's links on its own thread, keeping every kind's accumulation a
/// single continuous sequential sum. `merge` re-associates the float sums
/// and is therefore only bit-exact for the scheduler's sequential threading
/// (which never calls it) — documented, not load-bearing.
#[derive(Debug, Clone)]
pub struct AdaptationKernel {
    /// PHY replayed.
    pub phy: Phy,
    /// Adapters evaluated, in output order.
    pub kinds: Vec<AdapterKind>,
    /// Goodput fraction consumed by probing all rates once per interval.
    pub overhead: f64,
}

impl FoldKernel for AdaptationKernel {
    type Partial = Vec<(u64, f64, f64)>;
    type Output = Vec<AdaptationOutcome>;

    fn init(&self) -> Self::Partial {
        self.kinds.iter().map(|_| (0u64, 0.0f64, 0.0f64)).collect()
    }

    fn fold(&self, view: DatasetView<'_>, partial: &mut Self::Partial) {
        let phy = self.phy;
        // Per-link time-ordered streams, extracted once and shared by every
        // kind. The per-kind scores are floating-point sums over links, so
        // the iteration order must be fixed for the outcome to be
        // byte-reproducible: the view's link groups come sorted by
        // (network, sender, receiver), the same ascending order the
        // pre-index BTreeMap grouping produced.
        let per_link: Vec<Vec<ProbeEntry<'_>>> = view
            .links_for_phy(phy)
            .map(|link| {
                let mut sets: Vec<ProbeEntry<'_>> = link.entries().collect();
                sets.sort_by(|a, b| a.time_s.partial_cmp(&b.time_s).expect("finite times"));
                sets
            })
            .collect();
        // Pair each kind with its running accumulator so the per-kind sums
        // keep accumulating *in place* across windows (re-associating them
        // through per-window temporaries would perturb the float results).
        let mut work: Vec<(&AdapterKind, &mut (u64, f64, f64))> =
            self.kinds.iter().zip(partial.iter_mut()).collect();
        work.par_iter_mut().for_each(|(kind, acc)| {
            let (decisions, sum_thr, sum_oracle) = &mut **acc;
            for sets in &per_link {
                let mut state = AdapterState::default();
                for (i, set) in sets.iter().enumerate() {
                    if i > 0 {
                        let pick = state.decide(kind, phy, set);
                        let got = set.probe.obs_for(pick).map_or(0.0, |o| o.throughput_mbps());
                        *sum_thr += got;
                        *sum_oracle += set.opt.throughput_mbps();
                        *decisions += 1;
                    }
                    state.learn(kind, set);
                }
            }
        });
    }

    fn merge(&self, into: &mut Self::Partial, from: Self::Partial) {
        for ((d, t, o), (fd, ft, fo)) in into.iter_mut().zip(from) {
            *d += fd;
            *t += ft;
            *o += fo;
        }
    }

    fn finish(&self, partial: Self::Partial) -> Vec<AdaptationOutcome> {
        let n_rates = self.phy.probed_rates().len();
        self.kinds
            .iter()
            .zip(partial)
            .map(|(kind, (decisions, sum_thr, sum_oracle))| {
                let mean = if decisions == 0 {
                    0.0
                } else {
                    sum_thr / decisions as f64
                };
                let charge = self.overhead * kind.rates_probed(n_rates) as f64 / n_rates as f64;
                AdaptationOutcome {
                    kind: *kind,
                    decisions,
                    mean_throughput_mbps: mean,
                    net_throughput_mbps: mean * (1.0 - charge),
                    fraction_of_oracle: if sum_oracle > 0.0 {
                        sum_thr / sum_oracle
                    } else {
                        0.0
                    },
                }
            })
            .collect()
    }
}

/// [`simulate_adapters`] over a whole or chunked source; see
/// [`AdaptationKernel`] for the ordering argument.
pub fn simulate_adapters_from(
    src: &ProbeSource<'_>,
    phy: Phy,
    kinds: &[AdapterKind],
    overhead: f64,
) -> Vec<AdaptationOutcome> {
    assert!((0.0..1.0).contains(&overhead), "overhead is a fraction");
    mesh11_trace::run_fold(
        src,
        &AdaptationKernel {
            phy,
            kinds: kinds.to_vec(),
            overhead,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh11_trace::{ApId, Dataset, DatasetIndex, NetworkId, ProbeSet, RateObs};

    fn r(mbps: f64) -> BitRate {
        BitRate::bg_mbps(mbps).unwrap()
    }

    fn adapters_over(ds: &Dataset, kinds: &[AdapterKind], overhead: f64) -> Vec<AdaptationOutcome> {
        let ix = DatasetIndex::build(ds);
        simulate_adapters(DatasetView::new(ds, &ix), Phy::Bg, kinds, overhead)
    }

    /// A link where 24 Mbit/s is always clean and 48 always lossy, at a
    /// stable SNR.
    fn stable_link(n_sets: usize) -> Dataset {
        let probes = (0..n_sets)
            .map(|k| ProbeSet {
                network: NetworkId(0),
                phy: Phy::Bg,
                time_s: k as f64 * 300.0,
                sender: ApId(0),
                receiver: ApId(1),
                obs: vec![
                    RateObs {
                        rate: r(24.0),
                        loss: 0.0,
                        snr_db: 20.0,
                    },
                    RateObs {
                        rate: r(48.0),
                        loss: 0.9,
                        snr_db: 20.0,
                    },
                ],
            })
            .collect();
        Dataset {
            probes,
            ..Dataset::default()
        }
    }

    #[test]
    fn oracle_is_an_upper_bound() {
        let ds = stable_link(10);
        let kinds = [
            AdapterKind::Oracle,
            AdapterKind::SnrTable { top_k: 1 },
            AdapterKind::EwmaProbing { alpha: 0.3 },
            AdapterKind::Fixed(r(24.0)),
            AdapterKind::Fixed(r(48.0)),
        ];
        let out = adapters_over(&ds, &kinds, 0.0);
        let oracle = out[0].mean_throughput_mbps;
        for o in &out {
            assert!(
                o.mean_throughput_mbps <= oracle + 1e-9,
                "{} beat the oracle",
                o.kind.name()
            );
            assert!((0.0..=1.0 + 1e-9).contains(&o.fraction_of_oracle));
        }
        assert!((out[0].fraction_of_oracle - 1.0).abs() < 1e-12);
    }

    #[test]
    fn adapters_learn_stable_links_perfectly() {
        let ds = stable_link(20);
        let kinds = [
            AdapterKind::SnrTable { top_k: 1 },
            AdapterKind::EwmaProbing { alpha: 0.3 },
        ];
        for o in adapters_over(&ds, &kinds, 0.0) {
            assert!(
                o.fraction_of_oracle > 0.95,
                "{}: {}",
                o.kind.name(),
                o.fraction_of_oracle
            );
        }
    }

    #[test]
    fn overhead_penalizes_full_probing() {
        let ds = stable_link(20);
        let kinds = [
            AdapterKind::SnrTable { top_k: 2 },
            AdapterKind::EwmaProbing { alpha: 0.3 },
        ];
        let out = adapters_over(&ds, &kinds, 0.2);
        let table = &out[0];
        let probing = &out[1];
        // Similar raw throughput, but the table pays 2/7 of the overhead
        // and the prober pays all of it.
        assert!(table.net_throughput_mbps > probing.net_throughput_mbps);
        assert!(probing.net_throughput_mbps < probing.mean_throughput_mbps);
    }

    #[test]
    fn fixed_rate_matches_its_obs() {
        let ds = stable_link(5);
        let out = adapters_over(&ds, &[AdapterKind::Fixed(r(48.0))], 0.0);
        // 48 at 90% loss = 4.8 Mbit/s every decision.
        assert!((out[0].mean_throughput_mbps - 4.8).abs() < 1e-9);
        assert_eq!(out[0].decisions, 4);
    }

    #[test]
    fn unheard_pick_scores_zero() {
        // A table that learned 48 on another link... here, simply a fixed
        // adapter at a rate the link never carries.
        let ds = stable_link(5);
        let out = adapters_over(&ds, &[AdapterKind::Fixed(r(36.0))], 0.0);
        assert_eq!(out[0].mean_throughput_mbps, 0.0);
    }

    #[test]
    fn empty_dataset_is_graceful() {
        let ds = Dataset::default();
        let out = adapters_over(&ds, &[AdapterKind::Oracle], 0.1);
        assert_eq!(out[0].decisions, 0);
        assert_eq!(out[0].mean_throughput_mbps, 0.0);
    }
}
