//! §4.5 — maintaining the lookup table online (Fig 4.6, Table 4.1).
//!
//! Four per-link maintenance strategies, trading update frequency against
//! memory:
//!
//! | strategy     | updates            | memory               |
//! |--------------|--------------------|----------------------|
//! | `First`      | once per SNR       | one point per SNR    |
//! | `MostRecent` | every probe set    | one point per SNR    |
//! | `Subsampled` | every 3rd per SNR  | ~⅓ of observations   |
//! | `All`        | every probe set    | every observation    |
//!
//! Evaluation replays each link's probe sets in time order, predicting
//! *before* updating, and skips prediction when the SNR has never been seen
//! (as the paper does). The paper's surprise — all strategies land within a
//! few points of each other at 80–90% — falls out of the per-link optimum
//! being stable.

use std::collections::{BTreeMap, HashMap};

use mesh11_phy::{BitRate, Phy};
use mesh11_stats::BinnedStats;
use mesh11_trace::{DatasetView, ProbeEntry, ProbeSource};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Table-maintenance policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StrategyKind {
    /// Keep only the first observed optimum per SNR.
    First,
    /// Keep only the most recent optimum per SNR.
    MostRecent,
    /// Count every 3rd observation per SNR; predict the most frequent.
    Subsampled,
    /// Count every observation; predict the most frequent.
    All,
}

impl StrategyKind {
    /// All strategies, in Table 4.1 order.
    pub const ALL: [StrategyKind; 4] = [
        StrategyKind::First,
        StrategyKind::MostRecent,
        StrategyKind::Subsampled,
        StrategyKind::All,
    ];

    /// Display name as in Fig 4.6's legend.
    pub fn name(self) -> &'static str {
        match self {
            StrategyKind::First => "First",
            StrategyKind::MostRecent => "Most Recent",
            StrategyKind::Subsampled => "Subsampled",
            StrategyKind::All => "Continuous",
        }
    }
}

/// One link's online table under a strategy.
#[derive(Debug, Clone, Default)]
struct OnlineTable {
    /// `First`/`MostRecent`: the single stored rate per SNR.
    single: HashMap<i64, BitRate>,
    /// `Subsampled`/`All`: frequency counts per SNR.
    counts: HashMap<i64, BTreeMap<BitRate, u32>>,
    /// Observations seen per SNR (drives subsampling cadence).
    seen: HashMap<i64, u32>,
    updates: u64,
    stored: u64,
}

impl OnlineTable {
    fn predict(&self, kind: StrategyKind, snr: i64) -> Option<BitRate> {
        match kind {
            StrategyKind::First | StrategyKind::MostRecent => self.single.get(&snr).copied(),
            StrategyKind::Subsampled | StrategyKind::All => {
                let counts = self.counts.get(&snr)?;
                counts
                    .iter()
                    .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
                    .map(|(&r, _)| r)
            }
        }
    }

    fn update(&mut self, kind: StrategyKind, snr: i64, opt: BitRate) {
        let seen = self.seen.entry(snr).or_insert(0);
        *seen += 1;
        match kind {
            StrategyKind::First => {
                if let std::collections::hash_map::Entry::Vacant(e) = self.single.entry(snr) {
                    e.insert(opt);
                    self.updates += 1;
                    self.stored += 1;
                }
            }
            StrategyKind::MostRecent => {
                if self.single.insert(snr, opt).is_none() {
                    self.stored += 1;
                }
                self.updates += 1;
            }
            StrategyKind::Subsampled => {
                // First observation always counts (there must be something
                // to predict from), then every 3rd.
                if *seen == 1 || (*seen).is_multiple_of(3) {
                    *self.counts.entry(snr).or_default().entry(opt).or_insert(0) += 1;
                    self.updates += 1;
                    self.stored += 1;
                }
            }
            StrategyKind::All => {
                *self.counts.entry(snr).or_default().entry(opt).or_insert(0) += 1;
                self.updates += 1;
                self.stored += 1;
            }
        }
    }
}

/// Measured outcome of one strategy over a dataset.
#[derive(Debug, Clone)]
pub struct StrategyEval {
    /// The strategy.
    pub kind: StrategyKind,
    /// Accuracy keyed by how many probe sets the link had already seen
    /// (Fig 4.6's x-axis): bin mean is the plotted accuracy.
    pub accuracy_by_history: BinnedStats,
    /// Total table updates performed (Table 4.1 "frequency of updates").
    pub updates: u64,
    /// Total data points stored (Table 4.1 "memory consumed").
    pub stored_points: u64,
    /// Predictions attempted (SNR previously seen on the link).
    pub predictions: u64,
    /// Correct predictions.
    pub correct: u64,
}

impl StrategyEval {
    /// Overall accuracy across all history depths.
    pub fn overall_accuracy(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.correct as f64 / self.predictions as f64
        }
    }
}

/// Replays every link of `phy` under each strategy.
///
/// Links come from the view's indexed link groups (sorted order); every
/// per-link replay is independent and the pooled outcome is made of integer
/// counters and exact 0/100 bin sums, so the link order does not affect the
/// result.
pub fn evaluate_strategies(
    view: DatasetView<'_>,
    phy: Phy,
    kinds: &[StrategyKind],
) -> Vec<StrategyEval> {
    evaluate_strategies_from(&ProbeSource::Whole(view), phy, kinds)
}

/// Per-kind accumulator of [`evaluate_strategies_from`], fed one window at
/// a time.
#[derive(Debug, Default)]
pub struct StrategyAcc {
    acc: BinnedStats,
    updates: u64,
    stored: u64,
    predictions: u64,
    correct: u64,
}

/// The fold-style form of [`evaluate_strategies_from`]. Each link lives
/// entirely inside one window (windows are whole networks) and windows walk
/// links in the same sorted order as the monolithic pass, so every per-kind
/// accumulator sees an identical push sequence. The replay fans out over a
/// flat per-network work list; per-network accumulators merge back in
/// network order, which reproduces the sequential per-bin push order
/// exactly (links are sorted network-major).
#[derive(Debug, Clone)]
pub struct StrategyKernel {
    /// PHY to replay.
    pub phy: Phy,
    /// Strategies to evaluate, in output order.
    pub kinds: Vec<StrategyKind>,
}

impl mesh11_trace::FoldKernel for StrategyKernel {
    type Partial = Vec<StrategyAcc>;
    type Output = Vec<StrategyEval>;

    fn init(&self) -> Self::Partial {
        self.kinds.iter().map(|_| StrategyAcc::default()).collect()
    }

    fn fold(&self, view: DatasetView<'_>, accs: &mut Self::Partial) {
        let kinds = &self.kinds;
        let nets = view.network_views(self.phy);
        let partials: Vec<Vec<StrategyAcc>> = nets
            .par_iter()
            .map(|nv| {
                // Per-link time-ordered streams (dataset order is
                // time-sorted per network already; sort defensively).
                let per_link: Vec<Vec<ProbeEntry>> = nv
                    .links()
                    .map(|link| {
                        let mut sets: Vec<ProbeEntry> = link.entries().collect();
                        sets.sort_by(|a, b| a.time_s.partial_cmp(&b.time_s).expect("finite times"));
                        sets
                    })
                    .collect();
                let mut local: Vec<StrategyAcc> =
                    kinds.iter().map(|_| StrategyAcc::default()).collect();
                for (&kind, a) in kinds.iter().zip(local.iter_mut()) {
                    for sets in &per_link {
                        let mut table = OnlineTable::default();
                        for (i, e) in sets.iter().enumerate() {
                            let snr = e.snr_key;
                            let opt = e.opt.rate;
                            if let Some(pick) = table.predict(kind, snr) {
                                let ok = pick == opt;
                                a.acc.push(i as i64, if ok { 100.0 } else { 0.0 });
                                a.predictions += 1;
                                a.correct += u64::from(ok);
                            }
                            table.update(kind, snr, opt);
                        }
                        a.updates += table.updates;
                        a.stored += table.stored;
                    }
                }
                local
            })
            .collect();
        for local in partials {
            for (a, l) in accs.iter_mut().zip(local) {
                a.acc.merge(l.acc);
                a.updates += l.updates;
                a.stored += l.stored;
                a.predictions += l.predictions;
                a.correct += l.correct;
            }
        }
    }

    fn merge(&self, into: &mut Self::Partial, from: Self::Partial) {
        for (a, l) in into.iter_mut().zip(from) {
            a.acc.merge(l.acc);
            a.updates += l.updates;
            a.stored += l.stored;
            a.predictions += l.predictions;
            a.correct += l.correct;
        }
    }

    fn finish(&self, accs: Self::Partial) -> Vec<StrategyEval> {
        self.kinds
            .iter()
            .zip(accs)
            .map(|(&kind, a)| StrategyEval {
                kind,
                accuracy_by_history: a.acc,
                updates: a.updates,
                stored_points: a.stored,
                predictions: a.predictions,
                correct: a.correct,
            })
            .collect()
    }
}

/// [`evaluate_strategies`] over a whole or chunked source; see
/// [`StrategyKernel`] for the ordering argument.
pub fn evaluate_strategies_from(
    src: &ProbeSource<'_>,
    phy: Phy,
    kinds: &[StrategyKind],
) -> Vec<StrategyEval> {
    mesh11_trace::run_fold(
        src,
        &StrategyKernel {
            phy,
            kinds: kinds.to_vec(),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh11_trace::{ApId, Dataset, DatasetIndex, NetworkId, ProbeSet, RateObs};

    fn r(mbps: f64) -> BitRate {
        BitRate::bg_mbps(mbps).unwrap()
    }

    fn evaluate_over(ds: &Dataset, kinds: &[StrategyKind]) -> Vec<StrategyEval> {
        let ix = DatasetIndex::build(ds);
        evaluate_strategies(DatasetView::new(ds, &ix), Phy::Bg, kinds)
    }

    fn probe(t: f64, snr: f64, opt: f64) -> ProbeSet {
        ProbeSet {
            network: NetworkId(0),
            phy: Phy::Bg,
            time_s: t,
            sender: ApId(0),
            receiver: ApId(1),
            obs: vec![RateObs {
                rate: r(opt),
                loss: 0.0,
                snr_db: snr,
            }],
        }
    }

    fn ds(probes: Vec<ProbeSet>) -> Dataset {
        Dataset {
            probes,
            ..Dataset::default()
        }
    }

    #[test]
    fn stable_link_all_strategies_perfect() {
        let d = ds((0..10)
            .map(|k| probe(k as f64 * 300.0, 20.0, 24.0))
            .collect());
        for eval in evaluate_over(&d, &StrategyKind::ALL) {
            assert_eq!(eval.overall_accuracy(), 1.0, "{:?}", eval.kind);
            // First prediction happens at the 2nd set: 9 predictions.
            assert_eq!(eval.predictions, 9);
        }
    }

    #[test]
    fn no_prediction_on_fresh_snr() {
        // Every set has a different SNR: never a prediction.
        let d = ds((0..5)
            .map(|k| probe(k as f64, 10.0 + 3.0 * k as f64, 24.0))
            .collect());
        for eval in evaluate_over(&d, &StrategyKind::ALL) {
            assert_eq!(eval.predictions, 0, "{:?}", eval.kind);
        }
    }

    #[test]
    fn cost_ordering_matches_table_4_1() {
        let d = ds((0..30).map(|k| probe(k as f64, 20.0, 24.0)).collect());
        let evals = evaluate_over(&d, &StrategyKind::ALL);
        let get = |k: StrategyKind| evals.iter().find(|e| e.kind == k).unwrap();
        let first = get(StrategyKind::First);
        let recent = get(StrategyKind::MostRecent);
        let sub = get(StrategyKind::Subsampled);
        let all = get(StrategyKind::All);
        // Updates: First (once per SNR) < Subsampled (~⅓) < MostRecent = All.
        assert!(first.updates < sub.updates);
        assert!(sub.updates < all.updates);
        assert_eq!(recent.updates, all.updates);
        // Memory: First = MostRecent (per-SNR) ≤ Subsampled < All.
        assert_eq!(first.stored_points, 1);
        assert_eq!(recent.stored_points, 1);
        assert!(sub.stored_points < all.stored_points);
        assert_eq!(all.stored_points, 30);
    }

    #[test]
    fn most_recent_tracks_changes_first_does_not() {
        // Optimum flips permanently after 10 sets.
        let mut probes: Vec<ProbeSet> = (0..10).map(|k| probe(k as f64, 20.0, 12.0)).collect();
        probes.extend((10..40).map(|k| probe(k as f64, 20.0, 48.0)));
        let d = ds(probes);
        let evals = evaluate_over(&d, &StrategyKind::ALL);
        let get = |k: StrategyKind| {
            evals
                .iter()
                .find(|e| e.kind == k)
                .unwrap()
                .overall_accuracy()
        };
        assert!(
            get(StrategyKind::MostRecent) > get(StrategyKind::First),
            "MostRecent {:.2} vs First {:.2}",
            get(StrategyKind::MostRecent),
            get(StrategyKind::First)
        );
    }

    #[test]
    fn accuracy_bins_by_history_depth() {
        let d = ds((0..5).map(|k| probe(k as f64, 20.0, 24.0)).collect());
        let eval = &evaluate_over(&d, &[StrategyKind::All])[0];
        // Predictions at history depths 1..4 (index of the set in stream).
        let xs: Vec<i64> = eval
            .accuracy_by_history
            .rows()
            .iter()
            .map(|r| r.0)
            .collect();
        assert_eq!(xs, vec![1, 2, 3, 4]);
        for (_, s) in eval.accuracy_by_history.rows() {
            assert_eq!(s.mean, 100.0);
        }
    }
}
