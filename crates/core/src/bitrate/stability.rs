//! Temporal stability of the per-link optimal rate (§4.6 diagnostics).
//!
//! The paper's §4 rests on the optimum being stable *given the SNR* on a
//! link. This module measures that directly:
//!
//! * **churn** — how often `P_opt` differs between consecutive probe sets
//!   on a link;
//! * **same-SNR churn** — churn restricted to consecutive sets whose
//!   integer SNR key is identical. This is the irreducible error floor of
//!   *any* SNR-keyed lookup table (no table can distinguish two sets with
//!   the same key), and explains the gap between Fig 4.2's ≥95% cells and
//!   Fig 4.6's 80–90% online accuracy;
//! * **SNR drift** — mean |ΔSNR| between consecutive sets, the channel's
//!   report-to-report wander.

use mesh11_phy::Phy;
use mesh11_trace::{DatasetView, FoldKernel, ProbeEntry, ProbeSource};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Pooled stability statistics over every link of a PHY.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinkStability {
    /// Links with at least two probe sets.
    pub links: usize,
    /// Per link: fraction of consecutive set pairs where the optimum
    /// changed.
    pub churn_per_link: Vec<f64>,
    /// Per link: mean |ΔSNR| (dB) between consecutive sets.
    pub snr_drift_per_link: Vec<f64>,
    /// Pooled churn over pairs whose SNR key matched.
    pub churn_same_snr: f64,
    /// Pooled churn over pairs whose SNR key differed.
    pub churn_diff_snr: f64,
    /// Consecutive-set pairs examined (same-SNR, diff-SNR).
    pub pairs: (u64, u64),
}

impl LinkStability {
    /// Median per-link churn.
    pub fn median_churn(&self) -> Option<f64> {
        mesh11_stats::median(&self.churn_per_link)
    }

    /// Median per-link SNR drift (dB).
    pub fn median_drift_db(&self) -> Option<f64> {
        mesh11_stats::median(&self.snr_drift_per_link)
    }
}

/// Measures optimal-rate stability over every directed link of `phy`.
///
/// Links come from the view's indexed groups in sorted order, which makes
/// the per-link vectors deterministic; the pooled churn ratios and the
/// median/CDF consumers are insensitive to that order.
pub fn link_stability(view: DatasetView<'_>, phy: Phy) -> LinkStability {
    link_stability_from(&ProbeSource::Whole(view), phy)
}

/// The fold-style form of [`link_stability_from`]: the per-link vectors
/// fill in the same sorted link order either way. The link walk fans out
/// per network; each link's drift sum stays a single sequential
/// accumulation, the pooled pair counts are integers, and concatenating
/// per-network link vectors in network order rebuilds the sorted global
/// link order (links sort by network first).
#[derive(Debug, Clone, Copy)]
pub struct StabilityKernel {
    /// PHY analyzed.
    pub phy: Phy,
}

/// In-flight state of a [`StabilityKernel`] fold: per-link churn and drift
/// vectors plus the pooled `(changed, total)` pair counters for the
/// same-SNR and diff-SNR buckets.
#[derive(Debug, Default)]
pub struct StabilityPartial {
    churn_per_link: Vec<f64>,
    snr_drift_per_link: Vec<f64>,
    same: (u64, u64),
    diff: (u64, u64),
}

impl FoldKernel for StabilityKernel {
    type Partial = StabilityPartial;
    type Output = LinkStability;

    fn init(&self) -> StabilityPartial {
        StabilityPartial::default()
    }

    fn fold(&self, view: DatasetView<'_>, partial: &mut StabilityPartial) {
        let nets = view.network_views(self.phy);
        type Per = (Vec<f64>, Vec<f64>, (u64, u64), (u64, u64));
        let partials: Vec<Per> = nets
            .par_iter()
            .map(|nv| {
                let mut churn = Vec::new();
                let mut drift_v = Vec::new();
                let mut same = (0u64, 0u64);
                let mut diff = (0u64, 0u64);
                for link in nv.links() {
                    if link.len() < 2 {
                        continue;
                    }
                    let mut sets: Vec<ProbeEntry> = link.entries().collect();
                    sets.sort_by(|a, b| a.time_s.partial_cmp(&b.time_s).expect("finite times"));
                    let mut changed = 0usize;
                    let mut drift = 0.0;
                    for w in sets.windows(2) {
                        let (prev, next) = (&w[0], &w[1]);
                        let flipped = prev.opt.rate != next.opt.rate;
                        changed += usize::from(flipped);
                        drift += (next.snr_db - prev.snr_db).abs();
                        let bucket = if prev.snr_key == next.snr_key {
                            &mut same
                        } else {
                            &mut diff
                        };
                        bucket.0 += u64::from(flipped);
                        bucket.1 += 1;
                    }
                    let n_pairs = (sets.len() - 1) as f64;
                    churn.push(changed as f64 / n_pairs);
                    drift_v.push(drift / n_pairs);
                }
                (churn, drift_v, same, diff)
            })
            .collect();
        for (churn, drift_v, s, d) in partials {
            partial.churn_per_link.extend(churn);
            partial.snr_drift_per_link.extend(drift_v);
            partial.same.0 += s.0;
            partial.same.1 += s.1;
            partial.diff.0 += d.0;
            partial.diff.1 += d.1;
        }
    }

    fn merge(&self, into: &mut StabilityPartial, from: StabilityPartial) {
        into.churn_per_link.extend(from.churn_per_link);
        into.snr_drift_per_link.extend(from.snr_drift_per_link);
        into.same.0 += from.same.0;
        into.same.1 += from.same.1;
        into.diff.0 += from.diff.0;
        into.diff.1 += from.diff.1;
    }

    fn finish(&self, partial: StabilityPartial) -> LinkStability {
        let StabilityPartial {
            churn_per_link,
            snr_drift_per_link,
            same,
            diff,
        } = partial;
        LinkStability {
            links: churn_per_link.len(),
            churn_per_link,
            snr_drift_per_link,
            churn_same_snr: if same.1 > 0 {
                same.0 as f64 / same.1 as f64
            } else {
                0.0
            },
            churn_diff_snr: if diff.1 > 0 {
                diff.0 as f64 / diff.1 as f64
            } else {
                0.0
            },
            pairs: (same.1, diff.1),
        }
    }
}

/// [`link_stability`] over a whole or chunked source; see
/// [`StabilityKernel`] for the ordering argument.
pub fn link_stability_from(src: &ProbeSource<'_>, phy: Phy) -> LinkStability {
    mesh11_trace::run_fold(src, &StabilityKernel { phy })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh11_phy::BitRate;
    use mesh11_trace::{ApId, Dataset, DatasetIndex, NetworkId, ProbeSet, RateObs};

    fn r(mbps: f64) -> BitRate {
        BitRate::bg_mbps(mbps).unwrap()
    }

    fn stability_over(ds: &Dataset) -> LinkStability {
        let ix = DatasetIndex::build(ds);
        link_stability(DatasetView::new(ds, &ix), Phy::Bg)
    }

    fn probe(t: f64, snr: f64, opt: f64) -> ProbeSet {
        ProbeSet {
            network: NetworkId(0),
            phy: Phy::Bg,
            time_s: t,
            sender: ApId(0),
            receiver: ApId(1),
            obs: vec![RateObs {
                rate: r(opt),
                loss: 0.0,
                snr_db: snr,
            }],
        }
    }

    fn ds(probes: Vec<ProbeSet>) -> Dataset {
        Dataset {
            probes,
            ..Dataset::default()
        }
    }

    #[test]
    fn stable_link_zero_churn() {
        let d = ds((0..10)
            .map(|k| probe(k as f64 * 300.0, 20.0, 24.0))
            .collect());
        let s = stability_over(&d);
        assert_eq!(s.links, 1);
        assert_eq!(s.median_churn(), Some(0.0));
        assert_eq!(s.churn_same_snr, 0.0);
        assert_eq!(s.pairs, (9, 0));
        assert_eq!(s.median_drift_db(), Some(0.0));
    }

    #[test]
    fn alternating_optimum_full_churn() {
        let d = ds((0..10)
            .map(|k| probe(k as f64 * 300.0, 20.0, if k % 2 == 0 { 24.0 } else { 12.0 }))
            .collect());
        let s = stability_over(&d);
        assert_eq!(s.median_churn(), Some(1.0));
        assert_eq!(
            s.churn_same_snr, 1.0,
            "all flips happened at the same SNR key"
        );
    }

    #[test]
    fn snr_tracked_flips_are_diff_snr_churn() {
        // Optimum flips only when the SNR moves: a perfect table would
        // still be perfect.
        let d = ds(vec![
            probe(0.0, 15.0, 12.0),
            probe(300.0, 25.0, 24.0),
            probe(600.0, 15.0, 12.0),
            probe(900.0, 25.0, 24.0),
        ]);
        let s = stability_over(&d);
        assert_eq!(s.churn_same_snr, 0.0);
        assert_eq!(s.churn_diff_snr, 1.0);
        assert_eq!(s.pairs, (0, 3));
        assert_eq!(s.median_drift_db(), Some(10.0));
    }

    #[test]
    fn single_set_links_ignored() {
        let d = ds(vec![probe(0.0, 20.0, 24.0)]);
        let s = stability_over(&d);
        assert_eq!(s.links, 0);
        assert_eq!(s.median_churn(), None);
    }

    #[test]
    fn out_of_order_input_is_sorted() {
        let d = ds(vec![
            probe(600.0, 20.0, 24.0),
            probe(0.0, 20.0, 24.0),
            probe(300.0, 20.0, 24.0),
        ]);
        let s = stability_over(&d);
        assert_eq!(s.median_churn(), Some(0.0));
        assert_eq!(s.pairs.0 + s.pairs.1, 2);
    }
}
