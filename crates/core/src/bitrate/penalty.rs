//! §4.3 — the throughput cost of table-driven rate selection (Fig 4.4).
//!
//! For every probe set, compare the throughput of the rate the lookup table
//! would have picked against the throughput of the set's actual optimum.
//! A rate the table picks but the set never heard (no observation) scores
//! zero throughput — exactly the punishment a real sender would take.

use mesh11_phy::Phy;
use mesh11_stats::Cdf;
use mesh11_trace::{ChunkedDataset, DatasetView, FoldKernel, ProbeSource};
use rayon::prelude::*;

use crate::bitrate::lookup::{LookupTableSet, Scope};

/// The fold-style form of [`ThroughputPenalty::evaluate_from`]: needs a
/// **completed** table set, so in a fused window-major pass it runs in a
/// second phase after the table-building folds finish.
#[derive(Debug, Clone, Copy)]
pub struct PenaltyKernel<'t> {
    /// The trained tables the kernel scores against.
    pub table: &'t LookupTableSet,
}

impl FoldKernel for PenaltyKernel<'_> {
    type Partial = (Vec<f64>, usize);
    type Output = ThroughputPenalty;

    fn init(&self) -> Self::Partial {
        (Vec::new(), 0)
    }

    fn fold(&self, view: DatasetView<'_>, partial: &mut Self::Partial) {
        let nets = view.network_views(self.table.phy());
        let partials: Vec<(Vec<f64>, usize)> = nets
            .par_iter()
            .map(|nv| {
                let mut d = Vec::new();
                let mut unp = 0usize;
                for e in nv.entries_in_order() {
                    let Some(pick) = self.table.predict_entry(&e) else {
                        unp += 1;
                        continue;
                    };
                    let best = e.opt.throughput_mbps();
                    let got = e.probe.obs_for(pick).map_or(0.0, |o| o.throughput_mbps());
                    d.push((best - got).max(0.0));
                }
                (d, unp)
            })
            .collect();
        for (d, unp) in partials {
            partial.0.extend(d);
            partial.1 += unp;
        }
    }

    fn merge(&self, into: &mut Self::Partial, from: Self::Partial) {
        into.0.extend(from.0);
        into.1 += from.1;
    }

    fn finish(&self, partial: Self::Partial) -> ThroughputPenalty {
        ThroughputPenalty {
            scope: self.table.scope(),
            phy: self.table.phy(),
            diffs_mbps: partial.0,
            unpredicted: partial.1,
        }
    }
}

/// Throughput-difference distribution for one scope.
#[derive(Debug, Clone)]
pub struct ThroughputPenalty {
    /// Training scope.
    pub scope: Scope,
    /// PHY analyzed.
    pub phy: Phy,
    /// One difference (Mbit/s, ≥ 0) per predicted probe set.
    pub diffs_mbps: Vec<f64>,
    /// Probe sets for which the table had no entry (excluded from the CDF).
    pub unpredicted: usize,
}

impl ThroughputPenalty {
    /// Evaluates a trained table set against the dataset it describes
    /// (dataset order per PHY, so the diff vector matches the pre-index
    /// pipeline element for element).
    pub fn evaluate(view: DatasetView<'_>, table: &LookupTableSet) -> Self {
        Self::evaluate_from(&ProbeSource::Whole(view), table)
    }

    /// [`ThroughputPenalty::evaluate`] over a whole or chunked source: the
    /// diff vector is filled in per-PHY dataset order, and windowed walks
    /// concatenate to exactly that order. The evaluation fans out over a
    /// flat per-network work list; concatenating per-network diff vectors
    /// in network order rebuilds the sequential vector element for
    /// element (datasets are network-major).
    pub fn evaluate_from(src: &ProbeSource<'_>, table: &LookupTableSet) -> Self {
        mesh11_trace::run_fold(src, &PenaltyKernel { table })
    }

    /// Evaluates several trained table sets in **one** walk over the raw
    /// chunk store, never materializing a window (no index build, no
    /// `window_builds` traffic): per network, in id order, each probe set
    /// is scored against every table whose PHY matches.
    ///
    /// Byte-identical to per-table [`ThroughputPenalty::evaluate_from`]:
    /// a window walk visits each (phy, network)'s entries in stream order
    /// filtered by PHY (the index permutations are stable sorts over
    /// network-major, time-sorted data), which is exactly the order the raw
    /// chunk walk yields; and [`LookupTableSet::predict`] re-derives the
    /// same `snr_key`/`optimal` the index precomputes.
    pub fn evaluate_batch_chunked(
        chunked: &ChunkedDataset,
        tables: &[&LookupTableSet],
    ) -> Vec<Self> {
        let n_networks = chunked.shell().networks.len();
        // One (diffs, unpredicted) partial per (network, table); the fan-out
        // is per network, and concatenating per-network partials in network
        // order rebuilds each table's sequential diff vector exactly.
        let net_ids: Vec<usize> = (0..n_networks).collect();
        let per_net: Vec<Vec<(Vec<f64>, usize)>> = net_ids
            .par_iter()
            .map(|&net| {
                let mut partials: Vec<(Vec<f64>, usize)> =
                    tables.iter().map(|_| (Vec::new(), 0)).collect();
                chunked.for_each_network_probe(net, |p| {
                    for (k, table) in tables.iter().enumerate() {
                        if table.phy() != p.phy {
                            continue;
                        }
                        let (d, unp) = &mut partials[k];
                        let Some(pick) = table.predict(p) else {
                            *unp += 1;
                            continue;
                        };
                        let best = p.optimal().throughput_mbps();
                        let got = p.obs_for(pick).map_or(0.0, |o| o.throughput_mbps());
                        d.push((best - got).max(0.0));
                    }
                });
                partials
            })
            .collect();
        tables
            .iter()
            .enumerate()
            .map(|(k, table)| {
                let mut diffs = Vec::new();
                let mut unpredicted = 0usize;
                for net in &per_net {
                    diffs.extend_from_slice(&net[k].0);
                    unpredicted += net[k].1;
                }
                Self {
                    scope: table.scope(),
                    phy: table.phy(),
                    diffs_mbps: diffs,
                    unpredicted,
                }
            })
            .collect()
    }

    /// Convenience: build the table at `scope` then evaluate.
    pub fn for_scope(view: DatasetView<'_>, scope: Scope, phy: Phy) -> Self {
        Self::evaluate(view, &LookupTableSet::build(view, scope, phy))
    }

    /// CDF of the differences (the Fig 4.4 curve). `None` when nothing was
    /// predicted.
    pub fn cdf(&self) -> Option<Cdf> {
        Cdf::from_samples(self.diffs_mbps.iter().copied())
    }

    /// Fraction of predictions with zero throughput loss — §4.3's "chooses
    /// the correct answer" number (≈90% b/g, ≈75% n for link scope).
    pub fn frac_exact(&self) -> f64 {
        if self.diffs_mbps.is_empty() {
            return 0.0;
        }
        self.diffs_mbps.iter().filter(|&&d| d < 1e-9).count() as f64 / self.diffs_mbps.len() as f64
    }

    /// Mean throughput loss (Mbit/s).
    pub fn mean_loss_mbps(&self) -> f64 {
        mesh11_stats::mean(&self.diffs_mbps).unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh11_phy::BitRate;
    use mesh11_trace::{ApId, Dataset, DatasetIndex, NetworkId, ProbeSet, RateObs};

    fn r(mbps: f64) -> BitRate {
        BitRate::bg_mbps(mbps).unwrap()
    }

    fn penalty_over(ds: &Dataset, scope: Scope) -> ThroughputPenalty {
        let ix = DatasetIndex::build(ds);
        ThroughputPenalty::for_scope(DatasetView::new(ds, &ix), scope, Phy::Bg)
    }

    fn probe(s: u32, rx: u32, snr: f64, obs: Vec<(f64, f64)>) -> ProbeSet {
        ProbeSet {
            network: NetworkId(0),
            phy: Phy::Bg,
            time_s: 0.0,
            sender: ApId(s),
            receiver: ApId(rx),
            obs: obs
                .into_iter()
                .map(|(mbps, loss)| RateObs {
                    rate: r(mbps),
                    loss,
                    snr_db: snr,
                })
                .collect(),
        }
    }

    fn ds(probes: Vec<ProbeSet>) -> Dataset {
        Dataset {
            probes,
            ..Dataset::default()
        }
    }

    #[test]
    fn perfect_table_zero_penalty() {
        let d = ds(vec![
            probe(0, 1, 20.0, vec![(12.0, 0.0), (24.0, 0.9)]),
            probe(0, 1, 20.0, vec![(12.0, 0.0), (24.0, 0.9)]),
        ]);
        let p = penalty_over(&d, Scope::Link);
        assert_eq!(p.diffs_mbps.len(), 2);
        assert_eq!(p.frac_exact(), 1.0);
        assert_eq!(p.mean_loss_mbps(), 0.0);
        assert_eq!(p.unpredicted, 0);
    }

    #[test]
    fn conflicting_links_cost_global_table() {
        // Link A: optimal 12 (24 is lossy); link B: optimal 24. Global
        // training at the shared SNR must err on one of them.
        let d = ds(vec![
            probe(0, 1, 20.0, vec![(12.0, 0.0), (24.0, 0.9)]),
            probe(0, 2, 20.0, vec![(12.0, 0.0), (24.0, 0.0)]),
        ]);
        let global = penalty_over(&d, Scope::Global);
        let link = penalty_over(&d, Scope::Link);
        assert!(global.frac_exact() < 1.0);
        assert_eq!(link.frac_exact(), 1.0);
        assert!(global.mean_loss_mbps() > link.mean_loss_mbps());
    }

    #[test]
    fn unheard_pick_scores_zero() {
        // Train the table toward 48 via one link, then evaluate a set that
        // never heard 48: penalty is the full optimal throughput.
        let d = ds(vec![
            probe(0, 1, 25.0, vec![(48.0, 0.0)]),
            probe(0, 2, 25.0, vec![(12.0, 0.0)]),
        ]);
        let g = penalty_over(&d, Scope::Global);
        // One of the two sets is mispredicted with an unheard rate.
        let max = g.diffs_mbps.iter().copied().fold(0.0, f64::max);
        assert!(max >= 12.0 - 1e-9, "diffs {:?}", g.diffs_mbps);
    }

    #[test]
    fn cdf_export() {
        let d = ds(vec![probe(0, 1, 20.0, vec![(12.0, 0.0)])]);
        let p = penalty_over(&d, Scope::Link);
        let cdf = p.cdf().unwrap();
        assert_eq!(cdf.len(), 1);
        assert_eq!(cdf.eval(0.0), 1.0);
        let empty = penalty_over(&ds(vec![]), Scope::Link);
        assert!(empty.cdf().is_none());
    }
}
