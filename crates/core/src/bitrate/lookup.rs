//! SNR-keyed bit-rate lookup tables (§4.1–4.2).

use std::collections::{BTreeMap, BTreeSet, HashMap};

use mesh11_phy::{BitRate, Phy};
use mesh11_stats::BinnedStats;
use mesh11_trace::{DatasetView, ProbeSet, ProbeSource};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Training scope of a lookup table — the paper's four cases, from cheapest
/// to bootstrap to most specific.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Scope {
    /// One table for everything (the paper's base case; not viable).
    Global,
    /// One table per network.
    Network,
    /// One table per sending AP.
    Ap,
    /// One table per directed link.
    Link,
}

impl Scope {
    /// All scopes, in increasing specificity.
    pub const ALL: [Scope; 4] = [Scope::Global, Scope::Network, Scope::Ap, Scope::Link];

    /// Display name matching the paper's figure legends.
    pub fn name(self) -> &'static str {
        match self {
            Scope::Global => "Global",
            Scope::Network => "Network",
            Scope::Ap => "AP",
            Scope::Link => "Link",
        }
    }
}

/// Table key: unused components are `u32::MAX`.
type Key = (u32, u32, u32);

/// The table key a probe trains/consults under `scope`.
fn key_of(scope: Scope, probe: &ProbeSet) -> Key {
    match scope {
        Scope::Global => (u32::MAX, u32::MAX, u32::MAX),
        Scope::Network => (probe.network.0, u32::MAX, u32::MAX),
        Scope::Ap => (probe.network.0, probe.sender.0, u32::MAX),
        Scope::Link => (probe.network.0, probe.sender.0, probe.receiver.0),
    }
}

/// How often each rate was optimal at one (key, SNR) cell.
type RateCounts = BTreeMap<BitRate, u32>;

/// The fold-style form of [`LookupTableSet::build_from`]. The partial is a
/// whole table set whose cells are commutative integer counts, so `merge`
/// is exact here — cross-window parallel training is safe for this kernel
/// (the window-major scheduler still drives it sequentially).
#[derive(Debug, Clone, Copy)]
pub struct TableBuildKernel {
    /// Training scope.
    pub scope: Scope,
    /// PHY to train on.
    pub phy: Phy,
}

impl mesh11_trace::FoldKernel for TableBuildKernel {
    type Partial = LookupTableSet;
    type Output = LookupTableSet;

    fn init(&self) -> LookupTableSet {
        LookupTableSet {
            scope: self.scope,
            phy: self.phy,
            tables: HashMap::new(),
            winners: None,
        }
    }

    fn fold(&self, view: DatasetView<'_>, partial: &mut LookupTableSet) {
        let nets = view.network_views(self.phy);
        let scope = self.scope;
        let partials: Vec<HashMap<Key, BTreeMap<i64, RateCounts>>> = nets
            .par_iter()
            .map(|nv| {
                let mut t: HashMap<Key, BTreeMap<i64, RateCounts>> = HashMap::new();
                for e in nv.entries_in_order() {
                    *t.entry(key_of(scope, e.probe))
                        .or_default()
                        .entry(e.snr_key)
                        .or_default()
                        .entry(e.opt.rate)
                        .or_insert(0) += 1;
                }
                t
            })
            .collect();
        for t in partials {
            for (key, snr_map) in t {
                let dst = partial.tables.entry(key).or_default();
                for (snr, counts) in snr_map {
                    let cell = dst.entry(snr).or_default();
                    for (rate, c) in counts {
                        *cell.entry(rate).or_insert(0) += c;
                    }
                }
            }
        }
    }

    fn merge(&self, into: &mut LookupTableSet, from: LookupTableSet) {
        for (key, snr_map) in from.tables {
            let dst = into.tables.entry(key).or_default();
            for (snr, counts) in snr_map {
                let cell = dst.entry(snr).or_default();
                for (rate, c) in counts {
                    *cell.entry(rate).or_insert(0) += c;
                }
            }
        }
    }

    fn finish(&self, mut partial: LookupTableSet) -> LookupTableSet {
        partial.seal();
        partial
    }
}

/// A set of SNR → optimal-rate frequency tables at one scope, for one PHY.
#[derive(Debug, Clone)]
pub struct LookupTableSet {
    scope: Scope,
    phy: Phy,
    tables: HashMap<Key, BTreeMap<i64, RateCounts>>,
    /// Sealed per-cell argmaxes: one flat hash probe per prediction instead
    /// of two map walks plus a count scan. `None` while still training.
    winners: Option<HashMap<(Key, i64), BitRate>>,
}

impl LookupTableSet {
    /// Trains tables from every probe set of `phy` in the dataset, using
    /// the view's precomputed SNR keys and optima (dataset order, same
    /// accumulation as calling [`LookupTableSet::train`] per probe).
    pub fn build(view: DatasetView<'_>, scope: Scope, phy: Phy) -> Self {
        Self::build_from(&ProbeSource::Whole(view), scope, phy)
    }

    /// [`LookupTableSet::build`] over a whole or chunked source. The tables
    /// are pure frequency counts, and a chunked walk feeds the same probes,
    /// so the result is identical either way. Training fans out over a
    /// flat per-network work list: counts are integers and addition
    /// commutes, so the parallel merge cannot change any cell.
    pub fn build_from(src: &ProbeSource<'_>, scope: Scope, phy: Phy) -> Self {
        mesh11_trace::run_fold(src, &TableBuildKernel { scope, phy })
    }

    /// Adds one probe set's `P_opt` observation.
    pub fn train(&mut self, probe: &ProbeSet) {
        debug_assert_eq!(probe.phy, self.phy);
        self.winners = None; // counts change ⇒ cached argmaxes are stale
        let key = self.key_for(probe);
        *self
            .tables
            .entry(key)
            .or_default()
            .entry(probe.snr_key())
            .or_default()
            .entry(probe.optimal().rate)
            .or_insert(0) += 1;
    }

    fn key_for(&self, probe: &ProbeSet) -> Key {
        key_of(self.scope, probe)
    }

    /// The rate-frequency cell a probe set would consult.
    pub fn counts_for(&self, probe: &ProbeSet) -> Option<&RateCounts> {
        self.tables.get(&self.key_for(probe))?.get(&probe.snr_key())
    }

    /// The table's prediction for a probe set: the most frequently optimal
    /// rate at its (key, SNR); ties break toward the lower rate.
    pub fn predict(&self, probe: &ProbeSet) -> Option<BitRate> {
        self.predict_keyed(self.key_for(probe), probe.snr_key())
    }

    /// `predict` for an indexed probe entry: same lookup, but the SNR key
    /// comes from the precomputed column instead of a median re-derivation.
    pub(crate) fn predict_entry(&self, e: &mesh11_trace::ProbeEntry<'_>) -> Option<BitRate> {
        self.predict_keyed(self.key_for(e.probe), e.snr_key)
    }

    /// `predict` with the SNR key already known (the indexed scans pass the
    /// precomputed column instead of re-deriving the median).
    fn predict_keyed(&self, key: Key, snr: i64) -> Option<BitRate> {
        if let Some(winners) = &self.winners {
            return winners.get(&(key, snr)).copied();
        }
        Self::cell_winner(self.tables.get(&key)?.get(&snr)?)
    }

    /// The most frequently optimal rate of one cell; ties break toward the
    /// lower rate. Cells are never empty, so `None` can't happen for a cell
    /// that exists — which is why [`LookupTableSet::seal`]'s flat map misses
    /// exactly when the nested lookups would have.
    fn cell_winner(counts: &RateCounts) -> Option<BitRate> {
        counts
            .iter()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
            .map(|(&rate, _)| rate)
    }

    /// Precomputes every cell's winning rate into one flat map, turning
    /// each subsequent prediction into a single hash probe. Idempotent;
    /// [`LookupTableSet::train`] invalidates the cache. Called by the
    /// build kernel's `finish`, so every built table set arrives sealed.
    pub fn seal(&mut self) {
        let mut winners = HashMap::new();
        for (&key, table) in &self.tables {
            for (&snr, counts) in table {
                if let Some(rate) = Self::cell_winner(counts) {
                    winners.insert((key, snr), rate);
                }
            }
        }
        self.winners = Some(winners);
    }

    /// The `k` most frequently optimal rates at a probe set's cell — the
    /// §4.5 "augmented table" that narrows probing.
    pub fn top_k(&self, probe: &ProbeSet, k: usize) -> Vec<BitRate> {
        let Some(counts) = self.counts_for(probe) else {
            return Vec::new();
        };
        let mut v: Vec<(BitRate, u32)> = counts.iter().map(|(&r, &c)| (r, c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.into_iter().take(k).map(|(r, _)| r).collect()
    }

    /// Fraction of the dataset's probe sets whose predicted rate equals the
    /// actually optimal one (trained-on-self accuracy, as in §4.3's "chooses
    /// the correct answer about 90% of the time").
    pub fn exact_accuracy(&self, view: DatasetView<'_>) -> f64 {
        self.exact_accuracy_from(&ProbeSource::Whole(view))
    }

    /// [`LookupTableSet::exact_accuracy`] over a whole or chunked source.
    /// Hit/total counters are integers, so the per-network fan-out sums
    /// to exactly the sequential result.
    pub fn exact_accuracy_from(&self, src: &ProbeSource<'_>) -> f64 {
        let mut total = 0u64;
        let mut hits = 0u64;
        src.for_each_view(|view| {
            let nets = view.network_views(self.phy);
            let partials: Vec<(u64, u64)> = nets
                .par_iter()
                .map(|nv| {
                    let (mut h, mut t) = (0u64, 0u64);
                    for e in nv.entries_in_order() {
                        t += 1;
                        if self.predict_keyed(key_of(self.scope, e.probe), e.snr_key)
                            == Some(e.opt.rate)
                        {
                            h += 1;
                        }
                    }
                    (h, t)
                })
                .collect();
            for (h, t) in partials {
                hits += h;
                total += t;
            }
        });
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// Fig 4.1: for each SNR key, every rate that was *ever* optimal
    /// (pooled across all table keys of this scope).
    pub fn optimal_rates_per_snr(&self) -> BTreeMap<i64, BTreeSet<BitRate>> {
        let mut out: BTreeMap<i64, BTreeSet<BitRate>> = BTreeMap::new();
        for table in self.tables.values() {
            for (&snr, counts) in table {
                out.entry(snr).or_default().extend(counts.keys().copied());
            }
        }
        out
    }

    /// Smallest number of distinct rates whose combined frequency covers at
    /// least `pct` (0–1] of the observations in a cell.
    pub fn rates_needed(counts: &RateCounts, pct: f64) -> usize {
        let total: u32 = counts.values().sum();
        if total == 0 {
            return 0;
        }
        let mut freqs: Vec<u32> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        let target = pct * total as f64;
        let mut acc = 0.0;
        for (i, f) in freqs.iter().enumerate() {
            acc += *f as f64;
            if acc + 1e-9 >= target {
                return i + 1;
            }
        }
        freqs.len()
    }

    /// Figs 4.2/4.3: for each SNR, the distribution over table keys of the
    /// number of rates needed to reach `pct` accuracy. The returned
    /// [`BinnedStats`] is keyed by SNR dB; its per-bin mean is what the
    /// figure plots.
    pub fn rates_needed_curve(&self, pct: f64) -> BinnedStats {
        let mut out = BinnedStats::new();
        for table in self.tables.values() {
            for (&snr, counts) in table {
                out.push(snr, Self::rates_needed(counts, pct) as f64);
            }
        }
        out
    }

    /// Number of distinct table keys (1 for global, #networks for network
    /// scope, …).
    pub fn n_keys(&self) -> usize {
        self.tables.len()
    }

    /// The scope this set was trained at.
    pub fn scope(&self) -> Scope {
        self.scope
    }

    /// The PHY this set covers.
    pub fn phy(&self) -> Phy {
        self.phy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh11_trace::{ApId, Dataset, DatasetIndex, NetworkId, RateObs};

    fn r(mbps: f64) -> BitRate {
        BitRate::bg_mbps(mbps).unwrap()
    }

    fn build_over(ds: &Dataset, scope: Scope, phy: Phy) -> LookupTableSet {
        let ix = DatasetIndex::build(ds);
        LookupTableSet::build(DatasetView::new(ds, &ix), scope, phy)
    }

    fn accuracy_over(ds: &Dataset, scope: Scope) -> f64 {
        let ix = DatasetIndex::build(ds);
        let view = DatasetView::new(ds, &ix);
        LookupTableSet::build(view, scope, Phy::Bg).exact_accuracy(view)
    }

    /// A probe set whose optimal rate is `opt` at `snr` on the given link.
    fn probe(net: u32, s: u32, rx: u32, snr: f64, opt: BitRate) -> ProbeSet {
        ProbeSet {
            network: NetworkId(net),
            phy: Phy::Bg,
            time_s: 0.0,
            sender: ApId(s),
            receiver: ApId(rx),
            obs: vec![
                RateObs {
                    rate: opt,
                    loss: 0.0,
                    snr_db: snr,
                },
                // A decoy that always loses: 1 Mbit/s at full delivery is
                // below every other rate's zero-loss throughput.
                RateObs {
                    rate: r(1.0),
                    loss: 0.5,
                    snr_db: snr,
                },
            ],
        }
    }

    fn dataset(probes: Vec<ProbeSet>) -> Dataset {
        Dataset {
            networks: vec![],
            probes,
            clients: vec![],
            probe_horizon_s: 0.0,
            client_horizon_s: 0.0,
        }
    }

    #[test]
    fn global_table_pools_networks() {
        let ds = dataset(vec![
            probe(0, 0, 1, 20.0, r(12.0)),
            probe(1, 0, 1, 20.0, r(24.0)),
        ]);
        let t = build_over(&ds, Scope::Global, Phy::Bg);
        assert_eq!(t.n_keys(), 1);
        let rates = t.optimal_rates_per_snr();
        assert_eq!(rates[&20].len(), 2, "both optima live under one key");
    }

    #[test]
    fn link_table_separates_links() {
        let ds = dataset(vec![
            probe(0, 0, 1, 20.0, r(12.0)),
            probe(0, 0, 2, 20.0, r(24.0)),
        ]);
        let t = build_over(&ds, Scope::Link, Phy::Bg);
        assert_eq!(t.n_keys(), 2);
        // Each link predicts its own optimum perfectly.
        assert_eq!(accuracy_over(&ds, Scope::Link), 1.0);
        // The global table cannot: it must pick one of the two.
        assert_eq!(accuracy_over(&ds, Scope::Global), 0.5);
    }

    #[test]
    fn scope_ordering_by_accuracy() {
        // Two networks, two links each, all sharing an SNR but with
        // different per-link optima: accuracy must rise with specificity.
        let ds = dataset(vec![
            probe(0, 0, 1, 20.0, r(12.0)),
            probe(0, 0, 1, 20.0, r(12.0)),
            probe(0, 1, 0, 20.0, r(24.0)),
            probe(1, 0, 1, 20.0, r(36.0)),
            probe(1, 1, 0, 20.0, r(48.0)),
        ]);
        let acc: Vec<f64> = Scope::ALL.iter().map(|&s| accuracy_over(&ds, s)).collect();
        for w in acc.windows(2) {
            assert!(w[0] <= w[1] + 1e-12, "accuracy must not drop: {acc:?}");
        }
        assert_eq!(*acc.last().unwrap(), 1.0);
    }

    #[test]
    fn predict_majority_wins() {
        let mut t = LookupTableSet {
            scope: Scope::Global,
            phy: Phy::Bg,
            tables: HashMap::new(),
            winners: None,
        };
        for _ in 0..3 {
            t.train(&probe(0, 0, 1, 15.0, r(12.0)));
        }
        t.train(&probe(0, 0, 1, 15.0, r(48.0)));
        assert_eq!(t.predict(&probe(0, 0, 1, 15.0, r(6.0))), Some(r(12.0)));
    }

    #[test]
    fn predict_none_without_data() {
        let t = build_over(&dataset(vec![]), Scope::Link, Phy::Bg);
        assert_eq!(t.predict(&probe(0, 0, 1, 15.0, r(6.0))), None);
        assert!(t.top_k(&probe(0, 0, 1, 15.0, r(6.0)), 3).is_empty());
    }

    #[test]
    fn rates_needed_math() {
        let mut c: RateCounts = BTreeMap::new();
        c.insert(r(12.0), 67);
        c.insert(r(24.0), 30);
        c.insert(r(48.0), 3);
        // The paper's own example: 67% + 30% ⇒ two rates reach 95%, one
        // reaches 50%.
        assert_eq!(LookupTableSet::rates_needed(&c, 0.5), 1);
        assert_eq!(LookupTableSet::rates_needed(&c, 0.95), 2);
        assert_eq!(LookupTableSet::rates_needed(&c, 1.0), 3);
        assert_eq!(LookupTableSet::rates_needed(&BTreeMap::new(), 0.9), 0);
    }

    #[test]
    fn rates_needed_curve_shrinks_with_specificity() {
        // Same SNR, conflicting optima across links: at 95% the global
        // table needs 2 rates, per-link tables need 1.
        let ds = dataset(vec![
            probe(0, 0, 1, 20.0, r(12.0)),
            probe(0, 0, 2, 20.0, r(24.0)),
        ]);
        let g = build_over(&ds, Scope::Global, Phy::Bg).rates_needed_curve(0.95);
        let l = build_over(&ds, Scope::Link, Phy::Bg).rates_needed_curve(0.95);
        let g_mean = g.rows()[0].1.mean;
        let l_mean = l.rows()[0].1.mean;
        assert_eq!(g_mean, 2.0);
        assert_eq!(l_mean, 1.0);
    }

    #[test]
    fn top_k_orders_by_frequency() {
        let mut t = LookupTableSet {
            scope: Scope::Global,
            phy: Phy::Bg,
            tables: HashMap::new(),
            winners: None,
        };
        for _ in 0..5 {
            t.train(&probe(0, 0, 1, 15.0, r(24.0)));
        }
        for _ in 0..2 {
            t.train(&probe(0, 0, 1, 15.0, r(12.0)));
        }
        t.train(&probe(0, 0, 1, 15.0, r(48.0)));
        let q = probe(0, 0, 1, 15.0, r(6.0));
        assert_eq!(t.top_k(&q, 2), vec![r(24.0), r(12.0)]);
        assert_eq!(t.top_k(&q, 99).len(), 3);
    }

    #[test]
    fn ht_tables_are_separate() {
        let ds = dataset(vec![probe(0, 0, 1, 20.0, r(12.0))]);
        let t = build_over(&ds, Scope::Global, Phy::Ht);
        assert_eq!(t.n_keys(), 0, "bg probes must not train the ht table");
    }
}
