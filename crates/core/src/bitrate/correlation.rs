//! §4.4 — how throughput varies with SNR (Fig 4.5).
//!
//! For every (probe set, rate observation), one `(SNR, throughput)` point.
//! The figure plots, per rate, the median with quartile error bars over SNR
//! bins; the section also quotes correlation coefficients, which we compute
//! both linearly (Pearson) and by rank (Spearman — more honest given the
//! saturating shape).

use std::collections::BTreeMap;

use mesh11_phy::{BitRate, Phy};
use mesh11_stats::{pearson, spearman, BinnedStats};
use mesh11_trace::{DatasetView, FoldKernel, ProbeSource};
use rayon::prelude::*;

/// The fold-style form of [`SnrThroughputCurves::build_from`].
#[derive(Debug, Clone, Copy)]
pub struct CurvesKernel {
    /// PHY analyzed.
    pub phy: Phy,
}

/// The in-flight state of a [`CurvesKernel`] fold.
#[derive(Debug, Default)]
pub struct CurvesPartial {
    per_rate: BTreeMap<BitRate, BinnedStats>,
    snr: Vec<f64>,
    thr: Vec<f64>,
}

impl FoldKernel for CurvesKernel {
    type Partial = CurvesPartial;
    type Output = SnrThroughputCurves;

    fn init(&self) -> CurvesPartial {
        CurvesPartial::default()
    }

    fn fold(&self, view: DatasetView<'_>, partial: &mut CurvesPartial) {
        let ix = view.index();
        let nets = view.network_views(self.phy);
        type Per = (Vec<(BitRate, BinnedStats)>, Vec<f64>, Vec<f64>);
        let partials: Vec<Per> = nets
            .par_iter()
            .map(|nv| {
                // A PHY probes at most a dozen rates, so a first-seen-order
                // vec with a linear scan beats a tree lookup per
                // observation. Distinct rates feed distinct accumulators,
                // so iteration order never touches any bin's contents.
                let mut rates: Vec<(BitRate, BinnedStats)> = Vec::new();
                let mut s = Vec::new();
                let mut t = Vec::new();
                for e in nv.entries_in_order() {
                    let key = e.snr_key;
                    let obs = ix.obs(e.pos);
                    for (k, &rate) in obs.rates.iter().enumerate() {
                        let stats = match rates.iter_mut().find(|(r, _)| *r == rate) {
                            Some((_, stats)) => stats,
                            None => {
                                rates.push((rate, BinnedStats::new()));
                                &mut rates.last_mut().expect("just pushed").1
                            }
                        };
                        stats.push(key, obs.thr_mbps[k]);
                        s.push(key as f64);
                        t.push(obs.thr_mbps[k]);
                    }
                }
                (rates, s, t)
            })
            .collect();
        for (rates, s, t) in partials {
            for (rate, stats) in rates {
                partial.per_rate.entry(rate).or_default().merge(stats);
            }
            partial.snr.extend(s);
            partial.thr.extend(t);
        }
    }

    fn merge(&self, into: &mut CurvesPartial, from: CurvesPartial) {
        for (rate, stats) in from.per_rate {
            into.per_rate.entry(rate).or_default().merge(stats);
        }
        into.snr.extend(from.snr);
        into.thr.extend(from.thr);
    }

    fn finish(&self, partial: CurvesPartial) -> SnrThroughputCurves {
        SnrThroughputCurves {
            phy: self.phy,
            per_rate: partial.per_rate,
            snr: partial.snr,
            thr: partial.thr,
        }
    }
}

/// Per-rate binned SNR → throughput statistics.
#[derive(Debug, Clone)]
pub struct SnrThroughputCurves {
    /// PHY analyzed.
    pub phy: Phy,
    /// Per rate: throughput samples binned by integer SNR.
    pub per_rate: BTreeMap<BitRate, BinnedStats>,
    /// Raw `(snr, throughput)` pooled across rates, for the correlation
    /// coefficients.
    snr: Vec<f64>,
    thr: Vec<f64>,
}

impl SnrThroughputCurves {
    /// Builds the curves from every probe set of `phy`. Iterates the view's
    /// per-PHY range in dataset order — the correlation sums are
    /// order-sensitive, and this is the order the linear filter produced.
    pub fn build(view: DatasetView<'_>, phy: Phy) -> Self {
        Self::build_from(&ProbeSource::Whole(view), phy)
    }

    /// [`SnrThroughputCurves::build`] over a whole or chunked source; the
    /// order-sensitive correlation sums see the same sample sequence either
    /// way (windowed per-PHY walks concatenate to the whole walk). Sample
    /// collection fans out per network; concatenating per-network samples
    /// and bin pushes in network order rebuilds the sequential sequence
    /// exactly (datasets are network-major).
    pub fn build_from(src: &ProbeSource<'_>, phy: Phy) -> Self {
        mesh11_trace::run_fold(src, &CurvesKernel { phy })
    }

    /// The envelope the paper's Fig 4.5 eye traces: per SNR bin, the best
    /// median throughput across rates.
    pub fn envelope(&self) -> BTreeMap<i64, f64> {
        let mut out: BTreeMap<i64, f64> = BTreeMap::new();
        for stats in self.per_rate.values() {
            for (snr, summary) in stats.rows() {
                let e = out.entry(snr).or_insert(0.0);
                *e = e.max(summary.median);
            }
        }
        out
    }

    /// Pearson correlation of SNR and throughput over all samples.
    pub fn pearson(&self) -> Option<f64> {
        pearson(&self.snr, &self.thr)
    }

    /// Spearman rank correlation of SNR and throughput.
    pub fn spearman(&self) -> Option<f64> {
        spearman(&self.snr, &self.thr)
    }

    /// The SNR (dB) beyond which the envelope stops growing (within
    /// `slack`, e.g. 0.95): the paper observes ≈30 dB for b/g, ≈15 dB for n.
    pub fn saturation_snr_db(&self, slack: f64) -> Option<i64> {
        let env = self.envelope();
        let peak = env.values().copied().fold(0.0, f64::max);
        if peak <= 0.0 {
            return None;
        }
        env.iter()
            .find(|(_, &v)| v >= slack * peak)
            .map(|(&snr, _)| snr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh11_trace::{ApId, Dataset, DatasetIndex, NetworkId, ProbeSet, RateObs};

    fn r(mbps: f64) -> BitRate {
        BitRate::bg_mbps(mbps).unwrap()
    }

    fn curves_over(ds: &Dataset) -> SnrThroughputCurves {
        let ix = DatasetIndex::build(ds);
        SnrThroughputCurves::build(DatasetView::new(ds, &ix), Phy::Bg)
    }

    fn probe(snr: f64, obs: Vec<(f64, f64)>) -> ProbeSet {
        ProbeSet {
            network: NetworkId(0),
            phy: Phy::Bg,
            time_s: 0.0,
            sender: ApId(0),
            receiver: ApId(1),
            obs: obs
                .into_iter()
                .map(|(mbps, loss)| RateObs {
                    rate: r(mbps),
                    loss,
                    snr_db: snr,
                })
                .collect(),
        }
    }

    fn ds(probes: Vec<ProbeSet>) -> Dataset {
        Dataset {
            probes,
            ..Dataset::default()
        }
    }

    #[test]
    fn collects_per_rate_bins() {
        let d = ds(vec![
            probe(10.0, vec![(1.0, 0.0), (6.0, 0.5)]),
            probe(30.0, vec![(1.0, 0.0), (6.0, 0.0)]),
        ]);
        let c = curves_over(&d);
        assert_eq!(c.per_rate.len(), 2);
        let six = &c.per_rate[&r(6.0)];
        assert_eq!(six.bin(10), Some(&[3.0][..]));
        assert_eq!(six.bin(30), Some(&[6.0][..]));
    }

    #[test]
    fn envelope_takes_best_rate() {
        let d = ds(vec![probe(30.0, vec![(1.0, 0.0), (24.0, 0.0)])]);
        let c = curves_over(&d);
        assert_eq!(c.envelope()[&30], 24.0);
    }

    #[test]
    fn correlation_positive_for_rising_data() {
        let d = ds(vec![
            probe(5.0, vec![(6.0, 0.9)]),
            probe(15.0, vec![(6.0, 0.5)]),
            probe(25.0, vec![(6.0, 0.1)]),
            probe(35.0, vec![(6.0, 0.0)]),
        ]);
        let c = curves_over(&d);
        assert!(c.pearson().unwrap() > 0.9);
        assert!(c.spearman().unwrap() > 0.99);
    }

    #[test]
    fn saturation_point() {
        let d = ds(vec![
            probe(10.0, vec![(24.0, 0.8)]),
            probe(20.0, vec![(24.0, 0.2)]),
            probe(30.0, vec![(24.0, 0.0)]),
            probe(40.0, vec![(24.0, 0.0)]),
        ]);
        let c = curves_over(&d);
        assert_eq!(c.saturation_snr_db(0.95), Some(30));
        let empty = curves_over(&ds(vec![]));
        assert_eq!(empty.saturation_snr_db(0.95), None);
    }
}
