//! # mesh11-core
//!
//! The analysis toolkit — the paper's contribution. Four analysis families,
//! one per evaluation chapter, all consuming only the [`mesh11_trace`] data
//! model (never simulator ground truth):
//!
//! * [`bitrate`] (§4) — how well does the SNR predict the optimal bit rate?
//!   SNR-keyed lookup tables at four training scopes (global / network / AP
//!   / link), the number of rates needed per accuracy percentile
//!   (Figs 4.2–4.3), the throughput penalty of table-driven selection
//!   (Fig 4.4), SNR↔throughput correlation (Fig 4.5), and online
//!   table-maintenance strategies with measured costs (Fig 4.6, Table 4.1).
//! * [`routing`] (§5) — expected-transmission-count routing: ETX1/ETX2 link
//!   metrics, shortest paths, the idealized opportunistic (ExOR-without-
//!   overhead) cost, and the improvement analysis (Figs 5.1–5.5).
//! * [`triples`] (§6) — hearing graphs, relevant/hidden triple counting
//!   (Fig 6.1), and bit-rate-dependent range (Fig 6.2, §6.3).
//! * [`mobility`] (§7) — client session reconstruction from 5-minute
//!   aggregate data, prevalence and persistence (Figs 7.1–7.5).
//!
//! [`report`] holds the figure-series containers every analysis exports and
//! the ASCII/JSON renderers the `repro` harness prints.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitrate;
pub mod mobility;
pub mod report;
pub mod routing;
pub mod triples;
