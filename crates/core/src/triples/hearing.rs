//! Hearing graphs (§6's neighbourhood predicate).
//!
//! The paper: "if we observe that AP₁ and AP₂ could hear more than t percent
//! of the probes sent between them at bit rate b, then AP₁ and AP₂ can hear
//! each other". "Between them" pools both directions — our default
//! [`HearRule::Mean`]; `Min` and `Max` are ablations (a `Min` rule demands
//! both directions clear the threshold, `Max` either).

use mesh11_trace::{ApId, DeliveryMatrix};
use serde::{Deserialize, Serialize};

/// How the two directed delivery rates combine into the hearing statistic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HearRule {
    /// Mean of the two directions (paper reading; default).
    Mean,
    /// Both directions must clear the threshold.
    Min,
    /// Either direction clearing suffices.
    Max,
}

impl HearRule {
    fn combine(self, fwd: f64, rev: f64) -> f64 {
        match self {
            HearRule::Mean => 0.5 * (fwd + rev),
            HearRule::Min => fwd.min(rev),
            HearRule::Max => fwd.max(rev),
        }
    }
}

/// Symmetric hearing relation over a network's APs, stored as per-node
/// bitsets (64 nodes per word) for fast triple counting.
#[derive(Debug, Clone, PartialEq)]
pub struct HearingGraph {
    n: usize,
    words: usize,
    /// `adj[node * words ..][..]`: bitset of neighbours.
    adj: Vec<u64>,
}

impl HearingGraph {
    /// Thresholds a delivery matrix into a hearing graph.
    pub fn build(m: &DeliveryMatrix, threshold: f64, rule: HearRule) -> Self {
        let n = m.n_aps();
        let words = n.div_ceil(64);
        let mut g = Self {
            n,
            words,
            adj: vec![0; n * words],
        };
        for a in 0..n {
            for b in (a + 1)..n {
                let fwd = m.get(ApId(a as u32), ApId(b as u32));
                let rev = m.get(ApId(b as u32), ApId(a as u32));
                if rule.combine(fwd, rev) >= threshold {
                    g.connect(a, b);
                }
            }
        }
        g
    }

    /// An empty graph over `n` nodes (for tests and synthetic topologies).
    pub fn empty(n: usize) -> Self {
        let words = n.div_ceil(64);
        Self {
            n,
            words,
            adj: vec![0; n * words],
        }
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.n
    }

    /// Adds the symmetric edge `(a, b)`.
    pub fn connect(&mut self, a: usize, b: usize) {
        assert!(a != b && a < self.n && b < self.n);
        self.adj[a * self.words + b / 64] |= 1 << (b % 64);
        self.adj[b * self.words + a / 64] |= 1 << (a % 64);
    }

    /// Whether `a` and `b` hear each other.
    pub fn hears(&self, a: usize, b: usize) -> bool {
        if a == b {
            return false;
        }
        self.adj[a * self.words + b / 64] & (1 << (b % 64)) != 0
    }

    /// The neighbour bitset of a node.
    pub fn neighbours(&self, a: usize) -> &[u64] {
        &self.adj[a * self.words..(a + 1) * self.words]
    }

    /// Degree of a node.
    pub fn degree(&self, a: usize) -> usize {
        self.neighbours(a)
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }

    /// Number of unordered hearing pairs — the §6.2 "range" of the network
    /// at this rate.
    pub fn edge_count(&self) -> usize {
        (0..self.n).map(|a| self.degree(a)).sum::<usize>() / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh11_phy::BitRate;
    use mesh11_trace::NetworkId;

    fn matrix_with(fwd: f64, rev: f64) -> DeliveryMatrix {
        let mut m = DeliveryMatrix::new_zero(NetworkId(0), BitRate::bg_mbps(1.0).unwrap(), 2);
        m.set(ApId(0), ApId(1), fwd);
        m.set(ApId(1), ApId(0), rev);
        m
    }

    #[test]
    fn rules_differ_on_asymmetric_links() {
        let m = matrix_with(0.3, 0.0);
        // Mean = 0.15, Min = 0, Max = 0.3 at threshold 0.1:
        assert!(HearingGraph::build(&m, 0.1, HearRule::Mean).hears(0, 1));
        assert!(!HearingGraph::build(&m, 0.1, HearRule::Min).hears(0, 1));
        assert!(HearingGraph::build(&m, 0.1, HearRule::Max).hears(0, 1));
        // At threshold 0.2 the mean rule drops it too.
        assert!(!HearingGraph::build(&m, 0.2, HearRule::Mean).hears(0, 1));
    }

    #[test]
    fn threshold_is_inclusive() {
        let m = matrix_with(0.1, 0.1);
        assert!(HearingGraph::build(&m, 0.1, HearRule::Mean).hears(0, 1));
    }

    #[test]
    fn graph_is_symmetric() {
        let m = matrix_with(0.9, 0.9);
        let g = HearingGraph::build(&m, 0.1, HearRule::Mean);
        assert!(g.hears(0, 1) && g.hears(1, 0));
        assert!(!g.hears(0, 0), "no self-hearing");
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    fn bitsets_span_multiple_words() {
        // 130 nodes forces 3 words per row.
        let mut g = HearingGraph::empty(130);
        g.connect(0, 129);
        g.connect(64, 65);
        assert!(g.hears(129, 0));
        assert!(g.hears(65, 64));
        assert!(!g.hears(0, 64));
        assert_eq!(g.edge_count(), 2);
    }
}
