//! §6 — Hidden triples and radio range.
//!
//! A triple `(A, B, C)` is *relevant* at bit rate `b` when `A` and `C` can
//! both hear `B`; it is *hidden* when additionally `A` and `C` cannot hear
//! each other — the precondition for a hidden-terminal collision at `B`.
//! Hearing is thresholded delivery over the probe data ([`hearing`]);
//! counting is bitset-based ([`hidden`]); the bit-rate-dependent range
//! analysis lives in [`range`].

pub mod hearing;
pub mod hidden;
pub mod range;
pub mod sweep;

pub use hearing::{HearRule, HearingGraph};
pub use hidden::{TripleAnalysis, TripleCounts};
pub use range::{range_by_rate, range_change_by_rate};
