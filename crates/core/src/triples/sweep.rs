//! §6 parameter sweeps (DESIGN.md §8).
//!
//! The paper fixes the hearing threshold at 10% and remarks that "our
//! results do not change significantly as the threshold varies". These
//! helpers make that claim (and the hearing-rule choice) checkable.

use std::collections::BTreeMap;

use mesh11_phy::{BitRate, Phy};
use mesh11_trace::{DatasetView, EnvLabel, FoldKernel, NetworkId, ProbeSource};
use rayon::prelude::*;

use crate::triples::hearing::HearRule;
use crate::triples::hidden::{TripleAnalysis, TripleCounts, TripleKernel};

/// One threshold's per-(network, rate) triple tallies — the per-window
/// partial a [`TripleKernel`] folds into.
type TripleTallies = BTreeMap<(NetworkId, BitRate), (EnvLabel, TripleCounts)>;

/// Median hidden-triple fraction at `rate` for each threshold.
pub fn threshold_sweep(
    view: DatasetView<'_>,
    phy: Phy,
    rate: BitRate,
    thresholds: &[f64],
    rule: HearRule,
) -> Vec<(f64, Option<f64>)> {
    threshold_sweep_from(&ProbeSource::Whole(view), phy, rate, thresholds, rule)
}

/// The fold-style form of [`threshold_sweep_from`]: **all** thresholds fold
/// per resident window (the sweep is threshold-major only within a window),
/// so a chunked walk materializes each window once instead of once per
/// threshold. Per-threshold partials are per-(network, rate) maps with
/// disjoint keys across windows, so the merged maps are identical to the
/// per-threshold independent walks.
#[derive(Debug, Clone)]
pub struct SweepKernel {
    /// PHY analyzed.
    pub phy: Phy,
    /// Rate whose median hidden fraction is reported.
    pub rate: BitRate,
    /// Thresholds swept, in output order.
    pub thresholds: Vec<f64>,
    /// Hearing rule used.
    pub rule: HearRule,
}

impl FoldKernel for SweepKernel {
    type Partial = Vec<TripleTallies>;
    type Output = Vec<(f64, Option<f64>)>;

    fn init(&self) -> Self::Partial {
        self.thresholds.iter().map(|_| BTreeMap::new()).collect()
    }

    fn fold(&self, view: DatasetView<'_>, partial: &mut Self::Partial) {
        let mut work: Vec<(f64, &mut TripleTallies)> = self
            .thresholds
            .iter()
            .copied()
            .zip(partial.iter_mut())
            .collect();
        work.par_iter_mut().for_each(|(t, per_network)| {
            let kernel = TripleKernel {
                phy: self.phy,
                threshold: *t,
                rule: self.rule,
            };
            kernel.fold(view, per_network);
        });
    }

    fn merge(&self, into: &mut Self::Partial, from: Self::Partial) {
        for (a, b) in into.iter_mut().zip(from) {
            a.extend(b);
        }
    }

    fn finish(&self, partial: Self::Partial) -> Self::Output {
        self.thresholds
            .iter()
            .zip(partial)
            .map(|(&t, per_network)| {
                let kernel = TripleKernel {
                    phy: self.phy,
                    threshold: t,
                    rule: self.rule,
                };
                let analysis = kernel.finish(per_network);
                (t, analysis.median_fraction(self.rate, None))
            })
            .collect()
    }
}

/// [`threshold_sweep`] over a whole or chunked source; see [`SweepKernel`]
/// for the ordering argument.
pub fn threshold_sweep_from(
    src: &ProbeSource<'_>,
    phy: Phy,
    rate: BitRate,
    thresholds: &[f64],
    rule: HearRule,
) -> Vec<(f64, Option<f64>)> {
    mesh11_trace::run_fold(
        src,
        &SweepKernel {
            phy,
            rate,
            thresholds: thresholds.to_vec(),
            rule,
        },
    )
}

/// Median hidden-triple fraction at `rate` under each hearing rule.
pub fn rule_comparison(
    view: DatasetView<'_>,
    phy: Phy,
    rate: BitRate,
    threshold: f64,
) -> Vec<(HearRule, Option<f64>)> {
    [HearRule::Mean, HearRule::Min, HearRule::Max]
        .into_iter()
        .map(|rule| {
            let analysis = TripleAnalysis::run(view, phy, threshold, rule);
            (rule, analysis.median_fraction(rate, None))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh11_trace::{
        ApId, Dataset, DatasetIndex, EnvLabel, NetworkId, NetworkMeta, ProbeSet, RateObs,
    };

    fn r1() -> BitRate {
        BitRate::bg_mbps(1.0).unwrap()
    }

    /// A–B and B–C at 40% delivery, A–C at 15%: hidden only for t > 0.15.
    fn chainish() -> Dataset {
        let link = |s: u32, rx: u32, loss: f64| ProbeSet {
            network: NetworkId(0),
            phy: Phy::Bg,
            time_s: 300.0,
            sender: ApId(s),
            receiver: ApId(rx),
            obs: vec![RateObs {
                rate: r1(),
                loss,
                snr_db: 8.0,
            }],
        };
        Dataset {
            networks: vec![NetworkMeta {
                id: NetworkId(0),
                env: EnvLabel::Indoor,
                n_aps: 3,
                radios: vec![Phy::Bg],
                location: String::new(),
            }],
            probes: vec![
                link(0, 1, 0.6),
                link(1, 0, 0.6),
                link(1, 2, 0.6),
                link(2, 1, 0.6),
                link(0, 2, 0.85),
                link(2, 0, 0.85),
            ],
            clients: vec![],
            probe_horizon_s: 600.0,
            client_horizon_s: 0.0,
        }
    }

    #[test]
    fn threshold_flips_the_verdict() {
        let ds = chainish();
        let ix = DatasetIndex::build(&ds);
        let rows = threshold_sweep(
            DatasetView::new(&ds, &ix),
            Phy::Bg,
            r1(),
            &[0.10, 0.20, 0.50],
            HearRule::Mean,
        );
        // t=0.10: A–C heard (0.15 ≥ 0.10) → triangle, nothing hidden.
        assert_eq!(rows[0].1, Some(0.0));
        // t=0.20: A–C drops out → classic hidden triple.
        assert_eq!(rows[1].1, Some(1.0));
        // t=0.50: nobody hears anybody → no relevant triples at all.
        assert_eq!(rows[2].1, None);
    }

    #[test]
    fn rules_order_sensibly() {
        // Max is the most permissive hearing rule ⇒ densest graph ⇒ it can
        // only close triangles relative to Min.
        let ds = chainish();
        let ix = DatasetIndex::build(&ds);
        let rows = rule_comparison(DatasetView::new(&ds, &ix), Phy::Bg, r1(), 0.12);
        let get = |rule: HearRule| rows.iter().find(|r| r.0 == rule).unwrap().1;
        // All directions symmetric here: rules agree on edges, so medians
        // agree — the sweep still exercises the full pipeline per rule.
        assert_eq!(get(HearRule::Mean), get(HearRule::Min));
        assert_eq!(get(HearRule::Mean), get(HearRule::Max));
    }
}
