//! §6.2–6.3 — bit-rate-dependent range.
//!
//! "Range" of a network at rate `b` := the number of unordered AP pairs that
//! hear each other at `b`. Because absolute range scales with network size,
//! Fig 6.2 plots each network's ratio to its own 1 Mbit/s range; §6.3's
//! environment comparison uses `range / size²` instead.

use std::collections::BTreeMap;

use mesh11_phy::{BitRate, Phy};
use mesh11_trace::{Dataset, DatasetView, EnvLabel, FoldKernel, NetworkId, ProbeSource};
use rayon::prelude::*;

use crate::triples::hearing::{HearRule, HearingGraph};

/// Per-network range (hearing-pair count) at every probed rate.
pub fn range_by_rate(
    view: DatasetView<'_>,
    phy: Phy,
    threshold: f64,
    rule: HearRule,
) -> BTreeMap<(NetworkId, BitRate), usize> {
    range_by_rate_from(&ProbeSource::Whole(view), phy, threshold, rule)
}

/// The fold-style form of [`range_by_rate_from`]: per-(network, rate)
/// keys are disjoint across windows. Networks are measured in parallel;
/// the keys are disjoint across networks too, so the self-ordering map is
/// insertion-order independent.
#[derive(Debug, Clone, Copy)]
pub struct RangeKernel {
    /// PHY analyzed.
    pub phy: Phy,
    /// Threshold on the hearing statistic.
    pub threshold: f64,
    /// Hearing rule used.
    pub rule: HearRule,
}

impl FoldKernel for RangeKernel {
    type Partial = BTreeMap<(NetworkId, BitRate), usize>;
    type Output = BTreeMap<(NetworkId, BitRate), usize>;

    fn init(&self) -> Self::Partial {
        BTreeMap::new()
    }

    fn fold(&self, view: DatasetView<'_>, out: &mut Self::Partial) {
        let phy = self.phy;
        let metas: Vec<_> = view
            .networks()
            .iter()
            .filter(|meta| meta.radios.contains(&phy) && meta.n_aps >= 2)
            .collect();
        let partials: Vec<Vec<((NetworkId, BitRate), usize)>> = metas
            .par_iter()
            .map(|meta| {
                view.delivery_stack(phy, meta.id, phy.probed_rates(), meta.n_aps)
                    .iter()
                    .map(|m| {
                        let g = HearingGraph::build(m, self.threshold, self.rule);
                        ((meta.id, m.rate), g.edge_count())
                    })
                    .collect()
            })
            .collect();
        out.extend(partials.into_iter().flatten());
    }

    fn merge(&self, into: &mut Self::Partial, from: Self::Partial) {
        into.extend(from);
    }

    fn finish(&self, out: Self::Partial) -> Self::Output {
        out
    }
}

/// [`range_by_rate`] over a whole or chunked source; see [`RangeKernel`]
/// for the ordering argument.
pub fn range_by_rate_from(
    src: &ProbeSource<'_>,
    phy: Phy,
    threshold: f64,
    rule: HearRule,
) -> BTreeMap<(NetworkId, BitRate), usize> {
    mesh11_trace::run_fold(
        src,
        &RangeKernel {
            phy,
            threshold,
            rule,
        },
    )
}

/// Fig 6.2's sample: per rate, each network's `range(rate) / range(base)`,
/// where base is the PHY's most robust rate (1 Mbit/s for b/g). Networks
/// with zero base range are excluded (the ratio is undefined).
pub fn range_change_by_rate(
    ranges: &BTreeMap<(NetworkId, BitRate), usize>,
    phy: Phy,
) -> BTreeMap<BitRate, Vec<f64>> {
    let base_rate = phy.probed_rates()[0];
    let mut out: BTreeMap<BitRate, Vec<f64>> = BTreeMap::new();
    // Collect base ranges per network first.
    let bases: BTreeMap<NetworkId, usize> = ranges
        .iter()
        .filter(|((_, r), _)| *r == base_rate)
        .map(|((n, _), &v)| (*n, v))
        .collect();
    for ((net, rate), &v) in ranges {
        let Some(&base) = bases.get(net) else {
            continue;
        };
        if base == 0 {
            continue;
        }
        out.entry(*rate).or_default().push(v as f64 / base as f64);
    }
    out
}

/// §6.3's density-normalized range, `range / size²`, per environment at one
/// rate. Returns `(env, values)` for the two pure environments.
pub fn normalized_range_by_env(
    ds: &Dataset,
    ranges: &BTreeMap<(NetworkId, BitRate), usize>,
    rate: BitRate,
) -> BTreeMap<EnvLabel, Vec<f64>> {
    let mut out: BTreeMap<EnvLabel, Vec<f64>> = BTreeMap::new();
    for ((net, r), &v) in ranges {
        if *r != rate {
            continue;
        }
        let Some(meta) = ds.meta(*net) else { continue };
        if !meta.env.is_pure() || meta.n_aps == 0 {
            continue;
        }
        out.entry(meta.env)
            .or_default()
            .push(v as f64 / (meta.n_aps * meta.n_aps) as f64);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh11_trace::{ApId, DatasetIndex, NetworkMeta, ProbeSet, RateObs};

    fn r(mbps: f64) -> BitRate {
        BitRate::bg_mbps(mbps).unwrap()
    }

    fn ranges_over(ds: &Dataset) -> BTreeMap<(NetworkId, BitRate), usize> {
        let ix = DatasetIndex::build(ds);
        range_by_rate(DatasetView::new(ds, &ix), Phy::Bg, 0.10, HearRule::Mean)
    }

    /// A dataset where AP0–AP1 hear each other at 1 and 11 Mbit/s but only
    /// marginally at 48.
    fn tiny_ds() -> Dataset {
        let probe = |rate: BitRate, loss: f64| ProbeSet {
            network: NetworkId(0),
            phy: Phy::Bg,
            time_s: 300.0,
            sender: ApId(0),
            receiver: ApId(1),
            obs: vec![RateObs {
                rate,
                loss,
                snr_db: 15.0,
            }],
        };
        let rev = |rate: BitRate, loss: f64| ProbeSet {
            sender: ApId(1),
            receiver: ApId(0),
            ..probe(rate, loss)
        };
        Dataset {
            networks: vec![NetworkMeta {
                id: NetworkId(0),
                env: EnvLabel::Indoor,
                n_aps: 2,
                radios: vec![Phy::Bg],
                location: String::new(),
            }],
            probes: vec![
                probe(r(1.0), 0.0),
                rev(r(1.0), 0.0),
                probe(r(11.0), 0.2),
                rev(r(11.0), 0.2),
                probe(r(48.0), 0.95),
                rev(r(48.0), 0.95),
            ],
            clients: vec![],
            probe_horizon_s: 600.0,
            client_horizon_s: 0.0,
        }
    }

    #[test]
    fn ranges_reflect_thresholded_hearing() {
        let ds = tiny_ds();
        let ranges = ranges_over(&ds);
        assert_eq!(ranges[&(NetworkId(0), r(1.0))], 1);
        assert_eq!(ranges[&(NetworkId(0), r(11.0))], 1);
        // 5% delivery misses the 10% threshold.
        assert_eq!(ranges[&(NetworkId(0), r(48.0))], 0);
        // Rates never probed successfully have zero range.
        assert_eq!(ranges[&(NetworkId(0), r(24.0))], 0);
    }

    #[test]
    fn change_normalizes_to_base() {
        let ds = tiny_ds();
        let ranges = ranges_over(&ds);
        let change = range_change_by_rate(&ranges, Phy::Bg);
        assert_eq!(change[&r(1.0)], vec![1.0], "base normalizes to itself");
        assert_eq!(change[&r(11.0)], vec![1.0]);
        assert_eq!(change[&r(48.0)], vec![0.0]);
    }

    #[test]
    fn env_normalized_range() {
        let ds = tiny_ds();
        let ranges = ranges_over(&ds);
        let by_env = normalized_range_by_env(&ds, &ranges, r(1.0));
        assert_eq!(by_env[&EnvLabel::Indoor], vec![0.25]); // 1 pair / 2²
        assert!(!by_env.contains_key(&EnvLabel::Outdoor));
    }
}
