//! Relevant and hidden triple counting (§6.1, Fig 6.1).
//!
//! With per-node neighbour bitsets the count is word-parallel: for a centre
//! `B` and each neighbour `A` of `B`, the hidden partners are
//! `N(B) ∧ ¬N(A) ∧ {C > A}` — one AND-NOT-MASK-POPCOUNT sweep per (B, A).

use mesh11_phy::{BitRate, Phy};
use mesh11_trace::{DatasetView, EnvLabel, FoldKernel, NetworkId, ProbeSource};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use crate::triples::hearing::{HearRule, HearingGraph};

/// Triple tallies of one network at one rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TripleCounts {
    /// Triples `(A, B, C)` where A and C both hear B.
    pub relevant: u64,
    /// Relevant triples where A and C do *not* hear each other.
    pub hidden: u64,
}

impl TripleCounts {
    /// Hidden / relevant; `None` when there are no relevant triples.
    pub fn fraction(&self) -> Option<f64> {
        (self.relevant > 0).then(|| self.hidden as f64 / self.relevant as f64)
    }
}

/// Counts relevant and hidden triples of a hearing graph.
pub fn count_triples(g: &HearingGraph) -> TripleCounts {
    let n = g.n_nodes();
    let words = n.div_ceil(64);
    let mut relevant = 0u64;
    let mut hidden = 0u64;
    for b in 0..n {
        let nb = g.neighbours(b);
        // Iterate neighbours A of B.
        for (wa, &word) in nb.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let a = wa * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let na = g.neighbours(a);
                // Partners C ∈ N(B), C > A; hidden additionally C ∉ N(A).
                for w in 0..words {
                    // Mask of indices strictly greater than a within word w.
                    let gt_mask: u64 = if w * 64 > a {
                        u64::MAX // whole word lies above a
                    } else if w * 64 + 63 <= a {
                        0 // whole word lies at or below a
                    } else {
                        // a lives in this word: keep the bits above it.
                        !0u64 << (a % 64 + 1)
                    };
                    // N(B) never contains B, so no self-exclusion needed.
                    let partners = nb[w] & gt_mask;
                    relevant += u64::from(partners.count_ones());
                    hidden += u64::from((partners & !na[w]).count_ones());
                }
            }
        }
    }
    TripleCounts { relevant, hidden }
}

/// The §6.1/§6.3 analysis: per (network, rate) hidden-triple fractions.
#[derive(Debug, Clone)]
pub struct TripleAnalysis {
    /// Threshold on the hearing statistic (paper: 0.10).
    pub threshold: f64,
    /// Hearing rule used.
    pub rule: HearRule,
    /// `(network, env, rate) → counts`.
    pub per_network: BTreeMap<(NetworkId, BitRate), (EnvLabel, TripleCounts)>,
}

impl TripleAnalysis {
    /// Runs the analysis on every network running `phy` in the dataset.
    pub fn run(view: DatasetView<'_>, phy: Phy, threshold: f64, rule: HearRule) -> Self {
        Self::run_from(&ProbeSource::Whole(view), phy, threshold, rule)
    }

    /// [`TripleAnalysis::run`] over a whole or chunked source; see
    /// [`TripleKernel`] for the ordering argument.
    pub fn run_from(src: &ProbeSource<'_>, phy: Phy, threshold: f64, rule: HearRule) -> Self {
        mesh11_trace::run_fold(
            src,
            &TripleKernel {
                phy,
                threshold,
                rule,
            },
        )
    }

    /// Fig 6.1's sample at one rate: each network's hidden fraction
    /// (networks with no relevant triples excluded), optionally restricted
    /// to one environment (§6.3).
    pub fn fractions(&self, rate: BitRate, env: Option<EnvLabel>) -> Vec<f64> {
        self.per_network
            .iter()
            .filter(|((_, r), _)| *r == rate)
            .filter(|(_, (e, _))| env.is_none_or(|want| *e == want))
            .filter_map(|(_, (_, c))| c.fraction())
            .collect()
    }

    /// Median hidden fraction at a rate (the §6.1 "about 15%" statistic).
    pub fn median_fraction(&self, rate: BitRate, env: Option<EnvLabel>) -> Option<f64> {
        mesh11_stats::median(&self.fractions(rate, env))
    }
}

/// The fold-style form of [`TripleAnalysis::run_from`]: the per-network
/// map keys are disjoint across windows, so the merged map is identical
/// either way. Networks are counted in parallel; the keys are disjoint
/// across networks too, and the `BTreeMap` orders itself, so the merged
/// map is insertion-order independent.
#[derive(Debug, Clone, Copy)]
pub struct TripleKernel {
    /// PHY analyzed.
    pub phy: Phy,
    /// Threshold on the hearing statistic (paper: 0.10).
    pub threshold: f64,
    /// Hearing rule used.
    pub rule: HearRule,
}

impl FoldKernel for TripleKernel {
    type Partial = BTreeMap<(NetworkId, BitRate), (EnvLabel, TripleCounts)>;
    type Output = TripleAnalysis;

    fn init(&self) -> Self::Partial {
        BTreeMap::new()
    }

    fn fold(&self, view: DatasetView<'_>, per_network: &mut Self::Partial) {
        let phy = self.phy;
        let metas: Vec<_> = view
            .networks()
            .iter()
            .filter(|meta| meta.radios.contains(&phy) && meta.n_aps >= 3)
            .collect();
        type Row = ((NetworkId, BitRate), (EnvLabel, TripleCounts));
        let partials: Vec<Vec<Row>> = metas
            .par_iter()
            .map(|meta| {
                view.delivery_stack(phy, meta.id, phy.probed_rates(), meta.n_aps)
                    .iter()
                    .map(|m| {
                        let g = HearingGraph::build(m, self.threshold, self.rule);
                        ((meta.id, m.rate), (meta.env, count_triples(&g)))
                    })
                    .collect()
            })
            .collect();
        per_network.extend(partials.into_iter().flatten());
    }

    fn merge(&self, into: &mut Self::Partial, from: Self::Partial) {
        into.extend(from);
    }

    fn finish(&self, per_network: Self::Partial) -> TripleAnalysis {
        TripleAnalysis {
            threshold: self.threshold,
            rule: self.rule,
            per_network,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triples::hearing::HearingGraph;

    /// Brute-force reference counter.
    fn brute(g: &HearingGraph) -> TripleCounts {
        let n = g.n_nodes();
        let mut relevant = 0;
        let mut hidden = 0;
        for b in 0..n {
            for a in 0..n {
                for c in (a + 1)..n {
                    if a == b || c == b {
                        continue;
                    }
                    if g.hears(a, b) && g.hears(c, b) {
                        relevant += 1;
                        if !g.hears(a, c) {
                            hidden += 1;
                        }
                    }
                }
            }
        }
        TripleCounts { relevant, hidden }
    }

    #[test]
    fn classic_hidden_terminal() {
        // A — B — C, A and C out of range: 1 relevant, 1 hidden.
        let mut g = HearingGraph::empty(3);
        g.connect(0, 1);
        g.connect(1, 2);
        let c = count_triples(&g);
        assert_eq!(
            c,
            TripleCounts {
                relevant: 1,
                hidden: 1
            }
        );
        assert_eq!(c.fraction(), Some(1.0));
    }

    #[test]
    fn triangle_has_no_hidden() {
        let mut g = HearingGraph::empty(3);
        g.connect(0, 1);
        g.connect(1, 2);
        g.connect(0, 2);
        // Every node is the centre of one relevant triple; none hidden.
        let c = count_triples(&g);
        assert_eq!(
            c,
            TripleCounts {
                relevant: 3,
                hidden: 0
            }
        );
        assert_eq!(c.fraction(), Some(0.0));
    }

    #[test]
    fn empty_graph_fraction_none() {
        let g = HearingGraph::empty(4);
        let c = count_triples(&g);
        assert_eq!(c.relevant, 0);
        assert_eq!(c.fraction(), None);
    }

    #[test]
    fn star_center_counts() {
        // Star: centre 0 with 4 leaves, no leaf-leaf edges: C(4,2) = 6
        // relevant, all hidden.
        let mut g = HearingGraph::empty(5);
        for leaf in 1..5 {
            g.connect(0, leaf);
        }
        let c = count_triples(&g);
        assert_eq!(
            c,
            TripleCounts {
                relevant: 6,
                hidden: 6
            }
        );
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        use rand::rngs::SmallRng;
        use rand::{RngExt, SeedableRng};
        for seed in 0..20 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let n = rng.random_range(3..80);
            let mut g = HearingGraph::empty(n);
            for a in 0..n {
                for b in (a + 1)..n {
                    if rng.random::<f64>() < 0.25 {
                        g.connect(a, b);
                    }
                }
            }
            assert_eq!(count_triples(&g), brute(&g), "seed {seed} n {n}");
        }
    }

    #[test]
    fn word_boundary_graphs() {
        // Exercise nodes straddling the 64-bit word boundary.
        let mut g = HearingGraph::empty(130);
        g.connect(63, 64);
        g.connect(64, 65);
        g.connect(63, 129);
        assert_eq!(count_triples(&g), brute(&g));
    }
}
