//! Special functions needed by the error-rate models.
//!
//! `std` does not expose `erfc`, so we carry the classic Abramowitz–Stegun
//! 7.1.26 rational approximation (|ε| ≤ 1.5·10⁻⁷ over ℝ), which is accurate
//! far beyond what packet-level simulation needs.

/// Complementary error function, `erfc(x) = 1 − erf(x)`.
///
/// Abramowitz & Stegun 7.1.26 with the odd-symmetry extension
/// `erfc(−x) = 2 − erfc(x)`.
///
/// ```
/// use mesh11_phy::math::erfc;
/// assert!((erfc(0.0) - 1.0).abs() < 1e-7);
/// assert!(erfc(3.0) < 3e-5);
/// assert!((erfc(-3.0) - 2.0).abs() < 3e-5);
/// ```
pub fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        return 2.0 - erfc(-x);
    }
    // A&S 7.1.26 coefficients.
    const P: f64 = 0.327_591_1;
    const A1: f64 = 0.254_829_592;
    const A2: f64 = -0.284_496_736;
    const A3: f64 = 1.421_413_741;
    const A4: f64 = -1.453_152_027;
    const A5: f64 = 1.061_405_429;
    let t = 1.0 / (1.0 + P * x);
    let poly = t * (A1 + t * (A2 + t * (A3 + t * (A4 + t * A5))));
    poly * (-x * x).exp()
}

/// Error function, `erf(x)`.
pub fn erf(x: f64) -> f64 {
    1.0 - erfc(x)
}

/// Gaussian tail probability `Q(x) = P(N(0,1) > x) = erfc(x/√2)/2`.
pub fn q(x: f64) -> f64 {
    0.5 * erfc(x / std::f64::consts::SQRT_2)
}

/// Binomial coefficient `C(n, k)` as `f64` (exact for the small arguments
/// the union bound uses; saturating smoothly for large ones).
pub fn binomial(n: u32, k: u32) -> f64 {
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    let mut acc = 1.0f64;
    for i in 0..k {
        acc *= (n - i) as f64 / (i + 1) as f64;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erfc_known_values() {
        // Reference values (Wolfram): erfc(0.5)=0.4795001..., erfc(1)=0.1572992...,
        // erfc(2)=0.00467773...
        assert!((erfc(0.5) - 0.479_500_1).abs() < 2e-7);
        assert!((erfc(1.0) - 0.157_299_2).abs() < 2e-7);
        assert!((erfc(2.0) - 0.004_677_73).abs() < 2e-7);
    }

    #[test]
    fn erfc_symmetry() {
        for &x in &[0.1, 0.7, 1.3, 2.5] {
            assert!((erfc(-x) + erfc(x) - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn erfc_monotone_decreasing() {
        let mut prev = erfc(-5.0);
        let mut x = -5.0;
        while x < 5.0 {
            x += 0.05;
            let v = erfc(x);
            assert!(v <= prev + 1e-7, "erfc not decreasing at {x}");
            prev = v;
        }
    }

    #[test]
    fn q_function_anchors() {
        assert!((q(0.0) - 0.5).abs() < 1e-9);
        // Q(1.96) ≈ 0.025 (the 95% two-tailed z)
        assert!((q(1.96) - 0.025).abs() < 1e-4);
        // Q(3) ≈ 1.3499e-3
        assert!((q(3.0) - 1.3499e-3).abs() < 1e-5);
    }

    #[test]
    fn erf_complements() {
        for &x in &[0.0, 0.3, 1.0, 2.2] {
            assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn binomial_small_exact() {
        assert_eq!(binomial(5, 0), 1.0);
        assert_eq!(binomial(5, 2), 10.0);
        assert_eq!(binomial(10, 5), 252.0);
        assert_eq!(binomial(3, 4), 0.0);
        // The multiplicative form accumulates float error; demand 1e-9 relative.
        assert!((binomial(20, 10) - 184_756.0).abs() / 184_756.0 < 1e-9);
    }

    #[test]
    fn binomial_symmetry() {
        for n in 0..20u32 {
            for k in 0..=n {
                let (a, b) = (binomial(n, k), binomial(n, n - k));
                assert!((a - b).abs() <= 1e-9 * a.max(1.0), "C({n},{k})");
            }
        }
    }
}
