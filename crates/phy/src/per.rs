//! Frame success probability and the calibrated PHY.
//!
//! Two layers:
//!
//! * [`PerModel`] — the *raw* physics: payload success `(1 − BER)^(8L)` and a
//!   preamble-detection stage (b/g frames carry a 1 Mbit/s DSSS preamble —
//!   §6.1 of the paper builds its hidden-terminal argument on this; HT frames
//!   carry an MCS0-robustness preamble).
//! * [`CalibratedPhy`] — the raw curves shifted per rate so that each rate's
//!   50%-success SNR (1500-byte payload) lands exactly on
//!   [`default_sensitivity_db`]. Modulation theory gives the waterfall
//!   *shape*; the sensitivity table gives its *position*, encoding the field
//!   orderings the paper observed (notably 11 Mbit/s CCK ahead of 6 Mbit/s
//!   OFDM).

use crate::ber::{ber, db_to_linear};
use crate::rate::{BitRate, Phy};
use serde::{Deserialize, Serialize};
use std::sync::{Mutex, OnceLock};

/// Probe/data frame size used throughout the toolkit (bytes).
///
/// Roofnet-style broadcast probes are full-size frames; the paper's
/// throughput definition (§3.1.2) is agnostic to the exact size as long as
/// it is held constant.
pub const DEFAULT_FRAME_BYTES: usize = 1500;

/// PLCP preamble + header, expressed as an equivalent payload length at the
/// base rate (192 µs long preamble at 1 Mbit/s ≈ 24 bytes).
const PREAMBLE_BYTES: usize = 24;

/// Raw (uncalibrated) frame-success model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerModel {
    /// Payload size in bytes.
    pub frame_bytes: usize,
    /// Whether reception requires detecting the base-rate preamble first.
    pub with_preamble: bool,
}

impl Default for PerModel {
    fn default() -> Self {
        Self {
            frame_bytes: DEFAULT_FRAME_BYTES,
            with_preamble: true,
        }
    }
}

impl PerModel {
    /// Payload-only success probability at `snr_db` for `rate`.
    pub fn payload_success(&self, rate: BitRate, snr_db: f64) -> f64 {
        success_for_len(rate, snr_db, self.frame_bytes)
    }

    /// Preamble detection probability at `snr_db` (uses the PHY's base rate
    /// over the short preamble length).
    pub fn preamble_success(&self, phy: Phy, snr_db: f64) -> f64 {
        success_for_len(phy.base_rate(), snr_db, PREAMBLE_BYTES)
    }

    /// Full frame success: preamble (if enabled) × payload.
    pub fn success(&self, rate: BitRate, snr_db: f64) -> f64 {
        let payload = self.payload_success(rate, snr_db);
        if self.with_preamble {
            self.preamble_success(rate.phy(), snr_db) * payload
        } else {
            payload
        }
    }
}

/// `(1 − BER(rate, snr))^(8·len)`.
fn success_for_len(rate: BitRate, snr_db: f64, len_bytes: usize) -> f64 {
    let b = ber(rate, db_to_linear(snr_db));
    (1.0 - b).powi((8 * len_bytes) as i32)
}

/// The documented sensitivity table: SNR (dB) at which a 1500-byte payload
/// succeeds 50% of the time, per rate.
///
/// Sources: Atheros AR5213/AR9280-era receive-sensitivity tables shifted to
/// an SNR axis (noise floor ≈ −95 dBm), adjusted so the *orderings* match
/// the paper's field observations: DSSS/CCK rates (1, 2, 5.5, 11 Mbit/s) are
/// more robust than their nominal-rate OFDM neighbours — the paper's §6.1
/// explanation for 11 Mbit/s showing *fewer* hidden triples than 6 Mbit/s.
/// HT dual-stream MCS pay ≈3.5 dB over single-stream; short-GI pays 0.5 dB
/// over long-GI at equal MCS.
pub fn default_sensitivity_db(rate: BitRate) -> f64 {
    if let Some(mcs) = rate.mcs() {
        let single = [5.0, 8.0, 11.0, 14.0, 18.0, 22.0, 24.0, 26.0][usize::from(mcs % 8)];
        let stream_penalty = if mcs >= 8 { 3.5 } else { 0.0 };
        let gi_penalty = if rate.short_gi() { 0.5 } else { 0.0 };
        return single + stream_penalty + gi_penalty;
    }
    match rate.kbps() {
        1_000 => 4.0,
        2_000 => 6.0,
        5_500 => 8.0,
        11_000 => 8.5,
        6_000 => 10.5,
        9_000 => 11.5,
        12_000 => 13.0,
        18_000 => 15.0,
        24_000 => 17.0,
        36_000 => 21.0,
        48_000 => 25.0,
        54_000 => 26.5,
        other => unreachable!("unknown legacy rate {other} kbps"),
    }
}

/// The calibrated PHY: raw waterfalls shifted so each rate's 1500-byte
/// payload 50% point sits exactly at its sensitivity target.
///
/// Construction bisects the (monotone) raw curve once per rate; queries are
/// then pure function evaluations. This is the object the channel/simulator
/// layers hold.
///
/// ```
/// use mesh11_phy::{BitRate, CalibratedPhy};
/// let phy = CalibratedPhy::new();
/// let r6 = BitRate::bg_mbps(6.0).unwrap();
/// // Exactly 50% payload success at the calibration point:
/// let s = phy.payload_success(r6, 10.5);
/// assert!((s - 0.5).abs() < 1e-6);
/// ```
#[derive(Debug, Clone)]
pub struct CalibratedPhy {
    model: PerModel,
    /// `offset[phy][rate_index]`: subtract from the query SNR before the raw
    /// curve, i.e. `raw(snr − offset)` hits 0.5 at the sensitivity target.
    bg_offsets: Vec<f64>,
    ht_offsets: Vec<f64>,
}

impl Default for CalibratedPhy {
    fn default() -> Self {
        Self::new()
    }
}

impl CalibratedPhy {
    /// Calibrates against [`default_sensitivity_db`] with the default frame
    /// size and preamble model.
    pub fn new() -> Self {
        Self::with_model(PerModel::default(), default_sensitivity_db)
    }

    /// Calibrates with a custom frame model and sensitivity table.
    pub fn with_model(model: PerModel, sensitivity_db: impl Fn(BitRate) -> f64) -> Self {
        let calibrate = |rates: &[BitRate]| -> Vec<f64> {
            rates
                .iter()
                .map(|&r| {
                    let raw50 = bisect_snr50(r, model.frame_bytes);
                    sensitivity_db(r) - raw50
                })
                .collect()
        };
        Self {
            model,
            bg_offsets: calibrate(Phy::Bg.all_rates()),
            ht_offsets: calibrate(Phy::Ht.all_rates()),
        }
    }

    fn offset(&self, rate: BitRate) -> f64 {
        match rate.phy() {
            Phy::Bg => self.bg_offsets[rate.index()],
            Phy::Ht => self.ht_offsets[rate.index()],
        }
    }

    /// Payload-only success probability (what the calibration pins).
    pub fn payload_success(&self, rate: BitRate, snr_db: f64) -> f64 {
        self.model.payload_success(rate, snr_db - self.offset(rate))
    }

    /// Full frame success (preamble × payload when the model has preambles).
    pub fn success(&self, rate: BitRate, snr_db: f64) -> f64 {
        let payload = self.payload_success(rate, snr_db);
        if self.model.with_preamble {
            self.preamble_factor(rate.phy(), snr_db) * payload
        } else {
            payload
        }
    }

    /// The preamble-detection factor of [`CalibratedPhy::success`]. It
    /// depends only on the PHY (preambles go out at the base rate, with the
    /// base rate's calibration offset), so bulk tabulation evaluates it
    /// once per SNR instead of once per (rate, SNR).
    pub fn preamble_factor(&self, phy: Phy, snr_db: f64) -> f64 {
        let base = phy.base_rate();
        success_for_len(base, snr_db - self.offset(base), PREAMBLE_BYTES)
    }

    /// Expected throughput (Mbit/s) of `rate` at `snr_db` — the paper's
    /// throughput definition applied to the model.
    pub fn throughput_mbps(&self, rate: BitRate, snr_db: f64) -> f64 {
        rate.throughput_mbps(self.success(rate, snr_db))
    }

    /// The rate with the highest expected throughput at `snr_db`, among the
    /// PHY's probed rates.
    pub fn best_rate(&self, phy: Phy, snr_db: f64) -> BitRate {
        *phy.probed_rates()
            .iter()
            .max_by(|a, b| {
                self.throughput_mbps(**a, snr_db)
                    .partial_cmp(&self.throughput_mbps(**b, snr_db))
                    .expect("throughputs are finite")
            })
            .expect("rate tables are non-empty")
    }

    /// The calibrated 50%-payload-success SNR of a rate (equals the
    /// sensitivity table by construction; exposed for tests and reporting).
    pub fn sensitivity_db(&self, rate: BitRate) -> f64 {
        bisect_snr50(rate, self.model.frame_bytes) + self.offset(rate)
    }

    /// The frame model in use.
    pub fn model(&self) -> PerModel {
        self.model
    }
}

/// A precomputed SNR → success grid over every rate of both PHYs.
///
/// The simulator evaluates frame success hundreds of millions of times; the
/// coded-union-bound curve costs microseconds per call, so we sample it once
/// on a 0.25 dB grid and interpolate linearly. Max interpolation error is
/// far below the Bernoulli noise of any simulated estimate.
#[derive(Debug, Clone)]
pub struct SuccessTable {
    lo_db: f64,
    step_db: f64,
    /// `grid[phy][rate_index][snr_bin]`.
    bg: Vec<Vec<f64>>,
    ht: Vec<Vec<f64>>,
}

impl SuccessTable {
    /// Grid lower bound (dB); success below is clamped to the edge value
    /// (≈0 for any real rate).
    pub const LO_DB: f64 = -30.0;
    /// Grid upper bound (dB); success above is clamped (≈1).
    pub const HI_DB: f64 = 70.0;
    /// Grid step (dB). 0.1 dB keeps interpolation error below 2e-3 even on
    /// the steepest (1 Mbit/s DSSS) waterfall.
    pub const STEP_DB: f64 = 0.1;

    /// Tabulates `phy.success` for every rate.
    pub fn new(phy: &CalibratedPhy) -> Self {
        let n = ((Self::HI_DB - Self::LO_DB) / Self::STEP_DB) as usize + 1;
        let snr_at = |i: usize| Self::LO_DB + i as f64 * Self::STEP_DB;
        let with_preamble = phy.model().with_preamble;
        let tabulate = |p: Phy, rates: &[BitRate]| -> Vec<Vec<f64>> {
            // The preamble factor of `phy.success` is shared by every rate
            // of a PHY; evaluating the base-rate curve once per bin (not
            // once per rate per bin) nearly halves construction while
            // producing bit-identical cells — same function, same inputs,
            // same `pre * payload` product.
            let pre: Vec<f64> = (0..n)
                .map(|i| {
                    if with_preamble {
                        phy.preamble_factor(p, snr_at(i))
                    } else {
                        1.0
                    }
                })
                .collect();
            rates
                .iter()
                .map(|&r| {
                    (0..n)
                        .map(|i| {
                            let payload = phy.payload_success(r, snr_at(i));
                            if with_preamble {
                                pre[i] * payload
                            } else {
                                payload
                            }
                        })
                        .collect()
                })
                .collect()
        };
        Self {
            lo_db: Self::LO_DB,
            step_db: Self::STEP_DB,
            bg: tabulate(Phy::Bg, Phy::Bg.all_rates()),
            ht: tabulate(Phy::Ht, Phy::Ht.all_rates()),
        }
    }

    /// Interpolated frame success at `snr_db` for `rate`.
    pub fn success(&self, rate: BitRate, snr_db: f64) -> f64 {
        self.rate_row(rate).success(snr_db)
    }

    /// The single-rate row of the grid, with the PHY dispatch and row
    /// indexing already resolved. Tick loops that evaluate one rate many
    /// times (the probe engine evaluates each rate once per pair per 40 s
    /// tick) hoist the row lookup out of the loop and call
    /// [`RateRow::success`] on the slice directly.
    pub fn rate_row(&self, rate: BitRate) -> RateRow<'_> {
        let grid = match rate.phy() {
            Phy::Bg => &self.bg[rate.index()],
            Phy::Ht => &self.ht[rate.index()],
        };
        RateRow {
            grid,
            lo_db: self.lo_db,
            step_db: self.step_db,
        }
    }
}

/// Lanes per inner chunk of the batch success kernels: one 512-byte
/// position buffer, L1-resident, long enough to amortize the loop overhead
/// and keep the vectorized position pass's stores streaming.
const SLAB_CHUNK: usize = 64;

/// One rate's slice of a [`SuccessTable`]: the success grid plus the bin
/// parameters, resolved once so the per-frame query is a pure array walk.
/// Produces bit-identical results to [`SuccessTable::success`] (which now
/// delegates here).
#[derive(Debug, Clone, Copy)]
pub struct RateRow<'a> {
    grid: &'a [f64],
    lo_db: f64,
    step_db: f64,
}

impl RateRow<'_> {
    /// Interpolated frame success at `snr_db`.
    #[inline]
    pub fn success(&self, snr_db: f64) -> f64 {
        let grid = self.grid;
        let pos = (snr_db - self.lo_db) / self.step_db;
        if pos <= 0.0 {
            return grid[0];
        }
        let max = (grid.len() - 1) as f64;
        if pos >= max {
            return grid[grid.len() - 1];
        }
        let i = pos.floor() as usize;
        let frac = pos - i as f64;
        grid[i] * (1.0 - frac) + grid[i + 1] * frac
    }

    /// Batch form of [`RateRow::success`]: fills `out[k]` with
    /// `success(snrs[k])` for a whole lane slab.
    ///
    /// The inner loop is branchless — the out-of-range early returns of the
    /// scalar path become a `clamp` on the grid position plus an index
    /// `min` — so the compiler can unroll and vectorize it, and mixed
    /// saturated/transition lanes pay no mispredict. Bit-identical to the
    /// scalar path (pinned by tests): a clamped position of exactly `0.0`
    /// lerps to `grid[0]·1.0 + grid[1]·0.0 = grid[0]`, and a position of
    /// exactly `max` lands on `i = len−2, frac = 1.0`, which lerps to
    /// `grid[len−2]·0.0 + grid[len−1]·1.0 = grid[len−1]` — both exact
    /// because the grid cells are non-negative finite probabilities. No
    /// `mul_add` in the lerp: FMA rounds differently than the scalar
    /// `a·(1−f) + b·f`.
    #[inline]
    pub fn success_slab(&self, snrs: &[f64], out: &mut [f64]) {
        assert_eq!(snrs.len(), out.len());
        let grid = self.grid;
        let max = (grid.len() - 1) as f64;
        let top = grid.len() - 2;
        // Two passes over cache-sized chunks: the position pass is pure
        // lane arithmetic (sub / div / clamp) the compiler vectorizes; the
        // gather pass does the data-dependent grid loads. Per-element math
        // and order are unchanged, so the split keeps the bit-identity.
        let mut pos_buf = [0.0f64; SLAB_CHUNK];
        for (snr_c, out_c) in snrs.chunks(SLAB_CHUNK).zip(out.chunks_mut(SLAB_CHUNK)) {
            for (p, &snr) in pos_buf.iter_mut().zip(snr_c) {
                *p = ((snr - self.lo_db) / self.step_db).clamp(0.0, max);
            }
            for (o, &pos) in out_c.iter_mut().zip(&pos_buf) {
                let i = (pos as usize).min(top);
                let frac = pos - i as f64;
                *o = grid[i] * (1.0 - frac) + grid[i + 1] * frac;
            }
        }
    }

    /// An owned, cache-compact copy of this row: see [`CompactRow`].
    pub fn compact(&self) -> CompactRow {
        let grid = self.grid;
        let n = grid.len();
        // Last index of the leading exactly-0.0 run (0 when the first cell
        // is already non-zero, so the head shortcut below never fires).
        let lo = grid
            .iter()
            .take_while(|&&p| p == 0.0)
            .count()
            .saturating_sub(1);
        // First index of the trailing exactly-1.0 run (n-1 when the last
        // cell is not 1.0, so the tail shortcut never fires).
        let ones = grid.iter().rev().take_while(|&&p| p == 1.0).count();
        let hi = if ones > 1 { n - ones } else { n - 1 };
        CompactRow {
            band: grid[lo..=hi].to_vec(),
            lo,
            hi,
            max_pos: (n - 1) as f64,
            edge0: grid[0],
            edge1: grid[n - 1],
            lo_db: self.lo_db,
            step_db: self.step_db,
        }
    }
}

/// A cache-compact owned copy of one [`RateRow`]: the exactly-saturated
/// head (success 0.0) and tail (success 1.0) of the grid are collapsed to
/// constants and only the transition band is stored — ~1–2 KB per rate
/// instead of 8 KB, so a hot loop querying several rates stays L1-resident
/// and saturated queries touch no grid memory at all.
///
/// Bit-identical to [`RateRow::success`]: in a flat-0 region the lerp
/// `0·(1−f) + 0·f` is exactly `0.0`, and in a flat-1 region
/// `1·(1−f) + 1·f = fl(fl(1−f)+f)` is exactly `1.0` for every `f ∈ [0, 1)`
/// (for `f ≥ ½`, `1−f` is exact by Sterbenz; for `f < ½`, the rounding
/// error of `1−f` is below the half-ulp of 1, so the sum rounds back).
/// The property test below pins the equivalence cell-by-cell and on random
/// off-grid queries.
#[derive(Debug, Clone)]
pub struct CompactRow {
    /// `grid[lo..=hi]` of the full row.
    band: Vec<f64>,
    lo: usize,
    hi: usize,
    max_pos: f64,
    edge0: f64,
    edge1: f64,
    lo_db: f64,
    step_db: f64,
}

impl CompactRow {
    /// Interpolated frame success at `snr_db`; equals the source
    /// [`RateRow::success`] bit for bit.
    #[inline]
    pub fn success(&self, snr_db: f64) -> f64 {
        let pos = (snr_db - self.lo_db) / self.step_db;
        if pos <= 0.0 {
            return self.edge0;
        }
        if pos >= self.max_pos {
            return self.edge1;
        }
        let i = pos as usize; // pos > 0, so the cast is the floor
        if i < self.lo {
            return 0.0; // both lerp cells sit in the flat-0 head
        }
        if i >= self.hi {
            return 1.0; // both lerp cells sit in the flat-1 tail
        }
        let frac = pos - i as f64;
        self.band[i - self.lo] * (1.0 - frac) + self.band[i - self.lo + 1] * frac
    }

    /// Batch form of [`CompactRow::success`], branchless like
    /// [`RateRow::success_slab`] and bit-identical to the scalar path
    /// (pinned by tests).
    ///
    /// The saturated-head/tail early returns collapse into a clamp of the
    /// grid position onto `[lo, hi]`: a query in the flat-0 head clamps to
    /// `pos = lo`, whose lerp is exactly `band[0] = 0.0`; one in the flat-1
    /// tail clamps to `pos = hi`, which lands on `i = hi−1, frac = 1.0` and
    /// lerps to exactly `band[hi−lo] = 1.0`. When a run is empty (`lo = 0`
    /// or `hi = max_pos`) the clamp degenerates to the scalar edge clamp
    /// and returns `edge0`/`edge1` the same way.
    #[inline]
    pub fn success_slab(&self, snrs: &[f64], out: &mut [f64]) {
        assert_eq!(snrs.len(), out.len());
        let band = &self.band[..];
        let lo_f = self.lo as f64;
        let hi_f = self.hi as f64;
        let top = self.hi - 1;
        // Chunked two-pass like [`RateRow::success_slab`]: vectorizable
        // position arithmetic first, data-dependent band loads second.
        let mut pos_buf = [0.0f64; SLAB_CHUNK];
        for (snr_c, out_c) in snrs.chunks(SLAB_CHUNK).zip(out.chunks_mut(SLAB_CHUNK)) {
            for (p, &snr) in pos_buf.iter_mut().zip(snr_c) {
                *p = ((snr - self.lo_db) / self.step_db).clamp(lo_f, hi_f);
            }
            for (o, &pos) in out_c.iter_mut().zip(&pos_buf) {
                let i = (pos as usize).min(top);
                let frac = pos - i as f64;
                *o = band[i - self.lo] * (1.0 - frac) + band[i - self.lo + 1] * frac;
            }
        }
    }
}

/// Process-wide [`SuccessTable`] registry for default-calibrated PHYs,
/// keyed by the frame model `(frame_bytes, with_preamble)`.
///
/// Table construction bisects and tabulates ~8000 coded-BER curves
/// (milliseconds); every campaign, client pass, and bench setup used to
/// rebuild an identical table. The registry builds each distinct model's
/// table once per process and hands out `&'static` references, so callers
/// can also share the borrow across threads without an `Arc`. The common
/// default model sits behind a dedicated `OnceLock` fast path; other models
/// go through a small mutexed list (a handful of entries at most — bench
/// ablations — so a linear scan beats a map).
pub fn shared_success_table(model: PerModel) -> &'static SuccessTable {
    static DEFAULT: OnceLock<SuccessTable> = OnceLock::new();
    static EXTRA: Mutex<Vec<(PerModel, &'static SuccessTable)>> = Mutex::new(Vec::new());
    if model == PerModel::default() {
        return DEFAULT.get_or_init(|| SuccessTable::new(&CalibratedPhy::new()));
    }
    let mut reg = EXTRA.lock().expect("success-table registry poisoned");
    if let Some(&(_, t)) = reg.iter().find(|(m, _)| *m == model) {
        return t;
    }
    let phy = CalibratedPhy::with_model(model, default_sensitivity_db);
    let t: &'static SuccessTable = Box::leak(Box::new(SuccessTable::new(&phy)));
    reg.push((model, t));
    t
}

/// SNR (dB) at which the *raw* payload success crosses 0.5, by bisection.
fn bisect_snr50(rate: BitRate, frame_bytes: usize) -> f64 {
    let f = |snr_db: f64| success_for_len(rate, snr_db, frame_bytes) - 0.5;
    let (mut lo, mut hi) = (-40.0, 60.0);
    debug_assert!(
        f(lo) < 0.0 && f(hi) > 0.0,
        "bracket must straddle 50% for {rate}"
    );
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if f(mid) < 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rate::{BG_ALL, BG_PROBED, HT_ALL};
    use proptest::prelude::*;

    #[test]
    fn calibration_hits_targets_exactly() {
        let phy = CalibratedPhy::new();
        for &r in BG_ALL.iter().chain(HT_ALL) {
            let target = default_sensitivity_db(r);
            let got = phy.sensitivity_db(r);
            assert!(
                (got - target).abs() < 1e-6,
                "{r}: sensitivity {got} != target {target}"
            );
            let s = phy.payload_success(r, target);
            assert!((s - 0.5).abs() < 1e-6, "{r}: success {s} at target SNR");
        }
    }

    #[test]
    fn success_monotone_in_snr() {
        let phy = CalibratedPhy::new();
        for &r in BG_PROBED {
            let mut prev = 0.0;
            for snr10 in -100..500 {
                let s = phy.success(r, snr10 as f64 / 10.0);
                assert!(
                    s >= prev - 1e-9,
                    "{r}: non-monotone at {}",
                    snr10 as f64 / 10.0
                );
                assert!((0.0..=1.0).contains(&s));
                prev = s;
            }
        }
    }

    #[test]
    fn cck11_beats_ofdm6_at_low_snr() {
        // The paper's §6.1 field observation, encoded in the calibration.
        let phy = CalibratedPhy::new();
        let r11 = BitRate::bg_mbps(11.0).unwrap();
        let r6 = BitRate::bg_mbps(6.0).unwrap();
        for snr in [8.0, 9.0, 9.5] {
            assert!(
                phy.success(r11, snr) > phy.success(r6, snr),
                "11 Mbit/s should out-hear 6 Mbit/s at {snr} dB"
            );
        }
    }

    #[test]
    fn one_mbps_most_robust() {
        let phy = CalibratedPhy::new();
        let r1 = BitRate::bg_mbps(1.0).unwrap();
        for &r in &BG_PROBED[1..] {
            for snr in [2.0, 5.0, 8.0] {
                assert!(
                    phy.success(r1, snr) >= phy.success(r, snr) - 1e-9,
                    "1 Mbit/s must dominate {r} at {snr} dB"
                );
            }
        }
    }

    #[test]
    fn best_rate_tracks_snr() {
        let phy = CalibratedPhy::new();
        assert_eq!(phy.best_rate(Phy::Bg, 2.0).mbps(), 1.0);
        // Well above every sensitivity the top probed rate wins.
        assert_eq!(phy.best_rate(Phy::Bg, 45.0).mbps(), 48.0);
        // Monotone non-decreasing optimal throughput.
        let mut prev = 0.0;
        for snr in 0..45 {
            let best = phy.best_rate(Phy::Bg, snr as f64);
            let thr = phy.throughput_mbps(best, snr as f64);
            assert!(thr >= prev - 1e-9);
            prev = thr;
        }
    }

    #[test]
    fn ht_best_rate_spans_mcs() {
        let phy = CalibratedPhy::new();
        let low = phy.best_rate(Phy::Ht, 4.0);
        assert!(
            low.mcs().unwrap().is_multiple_of(8),
            "weak SNR should pick MCS0/8 family, got {low}"
        );
        let high = phy.best_rate(Phy::Ht, 45.0);
        assert_eq!(high.kbps(), 144_400, "strong SNR should pick MCS15/SGI");
    }

    #[test]
    fn preamble_caps_reception() {
        let phy = CalibratedPhy::new();
        let r48 = BitRate::bg_mbps(48.0).unwrap();
        // Full-frame success never exceeds payload-only success.
        for snr in 0..40 {
            let s_full = phy.success(r48, snr as f64);
            let s_pay = phy.payload_success(r48, snr as f64);
            assert!(s_full <= s_pay + 1e-12);
        }
    }

    #[test]
    fn preamble_is_cheap_at_payload_threshold() {
        // At each rate's own sensitivity point, the 1 Mbit/s preamble is
        // nearly free (it is far more robust than a 1500 B payload).
        let phy = CalibratedPhy::new();
        for &r in BG_PROBED {
            let t = default_sensitivity_db(r);
            let ratio = phy.success(r, t) / phy.payload_success(r, t);
            assert!(ratio > 0.95, "{r}: preamble cost too high ({ratio})");
        }
    }

    #[test]
    fn throughput_levels_off_near_30db_bg() {
        // Fig 4.5: the b/g envelope saturates around 30 dB.
        let phy = CalibratedPhy::new();
        let at30 = phy.throughput_mbps(phy.best_rate(Phy::Bg, 30.0), 30.0);
        let at50 = phy.throughput_mbps(phy.best_rate(Phy::Bg, 50.0), 50.0);
        assert!(at30 > 0.95 * at50, "b/g envelope should saturate by 30 dB");
    }

    #[test]
    fn raw_model_without_preamble() {
        let m = PerModel {
            frame_bytes: 100,
            with_preamble: false,
        };
        let r = BitRate::bg_mbps(1.0).unwrap();
        assert_eq!(m.success(r, 20.0), m.payload_success(r, 20.0));
        // Shorter frames succeed more often at equal SNR.
        let long = PerModel {
            frame_bytes: 1500,
            with_preamble: false,
        };
        assert!(m.payload_success(r, 2.0) >= long.payload_success(r, 2.0));
    }

    #[test]
    fn success_table_matches_direct_evaluation() {
        let phy = CalibratedPhy::new();
        let table = SuccessTable::new(&phy);
        for &r in BG_PROBED.iter().chain(&HT_ALL[..4]) {
            for snr10 in (-50..450).step_by(7) {
                let snr = snr10 as f64 / 10.0;
                let direct = phy.success(r, snr);
                let fast = table.success(r, snr);
                assert!(
                    (direct - fast).abs() < 5e-3,
                    "{r} @ {snr} dB: table {fast} vs direct {direct}"
                );
            }
        }
    }

    #[test]
    fn rate_row_is_bit_identical_to_table_lookup() {
        // The hoisted row must be the same computation, not merely close:
        // the simulator's coin flips compare RNG draws against these exact
        // values, so any ULP drift changes datasets.
        let phy = CalibratedPhy::new();
        let table = SuccessTable::new(&phy);
        for &r in BG_PROBED.iter().chain(HT_ALL) {
            let row = table.rate_row(r);
            for snr10 in -320..=720 {
                let snr = snr10 as f64 / 10.0 + 0.037;
                assert_eq!(row.success(snr), table.success(r, snr), "{r} @ {snr}");
            }
        }
    }

    #[test]
    fn compact_row_is_bit_identical_to_rate_row() {
        // The compaction collapses the saturated head and tail to
        // constants; every query — on-grid, off-grid, out of range, and
        // straddling the band edges — must reproduce the full row bit for
        // bit, or the simulator's coin flips drift.
        let phy = CalibratedPhy::new();
        let table = SuccessTable::new(&phy);
        for &r in BG_PROBED.iter().chain(HT_ALL) {
            let row = table.rate_row(r);
            let compact = row.compact();
            for snr10 in -720..=1520 {
                let snr = snr10 as f64 / 20.0 + 0.0173;
                assert_eq!(
                    compact.success(snr).to_bits(),
                    row.success(snr).to_bits(),
                    "{r} @ {snr}"
                );
            }
        }
    }

    #[test]
    fn success_slab_is_bit_identical_to_scalar() {
        // The batch kernel feeds the same RNG coin comparisons as the
        // scalar path; a single ULP of drift anywhere — saturated head,
        // transition band, saturated tail, clamped out-of-range — changes
        // datasets. Sweep off-grid points spanning all of those regions,
        // at several slab widths including ragged tails.
        let phy = CalibratedPhy::new();
        let table = SuccessTable::new(&phy);
        for &r in BG_PROBED.iter().chain(HT_ALL) {
            let row = table.rate_row(r);
            let compact = row.compact();
            let snrs: Vec<f64> = (-720..=1520).map(|s| s as f64 / 20.0 + 0.0173).collect();
            for width in [1usize, 7, 8, 64, 512] {
                for chunk in snrs.chunks(width) {
                    let mut out = vec![0.0; chunk.len()];
                    row.success_slab(chunk, &mut out);
                    for (&snr, &got) in chunk.iter().zip(&out) {
                        assert_eq!(got.to_bits(), row.success(snr).to_bits(), "{r} @ {snr}");
                    }
                    compact.success_slab(chunk, &mut out);
                    for (&snr, &got) in chunk.iter().zip(&out) {
                        assert_eq!(
                            got.to_bits(),
                            compact.success(snr).to_bits(),
                            "compact {r} @ {snr}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn shared_success_table_matches_fresh_and_is_cached() {
        let fresh = SuccessTable::new(&CalibratedPhy::new());
        let shared = shared_success_table(PerModel::default());
        for &r in BG_PROBED.iter().chain(HT_ALL) {
            for snr10 in (-320..=720).step_by(13) {
                let snr = snr10 as f64 / 10.0 + 0.037;
                assert_eq!(
                    shared.success(r, snr).to_bits(),
                    fresh.success(r, snr).to_bits(),
                    "{r} @ {snr}"
                );
            }
        }
        // Same model → same allocation, both for the default fast path and
        // the registry list.
        assert!(std::ptr::eq(
            shared,
            shared_success_table(PerModel::default())
        ));
        let short = PerModel {
            frame_bytes: 256,
            with_preamble: true,
        };
        assert!(std::ptr::eq(
            shared_success_table(short),
            shared_success_table(short)
        ));
        assert!(!std::ptr::eq(shared, shared_success_table(short)));
    }

    #[test]
    fn compact_row_actually_compacts() {
        // Probed rates all have long saturated tails in the tabulated SNR
        // range; if the band is not much smaller than the grid, the
        // L1-residency argument for the client kernel is void.
        let phy = CalibratedPhy::new();
        let table = SuccessTable::new(&phy);
        let full = ((SuccessTable::HI_DB - SuccessTable::LO_DB) / SuccessTable::STEP_DB) as usize;
        for &r in BG_PROBED {
            let band = table.rate_row(r).compact().band.len();
            assert!(
                band * 2 < full,
                "{r}: band {band} of {full} bins — compaction did nothing"
            );
        }
    }

    #[test]
    fn success_table_clamps_out_of_range() {
        let phy = CalibratedPhy::new();
        let table = SuccessTable::new(&phy);
        let r = BG_PROBED[0];
        assert_eq!(
            table.success(r, -100.0),
            table.success(r, SuccessTable::LO_DB)
        );
        assert_eq!(
            table.success(r, 500.0),
            table.success(r, SuccessTable::HI_DB)
        );
    }

    proptest! {
        #[test]
        fn success_always_probability(rate_idx in 0usize..7, snr in -30.0f64..60.0) {
            let phy = CalibratedPhy::new();
            let s = phy.success(BG_PROBED[rate_idx], snr);
            prop_assert!((0.0..=1.0).contains(&s));
        }

        #[test]
        fn ht_success_always_probability(rate_idx in 0usize..32, snr in -30.0f64..60.0) {
            let phy = CalibratedPhy::new();
            let s = phy.success(HT_ALL[rate_idx], snr);
            prop_assert!((0.0..=1.0).contains(&s));
        }
    }
}
