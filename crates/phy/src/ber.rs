//! Bit-error-rate curves per modulation, with convolutional coding.
//!
//! The OFDM path follows the NIST error-rate model (the one ns-3 ships as
//! `NistErrorRateModel`): closed-form uncoded BER per constellation, then a
//! union bound over the K=7 convolutional code's distance spectrum for the
//! coded BER. The DSSS/CCK path uses the standard differential/spread
//! approximations with the 802.11b processing gains.
//!
//! **Calibration note.** These curves supply the *shape* of each rate's
//! waterfall (how steep, how coding bends it). Their absolute *position* is
//! corrected by [`crate::per::CalibratedPhy`], which aligns each rate's 50%
//! point with a documented sensitivity table — see `DESIGN.md` §5 for why
//! (field measurements, including the paper's §6.1, show orderings that pure
//! AWGN theory does not, e.g. 11 Mbit/s CCK outliving 6 Mbit/s OFDM).

use crate::math::{binomial, q};
use crate::rate::{BitRate, RateClass};
use serde::{Deserialize, Serialize};

/// Convolutional code rate (802.11 uses the K=7 (171,133) code, punctured).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Coding {
    /// Rate 1/2 (mother code).
    Half,
    /// Rate 2/3.
    TwoThirds,
    /// Rate 3/4.
    ThreeQuarters,
    /// Rate 5/6 (802.11n only).
    FiveSixths,
}

/// Constellation / spreading scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Modulation {
    /// Differential BPSK with 11-chip Barker spreading (1 Mbit/s).
    Dbpsk,
    /// Differential QPSK with 11-chip Barker spreading (2 Mbit/s).
    Dqpsk,
    /// Complementary code keying, 5.5 Mbit/s.
    Cck55,
    /// Complementary code keying, 11 Mbit/s.
    Cck11,
    /// OFDM BPSK.
    Bpsk,
    /// OFDM QPSK.
    Qpsk,
    /// OFDM 16-QAM.
    Qam16,
    /// OFDM 64-QAM.
    Qam64,
}

/// The modulation and coding of a transmit configuration.
pub fn modulation_of(rate: BitRate) -> (Modulation, Option<Coding>) {
    match rate.class() {
        RateClass::Dsss => {
            if rate.kbps() <= 1_000 {
                (Modulation::Dbpsk, None)
            } else {
                (Modulation::Dqpsk, None)
            }
        }
        RateClass::Cck => {
            if rate.kbps() <= 5_500 {
                (Modulation::Cck55, None)
            } else {
                (Modulation::Cck11, None)
            }
        }
        RateClass::Ofdm => match rate.kbps() {
            6_000 => (Modulation::Bpsk, Some(Coding::Half)),
            9_000 => (Modulation::Bpsk, Some(Coding::ThreeQuarters)),
            12_000 => (Modulation::Qpsk, Some(Coding::Half)),
            18_000 => (Modulation::Qpsk, Some(Coding::ThreeQuarters)),
            24_000 => (Modulation::Qam16, Some(Coding::Half)),
            36_000 => (Modulation::Qam16, Some(Coding::ThreeQuarters)),
            48_000 => (Modulation::Qam64, Some(Coding::TwoThirds)),
            54_000 => (Modulation::Qam64, Some(Coding::ThreeQuarters)),
            other => unreachable!("unknown OFDM rate {other} kbps"),
        },
        RateClass::Ht => {
            let mcs = rate.mcs().expect("HT rates carry an MCS") % 8;
            match mcs {
                0 => (Modulation::Bpsk, Some(Coding::Half)),
                1 => (Modulation::Qpsk, Some(Coding::Half)),
                2 => (Modulation::Qpsk, Some(Coding::ThreeQuarters)),
                3 => (Modulation::Qam16, Some(Coding::Half)),
                4 => (Modulation::Qam16, Some(Coding::ThreeQuarters)),
                5 => (Modulation::Qam64, Some(Coding::TwoThirds)),
                6 => (Modulation::Qam64, Some(Coding::ThreeQuarters)),
                7 => (Modulation::Qam64, Some(Coding::FiveSixths)),
                _ => unreachable!(),
            }
        }
    }
}

/// Uncoded bit error rate for a modulation at linear SNR `snr`
/// (signal power over noise power in the channel bandwidth).
///
/// DSSS rates fold in the 802.11b processing gain (22 MHz chips over the
/// data rate); OFDM constellations use the NIST closed forms.
pub fn uncoded_ber(modulation: Modulation, snr: f64) -> f64 {
    let snr = snr.max(0.0);
    let ber = match modulation {
        // Eb/N0 = SNR * (chip bandwidth / bit rate). 22 MHz / 1 Mbit/s = 22.
        Modulation::Dbpsk => {
            let ebn0 = snr * 22.0;
            0.5 * (-ebn0).exp()
        }
        Modulation::Dqpsk => {
            // Asymptotic DQPSK expression (as used by ns-3's DSSS model).
            let ebn0 = snr * 11.0;
            if ebn0 <= 0.0 {
                0.5
            } else {
                let c = (std::f64::consts::SQRT_2 + 1.0)
                    / (8.0 * std::f64::consts::PI * std::f64::consts::SQRT_2).sqrt();
                c / ebn0.sqrt() * (-(2.0 - std::f64::consts::SQRT_2) * ebn0).exp()
            }
        }
        // CCK: QPSK-like waterfall with the residual spreading gain
        // (22/5.5 = 4 and 22/11 = 2).
        Modulation::Cck55 => q((2.0 * snr * 4.0).sqrt()),
        Modulation::Cck11 => q((2.0 * snr * 2.0).sqrt()),
        // NIST closed forms; `snr` here is the per-symbol SNR.
        Modulation::Bpsk => q((2.0 * snr).sqrt()),
        Modulation::Qpsk => q(snr.sqrt()),
        Modulation::Qam16 => 0.375 * crate::math::erfc((snr / 10.0).sqrt()),
        Modulation::Qam64 => (7.0 / 24.0) * crate::math::erfc((snr / 42.0).sqrt()),
    };
    ber.clamp(0.0, 0.5)
}

/// Distance spectrum (information-bit error weights `c_d` starting at the
/// free distance) of the punctured K=7 (171,133) convolutional code.
fn distance_spectrum(coding: Coding) -> (u32, &'static [f64]) {
    match coding {
        Coding::Half => (
            10,
            &[
                36.0, 0.0, 211.0, 0.0, 1404.0, 0.0, 11633.0, 0.0, 77433.0, 0.0,
            ],
        ),
        Coding::TwoThirds => (
            6,
            &[
                3.0, 70.0, 285.0, 1276.0, 6160.0, 27128.0, 117019.0, 498860.0, 2103891.0, 8784123.0,
            ],
        ),
        Coding::ThreeQuarters => (
            5,
            &[
                42.0,
                201.0,
                1492.0,
                10469.0,
                62935.0,
                379644.0,
                2253373.0,
                13073811.0,
                75152755.0,
                428005675.0,
            ],
        ),
        Coding::FiveSixths => (
            4,
            &[
                92.0,
                528.0,
                8694.0,
                79453.0,
                792114.0,
                7375573.0,
                67884974.0,
                610875423.0,
                5427275376.0,
                47664215639.0,
            ],
        ),
    }
}

/// Probability that a weight-`d` error event wins the Viterbi comparison,
/// given channel bit error probability `p` (hard-decision bound).
///
/// [`coded_ber`] inlines this sum with the powers and binomials hoisted;
/// this per-term form is kept as the oracle its equivalence test pins.
#[cfg_attr(not(test), allow(dead_code))]
fn event_error_prob(d: u32, p: f64) -> f64 {
    if p <= 0.0 {
        return 0.0;
    }
    let p = p.min(0.5);
    let mut sum = 0.0;
    if d.is_multiple_of(2) {
        let half = d / 2;
        sum += 0.5 * binomial(d, half) * p.powi(half as i32) * (1.0 - p).powi(half as i32);
        for k in (half + 1)..=d {
            sum += binomial(d, k) * p.powi(k as i32) * (1.0 - p).powi((d - k) as i32);
        }
    } else {
        for k in (d / 2 + 1)..=d {
            sum += binomial(d, k) * p.powi(k as i32) * (1.0 - p).powi((d - k) as i32);
        }
    }
    sum.min(1.0)
}

/// Largest error-event weight the spectra reach (`dfree + 9` ≤ 19), with
/// headroom. Bounds the compile-time binomial table and power caches.
const MAX_D: usize = 24;

/// `C(n, k)` for all `n, k ≤ MAX_D`, evaluated at compile time with the
/// exact multiplicative recurrence [`binomial`] uses, so the cached values
/// are bit-identical to calling it.
const BINOM: [[f64; MAX_D + 1]; MAX_D + 1] = {
    let mut table = [[0.0f64; MAX_D + 1]; MAX_D + 1];
    let mut n = 0;
    while n <= MAX_D {
        let mut k = 0;
        while k <= n {
            let kk = if k < n - k { k } else { n - k };
            let mut acc = 1.0f64;
            let mut i = 0;
            while i < kk {
                acc *= (n - i) as f64 / (i + 1) as f64;
                i += 1;
            }
            table[n][k] = acc;
            k += 1;
        }
        n += 1;
    }
    table
};

/// Coded bit error rate: union bound over the first ten spectrum terms.
///
/// This is `Σ c_d · event_error_prob(d, uncoded)` with the shared work
/// hoisted: the spectrum terms' `d` ranges overlap, so `p^k` and `(1−p)^k`
/// are evaluated once per exponent (the same `powi` calls the per-term form
/// makes) and binomials come from the compile-time `BINOM` table. Term
/// order, operand order, and clamps are unchanged, so the result is
/// bit-identical to summing the private `event_error_prob` directly —
/// which the tests assert.
pub fn coded_ber(uncoded: f64, coding: Coding) -> f64 {
    let (dfree, cs) = distance_spectrum(coding);
    if uncoded <= 0.0 {
        // Every event term is exactly 0.0, and so is the weighted sum.
        return 0.0;
    }
    let p = uncoded.min(0.5);
    let dmax = dfree as usize + cs.len() - 1;
    debug_assert!(dmax <= MAX_D);
    let mut pk = [0.0f64; MAX_D + 1];
    let mut qk = [0.0f64; MAX_D + 1];
    for k in 0..=dmax {
        pk[k] = p.powi(k as i32);
        qk[k] = (1.0 - p).powi(k as i32);
    }
    let mut ber = 0.0;
    for (i, &c) in cs.iter().enumerate() {
        let d = dfree as usize + i;
        let mut sum = 0.0;
        if d.is_multiple_of(2) {
            let half = d / 2;
            sum += 0.5 * BINOM[d][half] * pk[half] * qk[half];
            for k in (half + 1)..=d {
                sum += BINOM[d][k] * pk[k] * qk[d - k];
            }
        } else {
            for k in (d / 2 + 1)..=d {
                sum += BINOM[d][k] * pk[k] * qk[d - k];
            }
        }
        ber += c * sum.min(1.0);
    }
    ber.clamp(0.0, 0.5)
}

/// End-to-end bit error rate for a rate at linear SNR: uncoded curve plus
/// coding where the rate uses it.
pub fn ber(rate: BitRate, snr_linear: f64) -> f64 {
    let (modulation, coding) = modulation_of(rate);
    let raw = uncoded_ber(modulation, snr_linear);
    match coding {
        Some(c) => coded_ber(raw, c),
        None => raw,
    }
}

/// Batch form of [`ber`]: fills `out[k]` with `ber(rate, snr_linear[k])`.
///
/// The rate-class dispatch in [`modulation_of`] — two nested matches per
/// scalar call — is hoisted out of the lane loop, so the slab walks the
/// uncoded curve and union bound back to back over a contiguous slice.
/// Each lane performs exactly the scalar call's operations in the scalar
/// call's order, so results are bit-identical (pinned by a test).
pub fn ber_slab(rate: BitRate, snr_linear: &[f64], out: &mut [f64]) {
    assert_eq!(snr_linear.len(), out.len());
    let (modulation, coding) = modulation_of(rate);
    match coding {
        Some(c) => {
            for (o, &snr) in out.iter_mut().zip(snr_linear) {
                *o = coded_ber(uncoded_ber(modulation, snr), c);
            }
        }
        None => {
            for (o, &snr) in out.iter_mut().zip(snr_linear) {
                *o = uncoded_ber(modulation, snr);
            }
        }
    }
}

/// Convenience: dB → linear power ratio.
pub fn db_to_linear(db: f64) -> f64 {
    10f64.powf(db / 10.0)
}

/// Convenience: linear power ratio → dB.
pub fn linear_to_db(linear: f64) -> f64 {
    10.0 * linear.log10()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rate::{BG_ALL, HT_ALL};
    use proptest::prelude::*;

    #[test]
    fn modulation_assignments_bg() {
        let m = |mbps: f64| modulation_of(BitRate::bg_mbps(mbps).unwrap());
        assert_eq!(m(1.0), (Modulation::Dbpsk, None));
        assert_eq!(m(2.0), (Modulation::Dqpsk, None));
        assert_eq!(m(5.5), (Modulation::Cck55, None));
        assert_eq!(m(11.0), (Modulation::Cck11, None));
        assert_eq!(m(6.0), (Modulation::Bpsk, Some(Coding::Half)));
        assert_eq!(m(54.0), (Modulation::Qam64, Some(Coding::ThreeQuarters)));
    }

    #[test]
    fn modulation_assignments_ht() {
        let m = |mcs| modulation_of(BitRate::ht_mcs(mcs, false).unwrap());
        assert_eq!(m(0), (Modulation::Bpsk, Some(Coding::Half)));
        assert_eq!(m(7), (Modulation::Qam64, Some(Coding::FiveSixths)));
        // Dual-stream MCS shares the single-stream constellation.
        assert_eq!(m(8), m(0));
        assert_eq!(m(15), m(7));
    }

    #[test]
    fn uncoded_ber_limits() {
        for &m in &[
            Modulation::Dbpsk,
            Modulation::Dqpsk,
            Modulation::Cck55,
            Modulation::Cck11,
            Modulation::Bpsk,
            Modulation::Qpsk,
            Modulation::Qam16,
            Modulation::Qam64,
        ] {
            assert!(
                uncoded_ber(m, 0.0) >= 0.2,
                "{m:?} should be ~0.5 at zero SNR"
            );
            assert!(
                uncoded_ber(m, 1e6) < 1e-12,
                "{m:?} should vanish at huge SNR"
            );
        }
    }

    #[test]
    fn higher_order_modulation_is_worse() {
        // At a fixed mid-range SNR the constellations order by density.
        let snr = db_to_linear(12.0);
        let bpsk = uncoded_ber(Modulation::Bpsk, snr);
        let qpsk = uncoded_ber(Modulation::Qpsk, snr);
        let qam16 = uncoded_ber(Modulation::Qam16, snr);
        let qam64 = uncoded_ber(Modulation::Qam64, snr);
        assert!(bpsk < qpsk && qpsk < qam16 && qam16 < qam64);
    }

    #[test]
    fn coding_helps_at_moderate_ber() {
        let p = 1e-3;
        for &c in &[
            Coding::Half,
            Coding::TwoThirds,
            Coding::ThreeQuarters,
            Coding::FiveSixths,
        ] {
            assert!(coded_ber(p, c) < p, "{c:?} failed to improve on p={p}");
        }
    }

    #[test]
    fn stronger_codes_win() {
        let p = 5e-3;
        let half = coded_ber(p, Coding::Half);
        let two3 = coded_ber(p, Coding::TwoThirds);
        let three4 = coded_ber(p, Coding::ThreeQuarters);
        let five6 = coded_ber(p, Coding::FiveSixths);
        assert!(half < two3 && two3 < three4 && three4 < five6);
    }

    #[test]
    fn coded_ber_is_bit_identical_to_per_term_sum() {
        // The hoisted power/binomial caches must not move a single ULP:
        // the success tables built from these curves gate the simulator's
        // RNG coin flips.
        let ps: Vec<f64> = (-12..=0)
            .flat_map(|e| [1.0f64, 2.7, 6.3].map(|m| m * 10f64.powi(e)))
            .chain([0.0, 0.5, 0.499_999, 1e-300])
            .collect();
        for &c in &[
            Coding::Half,
            Coding::TwoThirds,
            Coding::ThreeQuarters,
            Coding::FiveSixths,
        ] {
            let (dfree, cs) = distance_spectrum(c);
            for &p in &ps {
                let naive = {
                    let mut ber = 0.0;
                    for (i, &w) in cs.iter().enumerate() {
                        ber += w * event_error_prob(dfree + i as u32, p);
                    }
                    ber.clamp(0.0, 0.5)
                };
                assert_eq!(coded_ber(p, c), naive, "{c:?} at p={p}");
            }
        }
    }

    #[test]
    fn binom_table_matches_binomial() {
        for (n, row) in BINOM.iter().enumerate() {
            for (k, &cached) in row.iter().enumerate().take(n + 1) {
                assert_eq!(cached, binomial(n as u32, k as u32), "C({n},{k})");
            }
        }
    }

    #[test]
    fn event_error_prob_properties() {
        assert_eq!(event_error_prob(10, 0.0), 0.0);
        assert!(event_error_prob(10, 0.5) > 0.1);
        // More errors required => less likely.
        assert!(event_error_prob(12, 0.01) < event_error_prob(10, 0.01));
    }

    #[test]
    fn ber_slab_is_bit_identical_to_scalar() {
        let snrs: Vec<f64> = (-250..=500)
            .map(|db10| db_to_linear(db10 as f64 / 10.0))
            .collect();
        for &r in BG_ALL.iter().chain(HT_ALL) {
            for width in [1usize, 8, 64, 512] {
                for chunk in snrs.chunks(width) {
                    let mut out = vec![0.0; chunk.len()];
                    ber_slab(r, chunk, &mut out);
                    for (&snr, &got) in chunk.iter().zip(&out) {
                        assert_eq!(got.to_bits(), ber(r, snr).to_bits(), "{r} @ snr={snr}");
                    }
                }
            }
        }
    }

    #[test]
    fn db_conversions_round_trip() {
        for &db in &[-20.0, -3.0, 0.0, 3.0, 10.0, 30.0] {
            assert!((linear_to_db(db_to_linear(db)) - db).abs() < 1e-9);
        }
        assert!((db_to_linear(3.0) - 1.995).abs() < 0.01);
    }

    #[test]
    fn ber_is_finite_for_all_rates() {
        for &r in BG_ALL.iter().chain(HT_ALL) {
            for snr_db in -20..50 {
                let b = ber(r, db_to_linear(snr_db as f64));
                assert!(
                    b.is_finite() && (0.0..=0.5).contains(&b),
                    "{r} @ {snr_db} dB: {b}"
                );
            }
        }
    }

    proptest! {
        #[test]
        fn ber_monotone_in_snr(rate_idx in 0usize..12, lo in -10.0f64..40.0, delta in 0.01f64..10.0) {
            let rate = BG_ALL[rate_idx];
            let b_lo = ber(rate, db_to_linear(lo));
            let b_hi = ber(rate, db_to_linear(lo + delta));
            prop_assert!(b_hi <= b_lo + 1e-12, "{}: ber({})={} < ber({})={}", rate, lo, b_lo, lo + delta, b_hi);
        }

        #[test]
        fn coded_ber_bounded(p in 0.0f64..0.5) {
            for &c in &[Coding::Half, Coding::TwoThirds, Coding::ThreeQuarters, Coding::FiveSixths] {
                let b = coded_ber(p, c);
                prop_assert!((0.0..=0.5).contains(&b));
            }
        }
    }
}
