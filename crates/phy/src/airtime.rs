//! Frame airtime: how long one transmission occupies the medium.
//!
//! Needed by the ETT (expected transmission time) routing metric — the
//! second traditional-routing baseline the paper's question 2 names (De
//! Couto's ETX counts transmissions; Bicket's ETT weighs them by duration,
//! so a 1 Mbit/s hop is 48× more expensive than a 48 Mbit/s hop of equal
//! delivery).
//!
//! Timings follow the 802.11 PLCP formats:
//!
//! * DSSS/CCK: 192 µs long preamble + header, payload at the data rate;
//! * OFDM (11g): 20 µs preamble + SIGNAL, payload in 4 µs symbols;
//! * HT (11n mixed format): 36 µs preamble, payload in 3.6/4 µs symbols
//!   (short/long GI) carrying the MCS's bits per symbol.

use crate::rate::{BitRate, RateClass};

/// Transmit duration (µs) of a frame with `payload_bytes` of MAC payload at
/// `rate`, preamble included.
pub fn tx_time_us(rate: BitRate, payload_bytes: usize) -> f64 {
    let bits = (payload_bytes * 8) as f64;
    match rate.class() {
        RateClass::Dsss | RateClass::Cck => {
            // Long PLCP preamble + header: 144 + 48 = 192 µs.
            192.0 + bits / (rate.kbps() as f64 / 1000.0)
        }
        RateClass::Ofdm => {
            // 16 µs preamble + 4 µs SIGNAL; then 4 µs symbols.
            let bits_per_symbol = rate.kbps() as f64 / 1000.0 * 4.0;
            // 16 service + 6 tail bits ride along.
            let symbols = ((bits + 22.0) / bits_per_symbol).ceil();
            20.0 + 4.0 * symbols
        }
        RateClass::Ht => {
            // HT-mixed preamble ≈ 36 µs (L-STF+L-LTF+L-SIG+HT-SIG+HT-STF+HT-LTF).
            let symbol_us = if rate.short_gi() { 3.6 } else { 4.0 };
            let bits_per_symbol = rate.kbps() as f64 / 1000.0 * symbol_us;
            let symbols = ((bits + 22.0) / bits_per_symbol).ceil();
            36.0 + symbol_us * symbols
        }
    }
}

/// Airtime of the toolkit's standard probe/data frame (µs).
pub fn frame_time_us(rate: BitRate) -> f64 {
    tx_time_us(rate, crate::per::DEFAULT_FRAME_BYTES)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rate::{BG_ALL, HT_ALL};

    fn r(mbps: f64) -> BitRate {
        BitRate::bg_mbps(mbps).unwrap()
    }

    #[test]
    fn dsss_is_preamble_plus_linear_payload() {
        // 1500 B at 1 Mbit/s: 192 + 12000 = 12192 µs.
        assert_eq!(tx_time_us(r(1.0), 1500), 12_192.0);
        // At 11 Mbit/s: 192 + 12000/11 ≈ 1282.9 µs.
        assert!((tx_time_us(r(11.0), 1500) - (192.0 + 12_000.0 / 11.0)).abs() < 1e-9);
    }

    #[test]
    fn ofdm_rounds_to_symbols() {
        // 6 Mbit/s: 24 bits/symbol; (12000+22)/24 = 500.9 → 501 symbols.
        assert_eq!(tx_time_us(r(6.0), 1500), 20.0 + 4.0 * 501.0);
        // 54 Mbit/s: 216 bits/symbol; (12022)/216 = 55.7 → 56 symbols.
        assert_eq!(tx_time_us(r(54.0), 1500), 20.0 + 4.0 * 56.0);
    }

    #[test]
    fn faster_rates_are_faster_within_a_family() {
        // Within OFDM and within DSSS/CCK, airtime strictly falls with rate.
        let ofdm: Vec<f64> = [6.0, 9.0, 12.0, 18.0, 24.0, 36.0, 48.0, 54.0]
            .iter()
            .map(|&m| frame_time_us(r(m)))
            .collect();
        assert!(ofdm.windows(2).all(|w| w[1] < w[0]), "{ofdm:?}");
        let dsss: Vec<f64> = [1.0, 2.0, 5.5, 11.0]
            .iter()
            .map(|&m| frame_time_us(r(m)))
            .collect();
        assert!(dsss.windows(2).all(|w| w[1] < w[0]), "{dsss:?}");
    }

    #[test]
    fn one_mbps_dominates_everything() {
        let slowest = frame_time_us(r(1.0));
        for &rate in BG_ALL.iter().chain(HT_ALL) {
            assert!(frame_time_us(rate) <= slowest);
        }
    }

    #[test]
    fn short_gi_is_faster() {
        for mcs in 0..16 {
            let lgi = frame_time_us(BitRate::ht_mcs(mcs, false).unwrap());
            let sgi = frame_time_us(BitRate::ht_mcs(mcs, true).unwrap());
            assert!(sgi < lgi, "MCS{mcs}: sgi {sgi} vs lgi {lgi}");
        }
    }

    #[test]
    fn empty_payload_is_just_overhead() {
        assert_eq!(tx_time_us(r(1.0), 0), 192.0);
        // OFDM still sends one symbol for service+tail bits.
        assert_eq!(tx_time_us(r(54.0), 0), 20.0 + 4.0);
    }

    #[test]
    fn airtime_monotone_in_payload() {
        use proptest::prelude::*;
        proptest!(|(rate_idx in 0usize..12, a in 0usize..3000, b in 0usize..3000)| {
            let rate = BG_ALL[rate_idx];
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(tx_time_us(rate, lo) <= tx_time_us(rate, hi));
        });
    }

    #[test]
    fn airtime_positive_and_finite_for_all_rates() {
        for &rate in BG_ALL.iter().chain(HT_ALL) {
            let t = frame_time_us(rate);
            assert!(t.is_finite() && t > 0.0, "{rate}: {t}");
        }
    }
}
